//! Satellite 3: the metrics registry under concurrent writers and a
//! concurrent reader.
//!
//! N threads hammer a shared counter and histogram while another thread
//! repeatedly drains `render_text()` and `snapshot()`; when the writers
//! finish, the drained totals must be exact (relaxed atomics lose no
//! increments — only the *moment* a snapshot observes them is unordered).
#![cfg(feature = "obs")]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

const WRITERS: usize = 8;
const INCREMENTS: u64 = 20_000;

#[test]
fn concurrent_bumps_are_exact_under_a_draining_reader() {
    let counter = pc_obs::counter("test_concurrency_counter_total");
    let histogram = pc_obs::histogram("test_concurrency_histogram");
    let stop = Arc::new(AtomicBool::new(false));

    let reader = {
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut drains = 0u64;
            while !stop.load(Ordering::Relaxed) {
                // Both render paths must stay coherent while written to.
                let text = pc_obs::render_text();
                assert!(text.contains("test_concurrency_counter_total"));
                let snap = pc_obs::snapshot();
                let c = snap.counter("test_concurrency_counter_total");
                assert!(
                    c <= (WRITERS as u64) * INCREMENTS,
                    "snapshot overshot: {c}"
                );
                drains += 1;
            }
            drains
        })
    };

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            thread::spawn(move || {
                let c = pc_obs::counter("test_concurrency_counter_total");
                let h = pc_obs::histogram("test_concurrency_histogram");
                for i in 0..INCREMENTS {
                    c.inc();
                    h.record((w as u64) * INCREMENTS + i);
                }
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let drains = reader.join().unwrap();
    assert!(drains > 0, "reader never drained");

    let expected = (WRITERS as u64) * INCREMENTS;
    assert_eq!(counter.get(), expected);

    let snap = pc_obs::snapshot();
    assert_eq!(snap.counter("test_concurrency_counter_total"), expected);
    let h = snap.histogram("test_concurrency_histogram").expect("histogram registered");
    assert_eq!(h.count, expected);
    let bucket_total: u64 = h.buckets.iter().map(|&(_, n)| n).sum();
    assert_eq!(bucket_total, expected, "every sample lands in exactly one bucket");
    // Sum of 0..WRITERS*INCREMENTS.
    assert_eq!(h.sum, expected * (expected - 1) / 2);

    let text = pc_obs::render_text();
    assert!(text.contains(&format!("test_concurrency_counter_total {expected}")));
    assert!(text.contains(&format!("test_concurrency_histogram_count {expected}")));
    assert_eq!(histogram.snapshot().count, expected);
}
