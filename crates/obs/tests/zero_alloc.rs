//! S4: the sampling layer's two contracts.
//!
//! * **Determinism** — the sampled set is a pure function of `(seed, key)`:
//!   two sampler instances with the same seed agree on every key, across
//!   threads, and retuning the rate never perturbs which keys a given rate
//!   selects. This is what makes "same workload ⇒ same sampled set"
//!   reproducible across server restarts.
//! * **Zero allocation off the sampled path** — in default builds, a
//!   request that was *not* sampled pays one thread-local load per span
//!   and allocates nothing. Pinned with a counting global allocator; the
//!   `obs` feature intentionally trades this for always-on aggregation, so
//!   the allocation assertion is compiled out there.

use pc_obs::sample::Sampler;

#[test]
fn sampler_is_deterministic_in_seed_and_key() {
    let a = Sampler::new(8, 0xDEAD_BEEF);
    let b = Sampler::new(8, 0xDEAD_BEEF);
    let picked: Vec<u64> = (0..10_000).filter(|&k| a.should_sample(k)).collect();
    assert!(!picked.is_empty());
    for k in 0..10_000 {
        assert_eq!(a.should_sample(k), b.should_sample(k), "key {k}");
    }

    // A different seed selects a different set (astronomically likely).
    let c = Sampler::new(8, 0xFEED_FACE);
    let picked_c: Vec<u64> = (0..10_000).filter(|&k| c.should_sample(k)).collect();
    assert_ne!(picked, picked_c);

    // Concurrent readers observe the same decisions.
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                for (i, &k) in picked.iter().enumerate() {
                    assert!(a.should_sample(k), "thread view diverged at {i}");
                }
            });
        }
    });
}

#[test]
fn sampling_rate_is_roughly_one_in_n() {
    let every = 16u64;
    let s = Sampler::new(every, 0x5EED);
    let n = 100_000u64;
    let picked = (0..n).filter(|&k| s.should_sample(k)).count() as u64;
    let expected = n / every;
    assert!(
        picked > expected / 2 && picked < expected * 2,
        "picked {picked}, expected ~{expected}"
    );
}

#[test]
fn retuning_changes_rate_without_changing_selection() {
    let s = Sampler::new(0, 7);
    assert!((0..1000).all(|k| !s.should_sample(k)), "0 = off");
    s.set_every(1);
    assert!((0..1000).all(|k| s.should_sample(k)), "1 = everything");
    s.set_every(4);
    let at_4: Vec<u64> = (0..1000).filter(|&k| s.should_sample(k)).collect();
    // Going away and back to the same rate selects the same keys — the
    // decision depends on (seed, key, rate), never on history.
    s.set_every(32);
    s.set_every(4);
    let again: Vec<u64> = (0..1000).filter(|&k| s.should_sample(k)).collect();
    assert_eq!(at_4, again);
}

// ---------------------------------------------------------------------------
// Zero-allocation fast path (default build only).

#[cfg(not(feature = "obs"))]
mod alloc_counting {
    use super::*;
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

    /// System allocator with an allocation counter — the probe for the
    /// "sampled-off requests allocate nothing" contract.
    struct Counting;

    static ALLOCS: AtomicU64 = AtomicU64::new(0);

    // SAFETY: delegates everything to `System`; the counter is a relaxed
    // atomic with no other side effects.
    unsafe impl GlobalAlloc for Counting {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Relaxed);
            unsafe { System.alloc(layout) }
        }
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }
        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Relaxed);
            unsafe { System.realloc(ptr, layout, new_size) }
        }
    }

    #[global_allocator]
    static COUNTING: Counting = Counting;

    #[test]
    fn unsampled_span_stack_allocates_nothing() {
        let sampler = Sampler::new(4, 0xA110C);

        // Warm the thread-locals (first touch may lazily initialize).
        {
            let _s = pc_obs::span!("warmup");
            pc_obs::record_io(pc_obs::IoEvent::Read);
        }

        let before = ALLOCS.load(Relaxed);
        for key in 0..1_000u64 {
            // The admission decision itself…
            let sampled = sampler.should_sample(key);
            if sampled {
                // …but only drive the span stack for unsampled requests
                // here: the sampled path is allowed to allocate.
                continue;
            }
            let _root = pc_obs::span!("serve_query", key);
            pc_obs::set_block_capacity(4);
            pc_obs::record_io(pc_obs::IoEvent::Read);
            {
                let _child = pc_obs::span!(output: "node_block");
                pc_obs::record_io(pc_obs::IoEvent::Read);
                pc_obs::add_items(3);
            }
        }
        let after = ALLOCS.load(Relaxed);
        assert_eq!(after - before, 0, "unsampled fast path allocated {}x", after - before);
    }

    #[test]
    fn sampled_requests_do_allocate_and_capture() {
        // Sanity check that the counter works at all: a captured trace
        // builds a real tree on the heap.
        let before = ALLOCS.load(Relaxed);
        let cap = pc_obs::begin_trace();
        {
            let _root = pc_obs::span!("traced");
            pc_obs::record_io(pc_obs::IoEvent::Read);
        }
        let trace = cap.finish().expect("captured");
        assert_eq!(trace.total_io, 1);
        assert!(ALLOCS.load(Relaxed) > before, "capturing a trace must allocate");
    }
}
