//! Global metrics registry: relaxed-atomic counters and power-of-two-bucket
//! histograms, with a Prometheus-style text exposition.
//!
//! Hot-path metrics (the per-[`IoEvent`] counters and the per-query
//! histograms) live in a fixed struct reached through one `OnceLock` — no
//! name lookup or locking on the record path. Ad-hoc named metrics from
//! [`counter`]/[`histogram`] go through a mutex-guarded registration list
//! and are leaked (`&'static`), so callers pay the lock once and then share
//! the same lock-free atomics.

use std::sync::{Mutex, MutexGuard, OnceLock};

use crate::{HistogramSnapshot, IoEvent, Snapshot};

// The primitives themselves live in the always-compiled `hist` module (so a
// default build can still measure explicitly); the registry here re-exports
// them as the crate-root types when `obs` is on.
pub use crate::hist::{Counter, Histogram};

/// The always-registered metrics, reachable without any locking.
#[derive(Debug, Default)]
pub(crate) struct FixedMetrics {
    /// One counter per [`IoEvent`] kind, indexed by [`IoEvent::index`].
    pub(crate) io: [Counter; IoEvent::COUNT],
    /// Finished root spans (one per traced operation).
    pub(crate) ops_total: Counter,
    /// Total wasteful transfers across all finished root spans.
    pub(crate) wasteful_total: Counter,
    /// Total output items across all finished root spans.
    pub(crate) items_total: Counter,
    /// Per-operation total transfers.
    pub(crate) hist_op_io: Histogram,
    /// Per-operation wasteful transfers.
    pub(crate) hist_wasteful: Histogram,
    /// Per-operation wall latency in nanoseconds.
    pub(crate) hist_latency: Histogram,
}

const OPS_TOTAL: &str = "pc_ops_total";
const WASTEFUL_TOTAL: &str = "pc_op_wasteful_io_total";
const ITEMS_TOTAL: &str = "pc_op_output_items_total";
const HIST_OP_IO: &str = "pc_op_total_io";
const HIST_WASTEFUL: &str = "pc_op_wasteful_io";
const HIST_LATENCY: &str = "pc_op_latency_ns";
const POOL_HIT_RATIO: &str = "pc_pool_hit_ratio";

enum DynMetric {
    C(&'static Counter),
    H(&'static Histogram),
}

struct Registry {
    fixed: FixedMetrics,
    dynamic: Mutex<Vec<(&'static str, DynMetric)>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY
        .get_or_init(|| Registry { fixed: FixedMetrics::default(), dynamic: Mutex::new(Vec::new()) })
}

/// Fast path to the fixed metrics for the tracing layer.
#[inline]
pub(crate) fn fixed() -> &'static FixedMetrics {
    &registry().fixed
}

fn dynamic() -> MutexGuard<'static, Vec<(&'static str, DynMetric)>> {
    registry().dynamic.lock().unwrap_or_else(|e| e.into_inner())
}

/// The named counter, registering it on first use. Callers on hot paths
/// should cache the returned reference; lookups take a registry lock.
///
/// Panics if `name` is already registered as a histogram.
pub fn counter(name: &'static str) -> &'static Counter {
    let mut d = dynamic();
    for (n, m) in d.iter() {
        if *n == name {
            match m {
                DynMetric::C(c) => return c,
                DynMetric::H(_) => panic!("metric {name:?} is already a histogram"),
            }
        }
    }
    let c: &'static Counter = Box::leak(Box::default());
    d.push((name, DynMetric::C(c)));
    c
}

/// The named histogram, registering it on first use (see [`counter`]).
///
/// Panics if `name` is already registered as a counter.
pub fn histogram(name: &'static str) -> &'static Histogram {
    let mut d = dynamic();
    for (n, m) in d.iter() {
        if *n == name {
            match m {
                DynMetric::H(h) => return h,
                DynMetric::C(_) => panic!("metric {name:?} is already a counter"),
            }
        }
    }
    let h: &'static Histogram = Box::leak(Box::default());
    d.push((name, DynMetric::H(h)));
    h
}

/// Structured point-in-time copy of every registered metric.
pub fn snapshot() -> Snapshot {
    let r = registry();
    let mut counters: Vec<(String, u64)> = Vec::new();
    for ev in IoEvent::ALL {
        counters.push((ev.counter_name().to_string(), r.fixed.io[ev.index()].get()));
    }
    counters.push((OPS_TOTAL.to_string(), r.fixed.ops_total.get()));
    counters.push((WASTEFUL_TOTAL.to_string(), r.fixed.wasteful_total.get()));
    counters.push((ITEMS_TOTAL.to_string(), r.fixed.items_total.get()));
    let mut histograms: Vec<(String, HistogramSnapshot)> = vec![
        (HIST_OP_IO.to_string(), r.fixed.hist_op_io.snapshot()),
        (HIST_WASTEFUL.to_string(), r.fixed.hist_wasteful.snapshot()),
        (HIST_LATENCY.to_string(), r.fixed.hist_latency.snapshot()),
    ];
    for (n, m) in dynamic().iter() {
        match m {
            DynMetric::C(c) => counters.push((n.to_string(), c.get())),
            DynMetric::H(h) => histograms.push((n.to_string(), h.snapshot())),
        }
    }
    Snapshot { counters, histograms }
}

/// Prometheus-style text exposition of every registered metric, plus the
/// derived `pc_pool_hit_ratio` gauge.
pub fn render_text() -> String {
    let snap = snapshot();
    let mut out = String::new();
    for (name, v) in &snap.counters {
        out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
    }
    for (name, h) in &snap.histograms {
        out.push_str(&format!("# TYPE {name} histogram\n"));
        let mut cumulative = 0u64;
        for &(le, c) in &h.buckets {
            cumulative += c;
            out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
        }
        out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
        out.push_str(&format!("{name}_sum {}\n{name}_count {}\n", h.sum, h.count));
    }
    out.push_str(&format!(
        "# TYPE {POOL_HIT_RATIO} gauge\n{POOL_HIT_RATIO} {:.6}\n",
        snap.pool_hit_ratio()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_registration_is_idempotent() {
        let a = counter("test_metrics_dyn_counter");
        let b = counter("test_metrics_dyn_counter");
        assert!(std::ptr::eq(a, b));
        a.add(2);
        b.inc();
        assert_eq!(a.get(), 3);
        let h1 = histogram("test_metrics_dyn_hist");
        let h2 = histogram("test_metrics_dyn_hist");
        assert!(std::ptr::eq(h1, h2));
    }

    #[test]
    fn render_text_is_prometheus_shaped() {
        counter("test_metrics_render_counter").add(7);
        let h = histogram("test_metrics_render_hist");
        h.record(3);
        h.record(100);
        let text = render_text();
        assert!(text.contains("# TYPE test_metrics_render_counter counter"), "{text}");
        assert!(text.contains("test_metrics_render_counter 7"), "{text}");
        assert!(text.contains("# TYPE test_metrics_render_hist histogram"), "{text}");
        assert!(text.contains("test_metrics_render_hist_bucket{le=\"3\"} 1"), "{text}");
        assert!(text.contains("test_metrics_render_hist_bucket{le=\"+Inf\"} 2"), "{text}");
        assert!(text.contains("test_metrics_render_hist_sum 103"), "{text}");
        assert!(text.contains("test_metrics_render_hist_count 2"), "{text}");
        assert!(text.contains("# TYPE pc_pool_hit_ratio gauge"), "{text}");
        assert!(text.contains("# TYPE pc_ops_total counter"), "{text}");
        assert!(text.contains("# TYPE pc_op_latency_ns histogram"), "{text}");
    }
}
