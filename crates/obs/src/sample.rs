//! Deterministic 1-in-N request sampling.
//!
//! Always compiled (like [`crate::hist`]): the serve layer decides per
//! request whether to open a [`crate::begin_trace`] capture, so release
//! binaries trace a controlled fraction of traffic without the `obs`
//! feature. The decision is a pure function of `(seed, key)` — *not* a
//! thread-local counter — so the sampled set is independent of worker
//! interleaving: the same workload replayed against the same seed selects
//! exactly the same requests. That property is what makes sampled traces
//! comparable across runs (and is pinned by the determinism tests).
//!
//! The rate is a relaxed atomic so an operator can retune a live server
//! (the `SetSampling` ADMIN op); `0` disables sampling entirely.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// SplitMix64 finalizer: a cheap, well-dispersed 64-bit mix.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58476d1ce4e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// A seeded, runtime-switchable 1-in-N sampler.
#[derive(Debug)]
pub struct Sampler {
    seed: u64,
    every: AtomicU64,
}

impl Sampler {
    /// A sampler selecting (deterministically) about one key in `every`.
    /// `every == 0` selects nothing; `every == 1` selects everything.
    pub fn new(every: u64, seed: u64) -> Sampler {
        Sampler { seed, every: AtomicU64::new(every) }
    }

    /// The current rate (0 = off).
    pub fn every(&self) -> u64 {
        self.every.load(Relaxed)
    }

    /// Retunes the rate on a live sampler.
    pub fn set_every(&self, every: u64) {
        self.every.store(every, Relaxed);
    }

    /// Whether the request identified by `key` is sampled. Pure in
    /// `(seed, key)` for a fixed rate.
    #[inline]
    pub fn should_sample(&self, key: u64) -> bool {
        match self.every.load(Relaxed) {
            0 => false,
            1 => true,
            n => mix64(self.seed ^ key.wrapping_mul(0x9e3779b97f4a7c15)).is_multiple_of(n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_off_and_one_is_everything() {
        let s = Sampler::new(0, 7);
        assert!((0..100).all(|k| !s.should_sample(k)));
        s.set_every(1);
        assert_eq!(s.every(), 1);
        assert!((0..100).all(|k| s.should_sample(k)));
    }

    #[test]
    fn same_seed_same_rate_selects_the_same_set() {
        let a = Sampler::new(8, 0xFEED);
        let b = Sampler::new(8, 0xFEED);
        let pick = |s: &Sampler| (0..10_000u64).filter(|&k| s.should_sample(k)).collect::<Vec<_>>();
        assert_eq!(pick(&a), pick(&b));
        assert!(!pick(&a).is_empty());
    }

    #[test]
    fn different_seeds_select_different_sets() {
        let a = Sampler::new(8, 1);
        let b = Sampler::new(8, 2);
        let pick = |s: &Sampler| (0..10_000u64).filter(|&k| s.should_sample(k)).collect::<Vec<_>>();
        assert_ne!(pick(&a), pick(&b));
    }

    #[test]
    fn rate_is_approximately_one_in_n() {
        for every in [2u64, 8, 64] {
            let s = Sampler::new(every, 0xA5A5);
            let n = 100_000u64;
            let hits = (0..n).filter(|&k| s.should_sample(k)).count() as f64;
            let expect = n as f64 / every as f64;
            assert!(
                (hits - expect).abs() < expect * 0.25,
                "every={every}: {hits} hits, expected ~{expect}"
            );
        }
    }

    #[test]
    fn retuning_applies_immediately() {
        let s = Sampler::new(0, 3);
        assert!(!s.should_sample(10));
        s.set_every(1);
        assert!(s.should_sample(10));
        s.set_every(0);
        assert!(!s.should_sample(10));
    }
}
