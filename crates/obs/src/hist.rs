//! Always-compiled counter and power-of-two-bucket histogram primitives.
//!
//! These are the *real* implementations behind the crate-root [`Counter`]
//! and [`Histogram`] re-exports when the `obs` feature is on. They live in
//! their own always-compiled module because some consumers (the `pc-serve`
//! request path, `pc-loadgen` latency recording) need live measurement even
//! in a default build where the crate-root types are inert ZSTs: those
//! callers name `pc_obs::hist::{Counter, Histogram}` explicitly and pay for
//! what they use, while the global span/metrics machinery stays free when
//! off.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use crate::HistogramSnapshot;

/// A monotonically increasing counter (relaxed atomic).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// Buckets: index 0 holds value 0; index `i ≥ 1` holds values with bit
/// length `i`, i.e. the range `[2^(i-1), 2^i - 1]`. 65 buckets cover all of
/// `u64`.
const BUCKETS: usize = 65;

/// A fixed-bucket histogram with power-of-two bucket bounds.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
        self.buckets[Self::bucket_index(v)].fetch_add(1, Relaxed);
    }

    /// Bucket index for a value (0 for 0, else the bit length).
    #[inline]
    pub fn bucket_index(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    /// Inclusive upper bound of bucket `i`.
    pub fn le_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Point-in-time copy (non-empty buckets only).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Relaxed);
            if c > 0 {
                buckets.push((Self::le_bound(i), c));
            }
        }
        HistogramSnapshot { count: self.count.load(Relaxed), sum: self.sum.load(Relaxed), buckets }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_and_bounds() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::le_bound(0), 0);
        assert_eq!(Histogram::le_bound(1), 1);
        assert_eq!(Histogram::le_bound(10), 1023);
        assert_eq!(Histogram::le_bound(64), u64::MAX);
        // Every value lands in a bucket whose bound contains it.
        for v in [0u64, 1, 2, 3, 7, 8, 1 << 20, u64::MAX] {
            let i = Histogram::bucket_index(v);
            assert!(v <= Histogram::le_bound(i), "v={v} i={i}");
            if i > 0 {
                assert!(v > Histogram::le_bound(i - 1), "v={v} i={i}");
            }
        }
    }

    #[test]
    fn histogram_records_and_snapshots() {
        let h = Histogram::default();
        for v in [0, 1, 1, 5, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1007);
        assert_eq!(s.buckets, vec![(0, 1), (1, 2), (7, 1), (1023, 1)]);
    }

    #[test]
    fn counter_adds() {
        let c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }
}
