//! Flight recorder: keeps the K worst finished queries by total I/O count,
//! each with its full span tree.
//!
//! Recording is per-thread — each thread owns a small sorted buffer behind
//! its own mutex (uncontended in steady state), registered once in a global
//! list. [`flight_top`] merges the per-thread buffers on drain, so threads
//! never contend with each other while recording, and traces survive thread
//! exit (the registry holds an `Arc` to every buffer).

use std::cell::RefCell;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use crate::QueryTrace;

/// Per-thread retention. The global worst-K over T threads is always
/// contained in the union of per-thread worst-K buffers, so the merged
/// drain can serve any `k ≤ K` exactly.
const K: usize = 8;

type Buf = Arc<Mutex<Vec<QueryTrace>>>;

fn bufs() -> &'static Mutex<Vec<Buf>> {
    static BUFS: OnceLock<Mutex<Vec<Buf>>> = OnceLock::new();
    BUFS.get_or_init(|| Mutex::new(Vec::new()))
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

thread_local! {
    static LOCAL: RefCell<Option<Buf>> = const { RefCell::new(None) };
}

/// Offers a finished query to this thread's worst-K buffer.
pub(crate) fn offer(trace: QueryTrace) {
    LOCAL.with(|cell| {
        let mut slot = cell.borrow_mut();
        let buf = slot
            .get_or_insert_with(|| {
                let b: Buf = Arc::default();
                lock(bufs()).push(b.clone());
                b
            })
            .clone();
        let mut v = lock(&buf);
        // Kept sorted by descending total_io; drop the offer early when it
        // can't displace anything.
        let pos = v.partition_point(|t| t.total_io >= trace.total_io);
        if pos < K {
            v.insert(pos, trace);
            v.truncate(K);
        }
    });
}

/// The `k` worst queries by total I/O across all threads, descending.
/// `k` larger than the per-thread retention (currently 8) may be served
/// partially.
pub fn flight_top(k: usize) -> Vec<QueryTrace> {
    let mut all: Vec<QueryTrace> = Vec::new();
    for buf in lock(bufs()).iter() {
        all.extend(lock(buf).iter().cloned());
    }
    all.sort_by_key(|t| std::cmp::Reverse(t.total_io));
    all.truncate(k);
    all
}

/// Clears every thread's buffer.
pub fn flight_clear() {
    for buf in lock(bufs()).iter() {
        lock(buf).clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IoDelta, SpanKind, SpanNode};

    fn trace(io: u64) -> QueryTrace {
        QueryTrace {
            name: "t",
            latency_ns: 0,
            total_io: io,
            search_ios: 0,
            wasteful_ios: 0,
            items: 0,
            root: SpanNode {
                name: "t",
                arg: 0,
                kind: SpanKind::Nav,
                io: IoDelta { reads: io, ..IoDelta::default() },
                self_reads: io,
                items: 0,
                block_capacity: 1,
                children: Vec::new(),
            },
        }
    }

    #[test]
    fn keeps_worst_k_in_descending_order() {
        let _g = crate::test_guard();
        flight_clear();
        for io in [5, 1, 9, 3, 7, 2, 8, 4, 6, 10, 0, 11] {
            offer(trace(io));
        }
        let top = flight_top(3);
        let ios: Vec<u64> = top.iter().map(|t| t.total_io).collect();
        assert_eq!(ios, vec![11, 10, 9]);
        // Per-thread retention caps at K.
        let all = flight_top(usize::MAX);
        assert!(all.len() <= K, "{}", all.len());
        assert_eq!(all[0].total_io, 11);
        flight_clear();
        assert!(flight_top(10).is_empty());
    }

    #[test]
    fn merges_across_threads() {
        let _g = crate::test_guard();
        flight_clear();
        offer(trace(100));
        std::thread::scope(|s| {
            s.spawn(|| offer(trace(200)));
            s.spawn(|| offer(trace(50)));
        });
        let top = flight_top(3);
        let ios: Vec<u64> = top.iter().map(|t| t.total_io).collect();
        assert_eq!(ios, vec![200, 100, 50]);
        flight_clear();
    }
}
