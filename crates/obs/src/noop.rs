//! Inert stand-ins for the *registry and flight-recorder* API, compiled
//! when the `obs` feature is off.
//!
//! The span/tracing layer is always compiled (see `trace.rs`) so sampled
//! request tracing works in release builds; only the process-global
//! metrics registry and the flight recorder vanish. Every function here is
//! `#[inline(always)]` with an empty body and every type is a zero-sized
//! struct without `Drop`, so instrumented call sites disappear entirely
//! under optimization — the bench gate in `scripts/verify.sh` pins the
//! residual overhead at ≤ 1%.

use crate::{QueryTrace, Snapshot};

/// Inert counter (see the `obs`-enabled `Counter` for semantics).
#[derive(Debug, Default)]
pub struct Counter(());

impl Counter {
    /// No-op.
    #[inline(always)]
    pub fn add(&self, _n: u64) {}

    /// No-op.
    #[inline(always)]
    pub fn inc(&self) {}

    /// Always 0.
    #[inline(always)]
    pub fn get(&self) -> u64 {
        0
    }
}

/// Inert histogram (see the `obs`-enabled `Histogram` for semantics).
#[derive(Debug, Default)]
pub struct Histogram(());

impl Histogram {
    /// No-op.
    #[inline(always)]
    pub fn record(&self, _v: u64) {}
}

static NOOP_COUNTER: Counter = Counter(());
static NOOP_HISTOGRAM: Histogram = Histogram(());

/// Inert: returns a shared no-op counter.
#[inline(always)]
pub fn counter(_name: &'static str) -> &'static Counter {
    &NOOP_COUNTER
}

/// Inert: returns a shared no-op histogram.
#[inline(always)]
pub fn histogram(_name: &'static str) -> &'static Histogram {
    &NOOP_HISTOGRAM
}

/// Inert: a one-line notice instead of an exposition.
pub fn render_text() -> String {
    "# pc-obs disabled: rebuild with `--features obs` for metrics\n".to_string()
}

/// Inert: an empty snapshot (every counter reads 0).
pub fn snapshot() -> Snapshot {
    Snapshot::default()
}

/// Inert: no traces are ever recorded globally. (Sampled request traces
/// still flow through `begin_trace` captures — those are always compiled.)
pub fn flight_top(_k: usize) -> Vec<QueryTrace> {
    Vec::new()
}

/// No-op.
#[inline(always)]
pub fn flight_clear() {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_api_is_inert() {
        let c = counter("anything");
        c.add(5);
        c.inc();
        assert_eq!(c.get(), 0);
        histogram("anything").record(7);
        assert!(snapshot().counters.is_empty());
        assert!(flight_top(3).is_empty());
        flight_clear();
        assert!(render_text().contains("disabled"));
    }
}
