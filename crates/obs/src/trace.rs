//! The thread-local span stack (live `obs` implementation).
//!
//! A [`Span`] guard pushes a frame recording the thread's cumulative I/O
//! counts at open; [`record_io`] bumps those counts; on drop the frame's
//! delta becomes a [`SpanNode`] attached to its parent. When the *root*
//! frame pops, the finished tree is folded into the metrics registry and
//! offered to the flight recorder.

use std::cell::RefCell;
use std::time::Instant;

use crate::metrics::fixed;
use crate::{recorder, IoDelta, IoEvent, QueryTrace, SpanKind, SpanNode};

struct Frame {
    name: &'static str,
    arg: u64,
    kind: SpanKind,
    /// Thread-cumulative per-kind counts when this frame opened.
    start: [u64; IoEvent::COUNT],
    /// Reads already attributed to closed child spans.
    child_reads: u64,
    /// Items reported via [`add_items`] while this frame was innermost.
    items: u64,
    /// Capacity set via [`set_block_capacity`] on this frame, if any.
    block_capacity: Option<u64>,
    children: Vec<SpanNode>,
    /// Set only on root frames, for the latency histogram.
    opened_at: Option<Instant>,
}

#[derive(Default)]
struct Tracer {
    /// Thread-cumulative per-kind event counts (monotonic).
    io: [u64; IoEvent::COUNT],
    stack: Vec<Frame>,
}

thread_local! {
    static TRACER: RefCell<Tracer> = RefCell::new(Tracer::default());
}

/// Reports one page-store event to the tracing layer and the global
/// per-event counters. Called by the `pc-pagestore` observer hook; purely
/// observational (never alters store behavior or its own `IoStats`).
#[inline]
pub fn record_io(ev: IoEvent) {
    fixed().io[ev.index()].inc();
    TRACER.with(|t| t.borrow_mut().io[ev.index()] += 1);
}

/// Adds `n` to the innermost open span's output-item count. No-op when no
/// span is open.
#[inline]
pub fn add_items(n: u64) {
    if n == 0 {
        return;
    }
    TRACER.with(|t| {
        if let Some(f) = t.borrow_mut().stack.last_mut() {
            f.items += n;
        }
    });
}

/// Sets the output block capacity `B` on the innermost open span. Spans
/// without their own setting inherit from the nearest enclosing span, so
/// nested structures (e.g. a mini segment tree inside an interval tree)
/// keep independent capacities. Defaults to 1.
#[inline]
pub fn set_block_capacity(b: u64) {
    TRACER.with(|t| {
        if let Some(f) = t.borrow_mut().stack.last_mut() {
            f.block_capacity = Some(b);
        }
    });
}

/// RAII guard for one tracing span; see the [`span!`](crate::span) macro.
#[must_use = "a span records nothing unless the guard is held"]
#[derive(Debug)]
pub struct Span {
    _priv: (),
}

impl Span {
    /// Opens a span. Prefer the [`span!`](crate::span) macro.
    #[inline]
    pub fn enter(name: &'static str, kind: SpanKind, arg: u64) -> Span {
        TRACER.with(|t| {
            let mut t = t.borrow_mut();
            let opened_at = if t.stack.is_empty() { Some(Instant::now()) } else { None };
            let start = t.io;
            t.stack.push(Frame {
                name,
                arg,
                kind,
                start,
                child_reads: 0,
                items: 0,
                block_capacity: None,
                children: Vec::new(),
                opened_at,
            });
        });
        Span { _priv: () }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let finished = TRACER.with(|t| {
            let mut tr = t.borrow_mut();
            let frame = tr.stack.pop()?;
            let io = IoDelta::from_counts(&tr.io, &frame.start);
            let block_capacity = frame
                .block_capacity
                .or_else(|| tr.stack.iter().rev().find_map(|f| f.block_capacity))
                .unwrap_or(1);
            let node = SpanNode {
                name: frame.name,
                arg: frame.arg,
                kind: frame.kind,
                io,
                self_reads: io.reads.saturating_sub(frame.child_reads),
                items: frame.items,
                block_capacity,
                children: frame.children,
            };
            match tr.stack.last_mut() {
                Some(parent) => {
                    parent.child_reads += io.reads;
                    parent.children.push(node);
                    None
                }
                None => {
                    let ns =
                        frame.opened_at.map(|t0| t0.elapsed().as_nanos() as u64).unwrap_or(0);
                    Some((node, ns))
                }
            }
        });
        if let Some((root, latency_ns)) = finished {
            finalize(root, latency_ns);
        }
    }
}

/// Folds a finished root span into the metrics registry and the flight
/// recorder.
fn finalize(root: SpanNode, latency_ns: u64) {
    let total_io = root.io.total_io();
    let wasteful_ios = root.wasteful_ios();
    let search_ios = root.search_ios();
    let items = root.output_items();
    let m = fixed();
    m.ops_total.inc();
    m.wasteful_total.add(wasteful_ios);
    m.items_total.add(items);
    m.hist_op_io.record(total_io);
    m.hist_wasteful.record(wasteful_ios);
    m.hist_latency.record(latency_ns);
    recorder::offer(QueryTrace {
        name: root.name,
        latency_ns,
        total_io,
        search_ios,
        wasteful_ios,
        items,
        root,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{flight_clear, flight_top, snapshot};

    /// Simulates the page-store hook: n reads.
    fn reads(n: u64) {
        for _ in 0..n {
            record_io(IoEvent::Read);
        }
    }

    #[test]
    fn span_tree_attributes_self_and_child_reads() {
        let _g = crate::test_guard();
        flight_clear();
        {
            let _root = crate::span!("query");
            set_block_capacity(4);
            reads(2); // root self: search
            {
                let _lvl = crate::span!("level", 1u64);
                reads(1); // level self: search
            }
            {
                let _probe = crate::span!(output: "path_cache_probe");
                reads(3);
                add_items(9); // 2 full blocks at B=4 + tail → 1 wasteful
            }
        }
        let top = flight_top(1);
        assert_eq!(top.len(), 1);
        let t = &top[0];
        assert_eq!(t.name, "query");
        assert_eq!(t.total_io, 6);
        assert_eq!(t.search_ios, 3);
        assert_eq!(t.wasteful_ios, 1);
        assert_eq!(t.items, 9);
        assert_eq!(t.root.children.len(), 2);
        let probe = &t.root.children[1];
        assert_eq!(probe.name, "path_cache_probe");
        assert_eq!(probe.self_reads, 3);
        assert_eq!(probe.block_capacity, 4, "capacity inherited from root");
        assert_eq!(probe.wasteful(), 1);
        flight_clear();
    }

    #[test]
    fn root_finalization_updates_metrics() {
        let _g = crate::test_guard();
        let before = snapshot();
        {
            let _root = crate::span!(output: "solo");
            reads(2);
            add_items(1);
        }
        let after = snapshot();
        assert_eq!(after.counter("pc_ops_total") - before.counter("pc_ops_total"), 1);
        // B defaults to 1: 2 reads, 1 item → 1 wasteful.
        assert_eq!(
            after.counter("pc_op_wasteful_io_total") - before.counter("pc_op_wasteful_io_total"),
            1
        );
        assert_eq!(
            after.counter("pc_op_output_items_total")
                - before.counter("pc_op_output_items_total"),
            1
        );
        assert!(after.counter("pc_io_reads_total") >= before.counter("pc_io_reads_total") + 2);
    }

    #[test]
    fn io_outside_any_span_only_hits_global_counters() {
        let _g = crate::test_guard();
        let before = snapshot();
        record_io(IoEvent::Write);
        let after = snapshot();
        assert_eq!(
            after.counter("pc_io_writes_total") - before.counter("pc_io_writes_total"),
            1
        );
        assert_eq!(after.counter("pc_ops_total"), before.counter("pc_ops_total"));
    }
}
