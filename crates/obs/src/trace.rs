//! The thread-local span stack.
//!
//! A [`Span`] guard pushes a frame recording the thread's cumulative I/O
//! counts at open; [`record_io`] bumps those counts; on drop the frame's
//! delta becomes a [`SpanNode`] attached to its parent. When the *root*
//! frame pops, the finished tree is delivered to whoever asked for it.
//!
//! This module is **always compiled** — that is what makes request-scoped
//! tracing work in release builds. Two activation paths:
//!
//! * With the `obs` cargo feature, every root span is live: on finalize it
//!   is folded into the global metrics registry and offered to the flight
//!   recorder, exactly as in earlier revisions.
//! * Without `obs`, a span does real work only while the current thread has
//!   an open [`TraceCapture`] (see [`begin_trace`]) — the serve layer opens
//!   one for sampled requests. Otherwise [`Span::enter`] is a single
//!   const-initialized thread-local load plus a branch: no allocation, no
//!   `Instant::now()`, nothing for the optimizer to keep. The zero-alloc
//!   property is pinned by the `zero_alloc` integration test and the
//!   `obs_overhead` bench gate.
//!
//! Either way, [`begin_trace`]/[`TraceCapture::finish`] capture the next
//! finished *root* span on this thread as a [`QueryTrace`] and hand it back
//! to the caller — that is the per-request trace context: the worker owns
//! the tree, with no detour through process-global state.

use std::cell::{Cell, RefCell};
use std::time::Instant;

use crate::{IoDelta, IoEvent, QueryTrace, SpanKind, SpanNode};

struct Frame {
    name: &'static str,
    arg: u64,
    kind: SpanKind,
    /// Thread-cumulative per-kind counts when this frame opened.
    start: [u64; IoEvent::COUNT],
    /// Reads already attributed to closed child spans.
    child_reads: u64,
    /// Items reported via [`add_items`] while this frame was innermost.
    items: u64,
    /// Capacity set via [`set_block_capacity`] on this frame, if any.
    block_capacity: Option<u64>,
    children: Vec<SpanNode>,
    /// Set only on root frames, for the latency measurement.
    opened_at: Option<Instant>,
}

#[derive(Default)]
struct Tracer {
    /// Thread-cumulative per-kind event counts (monotonic).
    io: [u64; IoEvent::COUNT],
    stack: Vec<Frame>,
}

thread_local! {
    static TRACER: RefCell<Tracer> = RefCell::new(Tracer::default());
    /// True while a [`TraceCapture`] is open on this thread. Const-init so
    /// the unsampled fast path is a plain TLS load with no lazy-init check.
    static CAPTURING: Cell<bool> = const { Cell::new(false) };
    static CAPTURED: RefCell<Option<QueryTrace>> = const { RefCell::new(None) };
}

/// True when spans on this thread should record anything at all.
#[inline(always)]
fn tracing_live() -> bool {
    cfg!(feature = "obs") || CAPTURING.with(Cell::get)
}

/// Captures the next root span finished on this thread.
///
/// Arms tracing (in builds without the `obs` feature, spans are inert
/// outside a capture) and reserves the thread's capture slot. Call
/// [`TraceCapture::finish`] after the root span guard has dropped to take
/// the finished [`QueryTrace`]. Captures nest: an inner capture takes the
/// inner root, the outer capture state is restored when the guard goes.
pub fn begin_trace() -> TraceCapture {
    let prev = CAPTURING.with(|c| c.replace(true));
    let stale = CAPTURED.with(|c| c.borrow_mut().take());
    drop(stale);
    TraceCapture { prev }
}

/// Guard for one armed request-trace window; see [`begin_trace`].
#[must_use = "a capture that is dropped immediately records nothing"]
#[derive(Debug)]
pub struct TraceCapture {
    prev: bool,
}

impl TraceCapture {
    /// Takes the root span captured since [`begin_trace`], if one finished.
    /// Consumes the guard (disarming the thread if the capture was the
    /// outermost one).
    pub fn finish(self) -> Option<QueryTrace> {
        CAPTURED.with(|c| c.borrow_mut().take())
        // `self` drops here, restoring the previous arming state.
    }
}

impl Drop for TraceCapture {
    fn drop(&mut self) {
        CAPTURING.with(|c| c.set(self.prev));
    }
}

/// Reports one page-store event to the tracing layer and (with `obs`) the
/// global per-event counters. Called by the `pc-pagestore` observer hook;
/// purely observational (never alters store behavior or its own `IoStats`).
#[inline]
pub fn record_io(ev: IoEvent) {
    #[cfg(feature = "obs")]
    crate::metrics::fixed().io[ev.index()].inc();
    if !tracing_live() {
        return;
    }
    TRACER.with(|t| t.borrow_mut().io[ev.index()] += 1);
}

/// Adds `n` to the innermost open span's output-item count. No-op when no
/// span is open.
#[inline]
pub fn add_items(n: u64) {
    if n == 0 || !tracing_live() {
        return;
    }
    TRACER.with(|t| {
        if let Some(f) = t.borrow_mut().stack.last_mut() {
            f.items += n;
        }
    });
}

/// Sets the output block capacity `B` on the innermost open span. Spans
/// without their own setting inherit from the nearest enclosing span, so
/// nested structures (e.g. a mini segment tree inside an interval tree)
/// keep independent capacities. Defaults to 1.
#[inline]
pub fn set_block_capacity(b: u64) {
    if !tracing_live() {
        return;
    }
    TRACER.with(|t| {
        if let Some(f) = t.borrow_mut().stack.last_mut() {
            f.block_capacity = Some(b);
        }
    });
}

/// RAII guard for one tracing span; see the [`span!`](crate::span) macro.
#[must_use = "a span records nothing unless the guard is held"]
#[derive(Debug)]
pub struct Span {
    /// False when the span was opened on an unarmed thread (no `obs`
    /// feature, no capture): enter pushed nothing and drop pops nothing.
    live: bool,
}

impl Span {
    /// Opens a span. Prefer the [`span!`](crate::span) macro.
    #[inline]
    pub fn enter(name: &'static str, kind: SpanKind, arg: u64) -> Span {
        if !tracing_live() {
            return Span { live: false };
        }
        TRACER.with(|t| {
            let mut t = t.borrow_mut();
            let opened_at = if t.stack.is_empty() { Some(Instant::now()) } else { None };
            let start = t.io;
            t.stack.push(Frame {
                name,
                arg,
                kind,
                start,
                child_reads: 0,
                items: 0,
                block_capacity: None,
                children: Vec::new(),
                opened_at,
            });
        });
        Span { live: true }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.live {
            return;
        }
        let finished = TRACER.with(|t| {
            let mut tr = t.borrow_mut();
            let frame = tr.stack.pop()?;
            let io = IoDelta::from_counts(&tr.io, &frame.start);
            let block_capacity = frame
                .block_capacity
                .or_else(|| tr.stack.iter().rev().find_map(|f| f.block_capacity))
                .unwrap_or(1);
            let node = SpanNode {
                name: frame.name,
                arg: frame.arg,
                kind: frame.kind,
                io,
                self_reads: io.reads.saturating_sub(frame.child_reads),
                items: frame.items,
                block_capacity,
                children: frame.children,
            };
            match tr.stack.last_mut() {
                Some(parent) => {
                    parent.child_reads += io.reads;
                    parent.children.push(node);
                    None
                }
                None => {
                    let ns =
                        frame.opened_at.map(|t0| t0.elapsed().as_nanos() as u64).unwrap_or(0);
                    Some((node, ns))
                }
            }
        });
        if let Some((root, latency_ns)) = finished {
            finalize(root, latency_ns);
        }
    }
}

/// Delivers a finished root span: into the open capture slot when this
/// thread is inside a [`begin_trace`] window, and (with `obs`) into the
/// metrics registry and the flight recorder.
fn finalize(root: SpanNode, latency_ns: u64) {
    let total_io = root.io.total_io();
    let wasteful_ios = root.wasteful_ios();
    let search_ios = root.search_ios();
    let items = root.output_items();
    #[cfg(feature = "obs")]
    {
        let m = crate::metrics::fixed();
        m.ops_total.inc();
        m.wasteful_total.add(wasteful_ios);
        m.items_total.add(items);
        m.hist_op_io.record(total_io);
        m.hist_wasteful.record(wasteful_ios);
        m.hist_latency.record(latency_ns);
    }
    let trace = QueryTrace { name: root.name, latency_ns, total_io, search_ios, wasteful_ios, items, root };
    if CAPTURING.with(Cell::get) {
        CAPTURED.with(|c| *c.borrow_mut() = Some(trace));
        return;
    }
    #[cfg(feature = "obs")]
    crate::recorder::offer(trace);
    #[cfg(not(feature = "obs"))]
    drop(trace);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Simulates the page-store hook: n reads.
    fn reads(n: u64) {
        for _ in 0..n {
            record_io(IoEvent::Read);
        }
    }

    /// The capture path works identically in both instrumentation modes —
    /// this is the contract that lets release servers trace sampled
    /// requests.
    #[test]
    fn begin_trace_captures_the_root_span_tree() {
        let cap = begin_trace();
        {
            let _root = crate::span!("query", 42u64);
            set_block_capacity(4);
            reads(2);
            {
                let _lvl = crate::span!("level", 1u64);
                reads(1);
            }
            {
                let _probe = crate::span!(output: "path_cache_probe");
                reads(3);
                add_items(9); // 2 full blocks at B=4 + tail → 1 wasteful
            }
        }
        let t = cap.finish().expect("root span finished inside the capture");
        assert_eq!(t.name, "query");
        assert_eq!(t.total_io, 6);
        assert_eq!(t.search_ios, 3);
        assert_eq!(t.wasteful_ios, 1);
        assert_eq!(t.items, 9);
        assert_eq!(t.root.arg, 42);
        assert_eq!(t.root.children.len(), 2);
        let probe = &t.root.children[1];
        assert_eq!(probe.name, "path_cache_probe");
        assert_eq!(probe.self_reads, 3);
        assert_eq!(probe.block_capacity, 4, "capacity inherited from root");
        assert_eq!(probe.wasteful(), 1);
    }

    #[test]
    fn capture_without_a_root_span_yields_none() {
        let cap = begin_trace();
        reads(1); // I/O outside any span is not a trace
        assert!(cap.finish().is_none());
    }

    #[test]
    fn captures_nest_and_restore_outer_state() {
        let outer = begin_trace();
        {
            let inner = begin_trace();
            {
                let _s = crate::span!("inner_op");
                reads(1);
            }
            let t = inner.finish().expect("inner capture sees inner root");
            assert_eq!(t.name, "inner_op");
        }
        // The outer capture is armed again; its own root is still capturable.
        {
            let _s = crate::span!("outer_op");
            reads(2);
        }
        let t = outer.finish().expect("outer capture sees outer root");
        assert_eq!(t.name, "outer_op");
        assert_eq!(t.total_io, 2);
    }

    #[test]
    fn consecutive_captures_do_not_leak_between_requests() {
        let cap = begin_trace();
        {
            let _s = crate::span!("first");
            reads(1);
        }
        assert_eq!(cap.finish().unwrap().name, "first");
        // A new capture must not see the previous request's tree.
        let cap = begin_trace();
        assert!(cap.finish().is_none());
    }

    #[cfg(not(feature = "obs"))]
    #[test]
    fn spans_are_inert_outside_a_capture_without_obs() {
        // No capture open: the guard is dead weight and nothing is stacked.
        {
            let _s = crate::span!("ghost");
            reads(5);
            add_items(3);
            set_block_capacity(7);
        }
        let cap = begin_trace();
        assert!(cap.finish().is_none(), "nothing was captured retroactively");
    }

    #[cfg(feature = "obs")]
    #[test]
    fn span_tree_attributes_self_and_child_reads() {
        use crate::{flight_clear, flight_top};
        let _g = crate::test_guard();
        flight_clear();
        {
            let _root = crate::span!("query");
            set_block_capacity(4);
            reads(2); // root self: search
            {
                let _lvl = crate::span!("level", 1u64);
                reads(1); // level self: search
            }
            {
                let _probe = crate::span!(output: "path_cache_probe");
                reads(3);
                add_items(9); // 2 full blocks at B=4 + tail → 1 wasteful
            }
        }
        let top = flight_top(1);
        assert_eq!(top.len(), 1);
        let t = &top[0];
        assert_eq!(t.name, "query");
        assert_eq!(t.total_io, 6);
        assert_eq!(t.search_ios, 3);
        assert_eq!(t.wasteful_ios, 1);
        assert_eq!(t.items, 9);
        assert_eq!(t.root.children.len(), 2);
        let probe = &t.root.children[1];
        assert_eq!(probe.name, "path_cache_probe");
        assert_eq!(probe.self_reads, 3);
        assert_eq!(probe.block_capacity, 4, "capacity inherited from root");
        assert_eq!(probe.wasteful(), 1);
        flight_clear();
    }

    #[cfg(feature = "obs")]
    #[test]
    fn root_finalization_updates_metrics() {
        use crate::snapshot;
        let _g = crate::test_guard();
        let before = snapshot();
        {
            let _root = crate::span!(output: "solo");
            reads(2);
            add_items(1);
        }
        let after = snapshot();
        assert_eq!(after.counter("pc_ops_total") - before.counter("pc_ops_total"), 1);
        // B defaults to 1: 2 reads, 1 item → 1 wasteful.
        assert_eq!(
            after.counter("pc_op_wasteful_io_total") - before.counter("pc_op_wasteful_io_total"),
            1
        );
        assert_eq!(
            after.counter("pc_op_output_items_total")
                - before.counter("pc_op_output_items_total"),
            1
        );
        assert!(after.counter("pc_io_reads_total") >= before.counter("pc_io_reads_total") + 2);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn io_outside_any_span_only_hits_global_counters() {
        use crate::snapshot;
        let _g = crate::test_guard();
        let before = snapshot();
        record_io(IoEvent::Write);
        let after = snapshot();
        assert_eq!(
            after.counter("pc_io_writes_total") - before.counter("pc_io_writes_total"),
            1
        );
        assert_eq!(after.counter("pc_ops_total"), before.counter("pc_ops_total"));
    }

    #[cfg(feature = "obs")]
    #[test]
    fn captured_roots_bypass_the_flight_recorder_but_not_the_registry() {
        use crate::{flight_clear, flight_top, snapshot};
        let _g = crate::test_guard();
        flight_clear();
        let before = snapshot();
        let cap = begin_trace();
        {
            let _root = crate::span!("served_request");
            reads(4);
        }
        let t = cap.finish().unwrap();
        assert_eq!(t.total_io, 4);
        let after = snapshot();
        // Aggregates still advance (identical counters whether or not the
        // request was sampled — the e2e acceptance criterion).
        assert_eq!(after.counter("pc_ops_total") - before.counter("pc_ops_total"), 1);
        // But the trace went to the caller, not the global recorder.
        assert!(flight_top(8).iter().all(|q| q.name != "served_request"));
        flight_clear();
    }
}
