//! The slow-query log: a concurrent top-K ring over finished request
//! traces.
//!
//! Always compiled (the serve layer feeds it from sampled
//! [`crate::begin_trace`] captures, which work in every build). Each
//! retained entry keeps the *full* span tree plus its request identity, so
//! "what burned the I/O budget last night" is answerable from a live
//! server without a debugger.
//!
//! Two independent rankings, per the paper's cost model: wall-clock
//! latency answers "what was slow", wasteful I/O ([`QueryTrace::wasteful_ios`],
//! §3's underfull-transfer count) answers "what was slow *for the
//! structural reason the paper is about*" — a Figure-3-style naive-PST
//! corner query tops the waste ranking long before it tops the latency one
//! on a warm cache. Entries are `Arc`-shared between the rings, so a query
//! ranked by both costs one allocation.
//!
//! Concurrency: an atomic floor per ring rejects the common case (an
//! unremarkable query on a busy server) without taking the lock; only
//! candidates that might displace a retained entry pay for the mutex.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::QueryTrace;

/// One retained slow query: request identity plus its full trace.
#[derive(Debug, Clone)]
pub struct SlowQuery {
    /// Wire request id (caller-chosen, echoed in the response).
    pub request_id: u64,
    /// Op kind (`"two_sided"`, `"stab"`, `"update_batch"`, ...).
    pub op: &'static str,
    /// Name the target was registered under — the tenant namespace.
    pub target: String,
    /// The finished span tree with §3 accounting.
    pub trace: QueryTrace,
}

struct Ring {
    /// Retained entries, sorted descending by this ring's key.
    entries: Mutex<Vec<Arc<SlowQuery>>>,
    /// Key of the weakest retained entry once the ring is full, else 0 —
    /// a lock-free reject for clearly unremarkable candidates.
    floor: AtomicU64,
}

impl Ring {
    fn new() -> Ring {
        Ring { entries: Mutex::new(Vec::new()), floor: AtomicU64::new(0) }
    }

    fn lock(&self) -> MutexGuard<'_, Vec<Arc<SlowQuery>>> {
        self.entries.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn offer(&self, k: usize, key: u64, q: &Arc<SlowQuery>, key_of: fn(&SlowQuery) -> u64) {
        if k == 0 || key < self.floor.load(Relaxed) {
            return;
        }
        let mut g = self.lock();
        let at = g.partition_point(|e| key_of(e) >= key);
        if at >= k {
            return; // raced below the floor
        }
        g.insert(at, Arc::clone(q));
        g.truncate(k);
        let floor = if g.len() == k { key_of(g.last().unwrap()) } else { 0 };
        self.floor.store(floor, Relaxed);
    }

    fn top(&self, k: usize) -> Vec<Arc<SlowQuery>> {
        let g = self.lock();
        g.iter().take(k).cloned().collect()
    }

    fn clear(&self) {
        let mut g = self.lock();
        g.clear();
        self.floor.store(0, Relaxed);
    }
}

/// A bounded top-K log of the worst queries by latency and by wasteful I/O.
pub struct SlowLog {
    k: usize,
    by_latency: Ring,
    by_waste: Ring,
    offered: AtomicU64,
}

fn latency_key(q: &SlowQuery) -> u64 {
    q.trace.latency_ns
}

fn waste_key(q: &SlowQuery) -> u64 {
    q.trace.wasteful_ios
}

impl SlowLog {
    /// A log retaining at most `k` entries per ranking.
    pub fn new(k: usize) -> SlowLog {
        SlowLog { k, by_latency: Ring::new(), by_waste: Ring::new(), offered: AtomicU64::new(0) }
    }

    /// Per-ranking retention bound.
    pub fn capacity(&self) -> usize {
        self.k
    }

    /// Total traces ever offered (retained or not) — the denominator for
    /// "how much did sampling actually see".
    pub fn offered(&self) -> u64 {
        self.offered.load(Relaxed)
    }

    /// Offers one finished trace; it is retained in each ranking it is
    /// strong enough for.
    pub fn offer(&self, q: SlowQuery) {
        self.offered.fetch_add(1, Relaxed);
        let q = Arc::new(q);
        self.by_latency.offer(self.k, latency_key(&q), &q, latency_key);
        // Waste ranking only admits queries that wasted anything at all: a
        // zero-waste query carries no §3 signal, however slow it was.
        if waste_key(&q) > 0 {
            self.by_waste.offer(self.k, waste_key(&q), &q, waste_key);
        }
    }

    /// Worst `k` entries by wall-clock latency, descending.
    pub fn top_by_latency(&self, k: usize) -> Vec<Arc<SlowQuery>> {
        self.by_latency.top(k)
    }

    /// Worst `k` entries by wasteful I/O, descending.
    pub fn top_by_waste(&self, k: usize) -> Vec<Arc<SlowQuery>> {
        self.by_waste.top(k)
    }

    /// Empties both rankings (the drain half of the ADMIN op; `offered`
    /// keeps counting).
    pub fn clear(&self) {
        self.by_latency.clear();
        self.by_waste.clear();
    }
}

impl std::fmt::Debug for SlowLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlowLog")
            .field("k", &self.k)
            .field("offered", &self.offered())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IoDelta, SpanKind, SpanNode};

    fn trace(latency_ns: u64, wasteful: u64) -> QueryTrace {
        let root = SpanNode {
            name: "q",
            arg: 0,
            kind: SpanKind::Output,
            io: IoDelta { reads: wasteful, ..IoDelta::default() },
            self_reads: wasteful,
            items: 0,
            block_capacity: 1,
            children: Vec::new(),
        };
        QueryTrace {
            name: "q",
            latency_ns,
            total_io: wasteful,
            search_ios: 0,
            wasteful_ios: wasteful,
            items: 0,
            root,
        }
    }

    fn q(id: u64, latency_ns: u64, wasteful: u64) -> SlowQuery {
        SlowQuery { request_id: id, op: "two_sided", target: "t".into(), trace: trace(latency_ns, wasteful) }
    }

    #[test]
    fn retains_top_k_by_each_key_independently() {
        let log = SlowLog::new(2);
        log.offer(q(1, 100, 0)); // slow, no waste
        log.offer(q(2, 10, 9)); // fast, wasteful
        log.offer(q(3, 50, 3));
        log.offer(q(4, 5, 1));
        assert_eq!(log.offered(), 4);
        let lat: Vec<u64> = log.top_by_latency(8).iter().map(|e| e.request_id).collect();
        assert_eq!(lat, [1, 3]);
        let waste: Vec<u64> = log.top_by_waste(8).iter().map(|e| e.request_id).collect();
        assert_eq!(waste, [2, 3], "zero-waste entries never enter the waste ranking");
    }

    #[test]
    fn displacement_updates_the_floor() {
        let log = SlowLog::new(2);
        log.offer(q(1, 10, 0));
        log.offer(q(2, 20, 0));
        log.offer(q(3, 5, 0)); // below the floor once full → rejected
        let lat: Vec<u64> = log.top_by_latency(8).iter().map(|e| e.request_id).collect();
        assert_eq!(lat, [2, 1]);
        log.offer(q(4, 30, 0)); // displaces 1
        let lat: Vec<u64> = log.top_by_latency(8).iter().map(|e| e.request_id).collect();
        assert_eq!(lat, [4, 2]);
    }

    #[test]
    fn clear_empties_rankings_but_keeps_the_offer_count() {
        let log = SlowLog::new(4);
        log.offer(q(1, 10, 2));
        log.clear();
        assert!(log.top_by_latency(8).is_empty());
        assert!(log.top_by_waste(8).is_empty());
        assert_eq!(log.offered(), 1);
        // Reusable after a drain.
        log.offer(q(2, 7, 1));
        assert_eq!(log.top_by_latency(8).len(), 1);
    }

    #[test]
    fn k_zero_retains_nothing() {
        let log = SlowLog::new(0);
        log.offer(q(1, 10, 10));
        assert!(log.top_by_latency(8).is_empty());
        assert!(log.top_by_waste(8).is_empty());
    }

    #[test]
    fn large_k_retains_every_offer() {
        // With k ≥ the request count the log is a complete record of the
        // sampled set — how the determinism e2e reads it back.
        let log = SlowLog::new(64);
        for i in 0..20 {
            log.offer(q(i, 1000 - i, 0));
        }
        assert_eq!(log.top_by_latency(64).len(), 20);
    }

    #[test]
    fn concurrent_offers_keep_the_global_top() {
        let log = std::sync::Arc::new(SlowLog::new(8));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let log = std::sync::Arc::clone(&log);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        let id = t * 1000 + i;
                        log.offer(q(id, id, (id % 7) + 1));
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        assert_eq!(log.offered(), 2000);
        let lat: Vec<u64> = log.top_by_latency(8).iter().map(|e| e.trace.latency_ns).collect();
        // The 8 largest ids (3492..=3499) have the 8 largest latencies.
        assert_eq!(lat, (3492..=3499).rev().collect::<Vec<u64>>());
        let waste = log.top_by_waste(8);
        assert!(waste.iter().all(|e| e.trace.wasteful_ios == 7));
    }
}
