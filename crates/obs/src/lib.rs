//! Per-query observability for the path-caching workspace.
//!
//! The paper's entire cost argument is about one observable quantity: the
//! number of *wasteful I/Os* a query performs — transfers that return fewer
//! than `B` useful output items (§3 of Ramaswamy & Subramanian). The page
//! store can only report flat cumulative [`IoStats`-style counters]; this
//! crate attributes transfers to individual queries, tree levels, and
//! path-cache probes so that claim becomes measurable.
//!
//! Three layers, all std-only (no dependencies):
//!
//! 1. **Tracing** — a thread-local span stack. Query code brackets regions
//!    with [`span!`] guards; the page store reports every transfer through
//!    [`record_io`]; on drop each span knows exactly which I/Os happened
//!    inside it ([`IoDelta`]). Spans carry a [`SpanKind`]: `Nav` spans are
//!    navigation (their reads are *search* I/Os), `Output` spans report how
//!    many result items they produced via [`add_items`], and any read beyond
//!    the full blocks those items account for is classified *wasteful*
//!    ([`wasteful_transfers`]).
//! 2. **Metrics** — a global registry of relaxed-atomic [`Counter`]s and
//!    power-of-two-bucket [`Histogram`]s (query latency, per-query total and
//!    wasteful I/O), with a Prometheus-style [`render_text`] exposition and a
//!    structured [`snapshot`] API.
//! 3. **Flight recorder** — a bounded per-thread ring of the K worst queries
//!    by I/O count, each retaining its full span tree ([`flight_top`]), for
//!    "why was this query expensive" dumps.
//!
//! The tracing layer is **always compiled** with a request-scoped
//! activation model: without the `obs` feature, spans only do work while
//! the thread is inside a [`begin_trace`] capture window — the serve layer
//! opens one for requests picked by a [`sample::Sampler`], so release
//! binaries trace 1-in-N requests and feed a [`slowlog::SlowLog`] with no
//! recompile. The metrics registry and the flight recorder remain
//! feature-gated (check at runtime with [`enabled`]); with `obs` off their
//! API compiles to inert no-ops, and the unarmed span fast path is pinned
//! ≤ 1% by the `obs_overhead` bench gate in `scripts/verify.sh` (and
//! allocation-free by the `zero_alloc` test). Instrumentation is purely
//! observational: it never changes which pages a structure touches, so
//! strict-mode transfer counts are bit-identical with the feature (or the
//! sampler) on or off.

#![forbid(unsafe_code)]

use std::fmt;

/// True when this build carries live instrumentation (`--features obs`).
pub const fn enabled() -> bool {
    cfg!(feature = "obs")
}

/// One observable page-store event, reported via [`record_io`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoEvent {
    /// A backend page transfer into memory (a *read* I/O).
    Read,
    /// A backend page transfer out of memory (a *write* I/O).
    Write,
    /// A buffer-pool hit that absorbed a would-be read.
    CacheHit,
    /// A page allocation.
    Alloc,
    /// A page free.
    Free,
    /// A buffer-pool eviction.
    PoolEvict,
}

impl IoEvent {
    /// Number of event kinds (array dimension for per-kind counters).
    pub const COUNT: usize = 6;

    /// Dense index of this event kind.
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            IoEvent::Read => 0,
            IoEvent::Write => 1,
            IoEvent::CacheHit => 2,
            IoEvent::Alloc => 3,
            IoEvent::Free => 4,
            IoEvent::PoolEvict => 5,
        }
    }

    /// Registry counter name for this event kind.
    pub const fn counter_name(self) -> &'static str {
        match self {
            IoEvent::Read => "pc_io_reads_total",
            IoEvent::Write => "pc_io_writes_total",
            IoEvent::CacheHit => "pc_io_cache_hits_total",
            IoEvent::Alloc => "pc_io_allocs_total",
            IoEvent::Free => "pc_io_frees_total",
            IoEvent::PoolEvict => "pc_io_pool_evictions_total",
        }
    }

    /// All event kinds in [`IoEvent::index`] order.
    pub const ALL: [IoEvent; IoEvent::COUNT] = [
        IoEvent::Read,
        IoEvent::Write,
        IoEvent::CacheHit,
        IoEvent::Alloc,
        IoEvent::Free,
        IoEvent::PoolEvict,
    ];
}

/// The I/O events observed inside one span (the per-span `IoStats` delta).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoDelta {
    /// Backend page reads.
    pub reads: u64,
    /// Backend page writes.
    pub writes: u64,
    /// Buffer-pool hits.
    pub cache_hits: u64,
    /// Page allocations.
    pub allocs: u64,
    /// Page frees.
    pub frees: u64,
    /// Buffer-pool evictions.
    pub pool_evictions: u64,
}

impl IoDelta {
    /// Builds a delta from two cumulative per-kind count arrays.
    #[inline]
    pub fn from_counts(now: &[u64; IoEvent::COUNT], start: &[u64; IoEvent::COUNT]) -> IoDelta {
        IoDelta {
            reads: now[0] - start[0],
            writes: now[1] - start[1],
            cache_hits: now[2] - start[2],
            allocs: now[3] - start[3],
            frees: now[4] - start[4],
            pool_evictions: now[5] - start[5],
        }
    }

    /// Total transfers (reads + writes) — the paper's cost unit.
    #[inline]
    pub fn total_io(&self) -> u64 {
        self.reads + self.writes
    }
}

impl fmt::Display for IoDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "r={} w={} hit={} alloc={} free={} evict={}",
            self.reads, self.writes, self.cache_hits, self.allocs, self.frees, self.pool_evictions
        )
    }
}

/// How a span's reads are classified in the paper's I/O taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Navigation: this span's own reads are *search* I/Os (paid to find
    /// output, never wasteful — e.g. a root-to-leaf descent).
    Nav,
    /// Output production: this span reports result items via [`add_items`];
    /// its own reads beyond `ceil`-free full blocks (`items / B`) are
    /// *wasteful* I/Os.
    Output,
}

/// Number of transfers that were wasteful: `reads` minus the full output
/// blocks accounted for by `items` results at `block_capacity` items per
/// block. This is the paper's §3 classification (a transfer is "useful" only
/// if it returns a full block of output), shared with
/// `IoStats::wasteful` in `pc-pagestore`.
///
/// `block_capacity == 0` is treated as 1 so the helper is total.
#[inline]
pub fn wasteful_transfers(reads: u64, items: u64, block_capacity: u64) -> u64 {
    reads.saturating_sub(items / block_capacity.max(1))
}

/// One finished span, with its subtree.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// Static span name (e.g. `"level"`, `"path_cache_probe"`).
    pub name: &'static str,
    /// Numeric argument from [`span!`] (e.g. the tree depth), 0 if unused.
    pub arg: u64,
    /// Navigation vs output classification.
    pub kind: SpanKind,
    /// I/O events observed in this span *including* child spans.
    pub io: IoDelta,
    /// Reads attributed to this span itself (subtree reads minus reads that
    /// happened inside child spans).
    pub self_reads: u64,
    /// Output items reported via [`add_items`] while this span was innermost.
    pub items: u64,
    /// Effective output block capacity `B` (own setting, else inherited from
    /// the nearest enclosing span that called [`set_block_capacity`], else 1).
    pub block_capacity: u64,
    /// Child spans in open order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Wasteful transfers charged to this node alone (zero for `Nav` nodes).
    pub fn wasteful(&self) -> u64 {
        match self.kind {
            SpanKind::Output => wasteful_transfers(self.self_reads, self.items, self.block_capacity),
            SpanKind::Nav => 0,
        }
    }

    /// Subtree total of wasteful transfers.
    pub fn wasteful_ios(&self) -> u64 {
        self.wasteful() + self.children.iter().map(SpanNode::wasteful_ios).sum::<u64>()
    }

    /// Subtree total of search (navigation) reads.
    pub fn search_ios(&self) -> u64 {
        let own = match self.kind {
            SpanKind::Nav => self.self_reads,
            SpanKind::Output => 0,
        };
        own + self.children.iter().map(SpanNode::search_ios).sum::<u64>()
    }

    /// Subtree total of reported output items.
    pub fn output_items(&self) -> u64 {
        self.items + self.children.iter().map(SpanNode::output_items).sum::<u64>()
    }

    fn render_into(&self, depth: usize, out: &mut String) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(self.name);
        if self.arg != 0 {
            out.push_str(&format!("({})", self.arg));
        }
        let kind = match self.kind {
            SpanKind::Nav => "nav",
            SpanKind::Output => "out",
        };
        out.push_str(&format!(" [{kind}] io[{}] self_reads={}", self.io, self.self_reads));
        if self.kind == SpanKind::Output {
            out.push_str(&format!(
                " items={} B={} wasteful={}",
                self.items,
                self.block_capacity,
                self.wasteful()
            ));
        }
        out.push('\n');
        for c in &self.children {
            c.render_into(depth + 1, out);
        }
    }

    /// Indented multi-line rendering of the span tree.
    pub fn render(&self) -> String {
        let mut s = String::new();
        self.render_into(0, &mut s);
        s
    }
}

/// A finished root span retained by the flight recorder.
#[derive(Debug, Clone)]
pub struct QueryTrace {
    /// Root span name.
    pub name: &'static str,
    /// Wall-clock duration of the root span, nanoseconds.
    pub latency_ns: u64,
    /// Total transfers (reads + writes) in the whole query.
    pub total_io: u64,
    /// Search (navigation) reads in the whole query.
    pub search_ios: u64,
    /// Wasteful transfers in the whole query.
    pub wasteful_ios: u64,
    /// Output items reported by the whole query.
    pub items: u64,
    /// The full span tree.
    pub root: SpanNode,
}

fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

impl QueryTrace {
    /// Human-readable "why was this query expensive" dump: a summary line
    /// followed by the indented span tree.
    pub fn render(&self) -> String {
        let mut s = format!(
            "{}: io={} (search={}, wasteful={}) items={} latency={}\n",
            self.name,
            self.total_io,
            self.search_ios,
            self.wasteful_ios,
            self.items,
            fmt_ns(self.latency_ns)
        );
        s.push_str(&self.root.render());
        s
    }
}

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone, Default)]
pub struct HistogramSnapshot {
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of recorded values (wrapping).
    pub sum: u64,
    /// Non-empty buckets as `(inclusive upper bound, count)`, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Approximate quantile: the inclusive upper bound of the first bucket
    /// whose cumulative count reaches `ceil(q · count)`. With power-of-two
    /// buckets the answer is within 2× of the true quantile, which is all a
    /// latency report needs. `q` is clamped to `[0, 1]`; returns 0 when the
    /// histogram is empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for &(le, c) in &self.buckets {
            cumulative += c;
            if cumulative >= rank {
                return le;
            }
        }
        self.buckets.last().map(|&(le, _)| le).unwrap_or(0)
    }

    /// Mean of recorded values, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Point-in-time copy of the whole metrics registry, from [`snapshot`].
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, histogram)` for every histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl Snapshot {
    /// Value of the named counter (0 when absent — e.g. `obs` off).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v).unwrap_or(0)
    }

    /// The named histogram, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Buffer-pool hit ratio `hits / (hits + reads)`, 0.0 when no traffic.
    pub fn pool_hit_ratio(&self) -> f64 {
        let hits = self.counter("pc_io_cache_hits_total");
        let reads = self.counter("pc_io_reads_total");
        if hits + reads == 0 {
            0.0
        } else {
            hits as f64 / (hits + reads) as f64
        }
    }
}

/// Opens a span guard; the span closes (and records its I/O delta) when the
/// guard drops. Bind it to a named `_guard`-style variable — `let _ = ...`
/// would drop it immediately.
///
/// * `span!("name")` / `span!("name", arg)` — a [`SpanKind::Nav`] span.
/// * `span!(output: "name")` / `span!(output: "name", arg)` — a
///   [`SpanKind::Output`] span; report its result count with [`add_items`].
#[macro_export]
macro_rules! span {
    (output: $name:expr, $arg:expr) => {
        $crate::Span::enter($name, $crate::SpanKind::Output, $arg as u64)
    };
    (output: $name:expr) => {
        $crate::Span::enter($name, $crate::SpanKind::Output, 0)
    };
    ($name:expr, $arg:expr) => {
        $crate::Span::enter($name, $crate::SpanKind::Nav, $arg as u64)
    };
    ($name:expr) => {
        $crate::Span::enter($name, $crate::SpanKind::Nav, 0)
    };
}

/// Registry names for the pagestore fault-tolerance counters, collected
/// here so dashboards, tests, and the emitting code can never drift apart.
/// All are monotonic totals; see DESIGN.md §9 "Fault model & recovery".
pub mod fault_metrics {
    /// Extra backend attempts issued by the store's bounded-retry loop.
    pub const RETRIES: &str = "pc_store_retries_total";
    /// Pages moved into the store's quarantine set (retry budget exhausted).
    pub const QUARANTINED: &str = "pc_store_quarantined_total";
    /// Mirror reads served by a non-primary replica.
    pub const FAILOVERS: &str = "pc_mirror_failovers_total";
    /// Replica frames rewritten from a good copy (read-repair or scrub).
    pub const REPAIRS: &str = "pc_mirror_repairs_total";
    /// Faults injected by `FaultBackend` (all kinds, all ops).
    pub const INJECTED: &str = "pc_fault_injected_total";
}

/// Registry names for the pagestore write-ahead-log / durability metrics,
/// collected here (like [`fault_metrics`]) so the emitting code in
/// `pc-pagestore`, the serve layer's exposition, and the crash tests never
/// drift apart. All are monotonic totals except the histogram; see
/// DESIGN.md §10 "Durability & recovery".
pub mod wal_metrics {
    /// WAL records appended (all kinds, commits and checkpoints included).
    pub const APPENDS: &str = "pc_wal_appends_total";
    /// Commit records written — successful group commits.
    pub const COMMITS: &str = "pc_wal_commits_total";
    /// `fsync`s issued against the log medium (commits + checkpoints).
    pub const FSYNCS: &str = "pc_wal_fsyncs_total";
    /// Checkpoints installed (atomic log swaps).
    pub const CHECKPOINTS: &str = "pc_wal_checkpoints_total";
    /// Records replayed by recovery on open.
    pub const REPLAYED: &str = "pc_wal_replayed_records_total";
    /// Torn log or data tails truncated during recovery.
    pub const TORN_TAILS: &str = "pc_wal_torn_tails_total";
    /// Histogram of records made durable per group commit.
    pub const GROUP_COMMIT_SIZE: &str = "pc_wal_group_commit_records";
}

/// Registry/exposition names for the `pc-serve` service-layer metrics,
/// collected here (like [`fault_metrics`]) so the server's own exposition,
/// the load generator, dashboards, and tests never drift apart. All are
/// monotonic totals unless noted; see DESIGN.md "Service layer".
pub mod serve_metrics {
    /// Connections accepted by the listener.
    pub const CONNS_ACCEPTED: &str = "pc_serve_conns_accepted_total";
    /// Connections closed after the idle/read timeout expired.
    pub const CONNS_IDLE_CLOSED: &str = "pc_serve_conns_idle_closed_total";
    /// Well-formed requests received (admin + query + update).
    pub const REQUESTS: &str = "pc_serve_requests_total";
    /// Requests admitted into a work queue.
    pub const ADMITTED: &str = "pc_serve_admitted_total";
    /// Requests shed with `Overloaded` because a bounded queue was full.
    pub const OVERLOADED: &str = "pc_serve_overloaded_total";
    /// Requests rejected with `ShuttingDown` during drain.
    pub const SHED_SHUTDOWN: &str = "pc_serve_shed_shutdown_total";
    /// Requests answered with `DeadlineExceeded`.
    pub const DEADLINE_EXCEEDED: &str = "pc_serve_deadline_exceeded_total";
    /// Malformed or unroutable requests answered with `BadRequest`.
    pub const BAD_REQUESTS: &str = "pc_serve_bad_requests_total";
    /// Requests that failed in the storage layer (typed `Storage` errors).
    pub const STORAGE_ERRORS: &str = "pc_serve_storage_errors_total";
    /// Queries answered successfully.
    pub const QUERIES_OK: &str = "pc_serve_queries_ok_total";
    /// Updates acknowledged successfully.
    pub const UPDATES_OK: &str = "pc_serve_updates_ok_total";
    /// Update batches applied by the coalescing stage.
    pub const BATCHES: &str = "pc_serve_update_batches_total";
    /// Updates carried inside those batches (mean batch size =
    /// `BATCHED_UPDATES / BATCHES`).
    pub const BATCHED_UPDATES: &str = "pc_serve_batched_updates_total";
    /// Group commits driven by the batcher against a durable store (one
    /// WAL fsync each; an Ack is only sent after its group's commit).
    pub const GROUP_COMMITS: &str = "pc_serve_group_commits_total";
    /// Batches whose group commit failed — every update in the batch was
    /// answered with a storage error instead of an Ack.
    pub const COMMIT_FAILURES: &str = "pc_serve_commit_failures_total";
    /// Queue-to-response latency histogram for queries, nanoseconds.
    pub const QUERY_LATENCY: &str = "pc_serve_query_latency_ns";
    /// Queue-to-ack latency histogram for updates, nanoseconds.
    pub const UPDATE_LATENCY: &str = "pc_serve_update_latency_ns";
    /// Admission-to-dequeue wait histogram (queries and updates),
    /// nanoseconds — the time a job sat in a bounded queue.
    pub const QUEUE_WAIT: &str = "pc_serve_queue_wait_ns";
    /// Histogram of updates coalesced per batch (the batcher's §5 win; the
    /// `BATCHED_UPDATES / BATCHES` mean hides the distribution this shows).
    pub const BATCH_COALESCE: &str = "pc_serve_batch_coalesce";
    /// Request traces retained by the sampling plane (captures that
    /// finished with a root span and were offered to the slow-query log).
    pub const TRACES_RETAINED: &str = "pc_serve_traces_retained_total";
    /// Gauge: jobs currently waiting in the query queue.
    pub const QUERY_QUEUE_DEPTH: &str = "pc_serve_query_queue_depth";
    /// Gauge: jobs currently waiting in the update queue.
    pub const UPDATE_QUEUE_DEPTH: &str = "pc_serve_update_queue_depth";
    /// Gauge: the live trace-sampling rate (sample 1 in N; 0 = off).
    pub const TRACE_SAMPLE_EVERY: &str = "pc_serve_trace_sample_every";
    /// Traces ever offered to the slow-query log (retained or not).
    pub const SLOWLOG_OFFERED: &str = "pc_serve_slowlog_offered_total";
}

/// Exposition names for the per-target (per-tenant-namespace) metric
/// families the server renders with a `{target="name"}` label. Collected
/// here (like [`serve_metrics`]) so the exposition, the structured ADMIN
/// `Stats` form, the load generator, and the tests never drift apart.
pub mod target_metrics {
    /// Well-formed requests routed at this target (admitted or shed).
    pub const REQUESTS: &str = "pc_target_requests_total";
    /// Queries this target answered successfully.
    pub const QUERIES_OK: &str = "pc_target_queries_ok_total";
    /// Updates this target acknowledged successfully.
    pub const UPDATES_OK: &str = "pc_target_updates_ok_total";
    /// Requests at this target answered with any error.
    pub const ERRORS: &str = "pc_target_errors_total";
    /// Per-target execution latency histogram, nanoseconds.
    pub const LATENCY: &str = "pc_target_latency_ns";
    /// Update batches applied against this target.
    pub const BATCHES: &str = "pc_target_update_batches_total";
    /// Updates carried inside those batches.
    pub const BATCHED_UPDATES: &str = "pc_target_batched_updates_total";
    /// Sampled request traces retained for this target.
    pub const TRACES: &str = "pc_target_traces_total";
    /// Total transfers observed inside this target's sampled traces.
    pub const TRACED_IO: &str = "pc_target_traced_io_total";
    /// §3 wasteful transfers observed inside this target's sampled traces.
    pub const TRACED_WASTEFUL: &str = "pc_target_traced_wasteful_io_total";
}

/// Exposition names for the per-shard metric families the `pc-serve`
/// router renders with a `{shard="i"}` label (one logical shard = one
/// replica group). Collected here (like [`target_metrics`]) so the
/// router's exposition, its ADMIN scrape, the cluster load generator, and
/// the tests never drift apart. All are monotonic totals unless noted;
/// see DESIGN.md "Shard fabric".
pub mod shard_metrics {
    /// Requests (queries + updates) routed at this shard.
    pub const REQUESTS: &str = "pc_shard_requests_total";
    /// Reads failed over to another replica after a connection error or
    /// deadline on the first choice.
    pub const FAILOVERS: &str = "pc_shard_failovers_total";
    /// Idempotent-query retry attempts made after backoff.
    pub const RETRIES: &str = "pc_shard_retries_total";
    /// Requests answered with a typed error (the shard's own
    /// `Overloaded`/`DeadlineExceeded`/... propagated through the router).
    pub const ERRORS: &str = "pc_shard_errors_total";
    /// Journal entries replayed into replicas catching up after a
    /// reconnect.
    pub const REPLAYED: &str = "pc_shard_replayed_updates_total";
    /// Replica reconnects completed by the background health loop.
    pub const RECONNECTS: &str = "pc_shard_reconnects_total";
    /// Gauge: replicas currently marked dead in this shard's group.
    pub const DEAD_REPLICAS: &str = "pc_shard_dead_replicas";
    /// Gauge: entries currently retained in the shard's acked-update
    /// journal (the suffix above the truncation base).
    pub const JOURNAL_LEN: &str = "pc_shard_journal_len";
    /// Journal entries dropped after every replica in the group caught up
    /// past them (the truncation that keeps a long-running fleet's journal
    /// bounded).
    pub const JOURNAL_TRUNCATED: &str = "pc_shard_journal_truncated";
    /// Per-shard request latency histogram (scatter leg, send to
    /// gathered response), nanoseconds.
    pub const LATENCY: &str = "pc_shard_latency_ns";
}

/// Exposition names for the store-level families the server renders from
/// the shared `PageStore` (its `IoStats` and always-on `WalStats`), plus
/// the commit-observer histogram. Distinct from the `pc_wal_*` /
/// `pc_io_*` names in [`wal_metrics`] and `IoEvent::counter_name`, which
/// are the process-global `obs`-feature registry: these are per-store and
/// always available.
pub mod store_metrics {
    /// WAL records appended (all kinds).
    pub const WAL_APPENDS: &str = "pc_store_wal_appends_total";
    /// Successful group commits.
    pub const WAL_COMMITS: &str = "pc_store_wal_commits_total";
    /// `fsync`s issued against the log medium.
    pub const WAL_FSYNCS: &str = "pc_store_wal_fsyncs_total";
    /// Checkpoints installed.
    pub const WAL_CHECKPOINTS: &str = "pc_store_wal_checkpoints_total";
    /// Records replayed by recovery on open.
    pub const WAL_REPLAYED: &str = "pc_store_wal_replayed_records_total";
    /// Gauge: current log length in bytes.
    pub const WAL_LOG_BYTES: &str = "pc_store_wal_log_bytes";
    /// Gauge: pages dirty since the last checkpoint.
    pub const WAL_DIRTY_PAGES: &str = "pc_store_wal_dirty_pages";
    /// Histogram of records made durable per group commit, fed live by the
    /// store's commit observer hook.
    pub const WAL_GROUP_COMMIT_RECORDS: &str = "pc_store_wal_group_commit_records";
    /// Gauge (scaled ×10⁶): buffer-pool hit ratio `hits / (hits + reads)`.
    pub const POOL_HIT_RATIO_PPM: &str = "pc_store_pool_hit_ratio_ppm";
}

/// Exposition names for the partial-persistence (versioning / snapshot
/// isolation) subsystem in `pc-pagestore`'s `version` module. Collected
/// here (like [`wal_metrics`]) so the emitting code, the serve layer's
/// exposition, and the snapshot test suites never drift apart. All are
/// monotonic totals unless noted; see DESIGN.md "Versioning & snapshot
/// isolation".
pub mod version_metrics {
    /// Epochs installed (one per applied update batch on a versioned store).
    pub const EPOCHS_INSTALLED: &str = "pc_version_epochs_installed_total";
    /// Gauge: epochs currently retained (pinned or within the retention
    /// window) and therefore addressable by `as_of`.
    pub const EPOCHS_RETAINED: &str = "pc_version_epochs_retained";
    /// Superseded copy-on-write pages reclaimed by epoch GC.
    pub const PAGES_RECLAIMED: &str = "pc_version_reclaimed_pages_total";
    /// Gauge: snapshots currently pinning an epoch.
    pub const SNAPSHOTS_PINNED: &str = "pc_version_pinned_snapshots";
    /// Gauge: age of the oldest pinned epoch, in epochs behind current
    /// (0 when nothing is pinned or only the current epoch is).
    pub const OLDEST_PIN_AGE: &str = "pc_version_oldest_pin_age_epochs";
}

pub mod hist;
pub mod sample;
pub mod slowlog;
mod trace;

pub use trace::{add_items, begin_trace, record_io, set_block_capacity, Span, TraceCapture};

#[cfg(feature = "obs")]
mod metrics;
#[cfg(feature = "obs")]
mod recorder;

#[cfg(feature = "obs")]
pub use metrics::{counter, histogram, render_text, snapshot, Counter, Histogram};
#[cfg(feature = "obs")]
pub use recorder::{flight_clear, flight_top};

#[cfg(not(feature = "obs"))]
mod noop;

#[cfg(not(feature = "obs"))]
pub use noop::{
    counter, flight_clear, flight_top, histogram, render_text, snapshot, Counter, Histogram,
};

/// Serializes tests that observe global registry / flight-recorder state.
#[cfg(all(test, feature = "obs"))]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wasteful_transfers_matches_paper_taxonomy() {
        // A transfer is useful only when it returns a full block of output.
        assert_eq!(wasteful_transfers(0, 0, 170), 0);
        assert_eq!(wasteful_transfers(1, 0, 170), 1); // empty block: wasteful
        assert_eq!(wasteful_transfers(1, 169, 170), 1); // underfull block: wasteful
        assert_eq!(wasteful_transfers(1, 170, 170), 0); // full block: useful
        assert_eq!(wasteful_transfers(3, 2 * 170 + 5, 170), 1); // 2 full + 1 tail
        assert_eq!(wasteful_transfers(3, 3 * 170, 170), 0);
        // More full blocks than reads (items over-reported): saturates at 0.
        assert_eq!(wasteful_transfers(1, 1000 * 170, 170), 0);
        // Degenerate capacity is treated as 1.
        assert_eq!(wasteful_transfers(5, 3, 0), 2);
    }

    #[test]
    fn enabled_reflects_feature() {
        assert_eq!(enabled(), cfg!(feature = "obs"));
    }

    #[test]
    fn io_delta_from_counts_and_display() {
        let start = [1, 2, 3, 4, 5, 6];
        let now = [11, 12, 13, 14, 15, 16];
        let d = IoDelta::from_counts(&now, &start);
        assert_eq!(
            d,
            IoDelta {
                reads: 10,
                writes: 10,
                cache_hits: 10,
                allocs: 10,
                frees: 10,
                pool_evictions: 10
            }
        );
        assert_eq!(d.total_io(), 20);
        assert_eq!(d.to_string(), "r=10 w=10 hit=10 alloc=10 free=10 evict=10");
    }

    #[test]
    fn span_node_taxonomy_sums() {
        let leaf_out = SpanNode {
            name: "list_scan",
            arg: 0,
            kind: SpanKind::Output,
            io: IoDelta { reads: 3, ..IoDelta::default() },
            self_reads: 3,
            items: 2 * 4, // two full blocks at B=4, one empty tail read
            block_capacity: 4,
            children: Vec::new(),
        };
        let root = SpanNode {
            name: "query",
            arg: 0,
            kind: SpanKind::Nav,
            io: IoDelta { reads: 5, ..IoDelta::default() },
            self_reads: 2,
            items: 0,
            block_capacity: 1,
            children: vec![leaf_out],
        };
        assert_eq!(root.search_ios(), 2);
        assert_eq!(root.wasteful_ios(), 1);
        assert_eq!(root.output_items(), 8);
        let text = root.render();
        assert!(text.contains("query [nav]"), "{text}");
        assert!(text.contains("list_scan [out]"), "{text}");
        assert!(text.contains("wasteful=1"), "{text}");
    }

    #[test]
    fn snapshot_lookups_and_hit_ratio() {
        let snap = Snapshot {
            counters: vec![
                ("pc_io_reads_total".into(), 25),
                ("pc_io_cache_hits_total".into(), 75),
            ],
            histograms: vec![(
                "h".into(),
                HistogramSnapshot { count: 2, sum: 3, buckets: vec![(1, 2)] },
            )],
        };
        assert_eq!(snap.counter("pc_io_reads_total"), 25);
        assert_eq!(snap.counter("missing"), 0);
        assert!(snap.histogram("h").is_some());
        assert!(snap.histogram("missing").is_none());
        assert!((snap.pool_hit_ratio() - 0.75).abs() < 1e-12);
        assert_eq!(Snapshot::default().pool_hit_ratio(), 0.0);
    }

    #[test]
    fn histogram_snapshot_quantiles() {
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0);
        assert_eq!(HistogramSnapshot::default().mean(), 0.0);
        // 10 observations: 8 in the ≤7 bucket, 2 in the ≤1023 bucket.
        let h = hist::Histogram::default();
        for _ in 0..8 {
            h.record(5);
        }
        h.record(600);
        h.record(900);
        let s = h.snapshot();
        assert_eq!(s.quantile(0.0), 7);
        assert_eq!(s.quantile(0.5), 7);
        assert_eq!(s.quantile(0.8), 7);
        assert_eq!(s.quantile(0.9), 1023);
        assert_eq!(s.quantile(0.99), 1023);
        assert_eq!(s.quantile(1.0), 1023);
        // Out-of-range q is clamped.
        assert_eq!(s.quantile(7.0), 1023);
        assert_eq!(s.quantile(-1.0), 7);
        assert!((s.mean() - 154.0).abs() < 1e-9);
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(1_500), "1.5us");
        assert_eq!(fmt_ns(2_500_000), "2.5ms");
        assert_eq!(fmt_ns(1_250_000_000), "1.25s");
    }
}
