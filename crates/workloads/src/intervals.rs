//! Interval-set generators.

use pc_rng::Rng;

use crate::{RawInterval, DOMAIN};

/// Length/position distribution of a generated interval set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IntervalDist {
    /// Uniform start, length uniform in `1..=max_len`.
    UniformLen {
        /// Maximum interval length.
        max_len: i64,
    },
    /// Mix of many short and a few very long intervals (long-tail), the
    /// shape typical of temporal validity intervals.
    LongTail,
    /// Deeply nested intervals around shared centers — adversarial for
    /// segment trees, maximizing per-node cover-list fragmentation.
    Nested {
        /// Number of independent nesting towers.
        towers: usize,
    },
    /// All intervals stab a common point — the maximum-output stabbing
    /// workload (t = n).
    CommonPoint,
}

/// Generates `n` intervals with ids `0..n`, deterministically from `seed`.
pub fn gen_intervals(n: usize, dist: IntervalDist, seed: u64) -> Vec<RawInterval> {
    let mut rng = Rng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    for id in 0..n {
        let (lo, hi) = match dist {
            IntervalDist::UniformLen { max_len } => {
                let lo = rng.gen_range(0..DOMAIN);
                let len = rng.gen_range(1..=max_len.max(1));
                (lo, (lo + len).min(DOMAIN))
            }
            IntervalDist::LongTail => {
                let lo = rng.gen_range(0..DOMAIN);
                // 1-in-16 intervals are up to domain-scale, the rest short.
                let len = if rng.gen_range(0i64..16) == 0 {
                    rng.gen_range(1..=DOMAIN / 2)
                } else {
                    rng.gen_range(1i64..=200)
                };
                (lo, (lo + len).min(DOMAIN))
            }
            IntervalDist::Nested { towers } => {
                let towers = towers.max(1) as i64;
                let tower = rng.gen_range(0..towers);
                let center = (tower * 2 + 1) * DOMAIN / (2 * towers);
                let half = rng.gen_range(1..=DOMAIN / (2 * towers));
                ((center - half).max(0), (center + half).min(DOMAIN))
            }
            IntervalDist::CommonPoint => {
                let center = DOMAIN / 2;
                let left = rng.gen_range(0..=center - 1);
                let right = rng.gen_range(center + 1..=DOMAIN);
                (left, right)
            }
        };
        out.push((lo, hi, id as u64));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intervals_are_well_formed() {
        for dist in [
            IntervalDist::UniformLen { max_len: 5000 },
            IntervalDist::LongTail,
            IntervalDist::Nested { towers: 4 },
            IntervalDist::CommonPoint,
        ] {
            let ivs = gen_intervals(500, dist, 2);
            assert_eq!(ivs.len(), 500);
            for &(lo, hi, _) in &ivs {
                assert!(lo <= hi, "{dist:?}: [{lo}, {hi}]");
                assert!(lo >= 0 && hi <= DOMAIN, "{dist:?}");
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(
            gen_intervals(50, IntervalDist::LongTail, 9),
            gen_intervals(50, IntervalDist::LongTail, 9)
        );
    }

    #[test]
    fn common_point_intervals_all_stab_center() {
        let ivs = gen_intervals(200, IntervalDist::CommonPoint, 4);
        assert!(ivs.iter().all(|&(lo, hi, _)| lo <= DOMAIN / 2 && hi >= DOMAIN / 2));
    }

    #[test]
    fn nested_towers_share_centers() {
        let ivs = gen_intervals(300, IntervalDist::Nested { towers: 2 }, 5);
        // Every interval must contain one of the two tower centers.
        let c1 = DOMAIN / 4;
        let c2 = 3 * DOMAIN / 4;
        assert!(ivs
            .iter()
            .all(|&(lo, hi, _)| (lo <= c1 && c1 <= hi) || (lo <= c2 && c2 <= hi)));
    }
}
