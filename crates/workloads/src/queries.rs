//! Query generators calibrated to a target output size.
//!
//! Every bound in the paper is output-sensitive, so the harness needs
//! queries whose result size `t` is controlled. Rather than relying on
//! distributional math (which breaks for clustered data), generators pick a
//! random *anchor data item* and derive the query from the data itself,
//! then the harness measures the exact `t` per query.

use pc_rng::Rng;

use crate::{RawInterval, RawPoint};

/// A 2-sided (dominance) query: report points with `x >= x0 && y >= y0`.
///
/// This is the paper's Figure 1 "2-sided" query in the orientation used by
/// its Section 3/4 algorithm (ancestors are cut by the query's vertical
/// *left* side; siblings are scanned top-down to the *bottom* boundary).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TwoSidedQ {
    /// Left boundary (inclusive).
    pub x0: i64,
    /// Bottom boundary (inclusive).
    pub y0: i64,
}

/// A 3-sided query: report points with `x1 <= x <= x2 && y >= y0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreeSidedQ {
    /// Left boundary (inclusive).
    pub x1: i64,
    /// Right boundary (inclusive).
    pub x2: i64,
    /// Bottom boundary (inclusive).
    pub y0: i64,
}

/// A stabbing query: report intervals containing `q`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stab {
    /// The stabbing point.
    pub q: i64,
}

/// A 1-d range query: report keys in `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Range1d {
    /// Lower bound (inclusive).
    pub lo: i64,
    /// Upper bound (inclusive).
    pub hi: i64,
}

/// Generates `count` 2-sided queries over `points` whose output sizes
/// cluster around `t_target` (exactly `t_target` in rank terms for the
/// *x*-side, with y chosen from an anchor point to stay data-dependent).
pub fn gen_two_sided(
    points: &[RawPoint],
    count: usize,
    t_target: usize,
    seed: u64,
) -> Vec<TwoSidedQ> {
    assert!(!points.is_empty());
    let mut rng = Rng::seed_from_u64(seed);
    // Sort copies of the coordinates once; each query takes the corner at a
    // rank position so roughly sqrt-fractions multiply out to t_target.
    let mut xs: Vec<i64> = points.iter().map(|p| p.0).collect();
    let mut ys: Vec<i64> = points.iter().map(|p| p.1).collect();
    xs.sort_unstable();
    ys.sort_unstable();
    let n = points.len();
    // For independent x/y, picking both boundaries at rank n - span with
    // span = sqrt(t * n) gives expected output (span/n)^2 * n = t.
    let frac = ((t_target.max(1) as f64 / n as f64).sqrt()).min(1.0);
    let span = ((n as f64 * frac) as usize).clamp(1, n);
    (0..count)
        .map(|_| {
            // Jitter the rank a little so queries differ.
            let jitter = span / 4 + 1;
            let xi = (n - span + rng.gen_range(0..jitter)).min(n - 1);
            let yi = (n - span + rng.gen_range(0..jitter)).min(n - 1);
            TwoSidedQ { x0: xs[xi], y0: ys[yi] }
        })
        .collect()
}

/// Generates `count` 3-sided queries over `points` with x-span covering
/// about `2 * t_target` points and y chosen to halve that.
pub fn gen_three_sided(
    points: &[RawPoint],
    count: usize,
    t_target: usize,
    seed: u64,
) -> Vec<ThreeSidedQ> {
    assert!(!points.is_empty());
    let mut rng = Rng::seed_from_u64(seed);
    let mut by_x: Vec<RawPoint> = points.to_vec();
    by_x.sort_unstable_by_key(|p| (p.0, p.1, p.2));
    let n = points.len();
    let span = (2 * t_target.max(1)).min(n);
    (0..count)
        .map(|_| {
            let start = rng.gen_range(0..=n - span);
            let slice = &by_x[start..start + span];
            let mut ys: Vec<i64> = slice.iter().map(|p| p.1).collect();
            ys.sort_unstable();
            // median y => about half the span qualifies
            let y0 = ys[ys.len() / 2];
            ThreeSidedQ { x1: slice[0].0, x2: slice[span - 1].0, y0 }
        })
        .collect()
}

/// Generates `count` stabbing queries biased toward covered parts of the
/// domain (each query stabs at a random interval's interior point).
pub fn gen_stabbing(intervals: &[RawInterval], count: usize, seed: u64) -> Vec<Stab> {
    assert!(!intervals.is_empty());
    let mut rng = Rng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let &(lo, hi, _) = &intervals[rng.gen_range(0..intervals.len())];
            Stab { q: rng.gen_range(lo..=hi) }
        })
        .collect()
}

/// Generates `count` 1-d range queries over `keys` covering about
/// `t_target` keys each (by rank).
pub fn gen_range_1d(keys: &[i64], count: usize, t_target: usize, seed: u64) -> Vec<Range1d> {
    assert!(!keys.is_empty());
    let mut rng = Rng::seed_from_u64(seed);
    let mut sorted = keys.to_vec();
    sorted.sort_unstable();
    let n = sorted.len();
    let span = t_target.clamp(1, n);
    (0..count)
        .map(|_| {
            let start = rng.gen_range(0..=n - span);
            Range1d { lo: sorted[start], hi: sorted[start + span - 1] }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen_intervals, gen_points, IntervalDist, PointDist};

    #[test]
    fn two_sided_targets_are_approximate() {
        let pts = gen_points(10_000, PointDist::Uniform, 1);
        let qs = gen_two_sided(&pts, 20, 500, 2);
        let mut total = 0usize;
        for q in &qs {
            total += pts.iter().filter(|p| p.0 >= q.x0 && p.1 >= q.y0).count();
        }
        let avg = total / qs.len();
        assert!(
            (100..=2500).contains(&avg),
            "average output {avg} too far from target 500"
        );
    }

    #[test]
    fn three_sided_targets_are_approximate() {
        let pts = gen_points(10_000, PointDist::Uniform, 1);
        let qs = gen_three_sided(&pts, 20, 400, 2);
        for q in &qs {
            assert!(q.x1 <= q.x2);
            let t = pts.iter().filter(|p| p.0 >= q.x1 && p.0 <= q.x2 && p.1 >= q.y0).count();
            assert!((100..=900).contains(&t), "output {t} too far from target 400");
        }
    }

    #[test]
    fn stabbing_queries_always_hit_something() {
        let ivs = gen_intervals(1000, IntervalDist::UniformLen { max_len: 10_000 }, 3);
        let qs = gen_stabbing(&ivs, 50, 4);
        for s in &qs {
            assert!(ivs.iter().any(|&(lo, hi, _)| lo <= s.q && s.q <= hi));
        }
    }

    #[test]
    fn range_1d_spans_exact_rank_width() {
        let keys: Vec<i64> = (0..1000).map(|k| k * 2).collect();
        let qs = gen_range_1d(&keys, 10, 50, 5);
        for q in &qs {
            let t = keys.iter().filter(|&&k| q.lo <= k && k <= q.hi).count();
            assert_eq!(t, 50);
        }
    }
}
