//! Point-set generators.

use pc_rng::Rng;

use crate::{RawPoint, DOMAIN};

/// Spatial distribution of a generated point set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PointDist {
    /// Independent uniform x and y over the domain.
    Uniform,
    /// `clusters` Gaussian-ish blobs of the given radius; models the
    /// correlated attributes common in real relations.
    Clustered {
        /// Number of cluster centers.
        clusters: usize,
        /// Approximate blob radius.
        radius: i64,
    },
    /// Points near the main diagonal (`y ≈ x`), within `width`. This is the
    /// distribution induced by the [KRV] interval reduction when intervals
    /// are short: `(lo, hi)` with `hi - lo` small.
    Diagonal {
        /// Maximum distance from the diagonal.
        width: i64,
    },
    /// Anti-correlated: `y ≈ DOMAIN - x` within `width`. Adversarial for
    /// dominance queries — output size varies wildly with the corner.
    AntiDiagonal {
        /// Maximum distance from the anti-diagonal.
        width: i64,
    },
}

/// Generates `n` points with ids `0..n`, deterministically from `seed`.
pub fn gen_points(n: usize, dist: PointDist, seed: u64) -> Vec<RawPoint> {
    let mut rng = Rng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    let centers: Vec<(i64, i64)> = match dist {
        PointDist::Clustered { clusters, .. } => (0..clusters.max(1))
            .map(|_| (rng.gen_range(0..=DOMAIN), rng.gen_range(0..=DOMAIN)))
            .collect(),
        _ => Vec::new(),
    };
    for id in 0..n {
        let (x, y) = match dist {
            PointDist::Uniform => (rng.gen_range(0..=DOMAIN), rng.gen_range(0..=DOMAIN)),
            PointDist::Clustered { radius, .. } => {
                let (cx, cy) = centers[rng.gen_range(0..centers.len())];
                // Sum of two uniforms approximates a triangular (bell-ish)
                // spread without needing a normal sampler.
                let dx = (rng.gen_range(-radius..=radius) + rng.gen_range(-radius..=radius)) / 2;
                let dy = (rng.gen_range(-radius..=radius) + rng.gen_range(-radius..=radius)) / 2;
                ((cx + dx).clamp(0, DOMAIN), (cy + dy).clamp(0, DOMAIN))
            }
            PointDist::Diagonal { width } => {
                let x = rng.gen_range(0..=DOMAIN);
                let y = (x + rng.gen_range(-width..=width)).clamp(0, DOMAIN);
                (x, y)
            }
            PointDist::AntiDiagonal { width } => {
                let x = rng.gen_range(0..=DOMAIN);
                let y = (DOMAIN - x + rng.gen_range(-width..=width)).clamp(0, DOMAIN);
                (x, y)
            }
        };
        out.push((x, y, id as u64));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let a = gen_points(100, PointDist::Uniform, 7);
        let b = gen_points(100, PointDist::Uniform, 7);
        let c = gen_points(100, PointDist::Uniform, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ids_are_sequential_and_coords_in_domain() {
        for dist in [
            PointDist::Uniform,
            PointDist::Clustered { clusters: 5, radius: 1000 },
            PointDist::Diagonal { width: 50 },
            PointDist::AntiDiagonal { width: 50 },
        ] {
            let pts = gen_points(500, dist, 1);
            assert_eq!(pts.len(), 500);
            for (i, &(x, y, id)) in pts.iter().enumerate() {
                assert_eq!(id, i as u64);
                assert!((0..=DOMAIN).contains(&x), "{dist:?}");
                assert!((0..=DOMAIN).contains(&y), "{dist:?}");
            }
        }
    }

    #[test]
    fn diagonal_points_hug_the_diagonal() {
        let pts = gen_points(1000, PointDist::Diagonal { width: 10 }, 3);
        assert!(pts.iter().all(|&(x, y, _)| (y - x).abs() <= 10 || y == 0 || y == DOMAIN));
    }

    #[test]
    fn antidiagonal_points_hug_the_antidiagonal() {
        let pts = gen_points(1000, PointDist::AntiDiagonal { width: 10 }, 3);
        assert!(pts
            .iter()
            .all(|&(x, y, _)| (x + y - DOMAIN).abs() <= 10 || y == 0 || y == DOMAIN));
    }

    #[test]
    fn clustered_points_concentrate() {
        // With 3 tight clusters, the bounding box of a random sample of
        // points should be far smaller than the domain in most dimensions.
        let pts = gen_points(2000, PointDist::Clustered { clusters: 3, radius: 500 }, 11);
        // Each point should be within 1000 of some cluster center; verify
        // indirectly: count distinct "rounded" cells — must be tiny.
        let mut cells: Vec<(i64, i64)> = pts.iter().map(|&(x, y, _)| (x / 2000, y / 2000)).collect();
        cells.sort_unstable();
        cells.dedup();
        assert!(cells.len() < 40, "clustered points spread over {} cells", cells.len());
    }
}
