//! Skewed (Zipfian) and hot-shard adversarial generators.
//!
//! Uniform workloads spread load evenly across a sharded keyspace, which
//! makes a shard fabric look better than it is: real key popularity is
//! heavy-tailed, and the interesting failure mode is one *hot shard*
//! shedding load (`Overloaded`) while the others idle. These generators
//! produce that traffic deterministically:
//!
//! * [`ZipfSampler`] draws ranks with `P(rank i) ∝ 1/(i+1)^θ` via a
//!   precomputed CDF and binary search — θ = 0 is uniform, θ ≈ 1 is the
//!   classic web/YCSB skew, larger θ concentrates harder;
//! * [`gen_zipf_keys`] maps ranks onto a concrete key set, hottest rank =
//!   smallest key, so skewed traffic concentrates at the low end of the
//!   keyspace (one end shard of a range-partitioned fabric);
//! * [`gen_three_sided_hot`] aims a controlled fraction of bounded-x-range
//!   queries into one narrow hot x-window, leaving the rest uniform — a
//!   3-sided query's x-range maps to a contiguous run of shards, so the
//!   hot window pins load onto exactly the shard(s) owning it.

use pc_rng::Rng;

use crate::{RawPoint, ThreeSidedQ};

/// Rank sampler for the (finite) zeta distribution:
/// `P(rank i) ∝ 1/(i+1)^theta` over ranks `0..n`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Precomputes the CDF for `n` ranks with skew `theta >= 0`
    /// (`theta = 0` degenerates to uniform).
    pub fn new(n: usize, theta: f64) -> ZipfSampler {
        assert!(n > 0, "ZipfSampler needs at least one rank");
        assert!(theta >= 0.0 && theta.is_finite(), "theta must be finite and >= 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        for c in &mut cdf {
            *c /= acc;
        }
        ZipfSampler { cdf }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draws one rank in `0..n()`; rank 0 is the hottest.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u = rng.gen_f64();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Draws `count` keys from `keys` with Zipfian popularity: the smallest
/// key is the hottest, so a range-partitioned fabric sees its lowest
/// shard run hot. Deterministic given `seed`.
pub fn gen_zipf_keys(keys: &[i64], count: usize, theta: f64, seed: u64) -> Vec<i64> {
    assert!(!keys.is_empty());
    let mut sorted = keys.to_vec();
    sorted.sort_unstable();
    let sampler = ZipfSampler::new(sorted.len(), theta);
    let mut rng = Rng::seed_from_u64(seed);
    (0..count).map(|_| sorted[sampler.sample(&mut rng)]).collect()
}

/// Generates `count` 3-sided queries of which about `hot_fraction` land
/// entirely inside the hot x-window `hot = (lo, hi)` (inclusive); the rest
/// are uniform over the whole point set, anchor-based like
/// [`crate::gen_three_sided`] with output size near `t_target`. If no data
/// point falls in the hot window, every query is cold.
pub fn gen_three_sided_hot(
    points: &[RawPoint],
    count: usize,
    t_target: usize,
    hot: (i64, i64),
    hot_fraction: f64,
    seed: u64,
) -> Vec<ThreeSidedQ> {
    assert!(!points.is_empty());
    assert!(hot.0 <= hot.1, "hot window must be a valid range");
    assert!((0.0..=1.0).contains(&hot_fraction));
    let mut rng = Rng::seed_from_u64(seed);
    let mut by_x: Vec<RawPoint> = points.to_vec();
    by_x.sort_unstable_by_key(|p| (p.0, p.1, p.2));
    let hot_lo = by_x.partition_point(|p| p.0 < hot.0);
    let hot_hi = by_x.partition_point(|p| p.0 <= hot.1);
    let anchor = |rng: &mut Rng, lo: usize, hi: usize| -> ThreeSidedQ {
        let n = hi - lo;
        let span = (2 * t_target.max(1)).min(n);
        let start = lo + rng.gen_range(0..=n - span);
        let slice = &by_x[start..start + span];
        let mut ys: Vec<i64> = slice.iter().map(|p| p.1).collect();
        ys.sort_unstable();
        ThreeSidedQ { x1: slice[0].0, x2: slice[span - 1].0, y0: ys[ys.len() / 2] }
    };
    (0..count)
        .map(|_| {
            if hot_hi > hot_lo && rng.gen_f64() < hot_fraction {
                anchor(&mut rng, hot_lo, hot_hi)
            } else {
                anchor(&mut rng, 0, by_x.len())
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen_points, PointDist, DOMAIN};

    #[test]
    fn zipf_cdf_is_monotone_and_normalized() {
        let z = ZipfSampler::new(1000, 0.99);
        assert!(z.cdf.windows(2).all(|w| w[0] < w[1]));
        assert!((z.cdf.last().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let z = ZipfSampler::new(1000, 0.99);
        let mut rng = Rng::seed_from_u64(42);
        let mut head = 0usize;
        let draws = 20_000;
        for _ in 0..draws {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // Under uniform, ranks 0..10 get ~1% of draws; under θ≈1 skew over
        // 1000 ranks the head takes ~39% (H_10/H_1000). Assert well above
        // uniform and in the right ballpark.
        assert!(head * 100 / draws >= 25, "head got only {head}/{draws} draws");
    }

    #[test]
    fn zipf_theta_zero_is_uniform() {
        let z = ZipfSampler::new(100, 0.0);
        let mut rng = Rng::seed_from_u64(7);
        let mut counts = [0usize; 100];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(max - min < 400, "uniform draw spread too wide: {min}..{max}");
    }

    #[test]
    fn zipf_keys_concentrate_on_smallest() {
        let keys: Vec<i64> = (0..1000).map(|k| k * 10).collect();
        let draws = gen_zipf_keys(&keys, 10_000, 1.2, 3);
        assert_eq!(draws, gen_zipf_keys(&keys, 10_000, 1.2, 3));
        let low = draws.iter().filter(|&&k| k < 100 * 10).count();
        assert!(low * 2 > draws.len(), "low decile got {low}/10000 draws");
        assert!(draws.iter().all(|k| keys.contains(k)));
    }

    #[test]
    fn hot_three_sided_queries_hit_the_window() {
        let pts = gen_points(20_000, PointDist::Uniform, 5);
        let hot = (0, DOMAIN / 8);
        let qs = gen_three_sided_hot(&pts, 400, 100, hot, 0.8, 9);
        assert_eq!(qs.len(), 400);
        assert_eq!(qs, gen_three_sided_hot(&pts, 400, 100, hot, 0.8, 9));
        let in_hot =
            qs.iter().filter(|q| q.x1 >= hot.0 && q.x2 <= hot.1).count();
        assert!(
            (240..=400).contains(&in_hot),
            "expected ~80% of 400 queries in the hot window, got {in_hot}"
        );
        for q in &qs {
            assert!(q.x1 <= q.x2);
            let t = pts.iter().filter(|p| p.0 >= q.x1 && p.0 <= q.x2 && p.1 >= q.y0).count();
            assert!(t > 0, "query {q:?} selects nothing");
        }
    }

    #[test]
    fn hot_window_without_data_degrades_to_cold() {
        let pts: Vec<RawPoint> = (0..100).map(|i| (500_000 + i, i, i as u64)).collect();
        let qs = gen_three_sided_hot(&pts, 50, 10, (0, 10), 1.0, 1);
        assert_eq!(qs.len(), 50);
        assert!(qs.iter().all(|q| q.x1 >= 500_000));
    }
}
