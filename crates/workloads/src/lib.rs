//! # pc-workloads — synthetic data and query generators
//!
//! The paper (an extended abstract) specifies no data sets, so the
//! experiment harness generates synthetic workloads with controlled
//! characteristics:
//!
//! * **point sets** with several spatial distributions, including an
//!   adversarial one that maximizes underfull cover-lists (the Figure 3
//!   pathology path caching was designed to fix);
//! * **interval sets** with several length distributions, including highly
//!   nested ones that stress segment/interval-tree cover lists;
//! * **queries** calibrated to hit a target output size `t`, since every
//!   bound in the paper is output-sensitive (`O(log_B n + t/B)`);
//! * **skewed traffic** — Zipfian key popularity and hot-window 3-sided
//!   queries that drive one shard of a range-partitioned fabric into
//!   `Overloaded` while the rest stay healthy;
//! * **temporal streams** — sliding-window insert/expire churn (FIFO
//!   tenure) that keeps retiring the exact pages older snapshot epochs
//!   may still pin, the stress case for MVCC garbage collection.
//!
//! All generators are deterministic given a seed (`pc_rng::Rng`, the
//! in-tree xoshiro256** generator), so every experiment in EXPERIMENTS.md
//! is exactly reproducible bit-for-bit across machines — pinned by the
//! golden-value tests in `tests/determinism.rs`.
//!
//! Geometric data is produced as plain tuples to keep this crate free of
//! storage-layer dependencies; the bench crate converts to
//! `pc_pagestore::types` records.

mod intervals;
mod points;
mod queries;
mod temporal;
mod zipf;

pub use intervals::{gen_intervals, IntervalDist};
pub use points::{gen_points, PointDist};
pub use temporal::{gen_temporal, TemporalOp};
pub use queries::{
    gen_range_1d, gen_stabbing, gen_three_sided, gen_two_sided, Range1d, Stab, ThreeSidedQ,
    TwoSidedQ,
};
pub use zipf::{gen_three_sided_hot, gen_zipf_keys, ZipfSampler};

/// Coordinate domain used by all generators: values fall in `[0, DOMAIN]`.
pub const DOMAIN: i64 = 1_000_000;

/// A generated point `(x, y, id)`.
pub type RawPoint = (i64, i64, u64);

/// A generated interval `(lo, hi, id)` with `lo <= hi`.
pub type RawInterval = (i64, i64, u64);
