//! Sliding-window temporal insert/expire workload.
//!
//! Models retention-bounded temporal data (session stores, metrics with a
//! TTL, the contract-validity demo of `examples/temporal_db.rs`): a
//! deterministic stream where every step admits a fresh point and, once
//! the live set exceeds the window, retires the *oldest* — so the live
//! set slides over the id axis while churning at a constant rate. This is
//! the adversarial pattern for snapshot GC: every expiry retires pages
//! that older epochs may still pin.

use std::collections::VecDeque;

use crate::{gen_points, PointDist, RawPoint};

/// One step of a temporal stream: admit a fresh point or retire the
/// oldest live one. An [`TemporalOp::Expire`] carries the exact point
/// that was inserted, so drivers can issue a wire `Delete` verbatim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TemporalOp {
    /// Admit this point into the live set.
    Insert(RawPoint),
    /// Retire this point (always the oldest live one — FIFO tenure).
    Expire(RawPoint),
}

/// Generates a sliding-window insert/expire stream: `steps` fresh points
/// (coordinates drawn from `dist`, ids `first_id..first_id + steps`),
/// each insert followed by an expiry of the oldest live point whenever
/// the live set would exceed `window`. Deterministic in `seed`: the
/// coordinate stream is exactly [`gen_points`]`(steps, dist, seed)`.
///
/// The returned stream has `steps` inserts and
/// `steps.saturating_sub(window)` expiries; replaying it leaves the last
/// `min(steps, window)` points live.
pub fn gen_temporal(
    steps: usize,
    window: usize,
    dist: PointDist,
    first_id: u64,
    seed: u64,
) -> Vec<TemporalOp> {
    let window = window.max(1);
    let mut live: VecDeque<RawPoint> = VecDeque::with_capacity(window + 1);
    let mut out = Vec::with_capacity(steps * 2);
    for (x, y, id) in gen_points(steps, dist, seed) {
        let p = (x, y, first_id + id);
        live.push_back(p);
        out.push(TemporalOp::Insert(p));
        if live.len() > window {
            let oldest = live.pop_front().expect("window overflow implies a live point");
            out.push(TemporalOp::Expire(oldest));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let a = gen_temporal(200, 16, PointDist::Uniform, 7_000, 3);
        let b = gen_temporal(200, 16, PointDist::Uniform, 7_000, 3);
        let c = gen_temporal(200, 16, PointDist::Uniform, 7_000, 4);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn live_set_is_bounded_and_expiry_is_fifo() {
        let window = 8;
        let ops = gen_temporal(100, window, PointDist::Uniform, 0, 11);
        let mut live: Vec<RawPoint> = Vec::new();
        for op in &ops {
            match op {
                TemporalOp::Insert(p) => live.push(*p),
                TemporalOp::Expire(p) => {
                    assert_eq!(live.remove(0), *p, "expiry must retire the oldest live point");
                }
            }
            // An insert may transiently overfill by one; the paired expiry
            // lands as the very next op.
            assert!(live.len() <= window + 1, "live set exceeded the window");
            if let TemporalOp::Expire(_) = op {
                assert!(live.len() <= window);
            }
        }
        assert_eq!(live.len(), window, "replay must leave exactly one window live");
        assert_eq!(
            ops.iter().filter(|o| matches!(o, TemporalOp::Expire(_))).count(),
            100 - window
        );
    }

    #[test]
    fn ids_offset_from_first_id() {
        let ops = gen_temporal(10, 4, PointDist::Uniform, 500, 9);
        let inserted: Vec<u64> = ops
            .iter()
            .filter_map(|o| match o {
                TemporalOp::Insert((_, _, id)) => Some(*id),
                TemporalOp::Expire(_) => None,
            })
            .collect();
        assert_eq!(inserted, (500..510).collect::<Vec<u64>>());
    }

    #[test]
    fn coordinates_match_the_point_generator() {
        let pts = gen_points(6, PointDist::Diagonal { width: 50 }, 21);
        let ops = gen_temporal(6, 3, PointDist::Diagonal { width: 50 }, 0, 21);
        let inserted: Vec<RawPoint> = ops
            .iter()
            .filter_map(|o| match o {
                TemporalOp::Insert(p) => Some(*p),
                TemporalOp::Expire(_) => None,
            })
            .collect();
        assert_eq!(inserted, pts);
    }
}
