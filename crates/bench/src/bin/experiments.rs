//! The paper-experiment harness: one sub-command per experiment in
//! DESIGN.md's index (E1–E20), each regenerating the measurements recorded
//! in EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p pc-bench --bin experiments            # all
//! cargo run --release -p pc-bench --bin experiments -- e7 e12  # subset
//! ```
//!
//! All measurements are page-transfer counts in the strict I/O model
//! (pool-less [`PageStore`]); the paper's bounds are printed alongside.

use std::panic::{catch_unwind, AssertUnwindSafe};

use pc_bench::{f1, f2, log_base, to_intervals, to_points, Table};
use pc_pagestore::backend::MemBackend;
use pc_pagestore::{
    FaultBackend, FaultPlan, Interval, MirrorBackend, RetryPolicy, StoreConfig, StoreError,
};
use pc_rng::Rng;
use pc_btree::BTree;
use pc_intervaltree::ExternalIntervalTree;
use pc_pagestore::{PageStore, Point};
use pc_pst::{
    BasicPst, DynamicPst, DynamicThreeSidedPst, MultilevelPst, NaivePst, SegmentedPst,
    ThreeSided, ThreeSidedPst, TwoLevelPst, TwoSided,
};
use pc_segtree::{CachedSegmentTree, NaiveSegmentTree};
use pc_workloads::{
    gen_intervals, gen_points, gen_range_1d, gen_stabbing, gen_three_sided, gen_two_sided,
    IntervalDist, PointDist,
};

const PAGE: usize = 4096;
/// Points per block at PAGE bytes (the paper's B for 24-byte records).
const B: f64 = 170.0;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = [
        "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13",
        "e14", "e15", "e16", "e17", "e18", "e20",
    ];
    let selected: Vec<&str> = if args.is_empty() {
        all.to_vec()
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };
    for exp in selected {
        match exp {
            "e1" => e1_btree_baseline(),
            "e2" => e2_wasteful_ios(),
            "e3" => e3_segment_tree(),
            "e4" => e4_interval_tree(),
            "e5" => e5_basic_pst(),
            "e6" => e6_segmented_pst(),
            "e7" => e7_two_level_pst(),
            "e8" => e8_multilevel_space(),
            "e9" => e9_three_sided(),
            "e10" => e10_dynamic_pst(),
            "e11" => e11_dynamic_three_sided(),
            "e12" => e12_naive_vs_cached(),
            "e13" => e13_interval_management(),
            "e14" => e14_tradeoff_table(),
            "e15" => e15_parallel_throughput(),
            "e16" => e16_buffer_pool(),
            "e17" => e17_page_size_ablation(),
            "e18" => e18_chaos_resilience(),
            "e20" => e20_crash_durability(),
            other => eprintln!("unknown experiment {other}"),
        }
    }
}

// ---------------------------------------------------------------------------
// E1: B+-tree 1-d optimality (the bar the paper matches in 2-d)
// ---------------------------------------------------------------------------
fn e1_btree_baseline() {
    println!("## E1 — B+-tree: 1-d range search baseline (§1)\n");
    println!("point/update I/O vs ceil(log_B n); range I/O vs log_B n + t/B\n");
    let mut table = Table::new(&[
        "n", "log_B n", "point I/O", "update I/O", "t", "range I/O", "t/B",
    ]);
    for n in [10_000usize, 100_000, 1_000_000] {
        let store = PageStore::in_memory(PAGE);
        let keys: Vec<i64> = (0..n as i64).map(|k| k * 3).collect();
        let entries: Vec<(i64, u64)> = keys.iter().map(|&k| (k, k as u64)).collect();
        let mut tree = BTree::bulk_build(&store, &entries).unwrap();

        let t_target = 20_000.min(n / 2);
        let queries = gen_range_1d(&keys, 50, t_target, 1);
        store.reset_stats();
        let mut t_total = 0usize;
        for q in &queries {
            t_total += tree.range(&store, &q.lo, &q.hi).unwrap().len();
        }
        let range_io = store.stats().reads as f64 / queries.len() as f64;
        let t_avg = t_total as f64 / queries.len() as f64;

        store.reset_stats();
        for i in 0..50i64 {
            tree.get(&store, &(i * 97 % n as i64)).unwrap();
        }
        let point_io = store.stats().reads as f64 / 50.0;

        store.reset_stats();
        for i in 0..50i64 {
            tree.insert(&store, i * 3 + 1, 7).unwrap();
        }
        let update_io = store.stats().total_io() as f64 / 50.0;

        // Leaf entries are (i64, u64): B_leaf = (4096-19)/16 = 254.
        let b_leaf = 254.0;
        table.row(vec![
            n.to_string(),
            f1(log_base(n as f64, b_leaf)),
            f1(point_io),
            f1(update_io),
            f1(t_avg),
            f1(range_io),
            f1(t_avg / b_leaf),
        ]);
    }
    table.print();
}

// ---------------------------------------------------------------------------
// E2: Figure 3 — wasteful vs useful I/Os, naive vs path-cached segment tree
// ---------------------------------------------------------------------------
fn e2_wasteful_ios() {
    println!("## E2 — Figure 3: underfull cover-lists cause wasteful I/Os (§2)\n");
    let mut table = Table::new(&[
        "n", "variant", "search I/O", "useful I/O", "wasteful I/O", "t",
    ]);
    for n in [10_000usize, 50_000, 200_000] {
        let raw = gen_intervals(n, IntervalDist::UniformLen { max_len: 40_000 }, 2);
        let intervals = to_intervals(&raw);
        let store = PageStore::in_memory(PAGE);
        let naive = NaiveSegmentTree::build(&store, &intervals).unwrap();
        let cached = CachedSegmentTree::build(&store, &intervals).unwrap();
        let stabs = gen_stabbing(&raw, 100, 3);
        for (label, is_cached) in [("naive", false), ("cached", true)] {
            let (mut search, mut useful, mut wasteful, mut t) = (0u64, 0u64, 0u64, 0usize);
            for q in &stabs {
                let p = if is_cached {
                    cached.stab_profiled(&store, q.q).unwrap()
                } else {
                    naive.stab_profiled(&store, q.q).unwrap()
                };
                search += p.search_ios;
                useful += p.useful_ios;
                wasteful += p.wasteful_ios;
                t += p.results.len();
            }
            let nq = stabs.len() as f64;
            table.row(vec![
                n.to_string(),
                label.to_string(),
                f1(search as f64 / nq),
                f1(useful as f64 / nq),
                f1(wasteful as f64 / nq),
                f1(t as f64 / nq),
            ]);
        }
    }
    table.print();
}

// ---------------------------------------------------------------------------
// E3: Theorem 3.4 — external segment tree bounds
// ---------------------------------------------------------------------------
fn e3_segment_tree() {
    println!("## E3 — Theorem 3.4: path-cached segment tree\n");
    println!("query O(log_B n + t/B); space O((n/B) log n) blocks\n");
    let mut table = Table::new(&[
        "n", "pages", "(n/B)·log2 n", "avg t", "avg query I/O", "log_B n + t/B",
    ]);
    for n in [10_000usize, 50_000, 200_000] {
        let raw = gen_intervals(n, IntervalDist::UniformLen { max_len: 20_000 }, 4);
        let intervals = to_intervals(&raw);
        let store = PageStore::in_memory(PAGE);
        let tree = CachedSegmentTree::build(&store, &intervals).unwrap();
        let pages = store.live_pages();
        let stabs = gen_stabbing(&raw, 100, 5);
        store.reset_stats();
        let mut t_total = 0usize;
        for q in &stabs {
            t_total += tree.stab(&store, q.q).unwrap().len();
        }
        let io = store.stats().reads as f64 / stabs.len() as f64;
        let t_avg = t_total as f64 / stabs.len() as f64;
        table.row(vec![
            n.to_string(),
            pages.to_string(),
            f1(n as f64 / B * (n as f64).log2()),
            f1(t_avg),
            f1(io),
            f1(log_base(n as f64, B) + t_avg / B),
        ]);
    }
    table.print();
}

// ---------------------------------------------------------------------------
// E4: Theorem 3.5 — external interval tree bounds
// ---------------------------------------------------------------------------
fn e4_interval_tree() {
    println!("## E4 — Theorem 3.5: path-cached interval tree\n");
    println!("query O(log_B n + t/B); space O((n/B) log B) blocks\n");
    let mut table = Table::new(&[
        "n", "pages", "(n/B)·log2 B", "avg t", "avg query I/O", "log_B n + t/B",
    ]);
    for n in [10_000usize, 50_000, 200_000] {
        let raw = gen_intervals(n, IntervalDist::UniformLen { max_len: 20_000 }, 6);
        let intervals = to_intervals(&raw);
        let store = PageStore::in_memory(PAGE);
        let tree = ExternalIntervalTree::build(&store, &intervals).unwrap();
        let pages = store.live_pages();
        let stabs = gen_stabbing(&raw, 100, 7);
        store.reset_stats();
        let mut t_total = 0usize;
        for q in &stabs {
            t_total += tree.stab(&store, q.q).unwrap().len();
        }
        let io = store.stats().reads as f64 / stabs.len() as f64;
        let t_avg = t_total as f64 / stabs.len() as f64;
        table.row(vec![
            n.to_string(),
            pages.to_string(),
            f1(n as f64 / B * B.log2()),
            f1(t_avg),
            f1(io),
            f1(log_base(n as f64, B) + t_avg / B),
        ]);
    }
    table.print();
}

// ---------------------------------------------------------------------------
// Shared 2-sided PST experiment body
// ---------------------------------------------------------------------------
fn pst_experiment<F, I>(build: F, space_label: &str, space_pred: fn(f64) -> f64)
where
    F: Fn(&PageStore, &[Point]) -> I,
    I: PstLike,
{
    let mut table = Table::new(&[
        "n", "pages", space_label, "avg t", "avg query I/O", "log_B n + t/B",
    ]);
    for n in [20_000usize, 100_000, 400_000] {
        let raw = gen_points(n, PointDist::Uniform, 8);
        let points = to_points(&raw);
        let store = PageStore::in_memory(PAGE);
        let pst = build(&store, &points);
        let pages = store.live_pages();
        let queries = gen_two_sided(&raw, 100, n / 50, 9);
        store.reset_stats();
        let mut t_total = 0usize;
        for q in &queries {
            t_total += pst.run(&store, TwoSided { x0: q.x0, y0: q.y0 });
        }
        let io = store.stats().reads as f64 / queries.len() as f64;
        let t_avg = t_total as f64 / queries.len() as f64;
        table.row(vec![
            n.to_string(),
            pages.to_string(),
            f1(space_pred(n as f64)),
            f1(t_avg),
            f1(io),
            f1(log_base(n as f64, B) + t_avg / B),
        ]);
    }
    table.print();
}

trait PstLike {
    fn run(&self, store: &PageStore, q: TwoSided) -> usize;
}
macro_rules! pst_like {
    ($t:ty) => {
        impl PstLike for $t {
            fn run(&self, store: &PageStore, q: TwoSided) -> usize {
                self.query(store, q).unwrap().len()
            }
        }
    };
}
pst_like!(NaivePst);
pst_like!(BasicPst);
pst_like!(SegmentedPst);
pst_like!(TwoLevelPst);
pst_like!(MultilevelPst);
pst_like!(DynamicPst);

fn e5_basic_pst() {
    println!("## E5 — Lemma 3.1: basic PST, full-path A/S caches\n");
    println!("query O(log_B n + t/B); space O((n/B) log n) blocks\n");
    pst_experiment(
        |s, p| BasicPst::build(s, p).unwrap(),
        "(n/B)·log2 n",
        |n| n / B * n.log2(),
    );
}

fn e6_segmented_pst() {
    println!("## E6 — Theorem 3.2: segmented PST, log B-sized cache segments\n");
    println!("query O(log_B n + t/B); space O((n/B) log B) blocks\n");
    pst_experiment(
        |s, p| SegmentedPst::build(s, p).unwrap(),
        "(n/B)·log2 B",
        |n| n / B * B.log2(),
    );
}

fn e7_two_level_pst() {
    println!("## E7 — Theorem 4.3: two-level recursive PST\n");
    println!("query O(log_B n + t/B); space O((n/B) loglog B) blocks\n");
    pst_experiment(
        |s, p| TwoLevelPst::build(s, p).unwrap(),
        "(n/B)·loglog2 B",
        |n| n / B * B.log2().log2(),
    );
}

// ---------------------------------------------------------------------------
// E8: Theorem 4.4 — multilevel space scaling
// ---------------------------------------------------------------------------
fn e8_multilevel_space() {
    println!("## E8 — Theorem 4.4: multilevel scheme, space vs level count\n");
    println!("levels 1 (basic, log n) .. k (log^(k) B), saturating at log* B\n");
    let n = 200_000usize;
    let raw = gen_points(n, PointDist::Uniform, 10);
    let points = to_points(&raw);
    let queries = gen_two_sided(&raw, 60, n / 50, 11);
    let mut table =
        Table::new(&["levels", "pages", "pages/(n/B)", "avg query I/O", "avg t"]);
    for levels in 1..=4u32 {
        let store = PageStore::in_memory(PAGE);
        let pst = MultilevelPst::build(&store, &points, levels).unwrap();
        let pages = store.live_pages();
        store.reset_stats();
        let mut t_total = 0usize;
        for q in &queries {
            t_total += pst.query(&store, TwoSided { x0: q.x0, y0: q.y0 }).unwrap().len();
        }
        let io = store.stats().reads as f64 / queries.len() as f64;
        table.row(vec![
            levels.to_string(),
            pages.to_string(),
            f2(pages as f64 / (n as f64 / B)),
            f1(io),
            f1(t_total as f64 / queries.len() as f64),
        ]);
    }
    table.print();
}

// ---------------------------------------------------------------------------
// E9: Theorem 3.3 — 3-sided queries
// ---------------------------------------------------------------------------
fn e9_three_sided() {
    println!("## E9 — Theorem 3.3: 3-sided PST\n");
    println!("query O(log_B n + t/B); space O((n/B) log^2 B) blocks\n");
    let mut table = Table::new(&[
        "n", "pages", "(n/B)·log2²B", "avg t", "avg query I/O", "log_B n + t/B",
    ]);
    for n in [20_000usize, 100_000, 400_000] {
        let raw = gen_points(n, PointDist::Uniform, 12);
        let points = to_points(&raw);
        let store = PageStore::in_memory(PAGE);
        let pst = ThreeSidedPst::build(&store, &points).unwrap();
        let pages = store.live_pages();
        let queries = gen_three_sided(&raw, 100, n / 50, 13);
        store.reset_stats();
        let mut t_total = 0usize;
        for q in &queries {
            t_total += pst
                .query(&store, ThreeSided { x1: q.x1, x2: q.x2, y0: q.y0 })
                .unwrap()
                .len();
        }
        let io = store.stats().reads as f64 / queries.len() as f64;
        let t_avg = t_total as f64 / queries.len() as f64;
        table.row(vec![
            n.to_string(),
            pages.to_string(),
            f1(n as f64 / B * B.log2() * B.log2()),
            f1(t_avg),
            f1(io),
            f1(log_base(n as f64, B) + t_avg / B),
        ]);
    }
    table.print();
}

// ---------------------------------------------------------------------------
// E10: Theorem 5.1 — dynamic PST
// ---------------------------------------------------------------------------
fn e10_dynamic_pst() {
    println!("## E10 — Theorem 5.1: dynamic two-level PST\n");
    println!("amortized update O(log_B n); queries stay O(log_B n + t/B) under churn\n");
    let mut table = Table::new(&[
        "n", "insert I/O", "delete I/O", "log_B n", "query I/O (dirty)", "avg t", "pages/(n/B)",
    ]);
    for n in [20_000usize, 100_000, 400_000] {
        let raw = gen_points(n, PointDist::Uniform, 14);
        let points = to_points(&raw);
        let store = PageStore::in_memory(PAGE);
        let mut pst = DynamicPst::build(&store, &points).unwrap();

        let updates = (n / 10).clamp(1_000, 20_000);
        let extra = to_points(&gen_points(updates, PointDist::Uniform, 15));
        store.reset_stats();
        for (i, p) in extra.iter().enumerate() {
            pst.insert(&store, Point::new(p.x, p.y, 10_000_000 + i as u64)).unwrap();
        }
        let ins_io = store.stats().total_io() as f64 / updates as f64;

        store.reset_stats();
        for (i, p) in extra.iter().enumerate() {
            pst.delete(&store, Point::new(p.x, p.y, 10_000_000 + i as u64)).unwrap();
        }
        let del_io = store.stats().total_io() as f64 / updates as f64;

        // Queries against the churned structure (buffers non-empty).
        let queries = gen_two_sided(&raw, 60, n / 50, 16);
        store.reset_stats();
        let mut t_total = 0usize;
        for q in &queries {
            t_total += pst.query(&store, TwoSided { x0: q.x0, y0: q.y0 }).unwrap().len();
        }
        let q_io = store.stats().reads as f64 / queries.len() as f64;
        table.row(vec![
            n.to_string(),
            f1(ins_io),
            f1(del_io),
            f1(log_base(n as f64, B)),
            f1(q_io),
            f1(t_total as f64 / queries.len() as f64),
            f2(store.live_pages() as f64 / (n as f64 / B)),
        ]);
    }
    table.print();
}

// ---------------------------------------------------------------------------
// E11: Theorem 5.2 — dynamic 3-sided
// ---------------------------------------------------------------------------
fn e11_dynamic_three_sided() {
    println!("## E11 — Theorem 5.2: dynamic 3-sided PST\n");
    println!("queries optimal; amortized update cost reported (buffer+rebuild scheme)\n");
    let mut table =
        Table::new(&["n", "update I/O", "query I/O", "avg t", "paper bound log_B n·log²B"]);
    for n in [20_000usize, 100_000] {
        let raw = gen_points(n, PointDist::Uniform, 17);
        let points = to_points(&raw);
        let store = PageStore::in_memory(PAGE);
        let mut pst = DynamicThreeSidedPst::build(&store, &points).unwrap();
        let updates = 2_000usize;
        let extra = to_points(&gen_points(updates, PointDist::Uniform, 18));
        store.reset_stats();
        for (i, p) in extra.iter().enumerate() {
            pst.insert(&store, Point::new(p.x, p.y, 20_000_000 + i as u64)).unwrap();
        }
        let upd_io = store.stats().total_io() as f64 / updates as f64;
        let queries = gen_three_sided(&raw, 40, n / 50, 19);
        store.reset_stats();
        let mut t_total = 0usize;
        for q in &queries {
            t_total += pst
                .query(&store, ThreeSided { x1: q.x1, x2: q.x2, y0: q.y0 })
                .unwrap()
                .len();
        }
        let q_io = store.stats().reads as f64 / queries.len() as f64;
        table.row(vec![
            n.to_string(),
            f1(upd_io),
            f1(q_io),
            f1(t_total as f64 / queries.len() as f64),
            f1(log_base(n as f64, B) * B.log2() * B.log2()),
        ]);
    }
    table.print();
}

// ---------------------------------------------------------------------------
// E12: naive [IKO] vs path-cached — the headline comparison
// ---------------------------------------------------------------------------
fn e12_naive_vs_cached() {
    println!("## E12 — naive [IKO] vs path-cached PST: the log n vs log_B n gap\n");
    println!("small-t queries at growing n; output terms cancel, navigation dominates");
    if pc_obs::enabled() {
        println!("waste/q = per-query wasteful transfers (pc-obs span classifier)\n");
    } else {
        println!("waste/q columns need `--features obs` (tracing compiled out)\n");
    }
    let mut table = Table::new(&[
        "n",
        "t",
        "naive I/O",
        "seg I/O",
        "two-lvl I/O",
        "naive waste/q",
        "seg waste/q",
        "log2(n/B)",
        "log_B n",
    ]);
    for n in [50_000usize, 200_000, 800_000] {
        let raw = gen_points(n, PointDist::Uniform, 20);
        let points = to_points(&raw);
        let store = PageStore::in_memory(PAGE);
        let naive = NaivePst::build(&store, &points).unwrap();
        let seg = SegmentedPst::build(&store, &points).unwrap();
        let two = TwoLevelPst::build(&store, &points).unwrap();
        // Deep corner, empty output: x0 beyond the domain, y0 = 0.
        let queries: Vec<TwoSided> =
            (0..30).map(|i| TwoSided { x0: 1_000_001 + i, y0: 0 }).collect();
        let mut ios = Vec::new();
        let mut wastes = Vec::new();
        let mut t_avg = 0.0;
        for pst in [&naive as &dyn PstLike, &seg, &two] {
            store.reset_stats();
            let waste_before = pc_obs::snapshot().counter("pc_op_wasteful_io_total");
            let mut t_total = 0usize;
            for q in &queries {
                t_total += pst.run(&store, *q);
            }
            let waste = pc_obs::snapshot().counter("pc_op_wasteful_io_total") - waste_before;
            ios.push(store.stats().reads as f64 / queries.len() as f64);
            wastes.push(waste as f64 / queries.len() as f64);
            t_avg = t_total as f64 / queries.len() as f64;
        }
        let waste_col =
            |w: f64| if pc_obs::enabled() { f1(w) } else { "-".to_string() };
        table.row(vec![
            n.to_string(),
            f1(t_avg),
            f1(ios[0]),
            f1(ios[1]),
            f1(ios[2]),
            waste_col(wastes[0]),
            waste_col(wastes[1]),
            f1((n as f64 / B).log2()),
            f1(log_base(n as f64, B)),
        ]);
    }
    table.print();
}

// ---------------------------------------------------------------------------
// E13: interval management end-to-end (§1 application)
// ---------------------------------------------------------------------------
fn e13_interval_management() {
    println!("## E13 — dynamic interval management: stabbing query shoot-out (§1)\n");
    println!("PST reduction vs B-tree-on-lo scan vs full scan\n");
    let n = 200_000usize;
    let raw = gen_intervals(n, IntervalDist::LongTail, 21);
    let intervals = to_intervals(&raw);
    let stabs = gen_stabbing(&raw, 50, 22);

    // Path-cached (KRV reduction over the segmented PST, static build).
    let store = PageStore::in_memory(PAGE);
    let points: Vec<Point> =
        intervals.iter().map(|iv| Point::new(-iv.lo, iv.hi, iv.id)).collect();
    let pst = SegmentedPst::build(&store, &points).unwrap();
    store.reset_stats();
    let mut t_total = 0usize;
    for q in &stabs {
        t_total += pst.query(&store, TwoSided { x0: -q.q, y0: q.q }).unwrap().len();
    }
    let pst_io = store.stats().reads as f64 / stabs.len() as f64;
    let t_avg = t_total as f64 / stabs.len() as f64;

    // B-tree on lo: scan every interval with lo <= q, filter hi >= q.
    let store2 = PageStore::in_memory(PAGE);
    let mut entries: Vec<(i64, u64)> = Vec::new();
    {
        // Make keys unique by packing the id into low bits.
        for iv in &intervals {
            entries.push((iv.lo * (n as i64 + 1) + iv.id as i64, iv.id));
        }
        entries.sort_unstable();
    }
    let btree = BTree::bulk_build(&store2, &entries).unwrap();
    store2.reset_stats();
    for q in &stabs {
        let hi_key = (q.q + 1) * (n as i64 + 1) - 1;
        let _hits = btree.range(&store2, &i64::MIN, &hi_key).unwrap();
    }
    let btree_io = store2.stats().reads as f64 / stabs.len() as f64;

    // Full scan: n/B pages per query by definition.
    let scan_io = n as f64 / B;

    let mut table = Table::new(&["method", "avg stab I/O", "avg t", "t/B"]);
    table.row(vec!["path-cached PST".into(), f1(pst_io), f1(t_avg), f1(t_avg / B)]);
    table.row(vec!["B-tree on lo (scan+filter)".into(), f1(btree_io), f1(t_avg), f1(t_avg / B)]);
    table.row(vec!["full scan".into(), f1(scan_io), f1(t_avg), f1(t_avg / B)]);
    table.print();
}

// ---------------------------------------------------------------------------
// E14: the space/time trade-off table (§6)
// ---------------------------------------------------------------------------
fn e14_tradeoff_table() {
    println!("## E14 — space/time trade-offs across all variants (§6)\n");
    let n = 200_000usize;
    let raw = gen_points(n, PointDist::Uniform, 23);
    let points = to_points(&raw);
    let queries = gen_two_sided(&raw, 60, n / 50, 24);
    let mut table = Table::new(&[
        "variant", "paper space", "pages", "blocks/point·B", "avg query I/O", "avg t",
    ]);
    type Builder = Box<dyn Fn(&PageStore) -> Box<dyn PstLike>>;
    let builders: Vec<(&str, &str, Builder)> = vec![
        ("naive [IKO]", "n/B", Box::new(|s: &PageStore| {
            Box::new(NaivePst::build(s, &to_points(&gen_points(200_000, PointDist::Uniform, 23))).unwrap()) as Box<dyn PstLike>
        })),
        ("basic (Lem 3.1)", "(n/B)·log n", Box::new(|s: &PageStore| {
            Box::new(BasicPst::build(s, &to_points(&gen_points(200_000, PointDist::Uniform, 23))).unwrap())
        })),
        ("segmented (Thm 3.2)", "(n/B)·log B", Box::new(|s: &PageStore| {
            Box::new(SegmentedPst::build(s, &to_points(&gen_points(200_000, PointDist::Uniform, 23))).unwrap())
        })),
        ("two-level (Thm 4.3)", "(n/B)·loglog B", Box::new(|s: &PageStore| {
            Box::new(TwoLevelPst::build(s, &to_points(&gen_points(200_000, PointDist::Uniform, 23))).unwrap())
        })),
        ("3-level (Thm 4.4)", "(n/B)·log*B", Box::new(|s: &PageStore| {
            Box::new(MultilevelPst::build(s, &to_points(&gen_points(200_000, PointDist::Uniform, 23)), 3).unwrap())
        })),
    ];
    let _ = &points;
    for (label, paper, build) in builders {
        let store = PageStore::in_memory(PAGE);
        let pst = build(&store);
        let pages = store.live_pages();
        store.reset_stats();
        let mut t_total = 0usize;
        for q in &queries {
            t_total += pst.run(&store, TwoSided { x0: q.x0, y0: q.y0 });
        }
        let io = store.stats().reads as f64 / queries.len() as f64;
        table.row(vec![
            label.to_string(),
            paper.to_string(),
            pages.to_string(),
            f2(pages as f64 / (n as f64 / B)),
            f1(io),
            f1(t_total as f64 / queries.len() as f64),
        ]);
    }
    table.print();
}

// ---------------------------------------------------------------------------
// E15: parallel query throughput (beyond the paper: the substrate is Sync)
// ---------------------------------------------------------------------------
fn e15_parallel_throughput() {
    println!("## E15 — parallel query throughput (substrate extension)\n");
    println!("the paper's model is single-threaded; this checks the engineering\n");
    let n = 200_000usize;
    let raw = gen_points(n, PointDist::Uniform, 25);
    let points = to_points(&raw);
    let store = PageStore::in_memory(PAGE);
    let pst = TwoLevelPst::build(&store, &points).unwrap();
    let queries = gen_two_sided(&raw, 256, n / 100, 26);
    let mut table = Table::new(&["threads", "queries/s", "speedup"]);
    let mut base = 0.0f64;
    for threads in [1usize, 2, 4, 8] {
        let start = std::time::Instant::now();
        let rounds = 4usize;
        std::thread::scope(|s| {
            for tid in 0..threads {
                let pst = &pst;
                let store = &store;
                let queries = &queries;
                s.spawn(move || {
                    for r in 0..rounds {
                        for (i, q) in queries.iter().enumerate() {
                            if (i + r + tid) % threads == tid {
                                pst.query(store, TwoSided { x0: q.x0, y0: q.y0 }).unwrap();
                            }
                        }
                    }
                });
            }
        });
        let total = (queries.len() * rounds) as f64;
        let qps = total / start.elapsed().as_secs_f64();
        if threads == 1 {
            base = qps;
        }
        table.row(vec![threads.to_string(), f1(qps), f2(qps / base)]);
    }
    table.print();
}

// ---------------------------------------------------------------------------
// E16: buffer pool vs the strict model (substrate extension)
// ---------------------------------------------------------------------------
fn e16_buffer_pool() {
    println!("## E16 — buffer pool vs strict model (substrate extension)\n");
    println!("hot pages (skeletal roots, caches) absorb backend reads\n");
    let n = 200_000usize;
    let raw = gen_points(n, PointDist::Uniform, 27);
    let points = to_points(&raw);
    let queries = gen_two_sided(&raw, 200, n / 100, 28);
    let mut table = Table::new(&[
        "pool pages",
        "shards",
        "backend reads/query",
        "hits/query",
        "hit rate",
        "evictions/query",
    ]);
    for pool in [0usize, 64, 256, 1024, 4096] {
        let store = if pool == 0 {
            PageStore::in_memory(PAGE)
        } else {
            PageStore::in_memory_pooled(PAGE, pool)
        };
        let pst = SegmentedPst::build(&store, &points).unwrap();
        store.reset_stats();
        for q in &queries {
            pst.query(&store, TwoSided { x0: q.x0, y0: q.y0 }).unwrap();
        }
        let s = store.stats();
        let nq = queries.len() as f64;
        let rate = if s.reads + s.cache_hits > 0 {
            s.cache_hits as f64 / (s.reads + s.cache_hits) as f64
        } else {
            0.0
        };
        table.row(vec![
            pool.to_string(),
            store.pool_shards().to_string(),
            f1(s.reads as f64 / nq),
            f1(s.cache_hits as f64 / nq),
            f2(rate),
            f1(s.pool_evictions as f64 / nq),
        ]);
    }
    table.print();
}

// ---------------------------------------------------------------------------
// E17: ablation — how the block size B shifts the naive/cached gap
// ---------------------------------------------------------------------------
fn e17_page_size_ablation() {
    println!("## E17 — ablation: page size B vs the naive/cached navigation gap\n");
    println!("t = 0 deep-corner queries. naive pays ~log2(n/B); cached pays a few\n\
              reads per skeletal segment, and segments hold ~log2(B) binary levels —\n\
              so the cached advantage grows with B\n");
    let n = 200_000usize;
    let raw = gen_points(n, PointDist::Uniform, 29);
    let points = to_points(&raw);
    let mut table = Table::new(&[
        "page bytes", "B", "naive I/O", "segmented I/O", "gap", "segmented pages",
    ]);
    for page in [512usize, 1024, 2048, 4096, 8192] {
        let store = PageStore::in_memory(page);
        let naive = NaivePst::build(&store, &points).unwrap();
        let seg_store = PageStore::in_memory(page);
        let seg = SegmentedPst::build(&seg_store, &points).unwrap();
        let queries: Vec<TwoSided> =
            (0..20).map(|i| TwoSided { x0: 1_000_001 + i, y0: 0 }).collect();
        store.reset_stats();
        for q in &queries {
            naive.query(&store, *q).unwrap();
        }
        let naive_io = store.stats().reads as f64 / queries.len() as f64;
        seg_store.reset_stats();
        for q in &queries {
            seg.query(&seg_store, *q).unwrap();
        }
        let seg_io = seg_store.stats().reads as f64 / queries.len() as f64;
        let b = (page - 22) / 24;
        table.row(vec![
            page.to_string(),
            b.to_string(),
            f1(naive_io),
            f1(seg_io),
            f2(naive_io / seg_io),
            seg_store.live_pages().to_string(),
        ]);
    }
    table.print();
}

// ---------------------------------------------------------------------------
// E18: chaos — seeded fault injection across every structure
// ---------------------------------------------------------------------------

/// One structure's deterministic chaos workload: build + mutate + query,
/// one canonical log line per completed operation. Randomness comes from
/// the seed alone (never the store), so the op sequence is identical with
/// and without faults and the fault-free log is a golden reference.
type ChaosScenario = fn(&PageStore, u64, &mut Vec<String>) -> Result<(), StoreError>;

fn chaos_ids(mut ids: Vec<u64>) -> String {
    ids.sort_unstable();
    format!("{ids:?}")
}

fn chaos_points(rng: &mut Rng, n: usize) -> Vec<Point> {
    (0..n)
        .map(|i| Point::new(rng.gen_range(0i64..400), rng.gen_range(0i64..400), i as u64))
        .collect()
}

fn chaos_intervals(rng: &mut Rng, n: usize) -> Vec<Interval> {
    (0..n)
        .map(|i| {
            let lo = rng.gen_range(0i64..400);
            Interval::new(lo, lo + rng.gen_range(0i64..120), i as u64)
        })
        .collect()
}

fn chaos_btree(store: &PageStore, seed: u64, log: &mut Vec<String>) -> Result<(), StoreError> {
    let mut rng = Rng::seed_from_u64(seed ^ 0xb7ee);
    let mut entries: Vec<(i64, u64)> =
        (0..300).map(|_| rng.gen_range(-500i64..500)).map(|k| (k, k.unsigned_abs())).collect();
    entries.sort_unstable();
    entries.dedup_by_key(|e| e.0);
    let mut tree = BTree::bulk_build(store, &entries)?;
    for _ in 0..50 {
        let k = rng.gen_range(-600i64..600);
        tree.insert(store, k, k.unsigned_abs())?;
        log.push(format!("insert {k} len={}", tree.len()));
    }
    for _ in 0..15 {
        let k = rng.gen_range(-600i64..600);
        log.push(format!("delete {k}: {:?}", tree.delete(store, &k)?));
    }
    for _ in 0..15 {
        let lo = rng.gen_range(-650i64..650);
        let hi = lo + rng.gen_range(0i64..300);
        log.push(format!("range {lo}..={hi}: {:?}", tree.range(store, &lo, &hi)?));
    }
    Ok(())
}

fn chaos_stab<T>(
    build: impl FnOnce(&PageStore, &[Interval]) -> pc_pagestore::Result<T>,
    stab: impl Fn(&T, &PageStore, i64) -> pc_pagestore::Result<Vec<Interval>>,
    salt: u64,
) -> impl FnOnce(&PageStore, u64, &mut Vec<String>) -> Result<(), StoreError> {
    move |store, seed, log| {
        let mut rng = Rng::seed_from_u64(seed ^ salt);
        let intervals = chaos_intervals(&mut rng, 200);
        let tree = build(store, &intervals)?;
        for _ in 0..20 {
            let q = rng.gen_range(-20i64..540);
            let got = stab(&tree, store, q)?;
            log.push(format!("stab {q}: {}", chaos_ids(got.iter().map(|iv| iv.id).collect())));
        }
        Ok(())
    }
}

fn chaos_naive_segtree(s: &PageStore, seed: u64, l: &mut Vec<String>) -> Result<(), StoreError> {
    chaos_stab(NaiveSegmentTree::build, |t, s, q| t.stab(s, q), 0x5e67)(s, seed, l)
}

fn chaos_cached_segtree(s: &PageStore, seed: u64, l: &mut Vec<String>) -> Result<(), StoreError> {
    chaos_stab(CachedSegmentTree::build, |t, s, q| t.stab(s, q), 0xcac4)(s, seed, l)
}

fn chaos_interval_tree(s: &PageStore, seed: u64, l: &mut Vec<String>) -> Result<(), StoreError> {
    chaos_stab(ExternalIntervalTree::build, |t, s, q| t.stab(s, q), 0x17ee)(s, seed, l)
}

fn chaos_two_sided<T>(
    build: impl FnOnce(&PageStore, &[Point]) -> pc_pagestore::Result<T>,
    query: impl Fn(&T, &PageStore, TwoSided) -> pc_pagestore::Result<Vec<Point>>,
    salt: u64,
) -> impl FnOnce(&PageStore, u64, &mut Vec<String>) -> Result<(), StoreError> {
    move |store, seed, log| {
        let mut rng = Rng::seed_from_u64(seed ^ salt);
        let points = chaos_points(&mut rng, 300);
        let pst = build(store, &points)?;
        for _ in 0..20 {
            let q = TwoSided { x0: rng.gen_range(-20i64..420), y0: rng.gen_range(-20i64..420) };
            let got = query(&pst, store, q)?;
            log.push(format!("{q:?}: {}", chaos_ids(got.iter().map(|p| p.id).collect())));
        }
        Ok(())
    }
}

fn chaos_segmented_pst(s: &PageStore, seed: u64, l: &mut Vec<String>) -> Result<(), StoreError> {
    chaos_two_sided(SegmentedPst::build, |t, s, q| t.query(s, q), 0x5e91)(s, seed, l)
}

fn chaos_two_level_pst(s: &PageStore, seed: u64, l: &mut Vec<String>) -> Result<(), StoreError> {
    chaos_two_sided(TwoLevelPst::build, |t, s, q| t.query(s, q), 0x2011)(s, seed, l)
}

fn chaos_three_sided(store: &PageStore, seed: u64, log: &mut Vec<String>) -> Result<(), StoreError> {
    let mut rng = Rng::seed_from_u64(seed ^ 0x3510);
    let points = chaos_points(&mut rng, 300);
    let pst = ThreeSidedPst::build(store, &points)?;
    for _ in 0..20 {
        let x1 = rng.gen_range(-20i64..420);
        let q =
            ThreeSided { x1, x2: x1 + rng.gen_range(0i64..200), y0: rng.gen_range(-20i64..420) };
        let got = pst.query(store, q)?;
        log.push(format!("{q:?}: {}", chaos_ids(got.iter().map(|p| p.id).collect())));
    }
    Ok(())
}

fn chaos_dynamic_pst(store: &PageStore, seed: u64, log: &mut Vec<String>) -> Result<(), StoreError> {
    let mut rng = Rng::seed_from_u64(seed ^ 0xd12d);
    let points = chaos_points(&mut rng, 240);
    let (base, rest) = points.split_at(140);
    let mut pst = DynamicPst::build(store, base)?;
    for &p in rest {
        pst.insert(store, p)?;
    }
    for p in points.iter().step_by(5) {
        pst.delete(store, *p)?;
    }
    for _ in 0..15 {
        let q = TwoSided { x0: rng.gen_range(-20i64..420), y0: rng.gen_range(-20i64..420) };
        let got = pst.query(store, q)?;
        log.push(format!("{q:?}: {}", chaos_ids(got.iter().map(|p| p.id).collect())));
    }
    Ok(())
}

fn chaos_dynamic_3s(store: &PageStore, seed: u64, log: &mut Vec<String>) -> Result<(), StoreError> {
    let mut rng = Rng::seed_from_u64(seed ^ 0xd35d);
    let points = chaos_points(&mut rng, 240);
    let (base, rest) = points.split_at(140);
    let mut pst = DynamicThreeSidedPst::build(store, base)?;
    for &p in rest {
        pst.insert(store, p)?;
    }
    for p in points.iter().step_by(7) {
        pst.delete(store, *p)?;
    }
    for _ in 0..15 {
        let x1 = rng.gen_range(-20i64..420);
        let q =
            ThreeSided { x1, x2: x1 + rng.gen_range(0i64..200), y0: rng.gen_range(-20i64..420) };
        let got = pst.query(store, q)?;
        log.push(format!("{q:?}: {}", chaos_ids(got.iter().map(|p| p.id).collect())));
    }
    Ok(())
}

/// Runs a chaos scenario, converting a panic into a counted outcome.
#[allow(clippy::type_complexity)]
fn chaos_run(
    f: ChaosScenario,
    store: &PageStore,
    seed: u64,
) -> (Vec<String>, Result<(), StoreError>, bool) {
    let mut log = Vec::new();
    match catch_unwind(AssertUnwindSafe(|| f(store, seed, &mut log))) {
        Ok(outcome) => (log, outcome, false),
        Err(_) => (log, Ok(()), true),
    }
}

fn e18_chaos_resilience() {
    println!("## E18 — chaos: seeded faults vs the retry/failover/repair layer (§9)\n");
    println!(
        "fixed seed {CHAOS_SEED:#x}; mirrored = 2 replicas, shared seed, phases 0.5 apart\n\
         (transients 1%, torn writes 4%), retries<=6: must be bit-identical to fault-free.\n\
         single = one backend, 1% each of transient/torn/rot faults, default retries: may\n\
         abort, but only cleanly and only after a correct prefix. mismatch + panics stay 0\n"
    );
    const CHAOS_SEED: u64 = 0x00C0_FFEE;
    let scenarios: &[(&str, ChaosScenario)] = &[
        ("btree", chaos_btree),
        ("naive-segtree", chaos_naive_segtree),
        ("cached-segtree", chaos_cached_segtree),
        ("interval-tree", chaos_interval_tree),
        ("segmented-pst", chaos_segmented_pst),
        ("two-level-pst", chaos_two_level_pst),
        ("three-sided-pst", chaos_three_sided),
        ("dynamic-pst", chaos_dynamic_pst),
        ("dynamic-3s-pst", chaos_dynamic_3s),
    ];
    let mut table = Table::new(&[
        "structure", "ops", "injected", "retries", "failovers", "repairs", "clean err",
        "mismatch", "panics",
    ]);
    for &(name, f) in scenarios {
        let golden_store = PageStore::in_memory(PAGE);
        let (golden, outcome, panicked) = chaos_run(f, &golden_store, CHAOS_SEED);
        assert!(outcome.is_ok() && !panicked, "fault-free golden run failed for {name}");

        let (mut mismatches, mut panics) = (0u64, 0u64);

        // Mirrored run: phased silent corruption must be fully masked.
        let plan_a = FaultPlan {
            read_transient_p: 0.01,
            write_transient_p: 0.01,
            torn_write_p: 0.04,
            ..FaultPlan::none(CHAOS_SEED)
        };
        let ra = FaultBackend::new(Box::new(MemBackend::new(PAGE + 8)), plan_a);
        let rb = FaultBackend::new(Box::new(MemBackend::new(PAGE + 8)), plan_a.with_phase(0.5));
        let (ha, hb) = (ra.handle(), rb.handle());
        let mirror = MirrorBackend::new(vec![Box::new(ra), Box::new(rb)]);
        let store = PageStore::new(
            StoreConfig::strict(PAGE).with_retry(RetryPolicy { max_attempts: 6, backoff: None }),
            Box::new(mirror),
        );
        let (log, outcome, panicked) = chaos_run(f, &store, CHAOS_SEED);
        panics += panicked as u64;
        if outcome.is_err() || (!panicked && log != golden) {
            mismatches += 1;
        }
        let s = store.stats();
        let mut injected = ha.injected().total() + hb.injected().total();
        let mut retries = s.retries;

        // Single-backend run: faults may surface, but only as clean errors
        // after a correct prefix.
        let plan = FaultPlan {
            read_transient_p: 0.01,
            write_transient_p: 0.01,
            torn_write_p: 0.01,
            bit_rot_p: 0.01,
            ..FaultPlan::none(CHAOS_SEED)
        };
        let single = FaultBackend::new(Box::new(MemBackend::new(PAGE + 8)), plan);
        let h = single.handle();
        let store = PageStore::new(
            StoreConfig::strict(PAGE).with_retry(RetryPolicy::default()),
            Box::new(single),
        );
        let (log, outcome, panicked) = chaos_run(f, &store, CHAOS_SEED);
        panics += panicked as u64;
        let clean_err = u64::from(!panicked && outcome.is_err());
        let prefix_ok = log.len() <= golden.len() && log[..] == golden[..log.len()];
        if !panicked && !prefix_ok {
            mismatches += 1;
        }
        injected += h.injected().total();
        retries += store.stats().retries;

        table.row(vec![
            name.to_string(),
            golden.len().to_string(),
            injected.to_string(),
            retries.to_string(),
            s.failovers.to_string(),
            s.repairs.to_string(),
            clean_err.to_string(),
            mismatches.to_string(),
            panics.to_string(),
        ]);
    }
    table.print();
}

// ---------------------------------------------------------------------------
// E20: crash durability — group-commit amortization + kill-point matrix
// ---------------------------------------------------------------------------

fn e20_crash_durability() {
    use std::sync::Arc;

    use pc_pagestore::{
        CrashBackend, CrashController, CrashLog, CrashPlan, WalConfig,
    };

    println!("## E20 — crash durability: ARIES-lite WAL, group commit, recovery (§10)\n");

    // Part 1: group commit amortizes one fsync over a whole update batch —
    // the serve layer's Thm 5.1 buffering, applied to durability cost.
    println!(
        "group-commit amortization: 256 page updates on a durable store,\n\
         committed in batches of k; fsyncs/update is the durability overhead\n"
    );
    let mut table = Table::new(&["batch k", "updates", "fsyncs", "fsyncs/update", "max group"]);
    for k in [1u64, 4, 16, 64] {
        let (store, _) = PageStore::in_memory_durable(PAGE);
        let ids: Vec<_> = (0..8).map(|_| store.alloc().unwrap()).collect();
        store.sync().unwrap();
        let base = store.wal_stats().unwrap().fsyncs;
        const UPDATES: u64 = 256;
        for u in 0..UPDATES {
            store.write(ids[(u % 8) as usize], &[u as u8; 128]).unwrap();
            if (u + 1) % k == 0 {
                store.commit_with(&u.to_le_bytes()).unwrap();
            }
        }
        let ws = store.wal_stats().unwrap();
        let fsyncs = ws.fsyncs - base;
        table.row(vec![
            k.to_string(),
            UPDATES.to_string(),
            fsyncs.to_string(),
            f2(fsyncs as f64 / UPDATES as f64),
            ws.max_group.to_string(),
        ]);
    }
    table.print();

    // Part 2: kill-point matrix. A mixed alloc/write/free workload commits
    // six batches over crash-simulated media; we kill it at every durable
    // I/O, recover from the seeded survivors, and check the recovered
    // store equals a committed batch prefix covering every acked batch.
    const SEED: u64 = 0x0dd5_eed5;
    const KPAGE: usize = 64;
    const KFRAME: usize = KPAGE + 8;
    let wal_cfg = WalConfig { checkpoint_bytes: 800 };
    let cfg = || StoreConfig::strict(KPAGE);
    let payload = |b: u8, s: u8| {
        let mut v = vec![b.wrapping_mul(16).wrapping_add(s); KPAGE];
        (v[0], v[1]) = (b, s);
        v
    };
    type PageImage = Vec<(pc_pagestore::PageId, Vec<u8>)>;
    let snapshot = |store: &PageStore| -> PageImage {
        store
            .allocated_pages()
            .into_iter()
            .map(|id| (id, store.read(id).unwrap().to_vec()))
            .collect()
    };
    let workload = |store: &PageStore, snaps: Option<&mut Vec<PageImage>>| -> u64 {
        let mut live = Vec::new();
        let mut acked = 0u64;
        let mut snaps = snaps;
        if let Some(s) = snaps.as_deref_mut() {
            s.push(snapshot(store));
        }
        for b in 0..6u8 {
            let step = || -> pc_pagestore::Result<()> {
                for s in 0..2u8 {
                    let id = store.alloc()?;
                    store.write(id, &payload(b, s))?;
                    live.push(id);
                }
                store.write(live[b as usize % live.len()], &payload(b, 0xF0))?;
                if b % 2 == 1 && live.len() > 3 {
                    store.free(live.remove(0))?;
                }
                store.commit_with(&[b])?;
                Ok(())
            }();
            match step {
                Ok(()) => {
                    acked += 1;
                    if let Some(s) = snaps.as_deref_mut() {
                        s.push(snapshot(store));
                    }
                }
                Err(_) => break,
            }
        }
        acked
    };

    let media = |kill_at: u64| {
        let ctrl = CrashController::new(CrashPlan { seed: SEED, kill_at });
        let backend = Arc::new(CrashBackend::new(KFRAME, ctrl.clone()));
        let log = Arc::new(CrashLog::new(ctrl.clone()));
        (ctrl, backend, log)
    };

    // Counting + reference pass.
    let (ctrl, backend, log) = media(0);
    let (store, _) = PageStore::new_durable(
        cfg(),
        Box::new(Arc::clone(&backend)),
        Box::new(Arc::clone(&log)),
        wal_cfg,
    )
    .unwrap();
    let mut snaps = Vec::new();
    workload(&store, Some(&mut snaps));
    let total = ctrl.ops();
    drop(store);

    let (mut recovered_ok, mut acked_survived, mut torn_tails, mut replayed) =
        (0u64, 0u64, 0u64, 0u64);
    for kill_at in 1..=total {
        let (_, backend, log) = media(kill_at);
        let acked = match PageStore::new_durable(
            cfg(),
            Box::new(Arc::clone(&backend)),
            Box::new(Arc::clone(&log)),
            wal_cfg,
        ) {
            Ok((store, _)) => workload(&store, None),
            Err(_) => 0,
        };
        if let Ok((store, report)) = PageStore::new_durable(
            cfg(),
            Box::new(backend.surviving_backend()),
            Box::new(log.surviving_log()),
            wal_cfg,
        ) {
            recovered_ok += 1;
            torn_tails += u64::from(report.torn_tail);
            replayed += report.replayed_records();
            let state = snapshot(&store);
            if let Some(idx) = snaps.iter().position(|s| s == &state) {
                if idx as u64 >= acked {
                    acked_survived += 1;
                }
            }
        }
    }
    println!(
        "\nkill-point matrix: seed {SEED:#x}, {total} durable I/Os ⇒ {total} kill points\n"
    );
    let mut table = Table::new(&[
        "kill points", "recovered", "acked survived", "torn WAL tails", "records replayed",
    ]);
    table.row(vec![
        total.to_string(),
        format!("{recovered_ok}/{total}"),
        format!("{acked_survived}/{total}"),
        torn_tails.to_string(),
        replayed.to_string(),
    ]);
    table.print();
    assert_eq!(recovered_ok, total, "recovery must succeed at every kill point");
    assert_eq!(acked_survived, total, "every acked batch must survive every kill point");
}
