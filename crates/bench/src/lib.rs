//! Shared utilities for the experiment harness and timing benches.

use std::fmt;

use pc_pagestore::{Interval, Point};
use pc_workloads::{RawInterval, RawPoint};

/// Converts generator output to storage points.
pub fn to_points(raw: &[RawPoint]) -> Vec<Point> {
    raw.iter().map(|&(x, y, id)| Point::new(x, y, id)).collect()
}

/// Converts generator output to storage intervals.
pub fn to_intervals(raw: &[RawInterval]) -> Vec<Interval> {
    raw.iter().map(|&(lo, hi, id)| Interval::new(lo, hi, id)).collect()
}

/// Simple fixed-width markdown table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends one row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Prints the table as GitHub-flavored markdown.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let padded: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect();
            println!("| {} |", padded.join(" | "));
        };
        line(&self.headers);
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        println!("|-{}-|", sep.join("-|-"));
        for row in &self.rows {
            line(row);
        }
        println!();
    }
}

/// Minimal JSON value for machine-readable benchmark artifacts (e.g.
/// `BENCH_pool.json`). The workspace is hermetic — no serde — so this is a
/// small hand-rolled emitter; it only needs to *write* JSON, never parse.
#[derive(Debug, Clone)]
pub enum Json {
    /// A boolean.
    Bool(bool),
    /// A float (serialized with enough precision to round-trip).
    Num(f64),
    /// An unsigned integer.
    Int(u64),
    /// A string (escaped on output).
    Str(String),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }
}

fn write_json_str(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Bool(v) => write!(f, "{v}"),
            Json::Num(v) if v.is_finite() => write!(f, "{v}"),
            Json::Num(_) => f.write_str("null"),
            Json::Int(v) => write!(f, "{v}"),
            Json::Str(s) => write_json_str(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_json_str(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// `log_base(n)`, at least 1 — the predicted navigation term.
pub fn log_base(n: f64, base: f64) -> f64 {
    (n.max(2.0).ln() / base.max(2.0).ln()).max(1.0)
}

/// Formats a float to one decimal.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

/// Formats a float to two decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_emitter_produces_valid_json() {
        let j = Json::obj(vec![
            ("name", Json::Str("pool \"scaling\"\n".into())),
            ("threads", Json::Arr(vec![Json::Int(1), Json::Int(8)])),
            ("ratio", Json::Num(2.5)),
            ("bad", Json::Num(f64::NAN)),
        ]);
        assert_eq!(
            j.to_string(),
            r#"{"name":"pool \"scaling\"\n","threads":[1,8],"ratio":2.5,"bad":null}"#
        );
    }
}
