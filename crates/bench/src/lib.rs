//! Shared utilities for the experiment harness and timing benches.

use pc_pagestore::{Interval, Point};
use pc_workloads::{RawInterval, RawPoint};

/// Converts generator output to storage points.
pub fn to_points(raw: &[RawPoint]) -> Vec<Point> {
    raw.iter().map(|&(x, y, id)| Point::new(x, y, id)).collect()
}

/// Converts generator output to storage intervals.
pub fn to_intervals(raw: &[RawInterval]) -> Vec<Interval> {
    raw.iter().map(|&(lo, hi, id)| Interval::new(lo, hi, id)).collect()
}

/// Simple fixed-width markdown table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends one row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Prints the table as GitHub-flavored markdown.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let padded: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect();
            println!("| {} |", padded.join(" | "));
        };
        line(&self.headers);
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        println!("|-{}-|", sep.join("-|-"));
        for row in &self.rows {
            line(row);
        }
        println!();
    }
}

/// `log_base(n)`, at least 1 — the predicted navigation term.
pub fn log_base(n: f64, base: f64) -> f64 {
    (n.max(2.0).ln() / base.max(2.0).ln()).max(1.0)
}

/// Formats a float to one decimal.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

/// Formats a float to two decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}
