//! Criterion wall-clock microbenchmarks: one group per structure family.
//!
//! These complement the I/O-count experiment harness (`experiments` bin):
//! the paper's claims are about page transfers, but wall-clock numbers
//! confirm the implementations are also computationally reasonable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pc_bench::{to_intervals, to_points};
use pc_btree::BTree;
use pc_intervaltree::ExternalIntervalTree;
use pc_pagestore::PageStore;
use pc_pst::{NaivePst, SegmentedPst, ThreeSided, ThreeSidedPst, TwoLevelPst, TwoSided};
use pc_segtree::{CachedSegmentTree, NaiveSegmentTree};
use pc_workloads::{
    gen_intervals, gen_points, gen_range_1d, gen_stabbing, gen_three_sided, gen_two_sided,
    IntervalDist, PointDist,
};

const PAGE: usize = 4096;
const N: usize = 100_000;

fn bench_btree(c: &mut Criterion) {
    let store = PageStore::in_memory(PAGE);
    let keys: Vec<i64> = (0..N as i64).map(|k| k * 3).collect();
    let entries: Vec<(i64, u64)> = keys.iter().map(|&k| (k, k as u64)).collect();
    let tree = BTree::bulk_build(&store, &entries).unwrap();
    let ranges = gen_range_1d(&keys, 64, 2_000, 1);

    let mut g = c.benchmark_group("btree");
    g.bench_function("point_get", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % keys.len();
            tree.get(&store, &keys[i]).unwrap()
        })
    });
    g.bench_function("range_2k", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % ranges.len();
            tree.range(&store, &ranges[i].lo, &ranges[i].hi).unwrap()
        })
    });
    g.finish();
}

fn bench_segment_trees(c: &mut Criterion) {
    let raw = gen_intervals(N / 2, IntervalDist::UniformLen { max_len: 20_000 }, 2);
    let intervals = to_intervals(&raw);
    let store = PageStore::in_memory(PAGE);
    let naive = NaiveSegmentTree::build(&store, &intervals).unwrap();
    let cached = CachedSegmentTree::build(&store, &intervals).unwrap();
    let itree = ExternalIntervalTree::build(&store, &intervals).unwrap();
    let stabs = gen_stabbing(&raw, 64, 3);

    let mut g = c.benchmark_group("stabbing");
    g.bench_function("segtree_naive", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % stabs.len();
            naive.stab(&store, stabs[i].q).unwrap()
        })
    });
    g.bench_function("segtree_cached", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % stabs.len();
            cached.stab(&store, stabs[i].q).unwrap()
        })
    });
    g.bench_function("interval_tree", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % stabs.len();
            itree.stab(&store, stabs[i].q).unwrap()
        })
    });
    g.finish();
}

fn bench_pst_variants(c: &mut Criterion) {
    let raw = gen_points(N, PointDist::Uniform, 4);
    let points = to_points(&raw);
    let store = PageStore::in_memory(PAGE);
    let naive = NaivePst::build(&store, &points).unwrap();
    let seg = SegmentedPst::build(&store, &points).unwrap();
    let two = TwoLevelPst::build(&store, &points).unwrap();
    let queries = gen_two_sided(&raw, 64, 2_000, 5);

    let mut g = c.benchmark_group("two_sided");
    g.bench_with_input(BenchmarkId::new("naive", N), &queries, |b, qs| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % qs.len();
            naive.query(&store, TwoSided { x0: qs[i].x0, y0: qs[i].y0 }).unwrap()
        })
    });
    g.bench_with_input(BenchmarkId::new("segmented", N), &queries, |b, qs| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % qs.len();
            seg.query(&store, TwoSided { x0: qs[i].x0, y0: qs[i].y0 }).unwrap()
        })
    });
    g.bench_with_input(BenchmarkId::new("two_level", N), &queries, |b, qs| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % qs.len();
            two.query(&store, TwoSided { x0: qs[i].x0, y0: qs[i].y0 }).unwrap()
        })
    });
    g.finish();
}

fn bench_three_sided(c: &mut Criterion) {
    let raw = gen_points(N, PointDist::Uniform, 6);
    let points = to_points(&raw);
    let store = PageStore::in_memory(PAGE);
    let pst = ThreeSidedPst::build(&store, &points).unwrap();
    let queries = gen_three_sided(&raw, 64, 2_000, 7);

    c.bench_function("three_sided/query", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % queries.len();
            pst.query(
                &store,
                ThreeSided { x1: queries[i].x1, x2: queries[i].x2, y0: queries[i].y0 },
            )
            .unwrap()
        })
    });
}

fn bench_dynamic_updates(c: &mut Criterion) {
    use pc_pagestore::Point;
    use pc_pst::DynamicPst;
    let raw = gen_points(50_000, PointDist::Uniform, 8);
    let points = to_points(&raw);
    let store = PageStore::in_memory(PAGE);
    let mut pst = DynamicPst::build(&store, &points).unwrap();
    let mut next_id = 10_000_000u64;
    let mut seed = 0x1234_5678u64;
    c.bench_function("dynamic/insert", |b| {
        b.iter(|| {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            let p = Point::new((seed % 1_000_000) as i64, ((seed >> 20) % 1_000_000) as i64, next_id);
            next_id += 1;
            pst.insert(&store, p).unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_btree, bench_segment_trees, bench_pst_variants, bench_three_sided, bench_dynamic_updates
}
criterion_main!(benches);
