//! Wall-clock microbenchmarks: one group per structure family, on a
//! self-contained timing harness (no Criterion — the workspace builds with
//! zero registry dependencies; see "Hermetic build" in README.md).
//!
//! These complement the I/O-count experiment harness (`experiments` bin):
//! the paper's claims are about page transfers, but wall-clock numbers
//! confirm the implementations are also computationally reasonable.
//!
//! Run with `cargo bench --bench structures [-- <name-filter>]`. Each
//! benchmark is auto-calibrated to ~25 ms per sample; the harness reports
//! the median, minimum, and maximum ns/iteration over 11 samples.

use std::hint::black_box;
use std::time::{Duration, Instant};

use pc_bench::{to_intervals, to_points};
use pc_btree::BTree;
use pc_intervaltree::ExternalIntervalTree;
use pc_pagestore::PageStore;
use pc_pst::{NaivePst, SegmentedPst, ThreeSided, ThreeSidedPst, TwoLevelPst, TwoSided};
use pc_segtree::{CachedSegmentTree, NaiveSegmentTree};
use pc_workloads::{
    gen_intervals, gen_points, gen_range_1d, gen_stabbing, gen_three_sided, gen_two_sided,
    IntervalDist, PointDist,
};

const PAGE: usize = 4096;
const N: usize = 100_000;

/// Minimal fixed-time benchmark runner.
struct Harness {
    filter: Option<String>,
    samples: usize,
    target_sample: Duration,
    ran: std::cell::Cell<usize>,
}

impl Harness {
    fn from_args() -> Self {
        // `cargo bench` invokes the target with `--bench`; any non-flag
        // argument is treated as a substring filter on benchmark names.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Harness {
            filter,
            samples: 11,
            target_sample: Duration::from_millis(25),
            ran: std::cell::Cell::new(0),
        }
    }

    /// Times `f`, printing median/min/max ns per iteration.
    fn bench<R>(&self, name: &str, mut f: impl FnMut() -> R) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        self.ran.set(self.ran.get() + 1);
        // Calibrate: grow the batch size until one batch exceeds ~1/4 of
        // the sample target, then scale to the target.
        let mut batch: u64 = 1;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.target_sample / 4 || batch >= 1 << 30 {
                break elapsed.as_nanos().max(1) as u64 / batch;
            }
            batch *= 4;
        };
        let iters = (self.target_sample.as_nanos() as u64 / per_iter.max(1)).clamp(1, 1 << 32);
        let mut samples_ns: Vec<u64> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                start.elapsed().as_nanos() as u64 / iters
            })
            .collect();
        samples_ns.sort_unstable();
        println!(
            "{:<28} {:>12} ns/iter (min {:>10}, max {:>10}, {} iters x {} samples)",
            name,
            samples_ns[samples_ns.len() / 2],
            samples_ns[0],
            samples_ns[samples_ns.len() - 1],
            iters,
            self.samples
        );
    }
}

fn bench_btree(h: &Harness) {
    let store = PageStore::in_memory(PAGE);
    let keys: Vec<i64> = (0..N as i64).map(|k| k * 3).collect();
    let entries: Vec<(i64, u64)> = keys.iter().map(|&k| (k, k as u64)).collect();
    let tree = BTree::bulk_build(&store, &entries).unwrap();
    let ranges = gen_range_1d(&keys, 64, 2_000, 1);

    let mut i = 0usize;
    h.bench("btree/point_get", || {
        i = (i + 1) % keys.len();
        tree.get(&store, &keys[i]).unwrap()
    });
    let mut i = 0usize;
    h.bench("btree/range_2k", || {
        i = (i + 1) % ranges.len();
        tree.range(&store, &ranges[i].lo, &ranges[i].hi).unwrap()
    });
}

fn bench_segment_trees(h: &Harness) {
    let raw = gen_intervals(N / 2, IntervalDist::UniformLen { max_len: 20_000 }, 2);
    let intervals = to_intervals(&raw);
    let store = PageStore::in_memory(PAGE);
    let naive = NaiveSegmentTree::build(&store, &intervals).unwrap();
    let cached = CachedSegmentTree::build(&store, &intervals).unwrap();
    let itree = ExternalIntervalTree::build(&store, &intervals).unwrap();
    let stabs = gen_stabbing(&raw, 64, 3);

    let mut i = 0usize;
    h.bench("stabbing/segtree_naive", || {
        i = (i + 1) % stabs.len();
        naive.stab(&store, stabs[i].q).unwrap()
    });
    let mut i = 0usize;
    h.bench("stabbing/segtree_cached", || {
        i = (i + 1) % stabs.len();
        cached.stab(&store, stabs[i].q).unwrap()
    });
    let mut i = 0usize;
    h.bench("stabbing/interval_tree", || {
        i = (i + 1) % stabs.len();
        itree.stab(&store, stabs[i].q).unwrap()
    });
}

fn bench_pst_variants(h: &Harness) {
    let raw = gen_points(N, PointDist::Uniform, 4);
    let points = to_points(&raw);
    let store = PageStore::in_memory(PAGE);
    let naive = NaivePst::build(&store, &points).unwrap();
    let seg = SegmentedPst::build(&store, &points).unwrap();
    let two = TwoLevelPst::build(&store, &points).unwrap();
    let queries = gen_two_sided(&raw, 64, 2_000, 5);

    let mut i = 0usize;
    h.bench("two_sided/naive", || {
        i = (i + 1) % queries.len();
        naive.query(&store, TwoSided { x0: queries[i].x0, y0: queries[i].y0 }).unwrap()
    });
    let mut i = 0usize;
    h.bench("two_sided/segmented", || {
        i = (i + 1) % queries.len();
        seg.query(&store, TwoSided { x0: queries[i].x0, y0: queries[i].y0 }).unwrap()
    });
    let mut i = 0usize;
    h.bench("two_sided/two_level", || {
        i = (i + 1) % queries.len();
        two.query(&store, TwoSided { x0: queries[i].x0, y0: queries[i].y0 }).unwrap()
    });
}

fn bench_three_sided(h: &Harness) {
    let raw = gen_points(N, PointDist::Uniform, 6);
    let points = to_points(&raw);
    let store = PageStore::in_memory(PAGE);
    let pst = ThreeSidedPst::build(&store, &points).unwrap();
    let queries = gen_three_sided(&raw, 64, 2_000, 7);

    let mut i = 0usize;
    h.bench("three_sided/query", || {
        i = (i + 1) % queries.len();
        pst.query(
            &store,
            ThreeSided { x1: queries[i].x1, x2: queries[i].x2, y0: queries[i].y0 },
        )
        .unwrap()
    });
}

fn bench_dynamic_updates(h: &Harness) {
    use pc_pagestore::Point;
    use pc_pst::DynamicPst;
    let raw = gen_points(50_000, PointDist::Uniform, 8);
    let points = to_points(&raw);
    let store = PageStore::in_memory(PAGE);
    let mut pst = DynamicPst::build(&store, &points).unwrap();
    let mut next_id = 10_000_000u64;
    let mut rng = pc_rng::Rng::seed_from_u64(0x1234_5678);
    h.bench("dynamic/insert", || {
        let p = Point::new(
            rng.gen_range(0i64..1_000_000),
            rng.gen_range(0i64..1_000_000),
            next_id,
        );
        next_id += 1;
        pst.insert(&store, p).unwrap()
    });
}

fn main() {
    let h = Harness::from_args();
    bench_btree(&h);
    bench_segment_trees(&h);
    bench_pst_variants(&h);
    bench_three_sided(&h);
    bench_dynamic_updates(&h);
    if h.ran.get() == 0 {
        if let Some(filter) = &h.filter {
            eprintln!("no benchmark names contain {filter:?}");
            std::process::exit(1);
        }
    }
}
