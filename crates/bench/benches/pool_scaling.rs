//! Buffer-pool scaling benchmark: sharded vs single-mutex pool under
//! concurrent readers, plus an adversarial all-one-shard workload.
//!
//! Two configurations at *equal total capacity*:
//!   * `single` — 1 shard, the classic global-mutex pool;
//!   * `sharded` — auto-sized power-of-two shard count.
//!
//! The uniform workload keeps the working set fully resident, so every
//! read is a pool hit: the measurement isolates lock contention and the
//! zero-copy hand-out, which is exactly what sharding is supposed to fix.
//! The adversarial workload picks pages that all hash to one shard of the
//! sharded pool — its worst case, which must stay comparable to the
//! single-lock pool (it *is* a single lock then, just with a smaller ring).
//!
//! Writes a machine-readable `BENCH_pool.json` (override the path with
//! `PC_BENCH_OUT`) so later PRs have a perf trajectory to compare against:
//! median ns/op per thread count for both pools, hit rates, speedups.
//! `PC_BENCH_OPS` scales the per-thread op count (default 100000).
//!
//! Run with `cargo bench --bench pool_scaling` or `scripts/verify.sh
//! --bench`. Note: the ≥3× 8-thread scaling win needs ≥8 hardware
//! threads; on smaller hosts the speedup column degrades toward 1× because
//! timeslicing serializes the threads anyway.

use std::hint::black_box;
use std::time::Instant;

use pc_bench::Json;
use pc_pagestore::{PageId, PageStore};
use pc_rng::Rng;

const PAGE: usize = 4096;
const POOL_PAGES: usize = 4096;
const WORKING_SET: usize = 2048;
const SAMPLES: usize = 5;
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn ops_per_thread() -> usize {
    std::env::var("PC_BENCH_OPS").ok().and_then(|v| v.parse().ok()).unwrap_or(100_000)
}

/// Builds a pooled store whose whole working set is resident, so the
/// benchmark measures the hit path only.
fn build_store(shards: usize) -> (PageStore, Vec<PageId>) {
    let store = PageStore::in_memory_pooled_sharded(PAGE, POOL_PAGES, shards);
    let ids: Vec<PageId> = (0..WORKING_SET)
        .map(|i| {
            let id = store.alloc().unwrap();
            store.write(id, &[(i % 251) as u8; 64]).unwrap();
            id
        })
        .collect();
    for &id in &ids {
        store.read(id).unwrap();
    }
    store.reset_stats();
    (store, ids)
}

/// Runs `threads` readers doing `ops` random reads each over `ids`;
/// returns the median wall-clock ns per read across samples.
fn measure(store: &PageStore, ids: &[PageId], threads: usize, ops: usize) -> u64 {
    let mut samples: Vec<u64> = (0..SAMPLES)
        .map(|sample| {
            let start = Instant::now();
            std::thread::scope(|s| {
                for t in 0..threads {
                    let mut rng =
                        Rng::seed_from_u64(0xB00C_0000 + (sample * threads + t) as u64);
                    s.spawn(move || {
                        let mut acc = 0u64;
                        for _ in 0..ops {
                            let id = ids[rng.gen_range(0usize..ids.len())];
                            let page = store.read(id).unwrap();
                            acc ^= u64::from(page[0]);
                        }
                        black_box(acc);
                    });
                }
            });
            start.elapsed().as_nanos() as u64 / (threads * ops) as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Hit rate observed by the store since the last `reset_stats`.
fn hit_rate(store: &PageStore) -> f64 {
    let s = store.stats();
    if s.reads + s.cache_hits == 0 {
        return 0.0;
    }
    s.cache_hits as f64 / (s.reads + s.cache_hits) as f64
}

fn main() {
    let ops = ops_per_thread();
    let (single, single_ids) = build_store(1);
    let (sharded, sharded_ids) = build_store(0);
    let shard_count = sharded.pool_shards();
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!(
        "pool_scaling: {POOL_PAGES} frames, working set {WORKING_SET} pages, \
         sharded={shard_count} shards, {cores} hardware threads, {ops} ops/thread\n"
    );

    println!(
        "{:>8} {:>16} {:>16} {:>9}",
        "threads", "single ns/op", "sharded ns/op", "speedup"
    );
    let mut uniform_rows: Vec<Json> = Vec::new();
    let mut speedup_8t = 0.0f64;
    for &threads in &THREAD_COUNTS {
        let single_ns = measure(&single, &single_ids, threads, ops);
        let single_hits = hit_rate(&single);
        single.reset_stats();
        let sharded_ns = measure(&sharded, &sharded_ids, threads, ops);
        let sharded_hits = hit_rate(&sharded);
        sharded.reset_stats();
        let speedup = single_ns as f64 / sharded_ns.max(1) as f64;
        if threads == 8 {
            speedup_8t = speedup;
        }
        println!("{threads:>8} {single_ns:>16} {sharded_ns:>16} {speedup:>8.2}x");
        uniform_rows.push(Json::obj(vec![
            ("threads", Json::Int(threads as u64)),
            ("single_ns_per_op", Json::Int(single_ns)),
            ("sharded_ns_per_op", Json::Int(sharded_ns)),
            ("speedup", Json::Num(speedup)),
            ("single_hit_rate", Json::Num(single_hits)),
            ("sharded_hit_rate", Json::Num(sharded_hits)),
        ]));
    }

    // Adversarial: every page hashes to one shard of the sharded pool, so
    // its parallelism collapses to one lock — it must not be slower than
    // the global-lock pool on the same ids.
    let target_shard = 0usize;
    let hot_ids: Vec<PageId> = sharded_ids
        .iter()
        .copied()
        .filter(|&id| sharded.pool_shard_of(id) == Some(target_shard))
        .collect();
    assert!(!hot_ids.is_empty(), "working set must cover shard {target_shard}");
    let adv_threads = 8usize;
    let adv_single_ns = measure(&single, &hot_ids, adv_threads, ops);
    single.reset_stats();
    let adv_sharded_ns = measure(&sharded, &hot_ids, adv_threads, ops);
    sharded.reset_stats();
    let adv_ratio = adv_sharded_ns as f64 / adv_single_ns.max(1) as f64;
    println!(
        "\nadversarial same-shard ({} pages on shard {target_shard}, {adv_threads} threads): \
         single {adv_single_ns} ns/op, sharded {adv_sharded_ns} ns/op, ratio {adv_ratio:.2} \
         (<= ~1 means no regression)",
        hot_ids.len()
    );

    let report = Json::obj(vec![
        ("bench", Json::Str("pool_scaling".into())),
        ("page_size", Json::Int(PAGE as u64)),
        ("pool_pages", Json::Int(POOL_PAGES as u64)),
        ("working_set", Json::Int(WORKING_SET as u64)),
        ("shards", Json::Int(shard_count as u64)),
        ("hardware_threads", Json::Int(cores as u64)),
        ("ops_per_thread", Json::Int(ops as u64)),
        ("uniform", Json::Arr(uniform_rows)),
        (
            "adversarial_same_shard",
            Json::obj(vec![
                ("threads", Json::Int(adv_threads as u64)),
                ("pages", Json::Int(hot_ids.len() as u64)),
                ("single_ns_per_op", Json::Int(adv_single_ns)),
                ("sharded_ns_per_op", Json::Int(adv_sharded_ns)),
                ("ratio", Json::Num(adv_ratio)),
            ]),
        ),
        ("speedup_8t", Json::Num(speedup_8t)),
    ]);
    // Default to the workspace root (cargo runs benches with the package
    // dir as cwd), so the artifact lands next to EXPERIMENTS.md.
    let out = std::env::var("PC_BENCH_OUT")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pool.json").into());
    std::fs::write(&out, format!("{report}\n")).expect("write benchmark artifact");
    println!("\nwrote {out}");
}
