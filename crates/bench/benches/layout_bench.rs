//! Physical-layout benchmark: build-order vs van Emde Boas repacked
//! page placement, measured as wall-clock point-lookup latency against a
//! real file-backed store with no buffer pool.
//!
//! The strict-model I/O accounting that gates the experiments is
//! placement-blind: a transfer costs 1 no matter where the page sits.
//! This bench is the wall-clock complement — it builds a B-tree with a
//! shuffled insertion order (so build-order page placement is scattered),
//! repacks it into a fresh file in vEB order, and times random `get`s
//! against both files. Rounds alternate which store is measured first,
//! and before every measured pass the bench syncs and tries to drop the
//! OS page cache (`/proc/sys/vm/drop_caches`; needs root). When the drop
//! fails the run is warm-cache and the layouts should tie (`ratio ≈ 1`);
//! when it works the repacked file benefits from readahead locality. The
//! `cold_cache` flag in the artifact records which regime was measured.
//!
//! Writes a machine-readable `BENCH_layout.json` (override the path with
//! `PC_BENCH_OUT`). `PC_BENCH_QUERIES` scales the per-round query count
//! (default 2000). Run with `cargo bench --bench layout_bench` or
//! `scripts/verify.sh --layout`.

use std::hint::black_box;
use std::path::{Path, PathBuf};
use std::time::Instant;

use pc_bench::Json;
use pc_btree::BTree;
use pc_pagestore::PageStore;
use pc_rng::Rng;

const PAGE: usize = 4096;
const NS: [usize; 3] = [20_000, 100_000, 400_000];
const ROUNDS: usize = 9;

fn queries_per_round() -> usize {
    std::env::var("PC_BENCH_QUERIES").ok().and_then(|v| v.parse().ok()).unwrap_or(2000)
}

/// Syncs dirty pages and drops the OS page cache. Returns false when the
/// drop is not permitted (non-root / sandboxed), i.e. warm-cache mode.
fn drop_os_cache() -> bool {
    let _ = std::process::Command::new("sync").status();
    std::fs::write("/proc/sys/vm/drop_caches", "3").is_ok()
}

/// Builds a B-tree over `n` shuffled keys in a file-backed store, so the
/// logical key order is scattered across physical pages.
fn build_scattered(path: &Path, n: usize, seed: u64) -> (PageStore, BTree<i64, u64>) {
    let store = PageStore::file(path, PAGE).expect("create build-order store");
    let mut keys: Vec<i64> = (0..n as i64).map(|k| k * 2).collect();
    let mut rng = Rng::seed_from_u64(seed);
    for i in (1..keys.len()).rev() {
        keys.swap(i, rng.gen_range(0usize..i + 1));
    }
    let mut tree = BTree::new(&store).expect("btree root");
    for &k in &keys {
        tree.insert(&store, k, k as u64).expect("insert");
    }
    (store, tree)
}

/// Times `queries` random point lookups; returns ns per query.
fn measure(store: &PageStore, tree: &BTree<i64, u64>, n: usize, queries: usize, seed: u64) -> u64 {
    let mut rng = Rng::seed_from_u64(seed);
    let start = Instant::now();
    for _ in 0..queries {
        let key = 2 * rng.gen_range(0..n as u64) as i64;
        let hit = tree.get(store, &key).expect("get").expect("key present");
        black_box(hit);
    }
    start.elapsed().as_nanos() as u64 / queries as u64
}

fn median(mut xs: Vec<u64>) -> u64 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

fn main() {
    let queries = queries_per_round();
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let dir: PathBuf =
        std::env::temp_dir().join(format!("pc_layout_bench_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create bench dir");
    println!(
        "layout_bench: page {PAGE}, {queries} queries/round, {ROUNDS} rounds, \
         {cores} hardware threads, files under {}\n",
        dir.display()
    );
    println!(
        "{:>9} {:>8} {:>16} {:>17} {:>7}",
        "n", "pages", "build ns/query", "packed ns/query", "ratio"
    );

    let mut rows: Vec<Json> = Vec::new();
    let mut cold = true;
    let mut ratio_largest = 0.0f64;
    for (i, &n) in NS.iter().enumerate() {
        let build_path = dir.join(format!("build_{n}.db"));
        let packed_path = dir.join(format!("packed_{n}.db"));
        let (src, tree) = build_scattered(&build_path, n, 0x1a70_u64 ^ n as u64);
        let dst = PageStore::file(&packed_path, PAGE).expect("create repacked store");
        let packed = tree.repack(&src, &dst).expect("repack");
        assert_eq!(dst.live_pages(), src.live_pages(), "repack must copy every page");

        let mut build_ns = Vec::with_capacity(ROUNDS);
        let mut packed_ns = Vec::with_capacity(ROUNDS);
        for round in 0..ROUNDS {
            let seed = 0xbe1c_0000 + (i * ROUNDS + round) as u64;
            // Alternate measurement order to cancel drift.
            if round % 2 == 0 {
                cold &= drop_os_cache();
                build_ns.push(measure(&src, &tree, n, queries, seed));
                cold &= drop_os_cache();
                packed_ns.push(measure(&dst, &packed, n, queries, seed));
            } else {
                cold &= drop_os_cache();
                packed_ns.push(measure(&dst, &packed, n, queries, seed));
                cold &= drop_os_cache();
                build_ns.push(measure(&src, &tree, n, queries, seed));
            }
        }
        let b = median(build_ns);
        let p = median(packed_ns);
        let ratio = p as f64 / b.max(1) as f64;
        ratio_largest = ratio;
        println!("{n:>9} {:>8} {b:>16} {p:>17} {ratio:>7.3}", src.live_pages());
        rows.push(Json::obj(vec![
            ("n", Json::Int(n as u64)),
            ("pages", Json::Int(src.live_pages())),
            ("build_ns_per_query", Json::Int(b)),
            ("packed_ns_per_query", Json::Int(p)),
            ("ratio", Json::Num(ratio)),
        ]));
    }

    println!(
        "\ncold_cache={cold} (page-cache drop {}), largest-n ratio {ratio_largest:.3} \
         (<= ~1 means the repacked layout is no slower)",
        if cold { "succeeded" } else { "unavailable — warm-cache run" }
    );

    let report = Json::obj(vec![
        ("bench", Json::Str("layout".into())),
        ("page_size", Json::Int(PAGE as u64)),
        ("hardware_threads", Json::Int(cores as u64)),
        ("pool_pages", Json::Int(0)),
        ("cold_cache", Json::Bool(cold)),
        ("queries_per_round", Json::Int(queries as u64)),
        ("rounds", Json::Int(ROUNDS as u64)),
        ("rows", Json::Arr(rows)),
        ("ratio_largest_n", Json::Num(ratio_largest)),
    ]);
    let out = std::env::var("PC_BENCH_OUT")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_layout.json").into());
    std::fs::write(&out, format!("{report}\n")).expect("write benchmark artifact");
    println!("wrote {out}");
    let _ = std::fs::remove_dir_all(&dir);
}
