//! Observability overhead benchmark (pc-obs).
//!
//! The `obs` feature's contract is that the *disabled* mode costs nothing:
//! every `span!` / `add_items` / `record_io` call site compiles to an
//! inert no-op. This bench pins that contract with a same-binary A/B
//! measurement:
//!
//!   * `baseline` — a query loop against a fully resident pooled store;
//!   * `instrumented` — the identical loop with an explicit extra span
//!     opened and an item reported around every operation, i.e. the
//!     *marginal* cost of one span.
//!
//! Samples are interleaved (baseline, instrumented, baseline, …) so clock
//! drift hits both arms equally; medians are reported. With `obs` off the
//! marginal cost must vanish (`scripts/verify.sh --bench` gates it at
//! ≤ 1%); with `obs` on the same number is the real per-span price, which
//! EXPERIMENTS.md documents rather than gates.
//!
//! Writes `BENCH_obs.json` (override with `PC_BENCH_OUT`); verify.sh runs
//! the bench in both modes and merges the two reports into one artifact.
//! `PC_BENCH_OPS` scales the op count (default 200000).

use std::hint::black_box;
use std::time::Instant;

use pc_bench::Json;
use pc_btree::BTree;
use pc_pagestore::PageStore;
use pc_rng::Rng;

const PAGE: usize = 4096;
const POOL_PAGES: usize = 4096;
const KEYS: i64 = 50_000;
const SAMPLES: usize = 7;

fn ops() -> usize {
    std::env::var("PC_BENCH_OPS").ok().and_then(|v| v.parse().ok()).unwrap_or(200_000)
}

fn build() -> (PageStore, BTree<i64, u64>) {
    let store = PageStore::in_memory_pooled(PAGE, POOL_PAGES);
    let entries: Vec<(i64, u64)> = (0..KEYS).map(|k| (k * 3, k as u64)).collect();
    let tree = BTree::bulk_build(&store, &entries).unwrap();
    // Touch everything once so the measurement loop sees only pool hits.
    for k in 0..KEYS {
        tree.get(&store, &(k * 3)).unwrap();
    }
    (store, tree)
}

/// One timed pass of `n` point lookups; `extra_span` adds the explicit
/// span + item report whose marginal cost we are measuring.
fn pass(store: &PageStore, tree: &BTree<i64, u64>, n: usize, extra_span: bool) -> u64 {
    let mut rng = Rng::seed_from_u64(0x0B5_0B5);
    let start = Instant::now();
    for _ in 0..n {
        let k = rng.gen_range(0i64..KEYS) * 3;
        let v = if extra_span {
            let _span = pc_obs::span!("bench_overhead_probe");
            let v = tree.get(store, &k).unwrap();
            pc_obs::add_items(1);
            v
        } else {
            tree.get(store, &k).unwrap()
        };
        black_box(v);
    }
    start.elapsed().as_nanos() as u64 / n as u64
}

fn median(mut v: Vec<u64>) -> u64 {
    v.sort_unstable();
    v[v.len() / 2]
}

fn main() {
    let n = ops();
    let (store, tree) = build();
    let enabled = pc_obs::enabled();
    println!(
        "obs_overhead: obs {} | {KEYS} keys resident, {n} lookups/sample, {SAMPLES} samples",
        if enabled { "ENABLED" } else { "disabled" }
    );

    // Warm both paths before sampling.
    pass(&store, &tree, n / 10, false);
    pass(&store, &tree, n / 10, true);

    let mut base = Vec::with_capacity(SAMPLES);
    let mut instr = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        base.push(pass(&store, &tree, n, false));
        instr.push(pass(&store, &tree, n, true));
    }
    let base_ns = median(base);
    let instr_ns = median(instr);
    let overhead_pct = (instr_ns as f64 - base_ns as f64) * 100.0 / base_ns.max(1) as f64;

    println!("baseline      {base_ns:>6} ns/op");
    println!("instrumented  {instr_ns:>6} ns/op");
    println!("marginal span overhead: {overhead_pct:+.2}%");

    let report = Json::obj(vec![
        ("bench", Json::Str("obs_overhead".into())),
        ("obs_enabled", Json::Str(if enabled { "true".into() } else { "false".into() })),
        ("page_size", Json::Int(PAGE as u64)),
        (
            "hardware_threads",
            Json::Int(std::thread::available_parallelism().map_or(1, |p| p.get()) as u64),
        ),
        ("keys", Json::Int(KEYS as u64)),
        ("ops", Json::Int(n as u64)),
        ("baseline_ns_per_op", Json::Int(base_ns)),
        ("instrumented_ns_per_op", Json::Int(instr_ns)),
        ("overhead_pct", Json::Num(overhead_pct)),
    ]);
    // Default to the workspace root (cargo runs benches with the package
    // dir as cwd), so the artifact lands next to EXPERIMENTS.md.
    let out = std::env::var("PC_BENCH_OUT")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json").into());
    std::fs::write(&out, format!("{report}\n")).expect("write benchmark artifact");
    println!("wrote {out}");
}
