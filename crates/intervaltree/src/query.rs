//! Stabbing queries over the external interval tree.

use std::collections::HashMap;

use pc_pagestore::layout::BlockList;
use pc_pagestore::{Interval, PageStore, Result};
use pc_segtree::CachedSegmentTree;

use crate::build::{decode_record, CacheEntry, ExternalIntervalTree, NodeRecord};

impl ExternalIntervalTree {
    /// Stabbing query: every interval containing `q`, in `O(log_B n + t/B)`
    /// I/Os.
    pub fn stab(&self, store: &PageStore, q: i64) -> Result<Vec<Interval>> {
        Ok(self.stab_with_ios(store, q)?.0)
    }

    /// Stabbing query returning `(results, page_reads)` for the experiment
    /// harness.
    pub fn stab_with_ios(&self, store: &PageStore, q: i64) -> Result<(Vec<Interval>, u64)> {
        let _span = pc_obs::span!("ivtree_stab");
        let before = store.stats();
        let cap_iv = BlockList::<Interval>::capacity(store.page_size());
        pc_obs::set_block_capacity(cap_iv as u64);
        let mut results = Vec::new();

        let mut cur_page = self.root_page;
        let mut skeletal_depth = 0u64;
        let mut page = {
            let _lvl = pc_obs::span!("level", skeletal_depth);
            store.read(cur_page)?
        };
        let mut slot = 0u16;
        // In-page strict ancestors of the current node, keyed by slot.
        let mut inpage: HashMap<u16, (BlockList<Interval>, BlockList<Interval>)> =
            HashMap::new();
        loop {
            match decode_record(&page, slot)? {
                NodeRecord::Internal { boundary, left, right, l_list, r_list, anc_l, anc_r } => {
                    if q == boundary {
                        // Every interval at this node contains q; nothing
                        // below this node can (left subtree: hi < q; right
                        // subtree: lo > q).
                        self.drain_caches(store, q, cap_iv, &anc_l, &anc_r, &inpage, &mut results)?;
                        let _scan = pc_obs::span!(output: "cover_list");
                        for block in l_list.blocks(store) {
                            let block = block?;
                            pc_obs::add_items(block.len() as u64);
                            results.extend(block);
                        }
                        break;
                    }
                    let goes_left = q < boundary;
                    let next = if goes_left { left } else { right };
                    if next.page == cur_page {
                        // Mid-segment node: its lists will be served by a
                        // descendant's ancestor caches.
                        inpage.insert(slot, (l_list, r_list));
                        slot = next.slot;
                        continue;
                    }
                    // Page exit: settle this page's contributions.
                    self.drain_caches(store, q, cap_iv, &anc_l, &anc_r, &inpage, &mut results)?;
                    if goes_left {
                        scan_prefix(store, &l_list, 0, |iv| iv.lo <= q, &mut results)?;
                    } else {
                        scan_prefix(store, &r_list, 0, |iv| iv.hi >= q, &mut results)?;
                    }
                    inpage.clear();
                    cur_page = next.page;
                    skeletal_depth += 1;
                    let _lvl = pc_obs::span!("level", skeletal_depth);
                    page = store.read(cur_page)?;
                    slot = next.slot;
                }
                NodeRecord::Leaf { mini, anc_l, anc_r } => {
                    self.drain_caches(store, q, cap_iv, &anc_l, &anc_r, &inpage, &mut results)?;
                    let mini = CachedSegmentTree::from_handle(mini);
                    results.extend(mini.stab(store, q)?);
                    break;
                }
            }
        }
        Ok((results, (store.stats() - before).reads))
    }

    /// Reads both ancestor caches of an exit node, applying the §4.1
    /// continuation rule: when every copied entry of a source list
    /// qualified, keep reading that source from its second block.
    ///
    /// The continuation re-reads the source's first block to reach its
    /// successor (one extra I/O), which is paid for by the full block of
    /// results that triggered the continuation.
    #[allow(clippy::too_many_arguments)]
    fn drain_caches(
        &self,
        store: &PageStore,
        q: i64,
        cap_iv: usize,
        anc_l: &BlockList<CacheEntry>,
        anc_r: &BlockList<CacheEntry>,
        inpage: &HashMap<u16, (BlockList<Interval>, BlockList<Interval>)>,
        results: &mut Vec<Interval>,
    ) -> Result<()> {
        for (cache, is_left) in [(anc_l, true), (anc_r, false)] {
            let mut qualified: HashMap<u16, usize> = HashMap::new();
            {
                let _probe = pc_obs::span!("path_cache_probe");
                pc_obs::set_block_capacity(BlockList::<CacheEntry>::capacity(store.page_size()) as u64);
                let before = results.len();
                'outer: for block in cache.blocks(store) {
                    for e in block? {
                        let ok = if is_left { e.iv.lo <= q } else { e.iv.hi >= q };
                        if !ok {
                            break 'outer;
                        }
                        results.push(e.iv);
                        *qualified.entry(e.src_slot).or_insert(0) += 1;
                    }
                }
                pc_obs::add_items((results.len() - before) as u64);
            }
            for (src_slot, count) in qualified {
                let (l, r) = inpage
                    .get(&src_slot)
                    .expect("cache source must be an in-page ancestor");
                let list = if is_left { l } else { r };
                let copied = (list.len() as usize).min(cap_iv);
                if count == copied && list.len() as usize > copied {
                    if is_left {
                        scan_prefix(store, list, 1, |iv| iv.lo <= q, results)?;
                    } else {
                        scan_prefix(store, list, 1, |iv| iv.hi >= q, results)?;
                    }
                }
            }
        }
        Ok(())
    }
}

/// Extends `results` with the maximal qualifying prefix of `list`,
/// starting at block `skip_blocks`; stops reading at the first
/// non-qualifying entry.
fn scan_prefix(
    store: &PageStore,
    list: &BlockList<Interval>,
    skip_blocks: usize,
    pred: impl Fn(&Interval) -> bool,
    results: &mut Vec<Interval>,
) -> Result<()> {
    let _span = pc_obs::span!(output: "list_scan");
    pc_obs::set_block_capacity(BlockList::<Interval>::capacity(store.page_size()) as u64);
    let before = results.len();
    let r = scan_prefix_inner(store, list, skip_blocks, pred, results);
    pc_obs::add_items((results.len() - before) as u64);
    r
}

fn scan_prefix_inner(
    store: &PageStore,
    list: &BlockList<Interval>,
    skip_blocks: usize,
    pred: impl Fn(&Interval) -> bool,
    results: &mut Vec<Interval>,
) -> Result<()> {
    let mut blocks = list.blocks(store);
    for _ in 0..skip_blocks {
        if blocks.next().transpose()?.is_none() {
            return Ok(());
        }
    }
    for block in blocks {
        for iv in block? {
            if !pred(&iv) {
                return Ok(());
            }
            results.push(iv);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_pagestore::PageStore;

    fn iv(lo: i64, hi: i64, id: u64) -> Interval {
        Interval::new(lo, hi, id)
    }

    fn ids(mut v: Vec<Interval>) -> Vec<u64> {
        let mut out: Vec<u64> = v.drain(..).map(|i| i.id).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    fn brute(intervals: &[Interval], q: i64) -> Vec<u64> {
        let mut out: Vec<u64> =
            intervals.iter().filter(|i| i.contains(q)).map(|i| i.id).collect();
        out.sort_unstable();
        out
    }

    fn xorshift(state: &mut u64, bound: i64) -> i64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        (*state % bound as u64) as i64
    }

    fn random_intervals(n: usize, domain: i64, max_len: i64, seed: u64) -> Vec<Interval> {
        let mut s = seed;
        (0..n)
            .map(|id| {
                let a = xorshift(&mut s, domain);
                iv(a, a + xorshift(&mut s, max_len), id as u64)
            })
            .collect()
    }

    fn check_against_brute(intervals: &[Interval], queries: &[i64], page_size: usize) {
        let store = PageStore::in_memory(page_size);
        let tree = ExternalIntervalTree::build(&store, intervals).unwrap();
        for &q in queries {
            let got = ids(tree.stab(&store, q).unwrap());
            // Results must be free of duplicates.
            let raw = tree.stab(&store, q).unwrap();
            assert_eq!(raw.len(), got.len(), "duplicates at q={q}");
            assert_eq!(got, brute(intervals, q), "q={q}");
        }
    }

    #[test]
    fn small_tree_matches_brute_force() {
        let intervals =
            vec![iv(1, 5, 0), iv(3, 8, 1), iv(5, 5, 2), iv(0, 10, 3), iv(7, 9, 4), iv(2, 3, 5)];
        check_against_brute(&intervals, &[-1, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11], 512);
    }

    #[test]
    fn multi_page_tree_matches_brute_force() {
        let intervals = random_intervals(3000, 50_000, 2000, 0xabc);
        let mut s = 0x9999u64;
        let queries: Vec<i64> = (0..120).map(|_| xorshift(&mut s, 55_000) - 1000).collect();
        check_against_brute(&intervals, &queries, 512);
    }

    #[test]
    fn boundary_hits_are_exact() {
        // Force many shared endpoints so queries land exactly on boundaries.
        let intervals: Vec<Interval> =
            (0..500).map(|i| iv((i % 50) * 10, (i % 50) * 10 + 100, i as u64)).collect();
        let queries: Vec<i64> = (0..60).map(|i| i * 10).collect();
        check_against_brute(&intervals, &queries, 512);
    }

    #[test]
    fn nested_towers_match_brute_force() {
        // Deep nesting stresses the R-list prefix scans.
        let intervals: Vec<Interval> =
            (0..400).map(|i| iv(500 - i, 500 + i, i as u64)).collect();
        let queries: Vec<i64> = (0..50).map(|i| 100 + i * 17).collect();
        check_against_brute(&intervals, &queries, 512);
    }

    #[test]
    fn query_io_is_log_b_n_plus_t_over_b() {
        let store = PageStore::in_memory(512);
        let intervals = random_intervals(8000, 200_000, 4000, 0x7777);
        let tree = ExternalIntervalTree::build(&store, &intervals).unwrap();
        let b = BlockList::<Interval>::capacity(512) as u64;
        let mut s = 0x4242u64;
        for _ in 0..60 {
            let q = xorshift(&mut s, 200_000);
            let (res, ios) = tree.stab_with_ios(&store, q).unwrap();
            let t = res.len() as u64;
            // Generous constants: c1 * log_B n + c2 * (t/B + 1).
            let allowed = 8 * 4 + 4 * (t / b + 1);
            assert!(ios <= allowed, "ios={ios} t={t} allowed={allowed}");
        }
    }

    #[test]
    fn common_point_output_dominates() {
        // All n intervals stab the center: t = n, so I/O must be ~t/B.
        let store = PageStore::in_memory(512);
        let n = 4000usize;
        let intervals: Vec<Interval> =
            (0..n).map(|i| iv(-(i as i64) - 1, i as i64 + 1, i as u64)).collect();
        let tree = ExternalIntervalTree::build(&store, &intervals).unwrap();
        let (res, ios) = tree.stab_with_ios(&store, 0).unwrap();
        assert_eq!(res.len(), n);
        let b = BlockList::<Interval>::capacity(512) as u64;
        assert!(
            ios <= 4 * (n as u64 / b) + 40,
            "ios={ios} for t=n={n} (t/B = {})",
            n as u64 / b
        );
    }
}
