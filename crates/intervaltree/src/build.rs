//! Construction of the external interval tree.
//!
//! ## On-page layout
//!
//! ```text
//! page:            [count: u16][record * count]          (93-byte records)
//! internal record: [tag=0][boundary: i64]
//!                  [left_page: u64][left_slot: u16]
//!                  [right_page: u64][right_slot: u16]
//!                  [L: BlockList][R: BlockList]
//!                  [ancL: BlockList][ancR: BlockList]
//! leaf record:     [tag=1][mini: SegTreeHandle (36 B)]
//!                  [ancL: BlockList][ancR: BlockList][padding]
//! ```

use pc_pagestore::codec::{PageReader, PageWriter};
use pc_pagestore::layout::BlockList;
use pc_pagestore::{Interval, PageId, PageStore, Record, Result, StoreError};
use pc_segtree::{CachedSegmentTree, SegTreeHandle};

/// Byte size of one node record (internal layout dominates).
pub const RECORD_LEN: usize = 1 + 8 + 10 + 10 + 16 + 16 + 16 + 16;
/// Byte offset of slot 0 within a page.
pub const PAGE_HEADER: usize = 2;

/// A cache entry: a copied interval tagged with the in-page slot of the
/// ancestor list it was copied from, so queries can apply the continuation
/// rule per source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheEntry {
    /// The copied interval.
    pub iv: Interval,
    /// In-page slot of the source node.
    pub src_slot: u16,
}

impl Record for CacheEntry {
    const ENCODED_LEN: usize = Interval::ENCODED_LEN + 2;

    fn encode(&self, w: &mut PageWriter<'_>) -> Result<()> {
        self.iv.encode(w)?;
        w.put_u16(self.src_slot)
    }

    fn decode(r: &mut PageReader<'_>) -> Result<Self> {
        Ok(CacheEntry { iv: Interval::decode(r)?, src_slot: r.get_u16()? })
    }
}

/// Reference to a node: `(page, slot)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeRef {
    /// Page holding the record.
    pub page: PageId,
    /// Slot index within the page.
    pub slot: u16,
}

/// A decoded node record.
#[derive(Debug, Clone)]
pub enum NodeRecord {
    /// Boundary node with its interval lists and ancestor caches.
    Internal {
        /// The boundary value this node owns.
        boundary: i64,
        /// Left child (`boundary` values below).
        left: NodeRef,
        /// Right child.
        right: NodeRef,
        /// Node intervals sorted ascending by `lo`.
        l_list: BlockList<Interval>,
        /// Node intervals sorted descending by `hi`.
        r_list: BlockList<Interval>,
        /// Cache over in-page left-direction strict ancestors.
        anc_l: BlockList<CacheEntry>,
        /// Cache over in-page right-direction strict ancestors.
        anc_r: BlockList<CacheEntry>,
    },
    /// Endpoint-run leaf with its mini segment tree.
    Leaf {
        /// Index over intervals confined to this run (`n == 0` possible).
        mini: SegTreeHandle,
        /// Cache over in-page left-direction strict ancestors.
        anc_l: BlockList<CacheEntry>,
        /// Cache over in-page right-direction strict ancestors.
        anc_r: BlockList<CacheEntry>,
    },
}

/// Number of records per skeletal page.
pub fn page_capacity(page_size: usize) -> usize {
    let cap = (page_size - PAGE_HEADER) / RECORD_LEN;
    assert!(cap >= 3, "page size {page_size} too small for an interval-tree page");
    cap
}

/// Decodes the record at `slot` from raw page bytes.
pub fn decode_record(page: &[u8], slot: u16) -> Result<NodeRecord> {
    let offset = PAGE_HEADER + RECORD_LEN * slot as usize;
    let mut r = PageReader::new(&page[offset..offset + RECORD_LEN]);
    match r.get_u8()? {
        0 => Ok(NodeRecord::Internal {
            boundary: r.get_i64()?,
            left: NodeRef { page: PageId(r.get_u64()?), slot: r.get_u16()? },
            right: NodeRef { page: PageId(r.get_u64()?), slot: r.get_u16()? },
            l_list: BlockList::decode(&mut r)?,
            r_list: BlockList::decode(&mut r)?,
            anc_l: BlockList::decode(&mut r)?,
            anc_r: BlockList::decode(&mut r)?,
        }),
        1 => Ok(NodeRecord::Leaf {
            mini: SegTreeHandle::decode(&mut r)?,
            anc_l: BlockList::decode(&mut r)?,
            anc_r: BlockList::decode(&mut r)?,
        }),
        tag => Err(StoreError::Corrupt(format!("unknown interval-tree node tag {tag}"))),
    }
}

// ---------------------------------------------------------------------------
// In-memory construction
// ---------------------------------------------------------------------------

enum MemNode {
    Internal { boundary: i64, left: usize, right: usize, items: Vec<Interval> },
    Leaf { items: Vec<Interval> },
}

const NONE: usize = usize::MAX;

/// Builds the boundary BST over runs `[rlo, rhi]`; `boundaries[i]`
/// separates run `i` from run `i + 1`.
fn build_bst(nodes: &mut Vec<MemNode>, boundaries: &[i64], rlo: usize, rhi: usize) -> usize {
    let idx = nodes.len();
    if rlo == rhi {
        nodes.push(MemNode::Leaf { items: Vec::new() });
        return idx;
    }
    let mid = (rlo + rhi) / 2;
    nodes.push(MemNode::Internal {
        boundary: boundaries[mid],
        left: NONE,
        right: NONE,
        items: Vec::new(),
    });
    let left = build_bst(nodes, boundaries, rlo, mid);
    let right = build_bst(nodes, boundaries, mid + 1, rhi);
    if let MemNode::Internal { left: l, right: r, .. } = &mut nodes[idx] {
        *l = left;
        *r = right;
    }
    idx
}

/// External interval tree for stabbing queries (Theorem 3.5).
pub struct ExternalIntervalTree {
    pub(crate) root_page: PageId,
    pub(crate) n: u64,
}

impl ExternalIntervalTree {
    /// Builds the tree over `intervals` in `store`.
    pub fn build(store: &PageStore, intervals: &[Interval]) -> Result<Self> {
        let page_size = store.page_size();
        let run_len = BlockList::<Interval>::capacity(page_size); // Θ(B) endpoints per run

        // Distinct endpoints → runs → boundaries.
        let mut endpoints: Vec<i64> = Vec::with_capacity(intervals.len() * 2);
        for iv in intervals {
            endpoints.push(iv.lo);
            endpoints.push(iv.hi);
        }
        endpoints.sort_unstable();
        endpoints.dedup();
        let num_runs = endpoints.len().div_ceil(run_len).max(1);
        // boundaries[i] = first endpoint of run i + 1
        let boundaries: Vec<i64> =
            (1..num_runs).map(|i| endpoints[i * run_len]).collect();

        // Boundary BST with runs as leaves.
        let mut nodes = Vec::with_capacity(2 * num_runs);
        build_bst(&mut nodes, &boundaries, 0, num_runs - 1);

        // Assign each interval to the highest node whose boundary it
        // contains; boundary-free intervals sink to their run's leaf.
        for iv in intervals {
            let mut cur = 0usize;
            loop {
                match &mut nodes[cur] {
                    MemNode::Internal { boundary, left, right, items } => {
                        if iv.hi < *boundary {
                            cur = *left;
                        } else if iv.lo > *boundary {
                            cur = *right;
                        } else {
                            items.push(*iv);
                            break;
                        }
                    }
                    MemNode::Leaf { items } => {
                        items.push(*iv);
                        break;
                    }
                }
            }
        }

        // Paginate: BFS-fill to record capacity (see pc-pst's paginate for
        // why capacity-fill beats fixed-height chunking).
        let cap = page_capacity(page_size);
        let mut node_loc: Vec<(usize, u16)> = vec![(usize::MAX, 0); nodes.len()];
        let mut pages: Vec<Vec<usize>> = Vec::new();
        let mut page_roots = std::collections::VecDeque::new();
        page_roots.push_back(0usize);
        while let Some(root) = page_roots.pop_front() {
            let page_idx = pages.len();
            let mut members = Vec::new();
            let mut queue = std::collections::VecDeque::new();
            queue.push_back(root);
            while let Some(ni) = queue.pop_front() {
                if members.len() == cap {
                    page_roots.push_back(ni);
                    continue;
                }
                node_loc[ni] = (page_idx, members.len() as u16);
                members.push(ni);
                if let MemNode::Internal { left, right, .. } = &nodes[ni] {
                    queue.push_back(*left);
                    queue.push_back(*right);
                }
            }
            pages.push(members);
        }
        let page_ids: Vec<PageId> =
            pages.iter().map(|_| store.alloc()).collect::<Result<_>>()?;

        // Materialize per-node sorted lists and per-leaf mini trees.
        let cap = run_len; // BlockList::<Interval>::capacity == run_len
        let mut l_sorted: Vec<Vec<Interval>> = Vec::with_capacity(nodes.len());
        let mut r_sorted: Vec<Vec<Interval>> = Vec::with_capacity(nodes.len());
        let mut minis: Vec<Option<SegTreeHandle>> = Vec::with_capacity(nodes.len());
        for node in &nodes {
            match node {
                MemNode::Internal { items, .. } => {
                    let mut l = items.clone();
                    l.sort_unstable_by_key(|iv| (iv.lo, iv.hi, iv.id));
                    let mut r = items.clone();
                    r.sort_unstable_by_key(|iv| (std::cmp::Reverse(iv.hi), iv.lo, iv.id));
                    l_sorted.push(l);
                    r_sorted.push(r);
                    minis.push(None);
                }
                MemNode::Leaf { items } => {
                    let mini = CachedSegmentTree::build(store, items)?;
                    l_sorted.push(Vec::new());
                    r_sorted.push(Vec::new());
                    minis.push(Some(mini.handle()));
                }
            }
        }

        // Write interval lists.
        let mut l_lists: Vec<BlockList<Interval>> = Vec::with_capacity(nodes.len());
        let mut r_lists: Vec<BlockList<Interval>> = Vec::with_capacity(nodes.len());
        for i in 0..nodes.len() {
            l_lists.push(BlockList::build(store, &l_sorted[i])?);
            r_lists.push(BlockList::build(store, &r_sorted[i])?);
        }

        // Ancestor caches per node: merge first blocks of in-page strict
        // ancestors, split by direction.
        let mut anc_l: Vec<BlockList<CacheEntry>> = vec![BlockList::empty(); nodes.len()];
        let mut anc_r: Vec<BlockList<CacheEntry>> = vec![BlockList::empty(); nodes.len()];
        // DFS carrying the in-page ancestor stack: (node idx, direction
        // taken when descending *from* it: false = left, true = right).
        struct Frame {
            node: usize,
            // in-page ancestor chain as (arena idx, direction to current)
            chain: Vec<(usize, bool)>,
        }
        let mut stack = vec![Frame { node: 0, chain: Vec::new() }];
        while let Some(Frame { node, chain }) = stack.pop() {
            // Build this node's caches from `chain`.
            let mut lefts: Vec<CacheEntry> = Vec::new();
            let mut rights: Vec<CacheEntry> = Vec::new();
            for &(anc, dir) in &chain {
                let src_slot = node_loc[anc].1;
                if !dir {
                    // Path goes left at `anc`: queries reaching this node
                    // have q < boundary(anc); they scan L(anc).
                    for iv in l_sorted[anc].iter().take(cap) {
                        lefts.push(CacheEntry { iv: *iv, src_slot });
                    }
                } else {
                    for iv in r_sorted[anc].iter().take(cap) {
                        rights.push(CacheEntry { iv: *iv, src_slot });
                    }
                }
            }
            lefts.sort_unstable_by_key(|e| (e.iv.lo, e.iv.hi, e.iv.id));
            rights.sort_unstable_by_key(|e| (std::cmp::Reverse(e.iv.hi), e.iv.lo, e.iv.id));
            anc_l[node] = BlockList::build(store, &lefts)?;
            anc_r[node] = BlockList::build(store, &rights)?;

            if let MemNode::Internal { left, right, .. } = &nodes[node] {
                // Children in the same page extend the chain; children in a
                // new page start fresh (caches are per-page segments).
                for (child, dir) in [(*left, false), (*right, true)] {
                    let chain = if node_loc[child].0 == node_loc[node].0 {
                        let mut c = chain.clone();
                        c.push((node, dir));
                        c
                    } else {
                        Vec::new()
                    };
                    stack.push(Frame { node: child, chain });
                }
            }
        }

        // Serialize pages.
        let mut buf = vec![0u8; page_size];
        for (page_idx, members) in pages.iter().enumerate() {
            let used = {
                let mut w = PageWriter::new(&mut buf);
                w.put_u16(members.len() as u16)?;
                for &ni in members {
                    let start = w.position();
                    match &nodes[ni] {
                        MemNode::Internal { boundary, left, right, .. } => {
                            w.put_u8(0)?;
                            w.put_i64(*boundary)?;
                            for child in [*left, *right] {
                                let (p, s) = node_loc[child];
                                w.put_u64(page_ids[p].0)?;
                                w.put_u16(s)?;
                            }
                            l_lists[ni].encode(&mut w)?;
                            r_lists[ni].encode(&mut w)?;
                            anc_l[ni].encode(&mut w)?;
                            anc_r[ni].encode(&mut w)?;
                        }
                        MemNode::Leaf { .. } => {
                            w.put_u8(1)?;
                            minis[ni].as_ref().expect("leaf has a mini tree").encode(&mut w)?;
                            anc_l[ni].encode(&mut w)?;
                            anc_r[ni].encode(&mut w)?;
                        }
                    }
                    // Pad to the fixed record size.
                    w.skip(RECORD_LEN - (w.position() - start))?;
                }
                w.position()
            };
            store.write(page_ids[page_idx], &buf[..used])?;
        }

        Ok(ExternalIntervalTree { root_page: page_ids[0], n: intervals.len() as u64 })
    }

    /// Number of indexed intervals.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// True when the tree indexes no intervals.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_geometry() {
        assert_eq!(RECORD_LEN, 93);
        assert_eq!(page_capacity(512), 5);
        assert_eq!(page_capacity(4096), 44);
    }

    #[test]
    fn cache_entry_roundtrip() {
        let mut buf = vec![0u8; CacheEntry::ENCODED_LEN];
        let e = CacheEntry { iv: Interval::new(-3, 9, 77), src_slot: 12 };
        let mut w = PageWriter::new(&mut buf);
        e.encode(&mut w).unwrap();
        let mut r = PageReader::new(&buf);
        assert_eq!(CacheEntry::decode(&mut r).unwrap(), e);
    }

    #[test]
    fn build_empty_and_single() {
        let store = PageStore::in_memory(512);
        let t = ExternalIntervalTree::build(&store, &[]).unwrap();
        assert!(t.is_empty());
        let t = ExternalIntervalTree::build(&store, &[Interval::new(1, 5, 0)]).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn space_is_n_over_b_log_b_shaped() {
        let store = PageStore::in_memory(512);
        let n = 5000usize;
        let mut state = 0xdead_beefu64;
        let intervals: Vec<Interval> = (0..n)
            .map(|id| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let lo = (state % 100_000) as i64;
                (lo, lo + ((state >> 32) % 5_000) as i64, id as u64)
            })
            .map(|(lo, hi, id)| Interval::new(lo, hi, id))
            .collect();
        let before = store.live_pages();
        let _t = ExternalIntervalTree::build(&store, &intervals).unwrap();
        let pages = store.live_pages() - before;
        let b = BlockList::<Interval>::capacity(512) as u64; // 20
        let bound = 3 * (n as u64).div_ceil(b) * (64 - b.leading_zeros() as u64 + 4);
        assert!(pages <= bound, "space {pages} pages exceeds O(n/B log B) ~ {bound}");
    }
}
