//! # pc-intervaltree — external interval tree with path caching (Thm 3.5)
//!
//! The classic interval tree stores each interval at the highest tree node
//! whose *boundary value* it contains, in two per-node lists: `L` sorted
//! ascending by left endpoint and `R` sorted descending by right endpoint.
//! A stabbing query for `q` walks the boundary BST; at a node with boundary
//! `x`, if `q < x` every stored interval with `lo <= q` matches (it already
//! contains `x >= q`), so a *prefix* of `L` is the node's answer — and
//! symmetrically for `R` when `q > x`. Prefixes of blocked lists cost at
//! most one wasteful I/O each, but there are `O(log n)` nodes on the path:
//! the same pathology as Figure 3.
//!
//! ## Externalization (our instantiation of Theorem 3.5)
//!
//! The paper states the theorem and defers details; we implement:
//!
//! * **Θ(B)-endpoint runs.** Distinct endpoints are grouped into runs of
//!   `B` consecutive values; boundaries between runs drive the BST, so the
//!   tree has `O(n/B)` nodes and `O(log(n/B))` depth. Intervals that cross
//!   no boundary fall entirely inside one run and are indexed there by a
//!   per-run [`pc_segtree::CachedSegmentTree`] over at most `B` endpoints —
//!   a structure of depth `O(log B)` that fits `O(1)` skeletal pages, so
//!   querying it costs `O(1 + t_leaf/B)` I/Os.
//! * **Skeletal paging.** The boundary BST is blocked into pages of height
//!   `h ≈ log B` (Figure 2), giving `O(log_B n)` navigation.
//! * **Path caches (the `log B`-segment trick of Thm 3.2).** Every node `v`
//!   carries two caches built from its strict ancestors *within its own
//!   skeletal page*: `ancL` merges the first blocks of `L(a)` for ancestors
//!   `a` whose path to `v` goes left (sorted ascending by `lo`), `ancR`
//!   symmetrically. Each cache entry is tagged with its source slot so the
//!   query can detect "the whole first block qualified" and continue into
//!   the source list from its second block — the analogue of the X-list
//!   continuation rule of §4.1. A query therefore reads, per page on the
//!   path: two caches plus the exit node's own list, each at most one
//!   wasteful I/O, all continuations paid for by full blocks.
//!
//! Totals: `O(log_B n + t/B)` query I/Os and `O((n/B)·log B)` disk blocks —
//! the Theorem 3.5 bounds.
//!
//! ```
//! use pc_intervaltree::ExternalIntervalTree;
//! use pc_pagestore::{Interval, PageStore};
//!
//! let store = PageStore::in_memory(512);
//! let intervals: Vec<Interval> =
//!     (0..200).map(|i| Interval::new(i, i + 20, i as u64)).collect();
//! let tree = ExternalIntervalTree::build(&store, &intervals).unwrap();
//! assert_eq!(tree.stab(&store, 100).unwrap().len(), 21);
//! ```

mod build;
mod query;
mod repack;

pub use build::ExternalIntervalTree;
