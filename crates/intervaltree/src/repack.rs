//! van Emde Boas repacking of a built external interval tree.
//!
//! See [`pc_pagestore::repack`] for the overall scheme. The interval
//! tree's skeletal pages form a proper tree (each page is filled from a
//! single subtree root). Every record owns up to four [`BlockList`]
//! chains (L/R interval lists, left/right ancestor caches) which are
//! attached to their page, and each leaf record embeds a whole mini
//! segment tree via its [`SegTreeHandle`] — those are collected as
//! additional layout roots, so each mini tree ends up contiguous right
//! after the main tree, in its own vEB order.

use std::collections::{HashSet, VecDeque};

use pc_pagestore::codec::{PageReader, PageWriter};
use pc_pagestore::layout::BlockList;
use pc_pagestore::repack::{chain_pages, copy_chain, ensure_quiesced, PageGraph, Relocation};
use pc_pagestore::{PageStore, Record, Result};
use pc_segtree::SegTreeHandle;

use crate::build::{decode_record, NodeRecord, RECORD_LEN};

use crate::build::ExternalIntervalTree;

impl ExternalIntervalTree {
    /// Records every page of this tree into `graph`: the skeletal tree
    /// with its attached list chains, then each leaf's mini segment tree.
    pub fn collect_pages(&self, store: &PageStore, graph: &mut PageGraph) -> Result<()> {
        let Some(root_idx) = graph.add_root(self.root_page) else {
            return Ok(());
        };
        let mut minis: Vec<SegTreeHandle> = Vec::new();
        let mut queue = VecDeque::from([(self.root_page, root_idx)]);
        while let Some((pid, idx)) = queue.pop_front() {
            let page = store.read(pid)?;
            let count = PageReader::new(&page).get_u16()? as usize;
            for slot in 0..count {
                match decode_record(&page, slot as u16)? {
                    NodeRecord::Internal { left, right, l_list, r_list, anc_l, anc_r, .. } => {
                        for list in [l_list.head(), r_list.head(), anc_l.head(), anc_r.head()]
                        {
                            graph.attach(idx, &chain_pages(store, list)?);
                        }
                        for child in [left, right] {
                            if child.page != pid {
                                if let Some(child_idx) = graph.add_child(idx, child.page) {
                                    queue.push_back((child.page, child_idx));
                                }
                            }
                        }
                    }
                    NodeRecord::Leaf { mini, anc_l, anc_r } => {
                        for list in [anc_l.head(), anc_r.head()] {
                            graph.attach(idx, &chain_pages(store, list)?);
                        }
                        minis.push(mini);
                    }
                }
            }
        }
        // Mini trees after the whole skeletal tree: each one contiguous.
        for mini in minis {
            mini.collect_pages(store, graph)?;
        }
        Ok(())
    }

    /// Re-encodes every page into `dst` at its relocated id, mapping all
    /// embedded page ids through `map`. Returns the relocated handle.
    pub fn rewrite_into(
        &self,
        src: &PageStore,
        dst: &PageStore,
        map: &Relocation,
    ) -> Result<Self> {
        let mut visited = HashSet::new();
        let mut stack = vec![self.root_page];
        let mut buf = vec![0u8; src.page_size()];
        while let Some(pid) = stack.pop() {
            if !visited.insert(pid.0) {
                continue;
            }
            let page = src.read(pid)?;
            let count = PageReader::new(&page).get_u16()? as usize;
            let used = {
                let mut w = PageWriter::new(&mut buf);
                w.put_u16(count as u16)?;
                for slot in 0..count {
                    let start = w.position();
                    match decode_record(&page, slot as u16)? {
                        NodeRecord::Internal {
                            boundary,
                            left,
                            right,
                            l_list,
                            r_list,
                            anc_l,
                            anc_r,
                        } => {
                            for list in [&l_list, &r_list] {
                                copy_chain(src, dst, list.head(), map)?;
                            }
                            for list in [&anc_l, &anc_r] {
                                copy_chain(src, dst, list.head(), map)?;
                            }
                            for child in [left, right] {
                                if child.page != pid {
                                    stack.push(child.page);
                                }
                            }
                            w.put_u8(0)?;
                            w.put_i64(boundary)?;
                            for child in [left, right] {
                                w.put_u64(map.get(child.page)?.0)?;
                                w.put_u16(child.slot)?;
                            }
                            relocate(&l_list, map)?.encode(&mut w)?;
                            relocate(&r_list, map)?.encode(&mut w)?;
                            relocate(&anc_l, map)?.encode(&mut w)?;
                            relocate(&anc_r, map)?.encode(&mut w)?;
                        }
                        NodeRecord::Leaf { mini, anc_l, anc_r } => {
                            for list in [&anc_l, &anc_r] {
                                copy_chain(src, dst, list.head(), map)?;
                            }
                            let moved = mini.rewrite_into(src, dst, map)?;
                            w.put_u8(1)?;
                            moved.encode(&mut w)?;
                            relocate(&anc_l, map)?.encode(&mut w)?;
                            relocate(&anc_r, map)?.encode(&mut w)?;
                        }
                    }
                    w.skip(RECORD_LEN - (w.position() - start))?;
                }
                w.position()
            };
            dst.write(map.get(pid)?, &buf[..used])?;
        }
        Ok(ExternalIntervalTree { root_page: map.get(self.root_page)?, n: self.n })
    }

    /// Rewrites the whole tree (mini segment trees included) into `dst`
    /// in van Emde Boas page order and returns the relocated handle. Both
    /// stores must be quiesced.
    pub fn repack(&self, src: &PageStore, dst: &PageStore) -> Result<Self> {
        ensure_quiesced(src)?;
        ensure_quiesced(dst)?;
        let mut graph = PageGraph::new();
        self.collect_pages(src, &mut graph)?;
        let reloc = Relocation::alloc_in(&graph.veb_order(), dst)?;
        self.rewrite_into(src, dst, &reloc)
    }
}

fn relocate<R: Record>(list: &BlockList<R>, map: &Relocation) -> Result<BlockList<R>> {
    Ok(list.with_head(map.get(list.head())?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_pagestore::Interval;

    fn xorshift(state: &mut u64, bound: i64) -> i64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        (*state % bound as u64) as i64
    }

    fn random_intervals(n: usize, seed: u64) -> Vec<Interval> {
        let mut s = seed;
        (0..n)
            .map(|id| {
                let a = xorshift(&mut s, 50_000);
                Interval::new(a, a + xorshift(&mut s, 3000), id as u64)
            })
            .collect()
    }

    fn ids(mut v: Vec<Interval>) -> Vec<u64> {
        let mut out: Vec<u64> = v.drain(..).map(|i| i.id).collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn repacked_tree_answers_identically_with_equal_transfers() {
        let src = PageStore::in_memory(512);
        let intervals = random_intervals(1200, 0xabba);
        let tree = ExternalIntervalTree::build(&src, &intervals).unwrap();
        let dst = PageStore::in_memory(512);
        let packed = tree.repack(&src, &dst).unwrap();
        assert_eq!(packed.len(), tree.len());
        assert_eq!(dst.live_pages(), src.live_pages());
        let mut s = 0x5150u64;
        for _ in 0..40 {
            let q = xorshift(&mut s, 55_000) - 1000;
            src.reset_stats();
            let a = tree.stab(&src, q).unwrap();
            let reads_a = src.stats().reads;
            dst.reset_stats();
            let b = packed.stab(&dst, q).unwrap();
            assert_eq!(ids(a), ids(b), "q={q}");
            assert_eq!(dst.stats().reads, reads_a, "transfer count q={q}");
        }
    }

    #[test]
    fn repack_empty_tree() {
        let src = PageStore::in_memory(512);
        let tree = ExternalIntervalTree::build(&src, &[]).unwrap();
        let dst = PageStore::in_memory(512);
        let packed = tree.repack(&src, &dst).unwrap();
        assert!(packed.stab(&dst, 0).unwrap().is_empty());
    }
}
