//! Store-level fault-injection regressions: a pooled [`PageStore`] over a
//! [`FaultBackend`] must keep the sharded pool consistent on every error
//! path — no lost dirty data, no stale mappings, no panics — and the
//! retry/quarantine/scrub layers must compose with pool eviction.
//!
//! These are the regression tests for the pool's old
//! `expect("mapped slot must be occupied")` unwinds and for the eviction
//! write-back path that used to displace a dirty victim before knowing the
//! backend write succeeded.

use pc_pagestore::backend::MemBackend;
use pc_pagestore::{
    FaultBackend, FaultHandle, FaultPlan, PageStore, RetryPolicy, StoreConfig, StoreError,
};

const PAGE: usize = 64;

/// Pooled store (1 frame, 1 shard: every second page access evicts) over a
/// fault backend with no plan faults — tests arm targeted triggers.
fn tiny_pooled_store(retry: RetryPolicy) -> (PageStore, FaultHandle) {
    let backend = FaultBackend::new(Box::new(MemBackend::new(PAGE + 8)), FaultPlan::none(0));
    let handle = backend.handle();
    let config = StoreConfig {
        page_size: PAGE,
        pool_pages: 1,
        pool_shards: 1,
        ..StoreConfig::strict(PAGE)
    }
    .with_retry(retry);
    (PageStore::new(config, Box::new(backend)), handle)
}

#[test]
fn failed_eviction_write_back_loses_no_dirty_data() {
    let (store, handle) = tiny_pooled_store(RetryPolicy::none());
    let a = store.alloc().unwrap();
    let b = store.alloc().unwrap();
    store.write(a, &[0xAA; PAGE]).unwrap(); // resident, dirty, never on disk
    handle.fail_nth_write(a, 1); // the eviction write-back will fail
    let err = store.write(b, &[0xBB; PAGE]).unwrap_err();
    assert!(err.is_transient(), "the backend fault surfaces to the caller: {err}");
    // The dirty victim survived the failed eviction: still resident, still
    // holding its bytes, served as a pool hit.
    let before = store.stats();
    assert_eq!(&store.read(a).unwrap()[..], &[0xAA; PAGE]);
    assert_eq!(store.stats().cache_hits, before.cache_hits + 1, "page a stayed resident");
    // The backend has recovered (one-shot trigger): retrying the write goes
    // through, evicting a whose data reaches the backend intact.
    store.write(b, &[0xBB; PAGE]).unwrap();
    assert_eq!(&store.read(a).unwrap()[..], &[0xAA; PAGE], "dirty data was persisted on retry");
    assert_eq!(&store.read(b).unwrap()[..], &[0xBB; PAGE]);
    store.sync().unwrap();
}

#[test]
fn retry_policy_absorbs_eviction_write_back_faults() {
    let (store, handle) = tiny_pooled_store(RetryPolicy::default());
    let a = store.alloc().unwrap();
    let b = store.alloc().unwrap();
    store.write(a, &[1; PAGE]).unwrap();
    handle.fail_nth_write(a, 1);
    // With retries enabled the same scenario is invisible to the caller:
    // attempt 1 hits the trigger, attempt 2 succeeds.
    store.write(b, &[2; PAGE]).unwrap();
    let s = store.stats();
    assert_eq!(s.retries, 1, "one re-attempt absorbed the fault");
    assert_eq!(s.writes, 1, "a retried write-back is still one logical transfer");
    assert_eq!(s.quarantined, 0);
    assert_eq!(&store.read(a).unwrap()[..], &[1; PAGE]);
}

#[test]
fn failed_miss_fetch_leaves_no_stale_mapping() {
    let (store, handle) = tiny_pooled_store(RetryPolicy::none());
    let a = store.alloc().unwrap();
    let b = store.alloc().unwrap();
    store.write(a, &[7; PAGE]).unwrap();
    store.write(b, &[8; PAGE]).unwrap(); // evicts a to the backend
    handle.fail_nth_read(a, 1); // the refetch of a will fail
    let err = store.read(a).unwrap_err();
    assert!(err.is_transient(), "fetch fault surfaces cleanly: {err}");
    // Regression: the failed fetch must not leave a mapping to an empty or
    // stale frame — the next read refetches and returns the real bytes.
    assert_eq!(&store.read(a).unwrap()[..], &[7; PAGE]);
    // And the resident page was untouched by the failed miss.
    let before = store.stats();
    assert_eq!(&store.read(b).unwrap()[..], &[8; PAGE]);
    assert!(store.stats().cache_hits > before.cache_hits || store.stats().reads > before.reads);
}

#[test]
fn pooled_store_quarantines_after_exhausted_fetch_retries() {
    let (store, handle) = tiny_pooled_store(RetryPolicy::default());
    let a = store.alloc().unwrap();
    let b = store.alloc().unwrap();
    store.write(a, &[3; PAGE]).unwrap();
    store.write(b, &[4; PAGE]).unwrap(); // evicts a
    for nth in 1..=3 {
        handle.fail_nth_read(a, nth); // every attempt in the budget fails
    }
    assert!(matches!(store.read(a), Err(StoreError::Quarantined(q)) if q == a));
    let s = store.stats();
    assert_eq!((s.retries, s.quarantined), (2, 1));
    // Fenced: no further backend traffic for a.
    assert!(matches!(store.read(a), Err(StoreError::Quarantined(_))));
    assert_eq!(store.stats().reads, s.reads, "quarantined reads are not transfers");
    // scrub flushes the pool (b is dirty), repairs, and lifts the fence.
    store.scrub().unwrap();
    assert!(store.quarantined_pages().is_empty());
    assert_eq!(&store.read(a).unwrap()[..], &[3; PAGE]);
    assert_eq!(&store.read(b).unwrap()[..], &[4; PAGE]);
}

#[test]
fn injected_corruption_is_detected_through_the_pool_and_reversible() {
    let store = PageStore::in_memory_pooled(PAGE, 4);
    let id = store.alloc().unwrap();
    store.write(id, b"precious").unwrap();
    assert_eq!(&store.read(id).unwrap()[..8], b"precious"); // resident
    // inject_corruption bypasses (and invalidates) the pool: the next read
    // must fail its checksum instead of serving stale resident bytes.
    store.inject_corruption(id, 3).unwrap();
    assert!(matches!(store.read(id), Err(StoreError::ChecksumMismatch(p)) if p == id));
    // The flip is an XOR: applying it again restores the frame exactly.
    store.inject_corruption(id, 3).unwrap();
    assert_eq!(&store.read(id).unwrap()[..8], b"precious");
}
