//! Store-level durability integration tests: reopen after a clean
//! shutdown, WAL replay of committed-but-unflushed state, torn-tail
//! handling in both the data file and the log, and checkpointing bounding
//! replay. The exhaustive kill-point matrix lives in `crash_recovery.rs`;
//! these tests pin the individual behaviors it composes.

use std::sync::Arc;

use pc_pagestore::{
    CrashBackend, CrashController, CrashLog, CrashPlan, PageId, PageStore, StoreConfig,
    WalConfig,
};

const PAGE: usize = 64;
const FRAME: usize = PAGE + 8;

fn cfg() -> StoreConfig {
    StoreConfig::strict(PAGE)
}

/// Deterministic page payload: page index tagged with a generation byte.
fn payload(tag: u8, i: u8) -> Vec<u8> {
    let mut v = vec![tag; PAGE / 2];
    v.push(i);
    v
}

/// Logical state snapshot: every allocated page's id and bytes.
fn snapshot(store: &PageStore) -> Vec<(PageId, Vec<u8>)> {
    store
        .allocated_pages()
        .into_iter()
        .map(|id| (id, store.read(id).unwrap().to_vec()))
        .collect()
}

fn tempfile(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pc-durability-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    let mut wal = path.clone().into_os_string();
    wal.push(".wal");
    let _ = std::fs::remove_file(&wal);
    path
}

#[test]
fn file_store_reopen_after_clean_shutdown_restores_every_page() {
    let path = tempfile("clean.pcstore");
    let before;
    {
        let (store, report) = PageStore::file_durable(&path, PAGE, WalConfig::default()).unwrap();
        assert!(report.clean());
        for i in 0..8u8 {
            let id = store.alloc().unwrap();
            store.write(id, &payload(0xAA, i)).unwrap();
        }
        store.sync().unwrap();
        before = snapshot(&store);
    }
    let (store, report) = PageStore::file_durable(&path, PAGE, WalConfig::default()).unwrap();
    assert!(!report.data_torn_tail);
    assert_eq!(snapshot(&store), before, "reopen must restore the exact committed state");
}

#[test]
fn committed_but_unflushed_writes_survive_via_wal_replay() {
    // No checkpoint ever runs (huge threshold), so the data file never sees
    // the writes — recovery must rebuild them from the log alone.
    let ctrl = CrashController::new(CrashPlan::count_only(11));
    let backend = Arc::new(CrashBackend::new(FRAME, ctrl.clone()));
    let log = Arc::new(CrashLog::new(ctrl));
    let wal_cfg = WalConfig { checkpoint_bytes: u64::MAX };
    let (store, _) = PageStore::new_durable(
        cfg(),
        Box::new(Arc::clone(&backend)),
        Box::new(Arc::clone(&log)),
        wal_cfg,
    )
    .unwrap();
    let mut want = Vec::new();
    for i in 0..5u8 {
        let id = store.alloc().unwrap();
        let data = payload(0xBB, i);
        store.write(id, &data).unwrap();
        want.push((id, data));
    }
    store.commit_with(b"batch-1").unwrap();

    // "Die now": extract what durable media hold and recover from them.
    let (store2, report) = PageStore::new_durable(
        cfg(),
        Box::new(backend.surviving_backend()),
        Box::new(log.surviving_log()),
        WalConfig::default(),
    )
    .unwrap();
    assert_eq!(report.replayed_writes, 5, "all committed writes replay: {report:?}");
    assert_eq!(report.last_commit_meta.as_deref(), Some(&b"batch-1"[..]));
    for (id, data) in &want {
        let mut padded = data.clone();
        padded.resize(PAGE, 0);
        assert_eq!(&store2.read(*id).unwrap()[..], &padded[..]);
    }
    assert_eq!(store2.allocated_pages().len(), 5);
}

#[test]
fn uncommitted_tail_is_discarded_and_acked_state_kept() {
    for seed in 0..16u64 {
        let ctrl = CrashController::new(CrashPlan::count_only(seed));
        let backend = Arc::new(CrashBackend::new(FRAME, ctrl.clone()));
        let log = Arc::new(CrashLog::new(ctrl));
        let wal_cfg = WalConfig { checkpoint_bytes: u64::MAX };
        let (store, _) = PageStore::new_durable(
            cfg(),
            Box::new(Arc::clone(&backend)),
            Box::new(Arc::clone(&log)),
            wal_cfg,
        )
        .unwrap();
        let id = store.alloc().unwrap();
        store.write(id, &payload(0xCC, 0)).unwrap();
        store.commit_with(b"acked").unwrap();
        let committed = snapshot(&store);

        // Past the commit: more writes, some on fresh pages, never synced.
        store.write(id, &payload(0xDD, 1)).unwrap();
        let id2 = store.alloc().unwrap();
        store.write(id2, &payload(0xEE, 2)).unwrap();

        let (store2, report) = PageStore::new_durable(
            cfg(),
            Box::new(backend.surviving_backend()),
            Box::new(log.surviving_log()),
            WalConfig::default(),
        )
        .unwrap();
        assert_eq!(report.last_commit_meta.as_deref(), Some(&b"acked"[..]), "seed {seed}");
        assert_eq!(
            snapshot(&store2),
            committed,
            "seed {seed}: recovery must restore exactly the acked state — \
             no uncommitted writes, no lost acked ones"
        );
    }
}

#[test]
fn checkpoint_moves_state_to_the_data_file_and_empties_replay() {
    let ctrl = CrashController::new(CrashPlan::count_only(7));
    let backend = Arc::new(CrashBackend::new(FRAME, ctrl.clone()));
    let log = Arc::new(CrashLog::new(ctrl));
    let (store, _) = PageStore::new_durable(
        cfg(),
        Box::new(Arc::clone(&backend)),
        Box::new(Arc::clone(&log)),
        WalConfig::default(),
    )
    .unwrap();
    for i in 0..4u8 {
        let id = store.alloc().unwrap();
        store.write(id, &payload(0x11, i)).unwrap();
    }
    store.checkpoint().unwrap();
    let committed = snapshot(&store);
    let ws = store.wal_stats().unwrap();
    assert_eq!(ws.dirty_pages, 0, "checkpoint drains the dirty table");

    let (store2, report) = PageStore::new_durable(
        cfg(),
        Box::new(backend.surviving_backend()),
        Box::new(log.surviving_log()),
        WalConfig::default(),
    )
    .unwrap();
    assert_eq!(report.replayed_writes, 0, "nothing left to replay: {report:?}");
    assert_eq!(snapshot(&store2), committed);
}

#[test]
fn auto_checkpoint_keeps_the_log_bounded_across_reopens() {
    let path = tempfile("bounded.pcstore");
    let wal_cfg = WalConfig { checkpoint_bytes: 512 };
    let before;
    {
        let (store, _) = PageStore::file_durable(&path, PAGE, wal_cfg).unwrap();
        let ids: Vec<PageId> = (0..6).map(|_| store.alloc().unwrap()).collect();
        for round in 0..20u8 {
            for (i, &id) in ids.iter().enumerate() {
                store.write(id, &payload(round, i as u8)).unwrap();
            }
            store.commit_with(&[round]).unwrap();
        }
        let ws = store.wal_stats().unwrap();
        assert!(ws.checkpoints > 1, "workload must cross the threshold: {ws:?}");
        assert!(
            ws.log_bytes < 8 * 512,
            "log must stay within a small multiple of the threshold: {ws:?}"
        );
        before = snapshot(&store);
    }
    let (store, report) = PageStore::file_durable(&path, PAGE, wal_cfg).unwrap();
    assert!(!report.data_torn_tail);
    assert_eq!(snapshot(&store), before);
}

#[test]
fn torn_data_file_tail_is_detected_and_recovered_on_open() {
    let path = tempfile("torn.pcstore");
    let before;
    {
        let (store, _) = PageStore::file_durable(&path, PAGE, WalConfig::default()).unwrap();
        for i in 0..3u8 {
            let id = store.alloc().unwrap();
            store.write(id, &payload(0x77, i)).unwrap();
        }
        // Checkpoint so the data file holds the frames, then commit.
        store.checkpoint().unwrap();
        before = snapshot(&store);
    }
    // Simulate a crash mid-frame-append: a partial trailing frame.
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0x5Au8; FRAME / 2]).unwrap();
    }
    let (store, report) = PageStore::file_durable(&path, PAGE, WalConfig::default()).unwrap();
    assert!(report.data_torn_tail, "the torn tail must be surfaced, not silently dropped");
    assert_eq!(snapshot(&store), before, "truncating the tear restores the committed state");

    // And a second open is clean: the tear was actually repaired on disk.
    drop(store);
    let (_, report) = PageStore::file_durable(&path, PAGE, WalConfig::default()).unwrap();
    assert!(!report.data_torn_tail);
}

#[test]
fn torn_wal_tail_is_truncated_on_open() {
    let path = tempfile("tornwal.pcstore");
    let before;
    {
        let (store, _) = PageStore::file_durable(&path, PAGE, WalConfig::default()).unwrap();
        let id = store.alloc().unwrap();
        store.write(id, &payload(0x33, 0)).unwrap();
        store.sync().unwrap();
        before = snapshot(&store);
    }
    // Tear the log: append half a record's worth of garbage.
    let mut wal_path = path.clone().into_os_string();
    wal_path.push(".wal");
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new().append(true).open(&wal_path).unwrap();
        f.write_all(&[0xFFu8; 10]).unwrap();
    }
    let (store, report) = PageStore::file_durable(&path, PAGE, WalConfig::default()).unwrap();
    assert!(report.torn_tail, "the torn log tail must be reported: {report:?}");
    assert_eq!(snapshot(&store), before);
}

#[test]
fn recycled_free_alloc_cycle_survives_recovery() {
    let ctrl = CrashController::new(CrashPlan::count_only(3));
    let backend = Arc::new(CrashBackend::new(FRAME, ctrl.clone()));
    let log = Arc::new(CrashLog::new(ctrl));
    let (store, _) = PageStore::new_durable(
        cfg(),
        Box::new(Arc::clone(&backend)),
        Box::new(Arc::clone(&log)),
        WalConfig { checkpoint_bytes: u64::MAX },
    )
    .unwrap();
    let a = store.alloc().unwrap();
    let b = store.alloc().unwrap();
    store.write(a, &payload(0x01, 0)).unwrap();
    store.write(b, &payload(0x02, 1)).unwrap();
    store.free(a).unwrap();
    let c = store.alloc().unwrap();
    assert_eq!(c, a, "strict stores recycle the freed id");
    store.write(c, &payload(0x03, 2)).unwrap();
    store.commit_with(b"cycle").unwrap();
    let committed = snapshot(&store);

    let (store2, _) = PageStore::new_durable(
        cfg(),
        Box::new(backend.surviving_backend()),
        Box::new(log.surviving_log()),
        WalConfig::default(),
    )
    .unwrap();
    assert_eq!(snapshot(&store2), committed);
    // The free list is state too: the next alloc must pick the same id a
    // continued run would have.
    let d1 = store.alloc().unwrap();
    let d2 = store2.alloc().unwrap();
    assert_eq!(d1, d2, "recovered allocator must continue identically");
}
