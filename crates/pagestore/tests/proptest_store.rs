//! Property tests for the storage substrate: arbitrary operation sequences
//! against an in-memory oracle, across backend/pool configurations.
//!
//! Runs on the in-tree `pc_rng::check` harness (hermetic replacement for
//! proptest): seeded generation, greedy shrinking, regression seeds pinned
//! in code. The one case proptest had persisted in
//! `proptest_store.proptest-regressions` is carried over below as the
//! explicit unit test [`regression_free_then_realloc_reads_zero`].

use std::collections::HashMap;

use pc_rng::check::{check, shrink_usize, shrink_vec, Config};
use pc_rng::Rng;

use pc_pagestore::{PageId, PageStore, StoreError};

/// One storage operation in a generated sequence.
#[derive(Debug, Clone)]
enum Op {
    Alloc,
    /// Write `fill` bytes of value `byte` to the i-th live page.
    Write { page_sel: usize, byte: u8, fill: usize },
    /// Read the i-th live page and compare against the oracle.
    Read { page_sel: usize },
    /// Free the i-th live page.
    Free { page_sel: usize },
}

/// Weighted op draw matching the old proptest strategy: 2 alloc, 4 write,
/// 4 read, 1 free.
fn gen_op(rng: &mut Rng) -> Op {
    match rng.gen_range(0usize..11) {
        0 | 1 => Op::Alloc,
        2..=5 => Op::Write {
            page_sel: rng.gen_range(0usize..=usize::MAX),
            byte: rng.gen_range(0u64..=255) as u8,
            fill: rng.gen_range(0usize..64),
        },
        6..=9 => Op::Read { page_sel: rng.gen_range(0usize..=usize::MAX) },
        _ => Op::Free { page_sel: rng.gen_range(0usize..=usize::MAX) },
    }
}

fn gen_ops(rng: &mut Rng) -> Vec<Op> {
    let n = rng.gen_range(1usize..200);
    (0..n).map(|_| gen_op(rng)).collect()
}

fn shrink_op(op: &Op) -> Vec<Op> {
    match *op {
        Op::Alloc => Vec::new(),
        Op::Write { page_sel, byte, fill } => {
            let mut out: Vec<Op> = shrink_usize(page_sel)
                .into_iter()
                .map(|p| Op::Write { page_sel: p, byte, fill })
                .collect();
            out.extend(shrink_usize(fill).into_iter().map(|f| Op::Write { page_sel, byte, fill: f }));
            out
        }
        Op::Read { page_sel } => {
            shrink_usize(page_sel).into_iter().map(|p| Op::Read { page_sel: p }).collect()
        }
        Op::Free { page_sel } => {
            shrink_usize(page_sel).into_iter().map(|p| Op::Free { page_sel: p }).collect()
        }
    }
}

macro_rules! ensure {
    ($cond:expr, $($arg:tt)+) => {
        if !$cond {
            return Err(format!($($arg)+));
        }
    };
}

fn run_ops(store: &PageStore, ops: &[Op]) -> Result<(), String> {
    let page_size = store.page_size();
    let mut live: Vec<PageId> = Vec::new();
    let mut oracle: HashMap<u64, Vec<u8>> = HashMap::new();
    for op in ops {
        match op {
            Op::Alloc => {
                let id = store.alloc().unwrap();
                ensure!(!live.contains(&id), "allocator returned a live id {id:?}");
                live.push(id);
                oracle.insert(id.0, vec![0u8; page_size]);
            }
            Op::Write { page_sel, byte, fill } => {
                if live.is_empty() {
                    continue;
                }
                let id = live[page_sel % live.len()];
                let data = vec![*byte; *fill];
                store.write(id, &data).unwrap();
                let entry = oracle.get_mut(&id.0).unwrap();
                entry.fill(0);
                entry[..data.len()].copy_from_slice(&data);
            }
            Op::Read { page_sel } => {
                if live.is_empty() {
                    continue;
                }
                let id = live[page_sel % live.len()];
                let page = store.read(id).unwrap();
                ensure!(page[..] == oracle[&id.0][..], "page {id:?} diverged from oracle");
            }
            Op::Free { page_sel } => {
                if live.is_empty() {
                    continue;
                }
                let idx = page_sel % live.len();
                let id = live.swap_remove(idx);
                store.free(id).unwrap();
                oracle.remove(&id.0);
                ensure!(
                    matches!(store.read(id), Err(StoreError::PageNotAllocated(_))),
                    "freed page {id:?} still readable"
                );
            }
        }
    }
    // Final sweep: every live page still reads back exactly.
    for id in &live {
        let page = store.read(*id).unwrap();
        ensure!(page[..] == oracle[&id.0][..], "final sweep: page {id:?} diverged");
    }
    ensure!(
        store.live_pages() == live.len() as u64,
        "live_pages {} != oracle {}",
        store.live_pages(),
        live.len()
    );
    Ok(())
}

fn shrink_ops(ops: &[Op]) -> Vec<Vec<Op>> {
    shrink_vec(ops, shrink_op)
}

/// Strict in-memory store behaves like a map of pages.
#[test]
fn strict_store_matches_oracle() {
    check(&Config::with_cases(48), gen_ops, |ops| shrink_ops(ops), |ops| {
        let store = PageStore::in_memory(64);
        run_ops(&store, ops)
    });
}

/// A pooled store (tiny pool, constant eviction) returns identical
/// contents — the pool must be transparent.
#[test]
fn pooled_store_matches_oracle() {
    check(&Config::with_cases(48), gen_ops, |ops| shrink_ops(ops), |ops| {
        let store = PageStore::in_memory_pooled(64, 3);
        run_ops(&store, ops)
    });
}

/// Strict and pooled stores see the same logical access counts:
/// pooled reads + hits == strict reads.
#[test]
fn pool_preserves_logical_access_counts() {
    let gen_shorter = |rng: &mut Rng| {
        let n = rng.gen_range(1usize..150);
        (0..n).map(|_| gen_op(rng)).collect::<Vec<Op>>()
    };
    check(&Config::with_cases(48), gen_shorter, |ops| shrink_ops(ops), |ops| {
        let strict = PageStore::in_memory(64);
        let pooled = PageStore::in_memory_pooled(64, 5);
        run_ops(&strict, ops)?;
        run_ops(&pooled, ops)?;
        let s = strict.stats();
        let p = pooled.stats();
        ensure!(
            p.reads + p.cache_hits == s.reads + s.cache_hits,
            "logical reads diverged: pooled {}+{} vs strict {}+{}",
            p.reads,
            p.cache_hits,
            s.reads,
            s.cache_hits
        );
        ensure!(p.allocs == s.allocs, "alloc counts diverged");
        ensure!(p.frees == s.frees, "free counts diverged");
        Ok(())
    });
}

/// Carried over from `proptest_store.proptest-regressions` (shrunk case
/// `[Alloc, Write { page_sel: 0, byte: 1, fill: 1 }, Free { page_sel:
/// 20364825358 }, Alloc]`): a freed-then-recycled page must read as
/// all-zero, not leak its previous contents.
#[test]
fn regression_free_then_realloc_reads_zero() {
    let ops = [
        Op::Alloc,
        Op::Write { page_sel: 0, byte: 1, fill: 1 },
        Op::Free { page_sel: 20_364_825_358 },
        Op::Alloc,
    ];
    let strict = PageStore::in_memory(64);
    run_ops(&strict, &ops).unwrap();
    let pooled = PageStore::in_memory_pooled(64, 3);
    run_ops(&pooled, &ops).unwrap();
}

#[test]
fn pooled_file_store_matches_oracle_after_sync_cycles() {
    // A deterministic mixed workload against a real file with a tiny pool,
    // interleaving syncs.
    let dir = std::env::temp_dir().join(format!("pcprop-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("prop.bin");
    {
        let backend = pc_pagestore::backend::FileBackend::open(&path, 64 + 8).unwrap();
        let store = PageStore::new(
            pc_pagestore::StoreConfig { page_size: 64, pool_pages: 2, pool_shards: 2, ..pc_pagestore::StoreConfig::strict(64) },
            Box::new(backend),
        );
        let ids: Vec<PageId> = (0..16).map(|_| store.alloc().unwrap()).collect();
        for round in 0..10u8 {
            for (i, &id) in ids.iter().enumerate() {
                store.write(id, &[round.wrapping_mul(17) ^ i as u8; 30]).unwrap();
            }
            if round % 3 == 0 {
                store.sync().unwrap();
            }
            for (i, &id) in ids.iter().enumerate() {
                let page = store.read(id).unwrap();
                assert_eq!(page[0], round.wrapping_mul(17) ^ i as u8);
                assert_eq!(page[29], page[0]);
                assert_eq!(page[30], 0);
            }
        }
        store.sync().unwrap();
    }
    std::fs::remove_file(&path).unwrap();
}
