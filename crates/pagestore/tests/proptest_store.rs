//! Property tests for the storage substrate: arbitrary operation sequences
//! against an in-memory oracle, across backend/pool configurations.

use std::collections::HashMap;

use proptest::prelude::*;

use pc_pagestore::{PageId, PageStore, StoreError};

/// One storage operation in a generated sequence.
#[derive(Debug, Clone)]
enum Op {
    Alloc,
    /// Write `fill` bytes of value `byte` to the i-th live page.
    Write { page_sel: usize, byte: u8, fill: usize },
    /// Read the i-th live page and compare against the oracle.
    Read { page_sel: usize },
    /// Free the i-th live page.
    Free { page_sel: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        2 => Just(Op::Alloc),
        4 => (any::<usize>(), any::<u8>(), 0usize..64).prop_map(|(page_sel, byte, fill)| {
            Op::Write { page_sel, byte, fill }
        }),
        4 => any::<usize>().prop_map(|page_sel| Op::Read { page_sel }),
        1 => any::<usize>().prop_map(|page_sel| Op::Free { page_sel }),
    ]
}

fn run_ops(store: &PageStore, ops: &[Op]) -> Result<(), TestCaseError> {
    let page_size = store.page_size();
    let mut live: Vec<PageId> = Vec::new();
    let mut oracle: HashMap<u64, Vec<u8>> = HashMap::new();
    for op in ops {
        match op {
            Op::Alloc => {
                let id = store.alloc().unwrap();
                prop_assert!(!live.contains(&id), "allocator returned a live id");
                live.push(id);
                oracle.insert(id.0, vec![0u8; page_size]);
            }
            Op::Write { page_sel, byte, fill } => {
                if live.is_empty() {
                    continue;
                }
                let id = live[page_sel % live.len()];
                let data = vec![*byte; *fill];
                store.write(id, &data).unwrap();
                let entry = oracle.get_mut(&id.0).unwrap();
                entry.fill(0);
                entry[..data.len()].copy_from_slice(&data);
            }
            Op::Read { page_sel } => {
                if live.is_empty() {
                    continue;
                }
                let id = live[page_sel % live.len()];
                let page = store.read(id).unwrap();
                prop_assert_eq!(&page[..], &oracle[&id.0][..], "page {:?}", id);
            }
            Op::Free { page_sel } => {
                if live.is_empty() {
                    continue;
                }
                let idx = page_sel % live.len();
                let id = live.swap_remove(idx);
                store.free(id).unwrap();
                oracle.remove(&id.0);
                prop_assert!(matches!(
                    store.read(id),
                    Err(StoreError::PageNotAllocated(_))
                ));
            }
        }
    }
    // Final sweep: every live page still reads back exactly.
    for id in &live {
        let page = store.read(*id).unwrap();
        prop_assert_eq!(&page[..], &oracle[&id.0][..]);
    }
    prop_assert_eq!(store.live_pages(), live.len() as u64);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Strict in-memory store behaves like a map of pages.
    #[test]
    fn strict_store_matches_oracle(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let store = PageStore::in_memory(64);
        run_ops(&store, &ops)?;
    }

    /// A pooled store (tiny pool, constant eviction) returns identical
    /// contents — the pool must be transparent.
    #[test]
    fn pooled_store_matches_oracle(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let store = PageStore::in_memory_pooled(64, 3);
        run_ops(&store, &ops)?;
    }

    /// Strict and pooled stores see the same logical access counts:
    /// pooled reads + hits == strict reads.
    #[test]
    fn pool_preserves_logical_access_counts(
        ops in prop::collection::vec(op_strategy(), 1..150),
    ) {
        let strict = PageStore::in_memory(64);
        let pooled = PageStore::in_memory_pooled(64, 5);
        run_ops(&strict, &ops)?;
        run_ops(&pooled, &ops)?;
        let s = strict.stats();
        let p = pooled.stats();
        prop_assert_eq!(p.reads + p.cache_hits, s.reads + s.cache_hits);
        prop_assert_eq!(p.allocs, s.allocs);
        prop_assert_eq!(p.frees, s.frees);
    }
}

#[test]
fn pooled_file_store_matches_oracle_after_sync_cycles() {
    // A deterministic mixed workload against a real file with a tiny pool,
    // interleaving syncs.
    let dir = std::env::temp_dir().join(format!("pcprop-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("prop.bin");
    {
        let backend = pc_pagestore::backend::FileBackend::open(&path, 64 + 8).unwrap();
        let store = PageStore::new(
            pc_pagestore::StoreConfig { page_size: 64, pool_pages: 2 },
            Box::new(backend),
        );
        let ids: Vec<PageId> = (0..16).map(|_| store.alloc().unwrap()).collect();
        for round in 0..10u8 {
            for (i, &id) in ids.iter().enumerate() {
                store.write(id, &[round.wrapping_mul(17) ^ i as u8; 30]).unwrap();
            }
            if round % 3 == 0 {
                store.sync().unwrap();
            }
            for (i, &id) in ids.iter().enumerate() {
                let page = store.read(id).unwrap();
                assert_eq!(page[0], round.wrapping_mul(17) ^ i as u8);
                assert_eq!(page[29], page[0]);
                assert_eq!(page[30], 0);
            }
        }
        store.sync().unwrap();
    }
    std::fs::remove_file(&path).unwrap();
}
