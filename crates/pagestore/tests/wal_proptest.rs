//! Property tests for the WAL record codec and scanner, driven by the
//! `pc-rng` shrinking harness.
//!
//! Three properties, matching how a log actually fails:
//!
//! - **round-trip**: any record sequence encodes, scans back identical,
//!   with `valid_len` covering every byte and no torn tail;
//! - **truncation**: any byte-prefix of a valid log scans to a *record
//!   prefix* of the original sequence — never an error, never a phantom
//!   record, and the torn tail is exactly the leftover bytes;
//! - **corruption**: flipping any byte inside the record region never
//!   yields a record that wasn't written: the scan result is a prefix of
//!   the original sequence (the CRC catches the damage and the scanner
//!   stops there).

use pc_pagestore::wal::{
    decode_record, encode_header, scan, WalRecord, MAX_RECORD_PAYLOAD, WAL_HEADER_LEN,
};
use pc_pagestore::{AllocSnapshot, PageId};
use pc_rng::check::{check, no_shrink, shrink_vec, Config};
use pc_rng::Rng;

const PAGE: usize = 64;

fn gen_record(rng: &mut Rng, lsn: u64) -> WalRecord {
    match rng.gen_range(0..5u64) {
        0 => {
            let len = rng.gen_range(0..=PAGE);
            let mut data = vec![0u8; len];
            rng.fill_bytes(&mut data);
            WalRecord::PageWrite { lsn, page: PageId(rng.gen_range(0..64u64)), data }
        }
        1 => WalRecord::Alloc { lsn, page: PageId(rng.gen_range(0..64u64)) },
        2 => WalRecord::Free { lsn, page: PageId(rng.gen_range(0..64u64)) },
        3 => {
            let len = rng.gen_range(0..16usize);
            let mut meta = vec![0u8; len];
            rng.fill_bytes(&mut meta);
            WalRecord::Commit { lsn, meta }
        }
        _ => {
            let frees = rng.gen_range(0..6usize);
            let free_list = (0..frees).map(|_| rng.gen_range(0..64u64)).collect();
            let meta_len = rng.gen_range(0..12usize);
            let mut meta = vec![0u8; meta_len];
            rng.fill_bytes(&mut meta);
            WalRecord::Checkpoint {
                lsn,
                alloc: AllocSnapshot { next_id: rng.gen_range(0..128u64), free_list },
                meta,
            }
        }
    }
}

fn gen_records(rng: &mut Rng) -> Vec<WalRecord> {
    let n = rng.gen_range(0..24usize);
    (0..n).map(|i| gen_record(rng, i as u64 + 1)).collect()
}

/// Drop-front/drop-back/drop-one shrinking; records keep their (now
/// non-contiguous) LSNs, which the codec must not care about.
fn shrink_records(recs: &[WalRecord]) -> Vec<Vec<WalRecord>> {
    shrink_vec(recs, |_| Vec::new())
}

fn encode_log(records: &[WalRecord]) -> Vec<u8> {
    let mut bytes = encode_header(PAGE);
    for r in records {
        r.encode_into(&mut bytes);
    }
    bytes
}

#[test]
fn prop_record_sequences_round_trip_through_scan() {
    check(
        &Config::with_cases(300),
        gen_records,
        |recs| shrink_records(recs),
        |records| {
            let bytes = encode_log(records);
            let out = scan(&bytes, PAGE).map_err(|e| format!("scan failed: {e}"))?;
            if out.records != *records {
                return Err(format!(
                    "round-trip mismatch: wrote {} records, read {}",
                    records.len(),
                    out.records.len()
                ));
            }
            if out.valid_len != bytes.len() as u64 || out.torn_bytes != 0 {
                return Err(format!(
                    "clean log misreported: valid {} of {}, torn {}",
                    out.valid_len,
                    bytes.len(),
                    out.torn_bytes
                ));
            }
            // encoded_len must agree with what encode_into produced.
            let sum: usize =
                records.iter().map(WalRecord::encoded_len).sum::<usize>() + WAL_HEADER_LEN;
            if sum != bytes.len() {
                return Err(format!("encoded_len sums to {sum}, stream is {}", bytes.len()));
            }
            Ok(())
        },
    );
}

#[test]
fn prop_any_truncation_scans_to_a_record_prefix() {
    // Input: a record sequence plus a cut fraction; the cut point is
    // derived so shrinking the records keeps the case meaningful.
    check(
        &Config::with_cases(300),
        |rng| (gen_records(rng), rng.next_u64()),
        |(recs, frac)| {
            shrink_records(recs).into_iter().map(|r| (r, *frac)).collect::<Vec<_>>()
        },
        |(records, frac)| {
            let bytes = encode_log(records);
            let cut = (*frac as usize) % (bytes.len() + 1);
            let torn = &bytes[..cut];
            let out = match scan(torn, PAGE) {
                Ok(out) => out,
                // A cut inside the header of a non-empty log loses the
                // page-size field: that is corruption, not a torn tail —
                // but only when the surviving bytes are not a strict
                // prefix of the expected header (those scan as fresh).
                Err(_) if cut < WAL_HEADER_LEN => return Ok(()),
                Err(e) => return Err(format!("cut {cut}: scan failed: {e}")),
            };
            if out.records.as_slice() != &records[..out.records.len()] {
                return Err(format!(
                    "cut {cut}: scanned records are not a written prefix"
                ));
            }
            if out.valid_len + out.torn_bytes != cut as u64 {
                return Err(format!(
                    "cut {cut}: valid {} + torn {} != {}",
                    out.valid_len, out.torn_bytes, cut
                ));
            }
            // Cutting mid-record drops exactly that record, nothing more.
            if cut == bytes.len() && out.records.len() != records.len() {
                return Err("whole log scanned short".into());
            }
            Ok(())
        },
    );
}

#[test]
fn prop_corruption_never_fabricates_records() {
    check(
        &Config::with_cases(300),
        |rng| {
            let mut records = gen_records(rng);
            if records.is_empty() {
                records.push(gen_record(rng, 1));
            }
            (records, rng.next_u64(), rng.gen_range(1..=255u64) as u8)
        },
        no_shrink,
        |(records, pos_seed, xor)| {
            let mut bytes = encode_log(records);
            // Corrupt one byte in the record region (past the header).
            let pos = WAL_HEADER_LEN + (*pos_seed as usize) % (bytes.len() - WAL_HEADER_LEN);
            bytes[pos] ^= xor;
            let out = match scan(&bytes, PAGE) {
                Ok(out) => out,
                Err(e) => return Err(format!("pos {pos}: record damage must not make \
                                              scan error (that's for header damage): {e}")),
            };
            // Every scanned record must be one that was actually written,
            // at its position — damage can only shorten the sequence or
            // (if it hit dead bytes the CRC doesn't cover… there are none)
            // leave it intact. A length-field hit may also resynchronize
            // by luck, but the CRC makes a fabricated record astronomically
            // unlikely; we require prefix-or-equal.
            let n = out.records.len();
            if n > records.len() || out.records.as_slice() != &records[..n] {
                return Err(format!(
                    "pos {pos} xor {xor:#x}: corrupted log scanned to a non-prefix \
                     ({n} records of {})",
                    records.len()
                ));
            }
            Ok(())
        },
    );
}

#[test]
fn prop_decode_record_never_panics_on_arbitrary_bytes() {
    check(
        &Config::with_cases(500),
        |rng| {
            let len = rng.gen_range(0..128usize);
            let mut bytes = vec![0u8; len];
            rng.fill_bytes(&mut bytes);
            bytes
        },
        |v| shrink_vec(v, |_| Vec::new()),
        |bytes| {
            // Must return cleanly — None or a record whose reported length
            // fits in the buffer.
            match decode_record(bytes) {
                None => Ok(()),
                Some((_, used)) if used <= bytes.len() => Ok(()),
                Some((_, used)) => {
                    Err(format!("decode claims {used} bytes from a {}-byte buffer", bytes.len()))
                }
            }
        },
    );
}

#[test]
fn oversized_length_field_is_rejected_not_allocated() {
    // A corrupt length field must not drive a huge allocation: anything
    // over MAX_RECORD_PAYLOAD is treated as torn.
    let mut bytes = encode_header(PAGE);
    let rec_start = bytes.len();
    WalRecord::Commit { lsn: 1, meta: vec![7; 4] }.encode_into(&mut bytes);
    bytes[rec_start..rec_start + 4]
        .copy_from_slice(&((MAX_RECORD_PAYLOAD as u32) + 1).to_le_bytes());
    let out = scan(&bytes, PAGE).unwrap();
    assert!(out.records.is_empty());
    assert_eq!(out.valid_len, WAL_HEADER_LEN as u64);
    assert_eq!(out.torn_bytes, (bytes.len() - WAL_HEADER_LEN) as u64);
}
