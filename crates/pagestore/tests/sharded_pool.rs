//! Integration tests for the sharded buffer pool: shard independence,
//! dirty write-back under concurrent writers, and interleaving smoke tests
//! driven through `std::thread::scope` with deliberately tiny shard counts
//! so every lock edge gets exercised.

use std::sync::atomic::{AtomicU64, Ordering};

use pc_pagestore::{PageId, PageStore};

/// Allocates pages until `want` of them land in pool shard `shard`,
/// returning those ids (the others stay allocated but unused).
fn alloc_in_shard(store: &PageStore, shard: usize, want: usize) -> Vec<PageId> {
    let mut ids = Vec::new();
    while ids.len() < want {
        let id = store.alloc().unwrap();
        if store.pool_shard_of(id) == Some(shard) {
            ids.push(id);
        }
    }
    ids
}

/// Evicting inside one shard must not disturb residency in any other
/// shard: pages resident in shard 1 keep hitting while shard 0 churns.
#[test]
fn cross_shard_eviction_independence() {
    // 4 shards × 2 frames each.
    let store = PageStore::in_memory_pooled_sharded(64, 8, 4);
    assert_eq!(store.pool_shards(), 4);

    let hot = alloc_in_shard(&store, 1, 2);
    let churn = alloc_in_shard(&store, 0, 10);
    for (i, &id) in hot.iter().chain(churn.iter()).enumerate() {
        store.write(id, &[i as u8]).unwrap();
    }

    // Make the two shard-1 pages resident (they fit exactly: capacity 2).
    for &id in &hot {
        store.read(id).unwrap();
    }
    store.reset_stats();

    // Churn shard 0 far past its capacity.
    for _ in 0..5 {
        for &id in &churn {
            store.read(id).unwrap();
        }
    }
    let after_churn = store.stats();
    assert!(after_churn.pool_evictions > 0, "shard 0 must have evicted");

    // The hot shard-1 pages must still be resident: pure hits, no reads.
    for &id in &hot {
        store.read(id).unwrap();
    }
    let s = store.stats();
    assert_eq!(s.reads, after_churn.reads, "shard-1 pages were evicted by shard-0 churn");
    assert_eq!(s.cache_hits, after_churn.cache_hits + hot.len() as u64);

    // And the per-shard breakdown agrees: shard 1 saw only hits.
    let shards = store.pool_shard_stats().unwrap();
    assert_eq!(shards[1].misses, 0);
    assert_eq!(shards[1].evictions, 0);
    assert_eq!(shards[1].hits, hot.len() as u64);
    assert!(shards[0].evictions > 0);
}

/// Concurrent writers through a tiny pool (constant dirty eviction): after
/// a final sync, the backend must hold every page's *last* write — the
/// per-shard lock serializes write → write-back → rewrite per page.
#[test]
fn dirty_write_back_keeps_last_write_under_concurrent_writers() {
    let store = PageStore::in_memory_pooled_sharded(64, 4, 2);
    let per_thread = 8usize;
    let threads = 4usize;
    let ids: Vec<Vec<PageId>> = (0..threads)
        .map(|_| (0..per_thread).map(|_| store.alloc().unwrap()).collect())
        .collect();

    std::thread::scope(|s| {
        for (t, my_ids) in ids.iter().enumerate() {
            let store = &store;
            s.spawn(move || {
                for round in 0..25u8 {
                    for (i, &id) in my_ids.iter().enumerate() {
                        let fill = (t as u8) ^ round.wrapping_mul(31) ^ (i as u8);
                        store.write(id, &[fill; 64]).unwrap();
                    }
                }
            });
        }
    });
    store.sync().unwrap();

    for (t, my_ids) in ids.iter().enumerate() {
        for (i, &id) in my_ids.iter().enumerate() {
            let want = (t as u8) ^ 24u8.wrapping_mul(31) ^ (i as u8);
            let page = store.read(id).unwrap();
            assert!(
                page.iter().all(|&b| b == want),
                "page {id:?}: expected uniform {want}, got {:?}…",
                &page[..4]
            );
        }
    }
    let s = store.stats();
    assert!(s.pool_evictions > 0, "a 4-frame pool under 32 hot pages must evict");
}

/// Readers racing one writer on a single page must always observe an
/// atomic snapshot: every read returns a uniformly-filled page, never a
/// torn mix — the zero-copy design swaps whole `Arc` handles.
#[test]
fn concurrent_reads_see_atomic_page_snapshots() {
    let store = PageStore::in_memory_pooled_sharded(64, 2, 1);
    let id = store.alloc().unwrap();
    store.write(id, &[0u8; 64]).unwrap();

    std::thread::scope(|s| {
        s.spawn(|| {
            for round in 1..=200u8 {
                store.write(id, &[round; 64]).unwrap();
            }
        });
        for _ in 0..3 {
            s.spawn(|| {
                for _ in 0..400 {
                    let page = store.read(id).unwrap();
                    let first = page[0];
                    assert!(
                        page.iter().all(|&b| b == first),
                        "torn page read: starts {first}, mixed content"
                    );
                }
            });
        }
    });
}

/// Interleaving smoke test with a deliberately tiny shard count: mixed
/// reads/writes/frees from `std::thread::scope` threads, then exact
/// logical-access accounting — pooled reads + hits must equal the logical
/// read count, no increments lost across shard atomics.
#[test]
fn interleaving_smoke_with_small_shard_count() {
    for shards in [1usize, 2] {
        let store = PageStore::in_memory_pooled_sharded(64, 4, shards);
        // Shared read-mostly pages with a stable uniform fill each.
        let shared: Vec<PageId> = (0..8)
            .map(|i| {
                let id = store.alloc().unwrap();
                store.write(id, &[0x40 | i as u8; 64]).unwrap();
                id
            })
            .collect();
        store.sync().unwrap();
        store.reset_stats();

        let logical_reads = AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..4usize {
                let shared = &shared;
                let logical_reads = &logical_reads;
                let store = &store;
                s.spawn(move || {
                    let mut mine: Vec<PageId> = Vec::new();
                    for round in 0..50usize {
                        // Read a shared page; content must be its fixed fill.
                        let i = (round * 7 + t) % shared.len();
                        let page = store.read(shared[i]).unwrap();
                        logical_reads.fetch_add(1, Ordering::Relaxed);
                        assert!(page.iter().all(|&b| b == 0x40 | i as u8));
                        // Private page lifecycle: alloc → write → read → free.
                        match round % 4 {
                            0 => mine.push(store.alloc().unwrap()),
                            1 => {
                                if let Some(&id) = mine.last() {
                                    store.write(id, &[t as u8 + 1; 64]).unwrap();
                                }
                            }
                            2 => {
                                if let Some(&id) = mine.last() {
                                    let p = store.read(id).unwrap();
                                    logical_reads.fetch_add(1, Ordering::Relaxed);
                                    assert!(p.iter().all(|&b| b == t as u8 + 1));
                                }
                            }
                            _ => {
                                if let Some(id) = mine.pop() {
                                    store.free(id).unwrap();
                                }
                            }
                        }
                    }
                    for id in mine {
                        store.free(id).unwrap();
                    }
                });
            }
        });

        let s = store.stats();
        assert_eq!(
            s.reads + s.cache_hits,
            logical_reads.load(Ordering::Relaxed),
            "shards={shards}: pooled reads + hits must equal logical reads"
        );
        assert_eq!(s.allocs, s.frees, "every private page was freed");
    }
}
