//! N-way replicated backend with checksum-verified read failover and a
//! scrub/repair pass.
//!
//! [`MirrorBackend`] keeps every frame on `N` replica backends. Writes go
//! to *all* replicas and fail if any replica fails — a partial mirror write
//! is reported (preferring a retryable error) so the store's retry layer
//! re-drives the whole replicated write, rather than leaving one replica
//! silently stale behind a valid checksum. Reads try replicas in order and
//! serve the first frame the workspace frame rule classifies as *written*
//! ([`crate::codec::classify_frame`] — the same rule the store's checksum
//! verification applies, so the mirror can never "accept" bytes the store
//! would reject). An all-zero *unwritten* frame never shadows a later
//! replica's written data: a fresh or wiped replica answering zeros is a
//! failover-and-repair case, not an answer. A read served by a later
//! replica is a *failover*, and the divergent earlier replicas are
//! rewritten from the good frame on the spot (*read-repair*).
//! [`MirrorBackend::scrub`] walks every frame offline and restores replica
//! agreement from the lowest-indexed written copy.
//!
//! Scrub restores **agreement, not recency**: if replicas diverge with both
//! copies internally valid (possible only after a partial write escaped the
//! retry layer), the lowest-indexed replica's frame wins. The store-level
//! quarantine exists precisely to fence pages whose mirrored write
//! exhausted its retries, closing that window.
//!
//! **Write-ordinal lockstep.** Every write round — a store write, a
//! read-repair, a scrub repair — either writes all replicas or none, so a
//! page's Nth write lands on every replica as that replica's Nth write.
//! Deterministic fault injection leans on this: two [`crate::FaultPlan`]s
//! with one seed and phases half a unit apart fire on disjoint
//! `(page, ordinal)` pairs, which is a guarantee that no single-kind silent
//! fault ever corrupts every replica of a frame at once — but only while
//! the replicas' ordinals agree.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::backend::{Backend, ResilienceStats, ScrubReport};
use crate::codec::{classify_frame, FrameState};
use crate::error::{Result, StoreError};
use crate::store::PageId;

/// A backend replicating frames across N inner backends; see module docs.
pub struct MirrorBackend {
    replicas: Vec<Box<dyn Backend>>,
    frame_size: usize,
    failovers: AtomicU64,
    repairs: AtomicU64,
}

impl MirrorBackend {
    /// Builds a mirror over `replicas` (at least one, identical frame
    /// sizes). One replica is a valid degenerate mirror — useful for
    /// comparing counters against true replication.
    pub fn new(replicas: Vec<Box<dyn Backend>>) -> Self {
        assert!(!replicas.is_empty(), "a mirror needs at least one replica");
        let frame_size = replicas[0].frame_size();
        assert!(
            replicas.iter().all(|r| r.frame_size() == frame_size),
            "all mirror replicas must share one frame size"
        );
        MirrorBackend {
            replicas,
            frame_size,
            failovers: AtomicU64::new(0),
            repairs: AtomicU64::new(0),
        }
    }

    /// Number of replicas.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    fn note_repair(&self) {
        self.repairs.fetch_add(1, Ordering::Relaxed);
        pc_obs::counter(pc_obs::fault_metrics::REPAIRS).inc();
    }
}

/// Of the errors a replicated op collected, pick what to surface: a
/// retryable error if any replica failed retryably (the store's retry loop
/// can then re-drive the whole mirrored op), else the first error.
fn prefer_transient(errs: Vec<StoreError>) -> StoreError {
    let mut first = None;
    for e in errs {
        if e.is_transient() {
            return e;
        }
        first.get_or_insert(e);
    }
    first.expect("prefer_transient called with at least one error")
}

impl Backend for MirrorBackend {
    fn frame_size(&self) -> usize {
        self.frame_size
    }

    fn read_frame(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        let mut errs: Vec<StoreError> = Vec::new();
        // Earlier replicas that could not produce *written* data; they can
        // be repaired once a good copy turns up. `corrupt` frames failed
        // their checksum; `unwritten` frames read as all-zero — which is
        // not damage, but must never shadow a later replica's real data
        // (a fresh or wiped replica would otherwise silently answer every
        // read with a zero page).
        let mut corrupt: Vec<usize> = Vec::new();
        let mut unwritten: Vec<usize> = Vec::new();
        let mut corrupt_bytes: Option<Vec<u8>> = None;
        for (i, replica) in self.replicas.iter().enumerate() {
            match replica.read_frame(id, buf) {
                Ok(()) => match classify_frame(buf) {
                    FrameState::Written => {
                        if i > 0 {
                            self.failovers.fetch_add(1, Ordering::Relaxed);
                            pc_obs::counter(pc_obs::fault_metrics::FAILOVERS).inc();
                        }
                        // Read-repair, best-effort — a failed repair write
                        // leaves that replica corrupt-but-detectable, which
                        // scrub will get. The round rewrites *every*
                        // replica, not just the divergent ones: a repair
                        // that wrote a strict subset would advance the
                        // replicas' write counts unevenly, and
                        // deterministic fault injectors keyed on per-page
                        // write ordinals (FaultBackend with phase-offset
                        // plans) rely on those staying in lockstep to
                        // guarantee faults never hit all replicas at once.
                        if !corrupt.is_empty() || !unwritten.is_empty() {
                            for (j, replica) in self.replicas.iter().enumerate() {
                                if replica.write_frame(id, buf).is_ok()
                                    && (corrupt.contains(&j) || unwritten.contains(&j))
                                {
                                    self.note_repair();
                                }
                            }
                        }
                        return Ok(());
                    }
                    FrameState::Unwritten => unwritten.push(i),
                    FrameState::Corrupt => {
                        corrupt.push(i);
                        if corrupt_bytes.is_none() {
                            corrupt_bytes = Some(buf.to_vec());
                        }
                    }
                },
                Err(e) => errs.push(e),
            }
        }
        // No replica produced written data. A replica that failed
        // retryably may still hold a good copy, so a retryable error wins:
        // the store's retry loop re-drives the whole mirrored read. Failing
        // that, corrupt bytes beat unwritten zeroes — a corrupt frame is
        // evidence data existed, and handing up its bytes lets the store
        // report ChecksumMismatch instead of silently serving a zero page.
        // Only when every answering replica says "never written" is the
        // zero page the truth.
        let retryable = errs.iter().any(StoreError::is_transient);
        match (corrupt_bytes, retryable) {
            (_, true) => Err(prefer_transient(errs)),
            (Some(bytes), false) => {
                buf.copy_from_slice(&bytes);
                Ok(())
            }
            (None, false) if !unwritten.is_empty() => {
                buf.fill(0);
                Ok(())
            }
            (None, false) => Err(prefer_transient(errs)),
        }
    }

    fn write_frame(&self, id: PageId, buf: &[u8]) -> Result<()> {
        let mut errs: Vec<StoreError> = Vec::new();
        for replica in &self.replicas {
            if let Err(e) = replica.write_frame(id, buf) {
                errs.push(e);
            }
        }
        // All-or-error: a partial mirror write must be re-driven in full,
        // otherwise a failed replica keeps its old (valid-checksum!) frame
        // and could later serve it as a silently stale answer.
        if errs.is_empty() {
            Ok(())
        } else {
            Err(prefer_transient(errs))
        }
    }

    fn sync(&self) -> Result<()> {
        for replica in &self.replicas {
            replica.sync()?;
        }
        Ok(())
    }

    fn frame_count(&self) -> u64 {
        self.replicas.iter().map(|r| r.frame_count()).max().unwrap_or(0)
    }

    fn resilience_stats(&self) -> ResilienceStats {
        ResilienceStats {
            failovers: self.failovers.load(Ordering::Relaxed),
            repairs: self.repairs.load(Ordering::Relaxed),
        }
    }

    fn reset_resilience_stats(&self) {
        self.failovers.store(0, Ordering::Relaxed);
        self.repairs.store(0, Ordering::Relaxed);
    }

    fn scrub(&self) -> Result<ScrubReport> {
        let _span = pc_obs::span!("mirror.scrub");
        // Scrub runs offline with no store retry layer above it, so it
        // absorbs transient replica errors itself. Reads retry per replica
        // (reads never advance write ordinals); a repair round that fails
        // transiently on any replica is re-driven against *all* replicas,
        // keeping the write-ordinal lockstep intact. Without this, a
        // transient read on one replica while the other holds a torn frame
        // would be miscounted as unrecoverable.
        const ATTEMPTS: u32 = 4;
        fn read_retrying(replica: &dyn Backend, id: PageId, buf: &mut [u8]) -> Result<()> {
            let mut last = None;
            for _ in 0..ATTEMPTS {
                match replica.read_frame(id, buf) {
                    Err(e) if e.is_transient() => last = Some(e),
                    other => return other,
                }
            }
            Err(last.expect("retry loop ran at least once"))
        }
        let mut report = ScrubReport::default();
        let mut frame = vec![0u8; self.frame_size];
        let mut scratch = vec![0u8; self.frame_size];
        for ordinal in 0..self.frame_count() {
            let id = PageId(ordinal);
            report.frames_checked += 1;
            // Canonical copy: the lowest-indexed replica holding *written*
            // data (agreement, not recency — see module docs). An unwritten
            // (all-zero) frame is never canonical: a fresh or wiped replica
            // must not "repair" a good replica down to zeros, and zeros
            // must not paper over a corrupt replica — corruption stays
            // detectable. A frame every answering replica reports as
            // unwritten is simply healthy and needs nothing.
            let mut canonical: Option<usize> = None;
            let mut saw_corrupt = false;
            let mut saw_unwritten = false;
            for (i, replica) in self.replicas.iter().enumerate() {
                if read_retrying(replica.as_ref(), id, &mut frame).is_ok() {
                    match classify_frame(&frame) {
                        FrameState::Written => {
                            canonical = Some(i);
                            break;
                        }
                        FrameState::Unwritten => saw_unwritten = true,
                        FrameState::Corrupt => saw_corrupt = true,
                    }
                }
            }
            let Some(canon_idx) = canonical else {
                if saw_corrupt || !saw_unwritten {
                    report.unrecoverable += 1;
                }
                continue;
            };
            let mut divergent: Vec<usize> = Vec::new();
            for (i, replica) in self.replicas.iter().enumerate() {
                if i == canon_idx {
                    continue;
                }
                let healthy = match read_retrying(replica.as_ref(), id, &mut scratch) {
                    Ok(()) => scratch == frame,
                    Err(_) => false,
                };
                if !healthy {
                    divergent.push(i);
                }
            }
            // All-or-none repair rounds, for the same write-ordinal-lockstep
            // reason as read-repair (see `read_frame`). Each divergent
            // replica counts as repaired at most once across the re-driven
            // rounds.
            if !divergent.is_empty() {
                let mut pending = divergent;
                let mut repaired_any = false;
                for _ in 0..ATTEMPTS {
                    let mut retry = false;
                    for (i, replica) in self.replicas.iter().enumerate() {
                        match replica.write_frame(id, &frame) {
                            Ok(()) => {
                                if let Some(pos) = pending.iter().position(|&p| p == i) {
                                    pending.remove(pos);
                                    self.note_repair();
                                    repaired_any = true;
                                }
                            }
                            Err(e) if e.is_transient() => retry = true,
                            Err(_) => {}
                        }
                    }
                    if !retry {
                        break;
                    }
                }
                if repaired_any {
                    report.repaired += 1;
                }
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;
    use crate::codec::{fnv1a64, frame_is_valid};
    use crate::fault::{FaultBackend, FaultHandle, FaultPlan};

    const FS: usize = 64;

    fn valid_frame(fill: u8) -> Vec<u8> {
        let mut f = vec![fill; FS];
        let sum = fnv1a64(&f[..FS - 8]);
        f[FS - 8..].copy_from_slice(&sum.to_le_bytes());
        f
    }

    fn mirror2() -> (MirrorBackend, FaultHandle, FaultHandle) {
        let a = FaultBackend::new(Box::new(MemBackend::new(FS)), FaultPlan::none(1));
        let b = FaultBackend::new(Box::new(MemBackend::new(FS)), FaultPlan::none(2));
        let (ha, hb) = (a.handle(), b.handle());
        (MirrorBackend::new(vec![Box::new(a), Box::new(b)]), ha, hb)
    }

    #[test]
    fn roundtrip_and_replica_agreement() {
        let (m, _, _) = mirror2();
        let frame = valid_frame(9);
        m.write_frame(PageId(0), &frame).unwrap();
        let mut buf = vec![0u8; FS];
        m.read_frame(PageId(0), &mut buf).unwrap();
        assert_eq!(buf, frame);
        assert_eq!(m.resilience_stats(), ResilienceStats::default());
    }

    #[test]
    fn read_fails_over_and_repairs_a_rotten_primary() {
        let (m, ha, _) = mirror2();
        let frame = valid_frame(7);
        m.write_frame(PageId(3), &frame).unwrap();
        ha.rot_page(PageId(3)); // replica 0 now serves a flipped bit
        let mut buf = vec![0u8; FS];
        m.read_frame(PageId(3), &mut buf).unwrap();
        assert_eq!(buf, frame, "failover must serve replica 1's good copy");
        let rs = m.resilience_stats();
        assert_eq!((rs.failovers, rs.repairs), (1, 1));
        // Read-repair rewrote replica 0 (the rewrite clears pending rot),
        // so the next read is clean off the primary.
        m.read_frame(PageId(3), &mut buf).unwrap();
        assert_eq!(buf, frame);
        assert_eq!(m.resilience_stats().failovers, 1, "no second failover");
    }

    #[test]
    fn transient_primary_error_fails_over_without_store_retry() {
        let (m, ha, _) = mirror2();
        let frame = valid_frame(5);
        m.write_frame(PageId(1), &frame).unwrap();
        ha.fail_nth_read(PageId(1), 2);
        let mut buf = vec![0u8; FS];
        m.read_frame(PageId(1), &mut buf).unwrap(); // 1st read: primary fine
        m.read_frame(PageId(1), &mut buf).unwrap(); // 2nd: replica 1 serves
        assert_eq!(buf, frame);
        assert_eq!(m.resilience_stats().failovers, 1);
    }

    #[test]
    fn partial_write_reports_an_error_preferring_transient() {
        let (m, _, hb) = mirror2();
        m.write_frame(PageId(2), &valid_frame(1)).unwrap();
        hb.fail_nth_write(PageId(2), 2);
        let err = m.write_frame(PageId(2), &valid_frame(2)).unwrap_err();
        assert!(err.is_transient(), "retry layer must get a retryable error: {err}");
        // Replica 0 took the new frame, replica 1 kept the old one; the
        // re-driven write converges both.
        m.write_frame(PageId(2), &valid_frame(2)).unwrap();
        let mut buf = vec![0u8; FS];
        m.read_frame(PageId(2), &mut buf).unwrap();
        assert_eq!(buf, valid_frame(2));
        assert_eq!(m.resilience_stats().failovers, 0);
    }

    #[test]
    fn all_replicas_corrupt_surfaces_the_bytes_not_a_panic() {
        let (m, ha, hb) = mirror2();
        m.write_frame(PageId(4), &valid_frame(3)).unwrap();
        ha.rot_page(PageId(4));
        hb.rot_page(PageId(4));
        let mut buf = vec![0u8; FS];
        // Both replicas corrupt: the read succeeds with invalid bytes so the
        // store's checksum verification reports ChecksumMismatch.
        m.read_frame(PageId(4), &mut buf).unwrap();
        assert!(!frame_is_valid(&buf));
        assert_eq!(m.resilience_stats().repairs, 0, "nothing good to repair from");
    }

    #[test]
    fn all_replicas_lost_surfaces_a_permanent_error() {
        let (m, ha, hb) = mirror2();
        m.write_frame(PageId(5), &valid_frame(8)).unwrap();
        ha.lose_page(PageId(5));
        hb.lose_page(PageId(5));
        let mut buf = vec![0u8; FS];
        let err = m.read_frame(PageId(5), &mut buf).unwrap_err();
        assert!(!err.is_transient());
    }

    #[test]
    fn scrub_rewrites_bad_replicas_and_reports() {
        let (m, ha, hb) = mirror2();
        for i in 0..8u64 {
            m.write_frame(PageId(i), &valid_frame(i as u8 + 1)).unwrap();
        }
        ha.rot_page(PageId(2));
        hb.rot_page(PageId(6));
        hb.lose_page(PageId(7));
        let report = m.scrub().unwrap();
        assert_eq!(report.frames_checked, 8);
        assert_eq!(report.repaired, 3);
        assert_eq!(report.unrecoverable, 0);
        assert_eq!(m.resilience_stats().repairs, 3);
        // Everything reads clean off the primary afterwards.
        let mut buf = vec![0u8; FS];
        for i in 0..8u64 {
            m.read_frame(PageId(i), &mut buf).unwrap();
            assert_eq!(buf, valid_frame(i as u8 + 1));
        }
        assert_eq!(m.resilience_stats().failovers, 0);
    }

    #[test]
    fn fresh_primary_must_not_shadow_written_secondary() {
        // Regression: replica 0 is fresh (reads as zeros — "unwritten"),
        // replica 1 holds real data. The zero frame used to pass
        // frame_is_valid and win, silently serving a zero page.
        let secondary = MemBackend::new(FS);
        let frame = valid_frame(6);
        secondary.write_frame(PageId(0), &frame).unwrap();
        let m = MirrorBackend::new(vec![
            Box::new(MemBackend::new(FS)),
            Box::new(secondary),
        ]);
        let mut buf = vec![0u8; FS];
        m.read_frame(PageId(0), &mut buf).unwrap();
        assert_eq!(buf, frame, "written data must win over unwritten zeros");
        let rs = m.resilience_stats();
        assert_eq!((rs.failovers, rs.repairs), (1, 1));
        // Read-repair filled the fresh replica: next read is clean off the
        // primary, no second failover.
        m.read_frame(PageId(0), &mut buf).unwrap();
        assert_eq!(buf, frame);
        assert_eq!(m.resilience_stats().failovers, 1);
    }

    #[test]
    fn never_written_frame_reads_as_zeros_without_failover() {
        let (m, _, _) = mirror2();
        let mut buf = vec![1u8; FS];
        m.read_frame(PageId(9), &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
        assert_eq!(m.resilience_stats(), ResilienceStats::default());
    }

    #[test]
    fn scrub_repairs_fresh_replica_from_written_one_never_the_reverse() {
        let secondary = MemBackend::new(FS);
        let frame = valid_frame(4);
        secondary.write_frame(PageId(0), &frame).unwrap();
        let m = MirrorBackend::new(vec![
            Box::new(MemBackend::new(FS)),
            Box::new(secondary),
        ]);
        let report = m.scrub().unwrap();
        assert_eq!(report.repaired, 1);
        assert_eq!(report.unrecoverable, 0);
        let mut buf = vec![0u8; FS];
        m.read_frame(PageId(0), &mut buf).unwrap();
        assert_eq!(buf, frame, "scrub must copy written data into the fresh replica");
        assert_eq!(m.resilience_stats().failovers, 0, "primary now holds the data");
    }

    #[test]
    fn scrub_leaves_never_written_frames_alone_and_keeps_corruption_detectable() {
        let (m, ha, hb) = mirror2();
        // Frame 0: written then corrupted on both replicas — no written
        // copy survives, and the unwritten-looking zeros elsewhere must
        // not be used to paper over it.
        m.write_frame(PageId(0), &valid_frame(2)).unwrap();
        ha.rot_page(PageId(0));
        hb.rot_page(PageId(0));
        // Frame 1: written on both, so frames 0..=1 exist; frame 1 healthy.
        m.write_frame(PageId(1), &valid_frame(3)).unwrap();
        let report = m.scrub().unwrap();
        assert_eq!(report.unrecoverable, 1);
        assert_eq!(report.repaired, 0);
        // The corrupt frame still reads as corrupt bytes, not zeros.
        let mut buf = vec![0u8; FS];
        m.read_frame(PageId(0), &mut buf).unwrap();
        assert!(!frame_is_valid(&buf));
    }

    #[test]
    fn scrub_reports_unrecoverable_frames_untouched() {
        let (m, ha, hb) = mirror2();
        m.write_frame(PageId(0), &valid_frame(1)).unwrap();
        ha.rot_page(PageId(0));
        hb.rot_page(PageId(0));
        let report = m.scrub().unwrap();
        assert_eq!(report.unrecoverable, 1);
        assert_eq!(report.repaired, 0);
    }
}
