//! ARIES-lite write-ahead log for the page store.
//!
//! The log is an append-only sequence of checksummed, LSN-stamped records
//! over a pluggable [`LogMedium`] (a real file, a memory buffer for tests,
//! or the crash-injected medium in [`crate::crash`]). The store follows a
//! **redo-only, no-steal** discipline:
//!
//! * every page write is logged as a full page image *before* it becomes
//!   visible anywhere ([`WalRecord::PageWrite`]); allocation-table changes
//!   are logged as [`WalRecord::Alloc`]/[`WalRecord::Free`];
//! * a [`WalRecord::Commit`] marks a *consistency point*: the group-commit
//!   boundary at which the caller's structures are internally consistent.
//!   [`Wal::commit`] appends it, flushes, and `fsync`s — one fsync per
//!   batch, however many records it carries (group commit);
//! * the data file is written **only** during a checkpoint (or recovery),
//!   both of which run at consistency points — so the classic WAL-before-
//!   data rule holds by construction and no undo log is ever needed;
//! * a checkpoint ([`Wal::install_checkpoint`]) atomically replaces the
//!   whole log with a fresh one holding a single [`WalRecord::Checkpoint`]
//!   (an allocation-table snapshot), which bounds replay work to the
//!   records of one checkpoint interval.
//!
//! Recovery ([`crate::recovery`]) scans the log, drops a torn tail at the
//! first invalid record, replays everything between the last checkpoint and
//! the last commit, and discards intact-but-uncommitted records after it —
//! so a reopened store lands exactly on the most recent durable consistency
//! point.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use pc_sync::Mutex;

use crate::codec::fnv1a64;
use crate::error::{Result, StoreError};
use crate::store::PageId;

/// Magic bytes opening every WAL (version 1).
pub const WAL_MAGIC: &[u8; 8] = b"PCWAL001";
/// Header length: magic plus the little-endian page size.
pub const WAL_HEADER_LEN: usize = 16;

/// Fixed part of a record: `len: u32, kind: u8, lsn: u64, page: u64`.
const REC_FIXED: usize = 4 + 1 + 8 + 8;
/// Trailing checksum length.
const REC_CRC: usize = 8;
/// Upper bound on one record's payload; a torn length field must never
/// make the scanner chase gigabytes.
pub const MAX_RECORD_PAYLOAD: usize = 1 << 26;

const K_WRITE: u8 = 1;
const K_ALLOC: u8 = 2;
const K_FREE: u8 = 3;
const K_COMMIT: u8 = 4;
const K_CHECKPOINT: u8 = 5;

/// Where log bytes live. Implementations are internally synchronized; the
/// [`Wal`] serializes appends itself, so `append`/`sync`/`reset` are never
/// called concurrently with each other (reads may race and see a prefix).
pub trait LogMedium: Send + Sync {
    /// Entire current log contents.
    fn read_all(&self) -> Result<Vec<u8>>;
    /// Appends bytes at the end (buffered; durable only after `sync`).
    fn append(&self, buf: &[u8]) -> Result<()>;
    /// Makes all appended bytes durable.
    fn sync(&self) -> Result<()>;
    /// Current log length in bytes (appended, not necessarily synced).
    fn len(&self) -> Result<u64>;
    /// True when the log holds no bytes at all.
    fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }
    /// Atomically replaces the entire log with `contents`, durably: after
    /// this returns, a crash observes either the old log or the new one,
    /// never a mixture. (Files implement this as write-temp + fsync +
    /// rename.)
    fn reset(&self, contents: &[u8]) -> Result<()>;
}

/// File-backed log. `reset` is a write-to-temp / fsync / atomic-rename
/// sequence, so checkpoints can never leave a half-written log behind.
pub struct FileLog {
    path: PathBuf,
    file: Mutex<File>,
}

impl FileLog {
    /// Opens (creating if absent) the log at `path`. A stale `.tmp` from a
    /// crash mid-`reset` is removed — the rename never happened, so the
    /// real log is still the authoritative one.
    pub fn open(path: &Path) -> Result<FileLog> {
        let _ = std::fs::remove_file(Self::tmp_path(path));
        let file = OpenOptions::new().read(true).append(true).create(true).open(path)?;
        Ok(FileLog { path: path.to_path_buf(), file: Mutex::new(file) })
    }

    fn tmp_path(path: &Path) -> PathBuf {
        let mut os = path.as_os_str().to_os_string();
        os.push(".tmp");
        PathBuf::from(os)
    }
}

impl LogMedium for FileLog {
    fn read_all(&self) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        let guard = self.file.lock();
        let mut f = &*guard;
        use std::io::Seek;
        f.seek(std::io::SeekFrom::Start(0))?;
        f.read_to_end(&mut out)?;
        Ok(out)
    }

    fn append(&self, buf: &[u8]) -> Result<()> {
        let guard = self.file.lock();
        (&*guard).write_all(buf)?;
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        self.file.lock().sync_data()?;
        Ok(())
    }

    fn len(&self) -> Result<u64> {
        Ok(self.file.lock().metadata()?.len())
    }

    fn reset(&self, contents: &[u8]) -> Result<()> {
        let tmp = Self::tmp_path(&self.path);
        let mut guard = self.file.lock();
        {
            let mut t = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp)?;
            t.write_all(contents)?;
            t.sync_data()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        // Persist the rename itself: fsync the containing directory.
        if let Some(dir) = self.path.parent() {
            if let Ok(d) = File::open(if dir.as_os_str().is_empty() { Path::new(".") } else { dir })
            {
                let _ = d.sync_all();
            }
        }
        *guard = OpenOptions::new().read(true).append(true).open(&self.path)?;
        Ok(())
    }
}

/// In-memory log for tests and ephemeral durable stores.
#[derive(Default)]
pub struct MemLog {
    bytes: Mutex<Vec<u8>>,
}

impl MemLog {
    /// An empty log.
    pub fn new() -> MemLog {
        MemLog::default()
    }

    /// A log pre-seeded with `bytes` (e.g. a crash survivor's durable
    /// prefix).
    pub fn from_bytes(bytes: Vec<u8>) -> MemLog {
        MemLog { bytes: Mutex::new(bytes) }
    }
}

impl LogMedium for MemLog {
    fn read_all(&self) -> Result<Vec<u8>> {
        Ok(self.bytes.lock().clone())
    }

    fn append(&self, buf: &[u8]) -> Result<()> {
        self.bytes.lock().extend_from_slice(buf);
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        Ok(())
    }

    fn len(&self) -> Result<u64> {
        Ok(self.bytes.lock().len() as u64)
    }

    fn reset(&self, contents: &[u8]) -> Result<()> {
        *self.bytes.lock() = contents.to_vec();
        Ok(())
    }
}

/// Snapshot of the store's allocation table, carried by checkpoint records.
/// The allocated set is implied: every id below `next_id` that is not on
/// the free list is live, so the snapshot is two integers plus the free
/// list — no bitmap.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Next never-allocated page id.
    pub next_id: u64,
    /// Freed ids available for recycling, in exact stack order (recycling
    /// pops from the back, so order is part of the state).
    pub free_list: Vec<u64>,
}

impl AllocSnapshot {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.next_id.to_le_bytes());
        out.extend_from_slice(&(self.free_list.len() as u64).to_le_bytes());
        for id in &self.free_list {
            out.extend_from_slice(&id.to_le_bytes());
        }
    }

    /// Decodes a snapshot from the front of `buf`, returning it and any
    /// trailing bytes (a checkpoint record's re-embedded commit metadata).
    fn decode_prefix(buf: &[u8]) -> Option<(AllocSnapshot, &[u8])> {
        if buf.len() < 16 {
            return None;
        }
        let next_id = u64::from_le_bytes(buf[..8].try_into().unwrap());
        let n = u64::from_le_bytes(buf[8..16].try_into().unwrap()) as usize;
        let end = 16usize.checked_add(n.checked_mul(8)?)?;
        if buf.len() < end {
            return None;
        }
        let free_list = buf[16..end]
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        Some((AllocSnapshot { next_id, free_list }, &buf[end..]))
    }
}

/// One decoded log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// Full image of one page write (the payload as handed to
    /// [`crate::PageStore::write`]; replay zero-pads to the page size).
    PageWrite {
        /// Record sequence number.
        lsn: u64,
        /// Target page.
        page: PageId,
        /// Page payload (`<= page_size` bytes).
        data: Vec<u8>,
    },
    /// A page was allocated.
    Alloc {
        /// Record sequence number.
        lsn: u64,
        /// Allocated page.
        page: PageId,
    },
    /// A page was freed.
    Free {
        /// Record sequence number.
        lsn: u64,
        /// Freed page.
        page: PageId,
    },
    /// Group-commit boundary: everything up to here is a consistent,
    /// acknowledged state. Carries an opaque caller payload (e.g. a batch
    /// sequence number) that recovery hands back.
    Commit {
        /// Record sequence number.
        lsn: u64,
        /// Opaque caller metadata.
        meta: Vec<u8>,
    },
    /// Allocation-table snapshot; everything before it is already in the
    /// data file and durable.
    Checkpoint {
        /// Record sequence number.
        lsn: u64,
        /// Allocation state at the checkpoint.
        alloc: AllocSnapshot,
        /// The most recent *committed* caller metadata at checkpoint time
        /// (empty = none yet). A checkpoint discards every earlier record,
        /// including the commit that carried this payload — re-embedding it
        /// here keeps [`crate::RecoveryReport::last_commit_meta`] exact
        /// after a crash that follows a checkpoint with no further commit
        /// (the versioning layer stores its epoch map in this payload, so
        /// losing it would silently roll the visible version back).
        meta: Vec<u8>,
    },
}

impl WalRecord {
    /// The record's LSN.
    pub fn lsn(&self) -> u64 {
        match self {
            WalRecord::PageWrite { lsn, .. }
            | WalRecord::Alloc { lsn, .. }
            | WalRecord::Free { lsn, .. }
            | WalRecord::Commit { lsn, .. }
            | WalRecord::Checkpoint { lsn, .. } => *lsn,
        }
    }

    /// Appends the encoded record (`len | kind | lsn | page | payload |
    /// crc`, crc over kind..payload) to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let (kind, page, payload): (u8, u64, Vec<u8>) = match self {
            WalRecord::PageWrite { page, data, .. } => (K_WRITE, page.0, data.clone()),
            WalRecord::Alloc { page, .. } => (K_ALLOC, page.0, Vec::new()),
            WalRecord::Free { page, .. } => (K_FREE, page.0, Vec::new()),
            WalRecord::Commit { meta, .. } => (K_COMMIT, 0, meta.clone()),
            WalRecord::Checkpoint { alloc, meta, .. } => {
                let mut p = Vec::new();
                alloc.encode_into(&mut p);
                p.extend_from_slice(meta);
                (K_CHECKPOINT, 0, p)
            }
        };
        let start = out.len();
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.push(kind);
        out.extend_from_slice(&self.lsn().to_le_bytes());
        out.extend_from_slice(&page.to_le_bytes());
        out.extend_from_slice(&payload);
        let crc = fnv1a64(&out[start + 4..]);
        out.extend_from_slice(&crc.to_le_bytes());
    }

    /// Encoded length in bytes.
    pub fn encoded_len(&self) -> usize {
        let payload = match self {
            WalRecord::PageWrite { data, .. } => data.len(),
            WalRecord::Alloc { .. } | WalRecord::Free { .. } => 0,
            WalRecord::Commit { meta, .. } => meta.len(),
            WalRecord::Checkpoint { alloc, meta, .. } => {
                16 + alloc.free_list.len() * 8 + meta.len()
            }
        };
        REC_FIXED + payload + REC_CRC
    }
}

/// Tries to decode one record at the front of `buf`. Returns the record
/// and its encoded length, or `None` when the bytes are truncated,
/// corrupt, or not a record — the scanner treats that as the torn tail.
pub fn decode_record(buf: &[u8]) -> Option<(WalRecord, usize)> {
    if buf.len() < REC_FIXED + REC_CRC {
        return None;
    }
    let len = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
    if len > MAX_RECORD_PAYLOAD {
        return None;
    }
    let total = REC_FIXED + len + REC_CRC;
    if buf.len() < total {
        return None;
    }
    let body = &buf[4..REC_FIXED + len];
    let stored = u64::from_le_bytes(buf[REC_FIXED + len..total].try_into().unwrap());
    if stored != fnv1a64(body) {
        return None;
    }
    let kind = buf[4];
    let lsn = u64::from_le_bytes(buf[5..13].try_into().unwrap());
    let page = u64::from_le_bytes(buf[13..21].try_into().unwrap());
    let payload = &buf[REC_FIXED..REC_FIXED + len];
    let rec = match kind {
        K_WRITE => WalRecord::PageWrite { lsn, page: PageId(page), data: payload.to_vec() },
        K_ALLOC if len == 0 => WalRecord::Alloc { lsn, page: PageId(page) },
        K_FREE if len == 0 => WalRecord::Free { lsn, page: PageId(page) },
        K_COMMIT => WalRecord::Commit { lsn, meta: payload.to_vec() },
        K_CHECKPOINT => {
            let (alloc, meta) = AllocSnapshot::decode_prefix(payload)?;
            WalRecord::Checkpoint { lsn, alloc, meta: meta.to_vec() }
        }
        _ => return None,
    };
    Some((rec, total))
}

/// Result of scanning a log image: the valid record prefix plus what (if
/// anything) had to be dropped from the tail.
#[derive(Debug, Default)]
pub struct ScanOutcome {
    /// Records of the valid prefix, in log order.
    pub records: Vec<WalRecord>,
    /// Bytes of header + valid records.
    pub valid_len: u64,
    /// Bytes dropped after the valid prefix (a torn or corrupt tail).
    pub torn_bytes: u64,
}

/// Encodes a WAL header for `page_size`.
pub fn encode_header(page_size: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(WAL_HEADER_LEN);
    out.extend_from_slice(WAL_MAGIC);
    out.extend_from_slice(&(page_size as u64).to_le_bytes());
    out
}

/// Scans a full log image. An empty image is a fresh log (no records). A
/// present-but-wrong header is [`StoreError::Corrupt`]; a valid header
/// followed by a damaged record region yields the longest valid prefix.
pub fn scan(bytes: &[u8], page_size: usize) -> Result<ScanOutcome> {
    if bytes.is_empty() {
        return Ok(ScanOutcome::default());
    }
    // A crash can tear the very first append mid-header. A strict prefix
    // of the expected header is a fresh log with a torn tail, not
    // corruption.
    let expected = encode_header(page_size);
    if bytes.len() < WAL_HEADER_LEN && expected.starts_with(bytes) {
        return Ok(ScanOutcome { torn_bytes: bytes.len() as u64, ..ScanOutcome::default() });
    }
    if bytes.len() < WAL_HEADER_LEN || &bytes[..8] != WAL_MAGIC {
        return Err(StoreError::Corrupt("WAL header magic missing or truncated".into()));
    }
    let stored = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    if stored != page_size as u64 {
        return Err(StoreError::Corrupt(format!(
            "WAL was written for page_size {stored}, opened with {page_size}"
        )));
    }
    let mut records = Vec::new();
    let mut pos = WAL_HEADER_LEN;
    while pos < bytes.len() {
        match decode_record(&bytes[pos..]) {
            Some((rec, used)) => {
                records.push(rec);
                pos += used;
            }
            None => break,
        }
    }
    Ok(ScanOutcome {
        records,
        valid_len: pos as u64,
        torn_bytes: (bytes.len() - pos) as u64,
    })
}

/// Cumulative WAL activity counters (always on; the matching `pc-obs`
/// metrics under [`pc_obs::wal_metrics`] are the feature-gated mirror).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended (all kinds, commits and checkpoints included).
    pub appends: u64,
    /// Commit records written (= successful group commits).
    pub commits: u64,
    /// `fsync`s issued against the log medium.
    pub fsyncs: u64,
    /// Checkpoints installed (log swaps).
    pub checkpoints: u64,
    /// Records replayed by recovery at open.
    pub replayed: u64,
    /// Largest number of records made durable by one commit.
    pub max_group: u64,
    /// Current log length in bytes (appended, including unsynced).
    pub log_bytes: u64,
    /// Pages currently buffered in the store's dirty table.
    pub dirty_pages: u64,
    /// Reads served from the dirty table (no backend transfer).
    pub dirty_hits: u64,
}

struct WalInner {
    /// Encoded records appended to the medium but not yet fsynced count
    /// toward `uncommitted`; the buffer itself is flushed eagerly so the
    /// mutex hold is short.
    next_lsn: u64,
    /// Records appended since the last commit record.
    uncommitted: u64,
    /// Appended log length in bytes (header included).
    log_bytes: u64,
    /// The medium is empty (fresh log): the header rides along with the
    /// first append so an append-only medium is never headerless.
    needs_header: bool,
}

/// The write-ahead log: serialized appends over a [`LogMedium`], group
/// commit, and atomic checkpoint swap. See the module docs for the
/// protocol.
pub struct Wal {
    medium: Box<dyn LogMedium>,
    page_size: usize,
    inner: Mutex<WalInner>,
    appends: AtomicU64,
    commits: AtomicU64,
    fsyncs: AtomicU64,
    checkpoints: AtomicU64,
    replayed: AtomicU64,
    max_group: AtomicU64,
    dirty_hits: AtomicU64,
}

impl Wal {
    /// Opens the log and returns the scan of its current contents. The
    /// caller (recovery) replays the scan, then calls
    /// [`Wal::install_checkpoint`] to reset the log to a fresh generation.
    pub fn open(medium: Box<dyn LogMedium>, page_size: usize) -> Result<(Wal, ScanOutcome)> {
        let bytes = medium.read_all()?;
        let outcome = scan(&bytes, page_size)?;
        let next_lsn = outcome.records.last().map(|r| r.lsn() + 1).unwrap_or(1);
        let wal = Wal {
            medium,
            page_size,
            inner: Mutex::new(WalInner {
                next_lsn,
                uncommitted: 0,
                log_bytes: bytes.len() as u64,
                needs_header: bytes.is_empty(),
            }),
            appends: AtomicU64::new(0),
            commits: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
            replayed: AtomicU64::new(0),
            max_group: AtomicU64::new(0),
            dirty_hits: AtomicU64::new(0),
        };
        Ok((wal, outcome))
    }

    /// The page size this log was opened with.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    fn append_record(&self, make: impl FnOnce(u64) -> WalRecord) -> Result<u64> {
        let mut inner = self.inner.lock();
        let lsn = inner.next_lsn;
        let rec = make(lsn);
        let mut buf =
            if inner.needs_header { encode_header(self.page_size) } else { Vec::new() };
        buf.reserve(rec.encoded_len());
        rec.encode_into(&mut buf);
        self.medium.append(&buf)?;
        inner.needs_header = false;
        inner.next_lsn += 1;
        inner.uncommitted += 1;
        inner.log_bytes += buf.len() as u64;
        self.appends.fetch_add(1, Relaxed);
        pc_obs::counter(pc_obs::wal_metrics::APPENDS).inc();
        Ok(lsn)
    }

    /// Logs a full page image. Must precede any visibility of the write.
    pub fn append_write(&self, page: PageId, data: &[u8]) -> Result<u64> {
        self.append_record(|lsn| WalRecord::PageWrite { lsn, page, data: data.to_vec() })
    }

    /// Logs a page allocation.
    pub fn append_alloc(&self, page: PageId) -> Result<u64> {
        self.append_record(|lsn| WalRecord::Alloc { lsn, page })
    }

    /// Logs a page free.
    pub fn append_free(&self, page: PageId) -> Result<u64> {
        self.append_record(|lsn| WalRecord::Free { lsn, page })
    }

    /// Group commit: if any records were appended since the last commit,
    /// appends a [`WalRecord::Commit`] carrying `meta` and `fsync`s the
    /// log — one fsync for the whole group. Returns the number of records
    /// the commit made durable (0 = nothing pending, no fsync issued).
    pub fn commit(&self, meta: &[u8]) -> Result<u64> {
        let mut inner = self.inner.lock();
        if inner.uncommitted == 0 {
            return Ok(0);
        }
        let group = inner.uncommitted;
        let lsn = inner.next_lsn;
        let rec = WalRecord::Commit { lsn, meta: meta.to_vec() };
        let mut buf =
            if inner.needs_header { encode_header(self.page_size) } else { Vec::new() };
        buf.reserve(rec.encoded_len());
        rec.encode_into(&mut buf);
        self.medium.append(&buf)?;
        inner.needs_header = false;
        inner.next_lsn += 1;
        inner.log_bytes += buf.len() as u64;
        self.medium.sync()?;
        inner.uncommitted = 0;
        self.appends.fetch_add(1, Relaxed);
        self.commits.fetch_add(1, Relaxed);
        self.fsyncs.fetch_add(1, Relaxed);
        self.max_group.fetch_max(group, Relaxed);
        pc_obs::counter(pc_obs::wal_metrics::APPENDS).inc();
        pc_obs::counter(pc_obs::wal_metrics::COMMITS).inc();
        pc_obs::counter(pc_obs::wal_metrics::FSYNCS).inc();
        pc_obs::histogram(pc_obs::wal_metrics::GROUP_COMMIT_SIZE).record(group);
        Ok(group)
    }

    /// Atomically replaces the log with a fresh generation holding only a
    /// checkpoint of `alloc`. All earlier records must already be applied
    /// to a durably synced data file — the caller's job. `meta` is the
    /// last committed caller metadata, re-embedded in the checkpoint so it
    /// survives the log swap (pass `&[]` when there has been none).
    pub fn install_checkpoint(&self, alloc: &AllocSnapshot, meta: &[u8]) -> Result<()> {
        let mut inner = self.inner.lock();
        let lsn = inner.next_lsn;
        let rec = WalRecord::Checkpoint { lsn, alloc: alloc.clone(), meta: meta.to_vec() };
        let mut contents = encode_header(self.page_size);
        rec.encode_into(&mut contents);
        self.medium.reset(&contents)?;
        inner.next_lsn += 1;
        inner.uncommitted = 0;
        inner.log_bytes = contents.len() as u64;
        inner.needs_header = false;
        self.appends.fetch_add(1, Relaxed);
        self.checkpoints.fetch_add(1, Relaxed);
        self.fsyncs.fetch_add(1, Relaxed);
        pc_obs::counter(pc_obs::wal_metrics::CHECKPOINTS).inc();
        pc_obs::counter(pc_obs::wal_metrics::FSYNCS).inc();
        Ok(())
    }

    /// Appended log length in bytes (the auto-checkpoint trigger input).
    pub fn log_bytes(&self) -> u64 {
        self.inner.lock().log_bytes
    }

    /// Records appended since the last commit.
    pub fn uncommitted(&self) -> u64 {
        self.inner.lock().uncommitted
    }

    /// Notes `n` records replayed by recovery (stats only).
    pub fn note_replayed(&self, n: u64) {
        self.replayed.fetch_add(n, Relaxed);
        pc_obs::counter(pc_obs::wal_metrics::REPLAYED).add(n);
    }

    /// Notes one read served from the store's dirty table (stats only).
    pub fn note_dirty_hit(&self) {
        self.dirty_hits.fetch_add(1, Relaxed);
    }

    /// Snapshot of the log's counters. `dirty_pages` is filled in by the
    /// store, which owns the dirty table.
    pub fn stats(&self) -> WalStats {
        WalStats {
            appends: self.appends.load(Relaxed),
            commits: self.commits.load(Relaxed),
            fsyncs: self.fsyncs.load(Relaxed),
            checkpoints: self.checkpoints.load(Relaxed),
            replayed: self.replayed.load(Relaxed),
            max_group: self.max_group.load(Relaxed),
            log_bytes: self.inner.lock().log_bytes,
            dirty_pages: 0,
            dirty_hits: self.dirty_hits.load(Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Checkpoint {
                lsn: 1,
                alloc: AllocSnapshot { next_id: 4, free_list: vec![2, 0] },
                meta: b"carried".to_vec(),
            },
            WalRecord::Alloc { lsn: 2, page: PageId(0) },
            WalRecord::PageWrite { lsn: 3, page: PageId(0), data: b"hello".to_vec() },
            WalRecord::Free { lsn: 4, page: PageId(0) },
            WalRecord::Commit { lsn: 5, meta: vec![9, 9] },
            WalRecord::PageWrite { lsn: 6, page: PageId(3), data: vec![] },
        ]
    }

    fn encode_all(recs: &[WalRecord], page_size: usize) -> Vec<u8> {
        let mut out = encode_header(page_size);
        for r in recs {
            r.encode_into(&mut out);
        }
        out
    }

    #[test]
    fn records_roundtrip_through_scan() {
        let recs = sample_records();
        let bytes = encode_all(&recs, 128);
        let out = scan(&bytes, 128).unwrap();
        assert_eq!(out.records, recs);
        assert_eq!(out.valid_len, bytes.len() as u64);
        assert_eq!(out.torn_bytes, 0);
    }

    #[test]
    fn truncated_tail_is_dropped_cleanly() {
        let recs = sample_records();
        let full = encode_all(&recs, 128);
        // Cut mid-way through the last record: the prefix survives intact.
        let cut = full.len() - 3;
        let out = scan(&full[..cut], 128).unwrap();
        assert_eq!(out.records, recs[..recs.len() - 1]);
        assert!(out.torn_bytes > 0);
        // Every possible truncation yields a prefix of the records.
        for cut in WAL_HEADER_LEN..full.len() {
            let out = scan(&full[..cut], 128).unwrap();
            assert!(out.records.len() <= recs.len());
            assert_eq!(out.records[..], recs[..out.records.len()]);
        }
    }

    #[test]
    fn corrupt_record_stops_the_scan_there() {
        let recs = sample_records();
        let mut bytes = encode_all(&recs, 128);
        // Flip a byte inside the third record's payload region.
        let mut pos = WAL_HEADER_LEN;
        for r in &recs[..2] {
            pos += r.encoded_len();
        }
        bytes[pos + REC_FIXED] ^= 0xff;
        let out = scan(&bytes, 128).unwrap();
        assert_eq!(out.records, recs[..2]);
        assert!(out.torn_bytes > 0);
    }

    #[test]
    fn header_mismatch_is_corrupt_not_torn() {
        let bytes = encode_all(&sample_records(), 128);
        assert!(matches!(scan(&bytes, 256), Err(StoreError::Corrupt(_))));
        let mut garbled = bytes.clone();
        garbled[0] ^= 1;
        assert!(matches!(scan(&garbled, 128), Err(StoreError::Corrupt(_))));
        assert!(matches!(scan(b"XX", 128), Err(StoreError::Corrupt(_))));
        // A torn prefix of the *expected* header is a fresh log with a
        // torn tail (the first append died mid-header), not corruption.
        let header = encode_header(128);
        for cut in 1..header.len() {
            let out = scan(&header[..cut], 128).unwrap();
            assert!(out.records.is_empty());
            assert_eq!(out.torn_bytes, cut as u64, "cut={cut}");
        }
        // But a prefix of a *different* page size's header is corrupt.
        assert!(matches!(scan(&encode_header(256)[..12], 128), Err(StoreError::Corrupt(_))));
        // Empty image: a fresh log, not an error.
        let out = scan(&[], 128).unwrap();
        assert!(out.records.is_empty());
        assert_eq!(out.torn_bytes, 0);
    }

    #[test]
    fn wal_group_commit_fsyncs_once_per_batch() {
        let (wal, out) = Wal::open(Box::new(MemLog::new()), 64).unwrap();
        assert!(out.records.is_empty());
        for i in 0..5u64 {
            wal.append_write(PageId(i), &[i as u8]).unwrap();
        }
        assert_eq!(wal.uncommitted(), 5);
        assert_eq!(wal.commit(b"batch-1").unwrap(), 5);
        assert_eq!(wal.commit(b"empty").unwrap(), 0, "empty commit is free");
        let s = wal.stats();
        assert_eq!(s.commits, 1);
        assert_eq!(s.fsyncs, 1);
        assert_eq!(s.max_group, 5);
        assert_eq!(s.appends, 6, "5 writes + 1 commit");
    }

    #[test]
    fn install_checkpoint_resets_the_log_generation() {
        let medium = Box::new(MemLog::new());
        let (wal, _) = Wal::open(medium, 64).unwrap();
        wal.append_write(PageId(0), b"x").unwrap();
        wal.commit(&[]).unwrap();
        let before = wal.log_bytes();
        let snap = AllocSnapshot { next_id: 1, free_list: vec![] };
        wal.install_checkpoint(&snap, b"last-meta").unwrap();
        assert!(wal.log_bytes() < before);
        assert_eq!(wal.stats().checkpoints, 1);
        // The fresh generation's single record carries the re-embedded
        // commit metadata.
        let bytes = wal.medium.read_all().unwrap();
        let out = scan(&bytes, 64).unwrap();
        assert_eq!(out.records.len(), 1);
        match &out.records[0] {
            WalRecord::Checkpoint { alloc, meta, .. } => {
                assert_eq!(alloc, &snap);
                assert_eq!(meta, b"last-meta");
            }
            other => panic!("expected checkpoint, got {other:?}"),
        }
    }

    #[test]
    fn file_log_survives_reset_and_reopen() {
        let dir = std::env::temp_dir().join(format!("pcwal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.pcwal");
        let _ = std::fs::remove_file(&path);
        {
            let log = FileLog::open(&path).unwrap();
            log.reset(&encode_header(64)).unwrap();
            log.append(b"abc").unwrap();
            log.sync().unwrap();
            assert_eq!(log.len().unwrap(), WAL_HEADER_LEN as u64 + 3);
        }
        let log = FileLog::open(&path).unwrap();
        let all = log.read_all().unwrap();
        assert_eq!(&all[WAL_HEADER_LEN..], b"abc");
        // reset replaces everything atomically.
        log.reset(b"fresh").unwrap();
        assert_eq!(log.read_all().unwrap(), b"fresh");
        // A stale tmp file from a crashed reset is cleaned up on open.
        std::fs::write(FileLog::tmp_path(&path), b"junk").unwrap();
        let log = FileLog::open(&path).unwrap();
        assert_eq!(log.read_all().unwrap(), b"fresh");
        assert!(!FileLog::tmp_path(&path).exists());
        std::fs::remove_file(&path).unwrap();
    }
}
