//! Whole-process crash simulation for durability testing.
//!
//! Where [`crate::fault`] injects *faults the store must survive while
//! running*, this module simulates *dying*: a [`CrashController`] counts
//! every durable I/O (data-frame write, log append, fsync, log reset)
//! across a [`CrashBackend`] and a [`CrashLog`] sharing it, and kills the
//! store at a chosen op index. After the kill every operation fails with
//! [`StoreError::Crashed`] — the process view is gone — and the test
//! extracts what *durable media* would hold:
//!
//! * synced state survives verbatim;
//! * each unsynced frame write survives fully, survives as a torn
//!   prefix-over-old, or is dropped — decided by a seeded lottery, like a
//!   real page cache losing power mid-writeback;
//! * unsynced log appends survive as a seeded byte-prefix of the append
//!   stream, which is exactly how an append-only file tears;
//! * a log `reset` (the checkpoint swap, implemented by rename) is atomic:
//!   a crash during it leaves either the old log or the new one, complete.
//!
//! The crash-point *matrix* pattern: run the workload once with an
//! unarmed controller to count its durable I/Os, then re-run it killing
//! at every index from 1 to that count, reopening + recovering each time.
//! Every decision derives from `(seed, op ordinal)`, so any failure
//! reproduces exactly from its `(seed, kill_at)` pair.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use pc_rng::mix64;
use pc_sync::Mutex;

use crate::backend::{Backend, MemBackend};
use crate::error::{Result, StoreError};
use crate::store::PageId;
use crate::wal::{LogMedium, MemLog};

const SALT_FATE: u64 = 0xfa7e_fa7e;
const SALT_CUT: u64 = 0x0c07_0c07;
const SALT_RESET: u64 = 0x5e7a_5e7a;

/// When (and how deterministically) to kill the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// Seed for every survival-lottery decision.
    pub seed: u64,
    /// 1-based durable-I/O ordinal to die at; `0` never kills (counting
    /// mode — run the workload once to learn how many kill points exist).
    pub kill_at: u64,
}

impl CrashPlan {
    /// Counting mode: never kill, just count durable I/Os.
    pub fn count_only(seed: u64) -> Self {
        CrashPlan { seed, kill_at: 0 }
    }

    /// Kill at the `kill_at`-th durable I/O (1-based).
    pub fn kill_at(seed: u64, kill_at: u64) -> Self {
        CrashPlan { seed, kill_at }
    }
}

struct CtrlState {
    seed: u64,
    kill_at: u64,
    ops: AtomicU64,
    crashed: AtomicBool,
}

/// Shared kill switch: clone one into every crash-simulated medium of a
/// store so the op ordinal spans data and log I/O in program order.
#[derive(Clone)]
pub struct CrashController(Arc<CtrlState>);

impl CrashController {
    /// Controller following `plan`.
    pub fn new(plan: CrashPlan) -> Self {
        CrashController(Arc::new(CtrlState {
            seed: plan.seed,
            kill_at: plan.kill_at,
            ops: AtomicU64::new(0),
            crashed: AtomicBool::new(false),
        }))
    }

    /// Durable I/Os issued so far (the size of the kill-point matrix).
    pub fn ops(&self) -> u64 {
        self.0.ops.load(Ordering::Relaxed)
    }

    /// True once the store has been killed; every subsequent operation on
    /// attached media fails with [`StoreError::Crashed`].
    pub fn crashed(&self) -> bool {
        self.0.crashed.load(Ordering::Relaxed)
    }

    /// The lottery seed.
    pub fn seed(&self) -> u64 {
        self.0.seed
    }

    /// Assigns the next durable-I/O ordinal and reports whether this op is
    /// the kill point. The caller stages its mutation *before* declaring
    /// the crash, so the dying op's bytes are in the unsynced layer and
    /// eligible for partial survival — like a write in flight at power
    /// loss.
    fn stage(&self) -> (u64, bool) {
        let ordinal = self.0.ops.fetch_add(1, Ordering::Relaxed) + 1;
        let kill = self.0.kill_at != 0 && ordinal >= self.0.kill_at;
        if kill {
            self.0.crashed.store(true, Ordering::Relaxed);
        }
        (ordinal, kill)
    }

    fn check_alive(&self) -> Result<()> {
        if self.crashed() {
            return Err(StoreError::Crashed);
        }
        Ok(())
    }

    /// One draw from the decision space `(seed, salt, a, b)`.
    fn draw(&self, salt: u64, a: u64, b: u64) -> u64 {
        mix64(
            self.0
                .seed
                .wrapping_add(mix64(salt))
                .wrapping_add(mix64(a).rotate_left(17))
                .wrapping_add(mix64(b).rotate_left(31)),
        )
    }
}

struct BackendState {
    /// Synced frames: survive any crash verbatim.
    durable: BTreeMap<u64, Vec<u8>>,
    /// Written-but-unsynced frames (the simulated OS page cache), each
    /// tagged with the durable-I/O ordinal that wrote it (the lottery
    /// salt).
    cache: BTreeMap<u64, (u64, Vec<u8>)>,
}

/// A [`Backend`] whose durability is governed by a [`CrashController`];
/// see the module docs.
pub struct CrashBackend {
    frame_size: usize,
    ctrl: CrashController,
    state: Mutex<BackendState>,
}

impl CrashBackend {
    /// Fresh crash-simulated backend attached to `ctrl`.
    pub fn new(frame_size: usize, ctrl: CrashController) -> Self {
        CrashBackend {
            frame_size,
            ctrl,
            state: Mutex::new(BackendState { durable: BTreeMap::new(), cache: BTreeMap::new() }),
        }
    }

    /// Pre-seeds the durable layer with `frames` (a survivor from a
    /// previous crash, carried into the next round of a multi-crash test).
    pub fn with_frames(frame_size: usize, ctrl: CrashController, frames: Vec<(PageId, Vec<u8>)>) -> Self {
        let b = CrashBackend::new(frame_size, ctrl);
        b.state.lock().durable.extend(frames.into_iter().map(|(id, f)| (id.0, f)));
        b
    }

    /// What durable media hold after the crash: synced frames verbatim,
    /// each unsynced frame run through the seeded lottery — survives
    /// fully, survives as a torn prefix over the old durable contents
    /// (zeroes if never synced), or is lost.
    ///
    /// Meaningful only once [`CrashController::crashed`] is true, but safe
    /// to call any time (unsynced frames are *always* run through the
    /// lottery — calling this on a live store answers "what if we died
    /// right now?").
    pub fn surviving_frames(&self) -> Vec<(PageId, Vec<u8>)> {
        let state = self.state.lock();
        let mut frames = state.durable.clone();
        for (&id, &(ordinal, ref new)) in &state.cache {
            match self.ctrl.draw(SALT_FATE, id, ordinal) % 3 {
                0 => {
                    frames.insert(id, new.clone());
                }
                1 => {
                    let mut torn =
                        frames.get(&id).cloned().unwrap_or_else(|| vec![0u8; self.frame_size]);
                    let cut = 1 + self.ctrl.draw(SALT_CUT, id, ordinal) as usize
                        % (self.frame_size.max(2) - 1);
                    let cut = cut.min(new.len());
                    torn[..cut].copy_from_slice(&new[..cut]);
                    frames.insert(id, torn);
                }
                _ => {} // dropped: old durable contents (or nothing) remain
            }
        }
        frames.into_iter().map(|(id, f)| (PageId(id), f)).collect()
    }

    /// The survivors as a fresh [`MemBackend`], ready to hand to recovery.
    pub fn surviving_backend(&self) -> MemBackend {
        let backend = MemBackend::new(self.frame_size);
        for (id, frame) in self.surviving_frames() {
            backend.write_frame(id, &frame).expect("MemBackend writes are infallible");
        }
        backend
    }
}

impl Backend for CrashBackend {
    fn frame_size(&self) -> usize {
        self.frame_size
    }

    fn read_frame(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        self.ctrl.check_alive()?;
        debug_assert_eq!(buf.len(), self.frame_size);
        let state = self.state.lock();
        match state.cache.get(&id.0).map(|(_, f)| f).or_else(|| state.durable.get(&id.0)) {
            Some(frame) => buf.copy_from_slice(frame),
            None => buf.fill(0),
        }
        Ok(())
    }

    fn write_frame(&self, id: PageId, buf: &[u8]) -> Result<()> {
        self.ctrl.check_alive()?;
        debug_assert_eq!(buf.len(), self.frame_size);
        let mut state = self.state.lock();
        let (ordinal, kill) = self.ctrl.stage();
        state.cache.insert(id.0, (ordinal, buf.to_vec()));
        if kill {
            return Err(StoreError::Crashed);
        }
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        self.ctrl.check_alive()?;
        let mut state = self.state.lock();
        let (_, kill) = self.ctrl.stage();
        if kill {
            // Died inside fsync: nothing promoted; the cache entries stay
            // in the lottery.
            return Err(StoreError::Crashed);
        }
        let cache = std::mem::take(&mut state.cache);
        state.durable.extend(cache.into_iter().map(|(id, (_, f))| (id, f)));
        Ok(())
    }

    fn frame_count(&self) -> u64 {
        let state = self.state.lock();
        let hi = |m: Option<&u64>| m.map(|&id| id + 1).unwrap_or(0);
        hi(state.durable.keys().next_back()).max(hi(state.cache.keys().next_back()))
    }
}

/// Crash-matrix tests hand the store a `Box<Arc<CrashBackend>>` so they
/// can still extract [`CrashBackend::surviving_frames`] after the store
/// takes ownership.
impl Backend for Arc<CrashBackend> {
    fn frame_size(&self) -> usize {
        (**self).frame_size()
    }

    fn read_frame(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        (**self).read_frame(id, buf)
    }

    fn write_frame(&self, id: PageId, buf: &[u8]) -> Result<()> {
        (**self).write_frame(id, buf)
    }

    fn sync(&self) -> Result<()> {
        (**self).sync()
    }

    fn frame_count(&self) -> u64 {
        (**self).frame_count()
    }
}

struct LogState {
    /// Synced log bytes: survive any crash verbatim.
    durable: Vec<u8>,
    /// Unsynced appends in order, each tagged with its durable-I/O
    /// ordinal.
    pending: Vec<(u64, Vec<u8>)>,
    /// A reset (checkpoint swap) in flight when the crash hit: the rename
    /// either happened or it didn't — seeded coin at extraction.
    pending_reset: Option<(u64, Vec<u8>)>,
}

/// A [`LogMedium`] whose durability is governed by a [`CrashController`];
/// see the module docs.
pub struct CrashLog {
    ctrl: CrashController,
    state: Mutex<LogState>,
}

impl CrashLog {
    /// Fresh (empty) crash-simulated log attached to `ctrl`.
    pub fn new(ctrl: CrashController) -> Self {
        CrashLog {
            ctrl,
            state: Mutex::new(LogState {
                durable: Vec::new(),
                pending: Vec::new(),
                pending_reset: None,
            }),
        }
    }

    /// A log pre-seeded with durable `bytes` (a previous crash's survivor).
    pub fn with_bytes(ctrl: CrashController, bytes: Vec<u8>) -> Self {
        let log = CrashLog::new(ctrl);
        log.state.lock().durable = bytes;
        log
    }

    /// What durable media hold after the crash. A reset in flight resolves
    /// by seeded coin to the complete old log or the complete new one
    /// (rename atomicity); otherwise the synced bytes survive plus a
    /// seeded byte-prefix of the unsynced append stream — the natural torn
    /// tail the WAL scanner must truncate.
    pub fn surviving_bytes(&self) -> Vec<u8> {
        let state = self.state.lock();
        if let Some((ordinal, new)) = &state.pending_reset {
            if self.ctrl.draw(SALT_RESET, *ordinal, 0).is_multiple_of(2) {
                return new.clone();
            }
            // Rename didn't land: fall through to the old log + pending.
        }
        let mut bytes = state.durable.clone();
        let tail: Vec<u8> =
            state.pending.iter().flat_map(|(_, b)| b.iter().copied()).collect();
        if !tail.is_empty() {
            let salt = state.pending.last().map(|&(o, _)| o).unwrap_or(0);
            let keep = self.ctrl.draw(SALT_CUT, salt, tail.len() as u64) as usize
                % (tail.len() + 1);
            bytes.extend_from_slice(&tail[..keep]);
        }
        bytes
    }

    /// The survivors as a fresh [`MemLog`], ready to hand to recovery.
    pub fn surviving_log(&self) -> MemLog {
        MemLog::from_bytes(self.surviving_bytes())
    }
}

impl LogMedium for CrashLog {
    fn read_all(&self) -> Result<Vec<u8>> {
        self.ctrl.check_alive()?;
        let state = self.state.lock();
        let mut out = state.durable.clone();
        for (_, b) in &state.pending {
            out.extend_from_slice(b);
        }
        Ok(out)
    }

    fn append(&self, buf: &[u8]) -> Result<()> {
        self.ctrl.check_alive()?;
        let mut state = self.state.lock();
        let (ordinal, kill) = self.ctrl.stage();
        state.pending.push((ordinal, buf.to_vec()));
        if kill {
            return Err(StoreError::Crashed);
        }
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        self.ctrl.check_alive()?;
        let mut state = self.state.lock();
        let (_, kill) = self.ctrl.stage();
        if kill {
            return Err(StoreError::Crashed);
        }
        let pending = std::mem::take(&mut state.pending);
        for (_, b) in pending {
            state.durable.extend_from_slice(&b);
        }
        Ok(())
    }

    fn len(&self) -> Result<u64> {
        self.ctrl.check_alive()?;
        let state = self.state.lock();
        let pending: usize = state.pending.iter().map(|(_, b)| b.len()).sum();
        Ok((state.durable.len() + pending) as u64)
    }

    fn reset(&self, contents: &[u8]) -> Result<()> {
        self.ctrl.check_alive()?;
        let mut state = self.state.lock();
        let (ordinal, kill) = self.ctrl.stage();
        if kill {
            state.pending_reset = Some((ordinal, contents.to_vec()));
            return Err(StoreError::Crashed);
        }
        state.durable = contents.to_vec();
        state.pending.clear();
        state.pending_reset = None;
        Ok(())
    }
}

/// See the matching `Arc<CrashBackend>` impl: lets tests keep a handle for
/// [`CrashLog::surviving_bytes`] after the store owns the log.
impl LogMedium for Arc<CrashLog> {
    fn read_all(&self) -> Result<Vec<u8>> {
        (**self).read_all()
    }

    fn append(&self, buf: &[u8]) -> Result<()> {
        (**self).append(buf)
    }

    fn sync(&self) -> Result<()> {
        (**self).sync()
    }

    fn len(&self) -> Result<u64> {
        (**self).len()
    }

    fn reset(&self, contents: &[u8]) -> Result<()> {
        (**self).reset(contents)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctrl(seed: u64, kill_at: u64) -> CrashController {
        CrashController::new(CrashPlan { seed, kill_at })
    }

    #[test]
    fn counting_mode_never_kills_and_counts_every_durable_io() {
        let c = ctrl(1, 0);
        let backend = CrashBackend::new(16, c.clone());
        let log = CrashLog::new(c.clone());
        backend.write_frame(PageId(0), &[1u8; 16]).unwrap();
        log.append(b"rec").unwrap();
        log.sync().unwrap();
        backend.sync().unwrap();
        log.reset(b"fresh").unwrap();
        assert_eq!(c.ops(), 5);
        assert!(!c.crashed());
        let mut buf = [0u8; 16];
        backend.read_frame(PageId(0), &mut buf).unwrap();
        assert_eq!(buf, [1u8; 16]);
        assert_eq!(log.read_all().unwrap(), b"fresh");
    }

    #[test]
    fn kill_point_fails_the_op_and_everything_after() {
        let c = ctrl(2, 2);
        let backend = CrashBackend::new(16, c.clone());
        backend.write_frame(PageId(0), &[1u8; 16]).unwrap(); // op 1
        let err = backend.write_frame(PageId(1), &[2u8; 16]).unwrap_err(); // op 2: dies
        assert!(matches!(err, StoreError::Crashed));
        assert!(c.crashed());
        let mut buf = [0u8; 16];
        assert!(matches!(backend.read_frame(PageId(0), &mut buf), Err(StoreError::Crashed)));
        assert!(matches!(backend.sync(), Err(StoreError::Crashed)));
    }

    #[test]
    fn synced_state_survives_any_crash_verbatim() {
        for kill_at in 3..6 {
            let c = ctrl(77, kill_at);
            let backend = CrashBackend::new(16, c.clone());
            let log = CrashLog::new(c.clone());
            backend.write_frame(PageId(0), &[9u8; 16]).unwrap(); // op 1
            log.append(b"committed").unwrap(); // op 2
            // ops 3+: one of these dies depending on kill_at.
            let _ = log.sync(); // op 3
            let _ = backend.sync(); // op 4
            let _ = backend.write_frame(PageId(1), &[1u8; 16]); // op 5
            assert!(c.crashed(), "kill_at={kill_at}");
            if kill_at > 3 {
                assert!(log.surviving_bytes().starts_with(b"committed"), "synced log survives");
            }
            if kill_at > 4 {
                let frames = backend.surviving_frames();
                let f0 = frames.iter().find(|(id, _)| *id == PageId(0)).expect("synced frame");
                assert_eq!(f0.1, vec![9u8; 16]);
            }
        }
    }

    #[test]
    fn unsynced_log_tail_survives_as_a_prefix() {
        // Whatever the seed decides, the survivors must be durable bytes
        // plus a (possibly empty, possibly complete) prefix of the
        // unsynced appends, in order.
        for seed in 0..32 {
            let c = ctrl(seed, 4);
            let log = CrashLog::new(c.clone());
            log.append(b"AAAA").unwrap(); // op 1
            log.sync().unwrap(); // op 2
            log.append(b"BBBB").unwrap(); // op 3
            let _ = log.append(b"CCCC"); // op 4: dies
            assert!(c.crashed());
            let got = log.surviving_bytes();
            let full: &[u8] = b"AAAABBBBCCCC";
            assert!(got.len() >= 4, "synced prefix must survive: {got:?}");
            assert_eq!(&got[..], &full[..got.len()], "survivors are a stream prefix");
        }
    }

    #[test]
    fn unsynced_frames_fate_is_deterministic_per_seed() {
        let survivors = |seed: u64| {
            let c = ctrl(seed, 9);
            let backend = CrashBackend::new(16, c.clone());
            backend.write_frame(PageId(0), &[0xee; 16]).unwrap();
            backend.sync().unwrap();
            for i in 0..8u64 {
                let _ = backend.write_frame(PageId(i), &[i as u8 + 1; 16]);
            }
            assert!(c.crashed());
            backend.surviving_frames()
        };
        assert_eq!(survivors(5), survivors(5), "same seed, same fates");
        // Across many seeds all three fates occur for the overwritten page:
        // survive-new, torn (mixed), dropped (old contents).
        let (mut full, mut torn, mut dropped) = (false, false, false);
        for seed in 0..64 {
            let frames = survivors(seed);
            let f0 = &frames.iter().find(|(id, _)| *id == PageId(0)).unwrap().1;
            if f0 == &vec![1u8; 16] {
                full = true;
            } else if f0 == &vec![0xee; 16] {
                dropped = true;
            } else if f0.contains(&1u8) && f0.contains(&0xee) {
                torn = true;
            }
        }
        assert!(full && torn && dropped, "full={full} torn={torn} dropped={dropped}");
    }

    #[test]
    fn reset_crash_resolves_to_old_or_new_complete_log() {
        let (mut old_won, mut new_won) = (false, false);
        for seed in 0..32 {
            let c = ctrl(seed, 3);
            let log = CrashLog::new(c.clone());
            log.append(b"OLD").unwrap(); // op 1
            log.sync().unwrap(); // op 2
            let err = log.reset(b"NEW").unwrap_err(); // op 3: dies mid-rename
            assert!(matches!(err, StoreError::Crashed));
            match log.surviving_bytes().as_slice() {
                b"OLD" => old_won = true,
                b"NEW" => new_won = true,
                other => panic!("reset must be atomic, got {other:?}"),
            }
        }
        assert!(old_won && new_won, "both rename outcomes must occur across seeds");
    }

    #[test]
    fn surviving_backend_round_trips_through_membackend() {
        let c = ctrl(3, 0);
        let backend = CrashBackend::new(16, c);
        backend.write_frame(PageId(4), &[7u8; 16]).unwrap();
        backend.sync().unwrap();
        let survivor = backend.surviving_backend();
        let mut buf = [0u8; 16];
        survivor.read_frame(PageId(4), &mut buf).unwrap();
        assert_eq!(buf, [7u8; 16]);
        assert_eq!(survivor.frame_count(), 5);
        assert_eq!(backend.frame_count(), 5);
    }

    #[test]
    fn with_frames_and_with_bytes_carry_previous_survivors() {
        let c = ctrl(8, 0);
        let backend =
            CrashBackend::with_frames(16, c.clone(), vec![(PageId(2), vec![3u8; 16])]);
        let mut buf = [0u8; 16];
        backend.read_frame(PageId(2), &mut buf).unwrap();
        assert_eq!(buf, [3u8; 16]);
        let log = CrashLog::with_bytes(c, b"carried".to_vec());
        assert_eq!(log.read_all().unwrap(), b"carried");
        assert_eq!(log.len().unwrap(), 7);
        assert!(!log.is_empty().unwrap());
    }
}
