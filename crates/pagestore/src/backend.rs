//! Storage backends: where page frames physically live.
//!
//! A *frame* is the page payload plus an 8-byte trailing checksum; the
//! [`crate::PageStore`] computes and verifies checksums, so backends only
//! move opaque frames. Frame addressing is by [`PageId`] ordinal.
//!
//! All methods take `&self`: backends are internally synchronized (memory:
//! a sharded `RwLock`; file: positional I/O), so concurrent readers never
//! serialize on a global lock — see experiment E15.

use std::fs::{File, OpenOptions};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use pc_sync::RwLock;

use crate::error::Result;
use crate::store::PageId;

/// A linear array of fixed-size frames addressed by page id.
///
/// Backends are deliberately dumb: no caching, no counting, no checksums.
/// All policy lives in [`crate::PageStore`].
pub trait Backend: Send + Sync {
    /// Size of one frame in bytes (page payload + checksum trailer).
    fn frame_size(&self) -> usize;

    /// Reads frame `id` into `buf` (`buf.len() == frame_size()`).
    ///
    /// Reading a frame that was never written fills `buf` with zeroes; the
    /// store layer rejects such reads earlier via its allocation table, so
    /// this is only reachable through store-internal recovery paths.
    fn read_frame(&self, id: PageId, buf: &mut [u8]) -> Result<()>;

    /// Writes frame `id` from `buf` (`buf.len() == frame_size()`).
    fn write_frame(&self, id: PageId, buf: &[u8]) -> Result<()>;

    /// Flushes buffered writes to durable storage (no-op for memory).
    fn sync(&self) -> Result<()>;

    /// Number of frames this backend has capacity for right now (grows on
    /// demand); used only for diagnostics.
    fn frame_count(&self) -> u64;
}

/// Heap-backed backend: the "disk" is a vector of frames behind a
/// read-write lock (reads of distinct pages proceed in parallel).
///
/// This is the default for experiments — it makes I/O *counting* exact and
/// fast without touching the real filesystem.
pub struct MemBackend {
    frame_size: usize,
    frames: RwLock<Vec<Option<Box<[u8]>>>>,
}

impl MemBackend {
    /// Creates an empty in-memory backend with the given frame size.
    pub fn new(frame_size: usize) -> Self {
        MemBackend { frame_size, frames: RwLock::new(Vec::new()) }
    }
}

impl Backend for MemBackend {
    fn frame_size(&self) -> usize {
        self.frame_size
    }

    fn read_frame(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), self.frame_size);
        let frames = self.frames.read();
        match frames.get(id.0 as usize).and_then(|f| f.as_deref()) {
            Some(frame) => buf.copy_from_slice(frame),
            None => buf.fill(0),
        }
        Ok(())
    }

    fn write_frame(&self, id: PageId, buf: &[u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), self.frame_size);
        let idx = id.0 as usize;
        let mut frames = self.frames.write();
        if idx >= frames.len() {
            frames.resize_with(idx + 1, || None);
        }
        match &mut frames[idx] {
            Some(frame) => frame.copy_from_slice(buf),
            slot @ None => *slot = Some(buf.to_vec().into_boxed_slice()),
        }
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        Ok(())
    }

    fn frame_count(&self) -> u64 {
        self.frames.read().len() as u64
    }
}

/// File-backed backend using positional reads/writes on a single file
/// (`pread`/`pwrite`-style, so concurrent access needs no seeking lock).
///
/// Frame `i` lives at byte offset `i * frame_size`. This backend exists to
/// demonstrate that every structure in the workspace runs unmodified
/// against a real disk file; experiments use [`MemBackend`] because only
/// transfer *counts* matter in the paper's model.
pub struct FileBackend {
    file: File,
    frame_size: usize,
    frames: AtomicU64,
}

impl FileBackend {
    /// Opens (creating if necessary) `path` as a frame file.
    pub fn open(path: &Path, frame_size: usize) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        Ok(FileBackend { file, frame_size, frames: AtomicU64::new(len / frame_size as u64) })
    }
}

#[cfg(unix)]
fn read_at(file: &File, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.read_exact_at(buf, offset)
}

#[cfg(unix)]
fn write_at(file: &File, buf: &[u8], offset: u64) -> std::io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.write_all_at(buf, offset)
}

#[cfg(not(unix))]
compile_error!("FileBackend currently requires a Unix platform for positional I/O");

impl Backend for FileBackend {
    fn frame_size(&self) -> usize {
        self.frame_size
    }

    fn read_frame(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), self.frame_size);
        if id.0 >= self.frames.load(Ordering::Acquire) {
            buf.fill(0);
            return Ok(());
        }
        read_at(&self.file, buf, id.0 * self.frame_size as u64)?;
        Ok(())
    }

    fn write_frame(&self, id: PageId, buf: &[u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), self.frame_size);
        write_at(&self.file, buf, id.0 * self.frame_size as u64)?;
        self.frames.fetch_max(id.0 + 1, Ordering::AcqRel);
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }

    fn frame_count(&self) -> u64 {
        self.frames.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(backend: &dyn Backend) {
        let fs = backend.frame_size();
        let frame_a: Vec<u8> = (0..fs).map(|i| (i % 251) as u8).collect();
        let frame_b: Vec<u8> = (0..fs).map(|i| (i % 13) as u8).collect();
        backend.write_frame(PageId(0), &frame_a).unwrap();
        backend.write_frame(PageId(5), &frame_b).unwrap();

        let mut buf = vec![0u8; fs];
        backend.read_frame(PageId(0), &mut buf).unwrap();
        assert_eq!(buf, frame_a);
        backend.read_frame(PageId(5), &mut buf).unwrap();
        assert_eq!(buf, frame_b);
        // unwritten hole reads as zeroes
        backend.read_frame(PageId(3), &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
        // overwrite
        backend.write_frame(PageId(0), &frame_b).unwrap();
        backend.read_frame(PageId(0), &mut buf).unwrap();
        assert_eq!(buf, frame_b);
        assert!(backend.frame_count() >= 6);
        backend.sync().unwrap();
    }

    #[test]
    fn mem_backend_roundtrip() {
        roundtrip(&MemBackend::new(128));
    }

    #[test]
    fn file_backend_roundtrip() {
        let dir = std::env::temp_dir().join(format!("pcps-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("frames.bin");
        roundtrip(&FileBackend::open(&path, 128).unwrap());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_backend_persists_across_reopen() {
        let dir = std::env::temp_dir().join(format!("pcps-reopen-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("frames.bin");
        let frame: Vec<u8> = (0..64).map(|i| i as u8).collect();
        {
            let b = FileBackend::open(&path, 64).unwrap();
            b.write_frame(PageId(2), &frame).unwrap();
            b.sync().unwrap();
        }
        let b = FileBackend::open(&path, 64).unwrap();
        assert_eq!(b.frame_count(), 3);
        let mut buf = vec![0u8; 64];
        b.read_frame(PageId(2), &mut buf).unwrap();
        assert_eq!(buf, frame);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mem_backend_supports_concurrent_readers() {
        let backend = MemBackend::new(64);
        for i in 0..64u64 {
            backend.write_frame(PageId(i), &[i as u8; 64]).unwrap();
        }
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let mut buf = [0u8; 64];
                    for round in 0..200u64 {
                        let id = round % 64;
                        backend.read_frame(PageId(id), &mut buf).unwrap();
                        assert!(buf.iter().all(|&b| b == id as u8));
                    }
                });
            }
        });
    }
}
