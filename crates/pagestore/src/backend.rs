//! Storage backends: where page frames physically live.
//!
//! A *frame* is the page payload plus an 8-byte trailing checksum; the
//! [`crate::PageStore`] computes and verifies checksums, so backends only
//! move opaque frames. Frame addressing is by [`PageId`] ordinal.
//!
//! All methods take `&self`: backends are internally synchronized (memory:
//! a sharded `RwLock`; file: positional I/O), so concurrent readers never
//! serialize on a global lock — see experiment E15.

use std::fs::{File, OpenOptions};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use pc_sync::RwLock;

use crate::error::{Result, StoreError};
use crate::store::PageId;

pub use crate::fault::{FaultBackend, FaultHandle, FaultPlan, InjectionStats};
pub use crate::mirror::MirrorBackend;

/// Counters exposed by resilient backends. Plain backends report zeroes;
/// [`MirrorBackend`] counts read failovers and replica repairs, and the
/// store folds these into [`crate::IoStats`] on snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilienceStats {
    /// Reads the first replica could not serve that a later replica did.
    pub failovers: u64,
    /// Replica frames rewritten from a known-good copy (read-repair or
    /// [`Backend::scrub`]).
    pub repairs: u64,
}

/// Outcome of one [`Backend::scrub`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Frames examined (for a mirror: distinct frame ordinals, not
    /// per-replica reads).
    pub frames_checked: u64,
    /// Frames where at least one bad replica was rewritten from a good one.
    pub repaired: u64,
    /// Frames where no replica held a valid copy; left untouched.
    pub unrecoverable: u64,
}

/// A linear array of fixed-size frames addressed by page id.
///
/// Backends are deliberately dumb: no caching, no counting, no checksums.
/// All policy lives in [`crate::PageStore`].
pub trait Backend: Send + Sync {
    /// Size of one frame in bytes (page payload + checksum trailer).
    fn frame_size(&self) -> usize;

    /// Reads frame `id` into `buf` (`buf.len() == frame_size()`).
    ///
    /// Reading a frame that was never written fills `buf` with zeroes; the
    /// store layer rejects such reads earlier via its allocation table, so
    /// this is only reachable through store-internal recovery paths.
    fn read_frame(&self, id: PageId, buf: &mut [u8]) -> Result<()>;

    /// Writes frame `id` from `buf` (`buf.len() == frame_size()`).
    fn write_frame(&self, id: PageId, buf: &[u8]) -> Result<()>;

    /// Flushes buffered writes to durable storage (no-op for memory).
    fn sync(&self) -> Result<()>;

    /// Number of frames this backend has capacity for right now (grows on
    /// demand); used only for diagnostics.
    fn frame_count(&self) -> u64;

    /// Failover/repair counters since construction (or the last
    /// [`Backend::reset_resilience_stats`]). Zero for non-replicated
    /// backends; decorators forward to their inner backend.
    fn resilience_stats(&self) -> ResilienceStats {
        ResilienceStats::default()
    }

    /// Resets [`Backend::resilience_stats`] to zero.
    fn reset_resilience_stats(&self) {}

    /// Verifies stored redundancy and repairs what it can. A plain backend
    /// has no redundancy, so the default checks nothing and repairs
    /// nothing; [`MirrorBackend`] rewrites bad replicas from good ones.
    fn scrub(&self) -> Result<ScrubReport> {
        Ok(ScrubReport::default())
    }
}

/// Heap-backed backend: the "disk" is a vector of frames behind a
/// read-write lock (reads of distinct pages proceed in parallel).
///
/// This is the default for experiments — it makes I/O *counting* exact and
/// fast without touching the real filesystem.
pub struct MemBackend {
    frame_size: usize,
    frames: RwLock<Vec<Option<Box<[u8]>>>>,
}

impl MemBackend {
    /// Creates an empty in-memory backend with the given frame size.
    pub fn new(frame_size: usize) -> Self {
        MemBackend { frame_size, frames: RwLock::new(Vec::new()) }
    }
}

impl Backend for MemBackend {
    fn frame_size(&self) -> usize {
        self.frame_size
    }

    fn read_frame(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), self.frame_size);
        let frames = self.frames.read();
        match frames.get(id.0 as usize).and_then(|f| f.as_deref()) {
            Some(frame) => buf.copy_from_slice(frame),
            None => buf.fill(0),
        }
        Ok(())
    }

    fn write_frame(&self, id: PageId, buf: &[u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), self.frame_size);
        let idx = id.0 as usize;
        let mut frames = self.frames.write();
        if idx >= frames.len() {
            frames.resize_with(idx + 1, || None);
        }
        match &mut frames[idx] {
            Some(frame) => frame.copy_from_slice(buf),
            slot @ None => *slot = Some(buf.to_vec().into_boxed_slice()),
        }
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        Ok(())
    }

    fn frame_count(&self) -> u64 {
        self.frames.read().len() as u64
    }
}

/// File-backed backend using positional reads/writes on a single file
/// (`pread`/`pwrite`-style, so concurrent access needs no seeking lock).
///
/// The file starts with a 64-byte superblock (magic + `frame_size`) so a
/// reopen with a different frame size fails with [`StoreError::Corrupt`]
/// instead of silently misaddressing every frame; frame `i` lives at byte
/// offset `SUPERBLOCK_LEN + i * frame_size`. This backend exists to
/// demonstrate that every structure in the workspace runs unmodified
/// against a real disk file; experiments use [`MemBackend`] because only
/// transfer *counts* matter in the paper's model.
///
/// **Migration note:** files written before the superblock existed have
/// frame 0 at offset 0 and no magic, so opening one fails the magic check.
/// Recover by prepending a 64-byte header (magic `PCPSTOR1`, then the
/// original frame size as a little-endian `u64`, zero padding) — e.g.
/// `(printf 'PCPSTOR1'; python3 -c "import sys;
/// sys.stdout.buffer.write((4104).to_bytes(8,'little')+bytes(48))";
/// cat old.bin) > new.bin` — or by rebuilding the file from source data.
#[derive(Debug)]
pub struct FileBackend {
    file: File,
    frame_size: usize,
    frames: AtomicU64,
}

/// Bytes reserved at the front of a [`FileBackend`] file for the
/// superblock: 8-byte magic, 8-byte little-endian frame size, zero padding.
pub const SUPERBLOCK_LEN: u64 = 64;

const SUPERBLOCK_MAGIC: &[u8; 8] = b"PCPSTOR1";

impl FileBackend {
    /// Opens (creating if necessary) `path` as a frame file.
    ///
    /// A new or empty file gets a superblock recording `frame_size`; an
    /// existing file must carry a matching superblock, otherwise this
    /// returns [`StoreError::Corrupt`] (wrong frame size, a pre-superblock
    /// file — see the migration note on [`FileBackend`] — or not a frame
    /// file at all).
    pub fn open(path: &Path, frame_size: usize) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        if len == 0 {
            let mut sb = [0u8; SUPERBLOCK_LEN as usize];
            sb[..8].copy_from_slice(SUPERBLOCK_MAGIC);
            sb[8..16].copy_from_slice(&(frame_size as u64).to_le_bytes());
            write_at(&file, &sb, 0)?;
            file.sync_data()?;
            return Ok(FileBackend { file, frame_size, frames: AtomicU64::new(0) });
        }
        let mut sb = [0u8; SUPERBLOCK_LEN as usize];
        if len < SUPERBLOCK_LEN || {
            read_at(&file, &mut sb, 0)?;
            &sb[..8] != SUPERBLOCK_MAGIC
        } {
            return Err(StoreError::Corrupt(format!(
                "{} is not a frame file: superblock magic missing (pre-superblock \
                 files need a 64-byte header prepended; see FileBackend docs)",
                path.display()
            )));
        }
        let stored = u64::from_le_bytes(sb[8..16].try_into().unwrap());
        if stored != frame_size as u64 {
            return Err(StoreError::Corrupt(format!(
                "{} was written with frame_size {stored}, reopened with {frame_size}",
                path.display()
            )));
        }
        let body = len - SUPERBLOCK_LEN;
        let trailing_bytes = body % frame_size as u64;
        if trailing_bytes != 0 {
            // A file ending mid-frame is the tail of a write that a crash
            // cut short. Refusing (instead of silently rounding the frame
            // count down, which hides the damage) forces the caller to
            // decide: re-create the file, or recover explicitly via
            // [`FileBackend::open_recovering`].
            return Err(StoreError::TornWrite {
                complete: body / frame_size as u64,
                trailing_bytes,
            });
        }
        let frames = body / frame_size as u64;
        Ok(FileBackend { file, frame_size, frames: AtomicU64::new(frames) })
    }

    /// Opens like [`FileBackend::open`], but a file ending mid-frame (a
    /// torn tail) is truncated back to the last complete frame instead of
    /// refused. Returns the backend plus whether a torn tail was dropped.
    /// Intended for durable stores, whose WAL restores whatever page the
    /// truncated tail belonged to; on a bare file store the truncation
    /// would silently lose that page's last write, which is exactly why
    /// `open` refuses instead.
    pub fn open_recovering(path: &Path, frame_size: usize) -> Result<(Self, bool)> {
        match Self::open(path, frame_size) {
            Err(StoreError::TornWrite { complete, .. }) => {
                let file =
                    OpenOptions::new().read(true).write(true).open(path)?;
                file.set_len(SUPERBLOCK_LEN + complete * frame_size as u64)?;
                file.sync_data()?;
                drop(file);
                Ok((Self::open(path, frame_size)?, true))
            }
            other => Ok((other?, false)),
        }
    }

    fn frame_offset(&self, id: PageId) -> u64 {
        SUPERBLOCK_LEN + id.0 * self.frame_size as u64
    }
}

#[cfg(unix)]
fn read_at(file: &File, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.read_exact_at(buf, offset)
}

#[cfg(unix)]
fn write_at(file: &File, buf: &[u8], offset: u64) -> std::io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.write_all_at(buf, offset)
}

#[cfg(not(unix))]
compile_error!("FileBackend currently requires a Unix platform for positional I/O");

impl Backend for FileBackend {
    fn frame_size(&self) -> usize {
        self.frame_size
    }

    fn read_frame(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), self.frame_size);
        if id.0 >= self.frames.load(Ordering::Acquire) {
            buf.fill(0);
            return Ok(());
        }
        read_at(&self.file, buf, self.frame_offset(id))?;
        Ok(())
    }

    fn write_frame(&self, id: PageId, buf: &[u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), self.frame_size);
        write_at(&self.file, buf, self.frame_offset(id))?;
        self.frames.fetch_max(id.0 + 1, Ordering::AcqRel);
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }

    fn frame_count(&self) -> u64 {
        self.frames.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(backend: &dyn Backend) {
        let fs = backend.frame_size();
        let frame_a: Vec<u8> = (0..fs).map(|i| (i % 251) as u8).collect();
        let frame_b: Vec<u8> = (0..fs).map(|i| (i % 13) as u8).collect();
        backend.write_frame(PageId(0), &frame_a).unwrap();
        backend.write_frame(PageId(5), &frame_b).unwrap();

        let mut buf = vec![0u8; fs];
        backend.read_frame(PageId(0), &mut buf).unwrap();
        assert_eq!(buf, frame_a);
        backend.read_frame(PageId(5), &mut buf).unwrap();
        assert_eq!(buf, frame_b);
        // unwritten hole reads as zeroes
        backend.read_frame(PageId(3), &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
        // overwrite
        backend.write_frame(PageId(0), &frame_b).unwrap();
        backend.read_frame(PageId(0), &mut buf).unwrap();
        assert_eq!(buf, frame_b);
        assert!(backend.frame_count() >= 6);
        backend.sync().unwrap();
    }

    #[test]
    fn mem_backend_roundtrip() {
        roundtrip(&MemBackend::new(128));
    }

    #[test]
    fn file_backend_roundtrip() {
        let dir = std::env::temp_dir().join(format!("pcps-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("frames.bin");
        roundtrip(&FileBackend::open(&path, 128).unwrap());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_backend_persists_across_reopen() {
        let dir = std::env::temp_dir().join(format!("pcps-reopen-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("frames.bin");
        let frame: Vec<u8> = (0..64).map(|i| i as u8).collect();
        {
            let b = FileBackend::open(&path, 64).unwrap();
            b.write_frame(PageId(2), &frame).unwrap();
            b.sync().unwrap();
        }
        let b = FileBackend::open(&path, 64).unwrap();
        assert_eq!(b.frame_count(), 3);
        let mut buf = vec![0u8; 64];
        b.read_frame(PageId(2), &mut buf).unwrap();
        assert_eq!(buf, frame);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_backend_rejects_frame_size_mismatch_on_reopen() {
        let dir = std::env::temp_dir().join(format!("pcps-sbsize-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("frames.bin");
        {
            let b = FileBackend::open(&path, 64).unwrap();
            b.write_frame(PageId(0), &[7u8; 64]).unwrap();
            b.sync().unwrap();
        }
        let err = FileBackend::open(&path, 128).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(_)), "got {err}");
        assert!(err.to_string().contains("64"), "{err}");
        assert!(err.to_string().contains("128"), "{err}");
        // The matching size still opens and reads back intact.
        let b = FileBackend::open(&path, 64).unwrap();
        let mut buf = [0u8; 64];
        b.read_frame(PageId(0), &mut buf).unwrap();
        assert_eq!(buf, [7u8; 64]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_backend_surfaces_a_torn_tail_instead_of_silently_truncating() {
        let dir = std::env::temp_dir().join(format!("pcps-torn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.bin");
        {
            let b = FileBackend::open(&path, 64).unwrap();
            b.write_frame(PageId(0), &[1u8; 64]).unwrap();
            b.write_frame(PageId(1), &[2u8; 64]).unwrap();
            b.sync().unwrap();
        }
        // A crash mid-append leaves a partial trailing frame.
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[9u8; 40]).unwrap();
        }
        // Plain open refuses with the typed condition (the old behavior
        // was to round the frame count down and hide the damage).
        match FileBackend::open(&path, 64).unwrap_err() {
            StoreError::TornWrite { complete, trailing_bytes } => {
                assert_eq!((complete, trailing_bytes), (2, 40));
            }
            other => panic!("expected TornWrite, got {other}"),
        }
        // open_recovering truncates back to the last complete frame…
        let (b, torn) = FileBackend::open_recovering(&path, 64).unwrap();
        assert!(torn);
        assert_eq!(b.frame_count(), 2);
        let mut buf = [0u8; 64];
        b.read_frame(PageId(1), &mut buf).unwrap();
        assert_eq!(buf, [2u8; 64]);
        drop(b);
        // …durably: the next plain open sees a whole-frame file.
        let (b, torn) = FileBackend::open_recovering(&path, 64).unwrap();
        assert!(!torn);
        assert_eq!(b.frame_count(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_backend_rejects_pre_superblock_files() {
        let dir = std::env::temp_dir().join(format!("pcps-legacy-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("legacy.bin");
        // A legacy frame file: raw frames from offset 0, no magic.
        std::fs::write(&path, vec![0xaau8; 192]).unwrap();
        let err = FileBackend::open(&path, 64).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(_)), "got {err}");
        assert!(err.to_string().contains("superblock"), "{err}");
        // Too-short garbage (shorter than a superblock) is rejected too.
        std::fs::write(&path, b"PCx").unwrap();
        assert!(FileBackend::open(&path, 64).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mem_backend_supports_concurrent_readers() {
        let backend = MemBackend::new(64);
        for i in 0..64u64 {
            backend.write_frame(PageId(i), &[i as u8; 64]).unwrap();
        }
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let mut buf = [0u8; 64];
                    for round in 0..200u64 {
                        let id = round % 64;
                        backend.read_frame(PageId(id), &mut buf).unwrap();
                        assert!(buf.iter().all(|&b| b == id as u8));
                    }
                });
            }
        });
    }
}
