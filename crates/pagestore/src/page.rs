//! Owned, immutable page payloads.
//!
//! [`Page`] is the handle returned by [`crate::PageStore::read`]: an
//! `Arc<[u8]>`-backed buffer, so cloning is a reference-count bump and a
//! query can hold many pages (e.g. a pinned split page during a boundary
//! walk) without copying payload bytes. It replaces the `bytes::Bytes`
//! handle the seed used, keeping the workspace free of registry crates.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply clonable page payload.
#[derive(Clone)]
pub struct Page(Arc<[u8]>);

impl Page {
    /// Copies `data` into a new page buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Page(Arc::from(data))
    }

    /// Length of the payload in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The payload as a byte slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }

    /// True if `self` and `other` share the same underlying buffer — i.e.
    /// one was cloned from the other without copying payload bytes. This is
    /// how tests prove buffer-pool hits are zero-copy.
    pub fn ptr_eq(&self, other: &Page) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl From<Vec<u8>> for Page {
    fn from(v: Vec<u8>) -> Self {
        Page(Arc::from(v.into_boxed_slice()))
    }
}

impl From<Box<[u8]>> for Page {
    fn from(b: Box<[u8]>) -> Self {
        Page(Arc::from(b))
    }
}

impl Deref for Page {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Page {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl PartialEq for Page {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}

impl Eq for Page {}

impl PartialEq<[u8]> for Page {
    fn eq(&self, other: &[u8]) -> bool {
        &*self.0 == other
    }
}

impl fmt::Debug for Page {
    /// Prints the byte slice, matching what `Bytes` showed in test
    /// failure output.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&&*self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_the_buffer() {
        let a = Page::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert!(std::ptr::eq(a.as_slice().as_ptr(), b.as_slice().as_ptr()));
    }

    #[test]
    fn slicing_and_iteration_work_through_deref() {
        let p = Page::copy_from_slice(b"hello page");
        assert_eq!(&p[..5], b"hello");
        assert_eq!(p.len(), 10);
        assert!(!p.is_empty());
        assert_eq!(p.iter().filter(|&&b| b == b'e').count(), 2);
    }
}
