//! I/O accounting.
//!
//! Every experiment in this reproduction reports *page transfer counts*, not
//! wall-clock time, because the paper's bounds are stated in the standard
//! external-memory model. [`IoStats`] is the measured quantity.

use std::fmt;
use std::ops::Sub;

/// Snapshot of cumulative I/O counters for one [`crate::PageStore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Page reads served by the backend (i.e. actual transfers; buffer-pool
    /// hits are *not* counted here).
    pub reads: u64,
    /// Page writes issued to the backend (including pool write-backs).
    pub writes: u64,
    /// Logical reads absorbed by the buffer pool (0 in strict mode).
    pub cache_hits: u64,
    /// Pages allocated over the store's lifetime.
    pub allocs: u64,
    /// Pages freed over the store's lifetime.
    pub frees: u64,
    /// Buffer-pool frames evicted to make room (dirty or clean; 0 in
    /// strict mode). Dirty evictions also count one backend write.
    pub pool_evictions: u64,
}

impl IoStats {
    /// Total page transfers: reads plus writes.
    pub fn total_io(&self) -> u64 {
        self.reads + self.writes
    }

    /// Pages currently live (allocated and not freed).
    pub fn live_pages(&self) -> u64 {
        self.allocs - self.frees
    }
}

impl Sub for IoStats {
    type Output = IoStats;

    /// Computes the delta between two snapshots, used to attribute I/O to a
    /// single operation: `let before = store.stats(); op(); let cost =
    /// store.stats() - before;`.
    fn sub(self, rhs: IoStats) -> IoStats {
        IoStats {
            reads: self.reads - rhs.reads,
            writes: self.writes - rhs.writes,
            cache_hits: self.cache_hits - rhs.cache_hits,
            allocs: self.allocs - rhs.allocs,
            frees: self.frees - rhs.frees,
            pool_evictions: self.pool_evictions - rhs.pool_evictions,
        }
    }
}

impl fmt::Display for IoStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reads={} writes={} hits={} allocs={} frees={} evictions={}",
            self.reads, self.writes, self.cache_hits, self.allocs, self.frees,
            self.pool_evictions
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_and_totals() {
        let a = IoStats { reads: 10, writes: 4, cache_hits: 2, allocs: 5, frees: 1, pool_evictions: 0 };
        let b = IoStats { reads: 25, writes: 9, cache_hits: 7, allocs: 8, frees: 2, pool_evictions: 3 };
        let d = b - a;
        assert_eq!(d.reads, 15);
        assert_eq!(d.pool_evictions, 3);
        assert_eq!(d.writes, 5);
        assert_eq!(d.total_io(), 20);
        assert_eq!(b.live_pages(), 6);
    }

    #[test]
    fn display_contains_all_counters() {
        let s = IoStats {
            reads: 1,
            writes: 2,
            cache_hits: 3,
            allocs: 4,
            frees: 5,
            pool_evictions: 6,
        }
        .to_string();
        for needle in ["reads=1", "writes=2", "hits=3", "allocs=4", "frees=5", "evictions=6"] {
            assert!(s.contains(needle), "{s} missing {needle}");
        }
    }
}
