//! I/O accounting.
//!
//! Every experiment in this reproduction reports *page transfer counts*, not
//! wall-clock time, because the paper's bounds are stated in the standard
//! external-memory model. [`IoStats`] is the measured quantity.

use std::fmt;
use std::ops::Sub;

/// Snapshot of cumulative I/O counters for one [`crate::PageStore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Page reads served by the backend (i.e. actual transfers; buffer-pool
    /// hits are *not* counted here).
    pub reads: u64,
    /// Page writes issued to the backend (including pool write-backs).
    pub writes: u64,
    /// Logical reads absorbed by the buffer pool (0 in strict mode).
    pub cache_hits: u64,
    /// Pages allocated over the store's lifetime.
    pub allocs: u64,
    /// Pages freed over the store's lifetime.
    pub frees: u64,
    /// Buffer-pool frames evicted to make room (dirty or clean; 0 in
    /// strict mode). Dirty evictions also count one backend write.
    pub pool_evictions: u64,
    /// Extra backend attempts issued by the retry layer after a transient
    /// fault (a fault-free run always reports 0).
    pub retries: u64,
    /// Reads the primary replica could not serve that a mirror replica did
    /// (0 unless the backend is a `MirrorBackend`).
    pub failovers: u64,
    /// Replica frames rewritten from a known-good copy, by read-repair or
    /// `scrub()` (0 unless the backend is a `MirrorBackend`).
    pub repairs: u64,
    /// Pages moved into the quarantine set after exhausting their retry
    /// budget (cumulative events, not the current set size).
    pub quarantined: u64,
}

impl IoStats {
    /// Total page transfers: reads plus writes.
    pub fn total_io(&self) -> u64 {
        self.reads + self.writes
    }

    /// Pages currently live (allocated and not freed).
    pub fn live_pages(&self) -> u64 {
        self.allocs - self.frees
    }

    /// Buffer-pool hit ratio `cache_hits / (cache_hits + reads)` — the
    /// fraction of logical reads the pool absorbed. Returns 0.0 when there
    /// has been no read traffic at all (strict mode reports 0.0 too, since
    /// every logical read is a backend transfer).
    pub fn hit_ratio(&self) -> f64 {
        let logical = self.cache_hits + self.reads;
        if logical == 0 {
            0.0
        } else {
            self.cache_hits as f64 / logical as f64
        }
    }

    /// Wasteful transfers under the paper's §3 taxonomy: of this snapshot's
    /// `reads`, how many were *not* paid for by a full block of output —
    /// `items` result items at `block_capacity` items per page. Delegates to
    /// [`pc_obs::wasteful_transfers`] so the workspace has one definition.
    pub fn wasteful(&self, items: u64, block_capacity: u64) -> u64 {
        pc_obs::wasteful_transfers(self.reads, items, block_capacity)
    }
}

impl Sub for IoStats {
    type Output = IoStats;

    /// Computes the delta between two snapshots, used to attribute I/O to a
    /// single operation: `let before = store.stats(); op(); let cost =
    /// store.stats() - before;`.
    ///
    /// Saturating per field: a snapshot folds per-shard relaxed atomics, so
    /// two snapshots racing concurrent operations can interleave
    /// non-monotonically (e.g. `b` reads shard 0 before a hit lands and
    /// shard 1 after its miss does). Saturation clamps such a field to 0
    /// instead of panicking in debug / wrapping to ~`u64::MAX` in release.
    fn sub(self, rhs: IoStats) -> IoStats {
        IoStats {
            reads: self.reads.saturating_sub(rhs.reads),
            writes: self.writes.saturating_sub(rhs.writes),
            cache_hits: self.cache_hits.saturating_sub(rhs.cache_hits),
            allocs: self.allocs.saturating_sub(rhs.allocs),
            frees: self.frees.saturating_sub(rhs.frees),
            pool_evictions: self.pool_evictions.saturating_sub(rhs.pool_evictions),
            retries: self.retries.saturating_sub(rhs.retries),
            failovers: self.failovers.saturating_sub(rhs.failovers),
            repairs: self.repairs.saturating_sub(rhs.repairs),
            quarantined: self.quarantined.saturating_sub(rhs.quarantined),
        }
    }
}

impl fmt::Display for IoStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reads={} writes={} hits={} allocs={} frees={} evictions={} \
             retries={} failovers={} repairs={} quarantined={} hit_ratio={:.2}",
            self.reads,
            self.writes,
            self.cache_hits,
            self.allocs,
            self.frees,
            self.pool_evictions,
            self.retries,
            self.failovers,
            self.repairs,
            self.quarantined,
            self.hit_ratio()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_and_totals() {
        let a = IoStats {
            reads: 10,
            writes: 4,
            cache_hits: 2,
            allocs: 5,
            frees: 1,
            ..IoStats::default()
        };
        let b = IoStats {
            reads: 25,
            writes: 9,
            cache_hits: 7,
            allocs: 8,
            frees: 2,
            pool_evictions: 3,
            ..IoStats::default()
        };
        let d = b - a;
        assert_eq!(d.reads, 15);
        assert_eq!(d.pool_evictions, 3);
        assert_eq!(d.writes, 5);
        assert_eq!(d.total_io(), 20);
        assert_eq!(b.live_pages(), 6);
    }

    #[test]
    fn resilience_counters_follow_saturating_delta_rules() {
        // The four fault-layer counters obey the same snapshot/delta
        // semantics as the original six: exact deltas when monotonic,
        // clamped to 0 when snapshots interleave non-monotonically.
        let a = IoStats { retries: 2, failovers: 1, repairs: 0, quarantined: 1, ..IoStats::default() };
        let b = IoStats { retries: 7, failovers: 1, repairs: 3, quarantined: 1, ..IoStats::default() };
        let d = b - a;
        assert_eq!(d.retries, 5);
        assert_eq!(d.failovers, 0);
        assert_eq!(d.repairs, 3);
        assert_eq!(d.quarantined, 0);
        let clamped = a - b;
        assert_eq!(clamped.retries, 0);
        assert_eq!(clamped.repairs, 0);
    }

    #[test]
    fn sub_saturates_on_non_monotonic_snapshots() {
        // Regression: folded per-shard snapshots can interleave so that an
        // "earlier" snapshot has a larger field; `-` must clamp, not panic.
        let earlier = IoStats { reads: 5, cache_hits: 9, ..IoStats::default() };
        let later = IoStats { reads: 7, cache_hits: 8, ..IoStats::default() };
        let d = later - earlier;
        assert_eq!(d.reads, 2);
        assert_eq!(d.cache_hits, 0, "non-monotonic field clamps to 0");
        assert_eq!(d.writes, 0);
    }

    #[test]
    fn hit_ratio_is_guarded_and_correct() {
        assert_eq!(IoStats::default().hit_ratio(), 0.0);
        let strict = IoStats { reads: 10, ..IoStats::default() };
        assert_eq!(strict.hit_ratio(), 0.0);
        let pooled = IoStats { reads: 25, cache_hits: 75, ..IoStats::default() };
        assert!((pooled.hit_ratio() - 0.75).abs() < 1e-12);
        let all_hits = IoStats { cache_hits: 4, ..IoStats::default() };
        assert_eq!(all_hits.hit_ratio(), 1.0);
    }

    #[test]
    fn wasteful_uses_shared_definition() {
        let s = IoStats { reads: 3, ..IoStats::default() };
        // 2 full blocks of 170 + a tail → 1 of the 3 reads is wasteful.
        assert_eq!(s.wasteful(2 * 170 + 5, 170), 1);
        assert_eq!(s.wasteful(3 * 170, 170), 0);
        assert_eq!(s.wasteful(0, 170), 3);
        assert_eq!(IoStats::default().wasteful(0, 170), 0);
    }

    #[test]
    fn display_contains_all_counters() {
        let s = IoStats {
            reads: 1,
            writes: 2,
            cache_hits: 3,
            allocs: 4,
            frees: 5,
            pool_evictions: 6,
            retries: 7,
            failovers: 8,
            repairs: 9,
            quarantined: 10,
        }
        .to_string();
        for needle in [
            "reads=1",
            "writes=2",
            "hits=3",
            "allocs=4",
            "frees=5",
            "evictions=6",
            "retries=7",
            "failovers=8",
            "repairs=9",
            "quarantined=10",
            "hit_ratio=0.75",
        ] {
            assert!(s.contains(needle), "{s} missing {needle}");
        }
    }
}
