//! Error type shared by all storage operations.

use std::fmt;

use crate::store::PageId;

/// Result alias used throughout the storage layer.
pub type Result<T> = std::result::Result<T, StoreError>;

/// Errors raised by the page store and structures built on it.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying operating-system I/O failure (file backend only).
    Io(std::io::Error),
    /// A page id was used that has never been allocated or was freed.
    PageNotAllocated(PageId),
    /// Stored checksum did not match page contents — torn or corrupt write.
    ChecksumMismatch(PageId),
    /// A write payload was larger than the configured page size.
    PayloadTooLarge {
        /// Size of the rejected payload in bytes.
        payload: usize,
        /// Configured usable page size in bytes.
        page_size: usize,
    },
    /// A page-layout decode failed (truncated or malformed on-page data).
    Corrupt(String),
    /// The page exhausted its transient-fault retry budget and is held in
    /// the store's quarantine set; access is refused until the backend is
    /// repaired (e.g. via [`crate::PageStore::scrub`]) or the set is
    /// cleared with [`crate::PageStore::clear_quarantine`].
    Quarantined(PageId),
    /// A partial (torn) trailing write was detected in a backing file: the
    /// file ends mid-frame or mid-record. A WAL-backed open recovers by
    /// truncating the tail and replaying the log
    /// ([`crate::PageStore::file_durable`]); without a log the damage is
    /// surfaced rather than silently dropped.
    TornWrite {
        /// Complete frames (or log records) preceding the torn tail.
        complete: u64,
        /// Dangling bytes beyond the last complete unit.
        trailing_bytes: u64,
    },
    /// The simulated-crash harness ([`crate::crash`]) killed the store at
    /// an injected crash point; all further I/O on this store fails with
    /// this error until the surviving media are reopened and recovered.
    Crashed,
    /// A whole-store physical operation (e.g. [`crate::repack`]) was asked
    /// to run against a durable store whose no-steal dirty table is not
    /// empty. The dirty table holds logged-but-not-checkpointed page
    /// images; reading pages around it would mix committed and uncommitted
    /// bytes, and a relocated copy could not be replayed onto by recovery.
    /// Quiesce first: `commit_with` (or `sync`) then `checkpoint`.
    DirtyStore {
        /// Pages currently held in the no-steal dirty table.
        dirty_pages: u64,
    },
    /// An `as_of` request named an epoch outside the retained window of a
    /// [`crate::VersionedStore`] (either never installed or already
    /// trimmed by the retention policy).
    VersionNotRetained {
        /// The epoch seq the caller asked for.
        requested: u64,
        /// Oldest retained epoch seq.
        oldest: u64,
        /// Current (newest) epoch seq.
        current: u64,
    },
}

impl StoreError {
    /// True for failures worth retrying: the operation may succeed if
    /// re-issued (interrupted/timed-out I/O, including the transient
    /// faults injected by [`crate::backend::FaultBackend`]).
    ///
    /// Everything else is *permanent* for the retry layer: allocation and
    /// size errors are caller bugs, checksum/layout corruption will not
    /// heal by re-reading the same replica (mirror failover handles those
    /// below the store), and quarantine is by definition sticky.
    pub fn is_transient(&self) -> bool {
        match self {
            StoreError::Io(e) => matches!(
                e.kind(),
                std::io::ErrorKind::Interrupted
                    | std::io::ErrorKind::TimedOut
                    | std::io::ErrorKind::WouldBlock
            ),
            _ => false,
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::PageNotAllocated(id) => write!(f, "page {id:?} is not allocated"),
            StoreError::ChecksumMismatch(id) => write!(f, "checksum mismatch on page {id:?}"),
            StoreError::PayloadTooLarge { payload, page_size } => {
                write!(f, "payload of {payload} bytes exceeds page size {page_size}")
            }
            StoreError::Corrupt(msg) => write!(f, "corrupt page layout: {msg}"),
            StoreError::Quarantined(id) => {
                write!(f, "page {id:?} is quarantined after exhausting its retry budget")
            }
            StoreError::TornWrite { complete, trailing_bytes } => write!(
                f,
                "torn trailing write: {trailing_bytes} dangling bytes after {complete} \
                 complete units (recoverable via WAL replay)"
            ),
            StoreError::Crashed => write!(f, "store killed at an injected crash point"),
            StoreError::DirtyStore { dirty_pages } => write!(
                f,
                "store has {dirty_pages} uncheckpointed dirty pages; quiesce \
                 (commit + checkpoint) before physical reorganization"
            ),
            StoreError::VersionNotRetained { requested, oldest, current } => write!(
                f,
                "version {requested} is not retained (retained range {oldest}..={current})"
            ),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::PageId;

    #[test]
    fn display_variants_are_informative() {
        let e = StoreError::PageNotAllocated(PageId(7));
        assert!(e.to_string().contains('7'));
        let e = StoreError::PayloadTooLarge { payload: 5000, page_size: 4096 };
        assert!(e.to_string().contains("5000"));
        assert!(e.to_string().contains("4096"));
        let e = StoreError::Corrupt("bad header".into());
        assert!(e.to_string().contains("bad header"));
    }

    #[test]
    fn transient_classification() {
        use std::io::ErrorKind;
        for kind in [ErrorKind::Interrupted, ErrorKind::TimedOut, ErrorKind::WouldBlock] {
            assert!(StoreError::Io(std::io::Error::new(kind, "glitch")).is_transient());
        }
        assert!(!StoreError::Io(std::io::Error::other("dead disk")).is_transient());
        assert!(!StoreError::ChecksumMismatch(PageId(1)).is_transient());
        assert!(!StoreError::PageNotAllocated(PageId(1)).is_transient());
        assert!(!StoreError::Corrupt("x".into()).is_transient());
        assert!(!StoreError::Quarantined(PageId(1)).is_transient());
        assert!(!StoreError::TornWrite { complete: 3, trailing_bytes: 17 }.is_transient());
        assert!(!StoreError::Crashed.is_transient());
        assert!(!StoreError::DirtyStore { dirty_pages: 2 }.is_transient());
        assert!(!StoreError::VersionNotRetained { requested: 9, oldest: 3, current: 7 }
            .is_transient());
    }

    #[test]
    fn version_not_retained_display_carries_the_window() {
        let e = StoreError::VersionNotRetained { requested: 2, oldest: 5, current: 9 };
        for needle in ["2", "5", "9"] {
            assert!(e.to_string().contains(needle), "{e}");
        }
    }

    #[test]
    fn dirty_store_display_carries_count_and_remedy() {
        let e = StoreError::DirtyStore { dirty_pages: 5 };
        assert!(e.to_string().contains('5'), "{e}");
        assert!(e.to_string().contains("checkpoint"), "{e}");
    }

    #[test]
    fn torn_write_display_carries_both_lengths() {
        let e = StoreError::TornWrite { complete: 12, trailing_bytes: 300 };
        assert!(e.to_string().contains("12"), "{e}");
        assert!(e.to_string().contains("300"), "{e}");
        assert!(e.to_string().contains("torn"), "{e}");
    }

    #[test]
    fn quarantined_display_names_the_page() {
        let e = StoreError::Quarantined(PageId(9));
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains("quarantin"));
    }

    #[test]
    fn io_error_converts_and_sources() {
        let ioe = std::io::Error::other("boom");
        let e: StoreError = ioe.into();
        assert!(e.to_string().contains("boom"));
        use std::error::Error;
        assert!(e.source().is_some());
    }
}
