//! Clock-replacement buffer pool.
//!
//! The pool sits between logical page operations and the backend. It is
//! optional: the paper's strict I/O model is the pool-less configuration,
//! where every logical access is a backend transfer. With a pool, repeated
//! hits on hot pages (e.g. the skeletal B-tree root) become free, modelling
//! a real DBMS buffer manager.

use std::collections::HashMap;

use crate::error::Result;
use crate::store::PageId;

struct Slot {
    id: PageId,
    data: Box<[u8]>,
    dirty: bool,
    referenced: bool,
}

/// Fixed-capacity page cache with CLOCK (second-chance) eviction.
pub struct BufferPool {
    capacity: usize,
    slots: Vec<Option<Slot>>,
    map: HashMap<u64, usize>,
    hand: usize,
}

impl BufferPool {
    /// Creates a pool holding up to `capacity` pages. `capacity` must be
    /// nonzero (a zero-capacity configuration should omit the pool
    /// entirely).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool capacity must be nonzero");
        BufferPool {
            capacity,
            slots: (0..capacity).map(|_| None).collect(),
            map: HashMap::with_capacity(capacity),
            hand: 0,
        }
    }

    /// Number of pages currently resident.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no pages are resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up a resident page, marking it recently used.
    pub fn get(&mut self, id: PageId) -> Option<&[u8]> {
        let &slot_idx = self.map.get(&id.0)?;
        let slot = self.slots[slot_idx].as_mut().expect("mapped slot must be occupied");
        slot.referenced = true;
        Some(&slot.data)
    }

    /// Updates a resident page in place, marking it dirty. Returns `false`
    /// if the page is not resident.
    pub fn update(&mut self, id: PageId, data: &[u8]) -> bool {
        let Some(&slot_idx) = self.map.get(&id.0) else { return false };
        let slot = self.slots[slot_idx].as_mut().expect("mapped slot must be occupied");
        slot.data.copy_from_slice(data);
        slot.dirty = true;
        slot.referenced = true;
        true
    }

    /// Inserts a page, evicting a victim if full. `write_back` is invoked
    /// with the victim's id and bytes when a dirty page is evicted.
    pub fn insert(
        &mut self,
        id: PageId,
        data: Box<[u8]>,
        dirty: bool,
        mut write_back: impl FnMut(PageId, &[u8]) -> Result<()>,
    ) -> Result<()> {
        if self.update_or_replace(id, &data, dirty) {
            return Ok(());
        }
        let victim_idx = self.find_victim();
        if let Some(victim) = self.slots[victim_idx].take() {
            self.map.remove(&victim.id.0);
            if victim.dirty {
                write_back(victim.id, &victim.data)?;
            }
        }
        self.slots[victim_idx] = Some(Slot { id, data, dirty, referenced: true });
        self.map.insert(id.0, victim_idx);
        Ok(())
    }

    fn update_or_replace(&mut self, id: PageId, data: &[u8], dirty: bool) -> bool {
        let Some(&slot_idx) = self.map.get(&id.0) else { return false };
        let slot = self.slots[slot_idx].as_mut().expect("mapped slot must be occupied");
        slot.data.copy_from_slice(data);
        slot.dirty = slot.dirty || dirty;
        slot.referenced = true;
        true
    }

    fn find_victim(&mut self) -> usize {
        // Prefer an empty slot (only possible before first fill).
        if self.map.len() < self.capacity {
            if let Some(idx) = self.slots.iter().position(|s| s.is_none()) {
                return idx;
            }
        }
        loop {
            let idx = self.hand;
            self.hand = (self.hand + 1) % self.capacity;
            match &mut self.slots[idx] {
                Some(slot) if slot.referenced => slot.referenced = false,
                _ => return idx,
            }
        }
    }

    /// Drops a page from the pool without write-back (used by `free`).
    pub fn discard(&mut self, id: PageId) {
        if let Some(slot_idx) = self.map.remove(&id.0) {
            self.slots[slot_idx] = None;
        }
    }

    /// Writes every dirty resident page through `write_back` and marks them
    /// clean. Pages stay resident.
    pub fn flush(&mut self, mut write_back: impl FnMut(PageId, &[u8]) -> Result<()>) -> Result<()> {
        for slot in self.slots.iter_mut().flatten() {
            if slot.dirty {
                write_back(slot.id, &slot.data)?;
                slot.dirty = false;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bx(fill: u8, len: usize) -> Box<[u8]> {
        vec![fill; len].into_boxed_slice()
    }

    #[test]
    fn hit_after_insert() {
        let mut pool = BufferPool::new(2);
        pool.insert(PageId(1), bx(7, 4), false, |_, _| Ok(())).unwrap();
        assert_eq!(pool.get(PageId(1)).unwrap(), &[7, 7, 7, 7]);
        assert!(pool.get(PageId(2)).is_none());
    }

    #[test]
    fn eviction_writes_back_dirty_victims_only() {
        let mut pool = BufferPool::new(2);
        let mut written: Vec<u64> = Vec::new();
        pool.insert(PageId(1), bx(1, 4), true, |_, _| Ok(())).unwrap();
        pool.insert(PageId(2), bx(2, 4), false, |_, _| Ok(())).unwrap();
        // Insert a third page: one of the two must be evicted. Touch neither
        // so the clock can pick either; record what gets written back.
        pool.insert(PageId(3), bx(3, 4), false, |id, _| {
            written.push(id.0);
            Ok(())
        })
        .unwrap();
        // Page 2 was clean: if it was the victim nothing is written.
        // Page 1 was dirty: if it was the victim it must be written.
        assert_eq!(pool.len(), 2);
        if pool.get(PageId(1)).is_none() {
            assert_eq!(written, vec![1]);
        } else {
            assert!(written.is_empty());
        }
    }

    #[test]
    fn update_marks_dirty_and_flush_cleans() {
        let mut pool = BufferPool::new(2);
        pool.insert(PageId(9), bx(0, 4), false, |_, _| Ok(())).unwrap();
        assert!(pool.update(PageId(9), &[5, 5, 5, 5]));
        let mut flushed = Vec::new();
        pool.flush(|id, data| {
            flushed.push((id.0, data.to_vec()));
            Ok(())
        })
        .unwrap();
        assert_eq!(flushed, vec![(9, vec![5, 5, 5, 5])]);
        // second flush: nothing dirty
        let mut flushed2 = Vec::new();
        pool.flush(|id, _| {
            flushed2.push(id.0);
            Ok(())
        })
        .unwrap();
        assert!(flushed2.is_empty());
    }

    #[test]
    fn discard_removes_without_writeback() {
        let mut pool = BufferPool::new(2);
        pool.insert(PageId(4), bx(1, 4), true, |_, _| Ok(())).unwrap();
        pool.discard(PageId(4));
        assert!(pool.get(PageId(4)).is_none());
        let mut flushed = 0;
        pool.flush(|_, _| {
            flushed += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(flushed, 0);
    }

    #[test]
    fn clock_gives_second_chance_to_referenced_pages() {
        let mut pool = BufferPool::new(3);
        for id in 1..=3u64 {
            pool.insert(PageId(id), bx(id as u8, 4), false, |_, _| Ok(())).unwrap();
        }
        // First eviction sweep clears every reference bit and evicts one
        // page (FIFO from the hand when all are referenced).
        pool.insert(PageId(4), bx(4, 4), false, |_, _| Ok(())).unwrap();
        // Find a survivor among the original pages, reference it, and force
        // another eviction: the referenced survivor must be spared while an
        // unreferenced page is chosen.
        let hot = (1..=3u64).find(|&id| pool.get(PageId(id)).is_some()).unwrap();
        pool.insert(PageId(5), bx(5, 4), false, |_, _| Ok(())).unwrap();
        assert!(
            pool.get(PageId(hot)).is_some(),
            "referenced page {hot} should get a second chance"
        );
    }

    #[test]
    fn reinsert_same_page_does_not_duplicate() {
        let mut pool = BufferPool::new(4);
        pool.insert(PageId(1), bx(1, 4), false, |_, _| Ok(())).unwrap();
        pool.insert(PageId(1), bx(2, 4), true, |_, _| Ok(())).unwrap();
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.get(PageId(1)).unwrap(), &[2, 2, 2, 2]);
    }
}
