//! Sharded clock-replacement buffer pool with zero-copy reads.
//!
//! The pool sits between logical page operations and the backend. It is
//! optional: the paper's strict I/O model is the pool-less configuration,
//! where every logical access is a backend transfer. With a pool, repeated
//! hits on hot pages (e.g. the skeletal B-tree root) become free, modelling
//! a real DBMS buffer manager.
//!
//! ## Sharding
//!
//! [`ShardedPool`] splits its frame budget over N independent
//! [`BufferPool`] CLOCK rings (N a power of two), each behind its own
//! mutex. A page's shard is fixed by a Fibonacci hash of its [`PageId`], so
//! concurrent readers of distinct pages contend only when their pages
//! collide on a shard — the single global lock of the classic design is the
//! N = 1 special case. Per-shard hit/miss/eviction counters are plain
//! relaxed atomics; [`crate::PageStore`] folds them into its
//! [`crate::IoStats`] snapshot so the paper's transfer accounting stays
//! exact in pooled mode.
//!
//! ## Zero-copy hits
//!
//! Resident frames hold [`Page`] handles (`Arc<[u8]>`). A pool hit clones
//! the refcount — no payload bytes move — and a later write to the same
//! page *replaces* the slot's handle rather than mutating it, so every
//! reader keeps an immutable snapshot of the page as of its read.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use pc_sync::Mutex;

use crate::error::Result;
use crate::page::Page;
use crate::store::PageId;

struct Slot {
    id: PageId,
    data: Page,
    dirty: bool,
    referenced: bool,
}

/// Fixed-capacity page cache with CLOCK (second-chance) eviction.
///
/// One shard of a [`ShardedPool`]; usable standalone as the classic
/// single-lock buffer pool.
pub struct BufferPool {
    capacity: usize,
    slots: Vec<Option<Slot>>,
    map: HashMap<u64, usize>,
    hand: usize,
    /// Empty slot indices. Fills and discards go through this stack, so an
    /// insert never scans `slots` looking for a hole.
    free: Vec<usize>,
}

impl BufferPool {
    /// Creates a pool holding up to `capacity` pages. `capacity` must be
    /// nonzero (a zero-capacity configuration should omit the pool
    /// entirely).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool capacity must be nonzero");
        BufferPool {
            capacity,
            slots: (0..capacity).map(|_| None).collect(),
            map: HashMap::with_capacity(capacity),
            hand: 0,
            // Reversed so pops hand out slots 0, 1, 2, … in order.
            free: (0..capacity).rev().collect(),
        }
    }

    /// Maximum number of resident pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of pages currently resident.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no pages are resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// True if `id` is resident. Does not touch the reference bit.
    pub fn contains(&self, id: PageId) -> bool {
        self.map.contains_key(&id.0)
    }

    /// Looks up a resident page, marking it recently used. A hit clones the
    /// page's `Arc` — no payload bytes are copied.
    pub fn get(&mut self, id: PageId) -> Option<Page> {
        let &slot_idx = self.map.get(&id.0)?;
        match self.slots[slot_idx].as_mut() {
            Some(slot) => {
                slot.referenced = true;
                Some(slot.data.clone())
            }
            None => {
                // A mapping to an empty slot should be unreachable, but if
                // an invariant ever breaks the pool must degrade to a miss,
                // not take the whole store down — drop the dangling entry,
                // reclaim the slot, and report "not resident".
                self.map.remove(&id.0);
                self.free.push(slot_idx);
                None
            }
        }
    }

    /// Inserts a page, evicting a victim if full; returns `true` when a
    /// resident page was evicted to make room. `write_back` is invoked with
    /// the victim's id and bytes when a dirty page is evicted.
    ///
    /// Error-path atomicity: a dirty victim is written back *before* it is
    /// displaced and before the new mapping is installed, so a failed
    /// `write_back` returns with the pool exactly as it was — the victim
    /// still resident and still dirty (no lost write), `id` still absent,
    /// and no mapping pointing at an empty slot. This is why the miss path
    /// probes the map twice instead of holding a `HashMap::entry` across
    /// the write-back. Updating a resident page swaps the slot's `Page`
    /// handle; readers holding the old handle keep their snapshot.
    pub fn insert(
        &mut self,
        id: PageId,
        data: Page,
        dirty: bool,
        mut write_back: impl FnMut(PageId, &[u8]) -> Result<()>,
    ) -> Result<bool> {
        if let Some(&slot_idx) = self.map.get(&id.0) {
            match self.slots[slot_idx].as_mut() {
                Some(slot) => {
                    slot.data = data;
                    slot.dirty |= dirty;
                    slot.referenced = true;
                    return Ok(false);
                }
                None => {
                    // Same degraded-state healing as `get`: drop the
                    // dangling mapping and fall through to a fresh insert.
                    self.map.remove(&id.0);
                    self.free.push(slot_idx);
                }
            }
        }
        let victim_idx = find_victim(&mut self.slots, &mut self.hand, &mut self.free, self.capacity);
        let evicted = if let Some(victim) = self.slots[victim_idx].take() {
            if victim.dirty {
                if let Err(e) = write_back(victim.id, &victim.data) {
                    // Put the victim back untouched; the caller sees the
                    // error and the pool has neither lost the dirty data
                    // nor half-installed the new page.
                    self.slots[victim_idx] = Some(victim);
                    return Err(e);
                }
            }
            self.map.remove(&victim.id.0);
            true
        } else {
            false
        };
        self.slots[victim_idx] = Some(Slot { id, data, dirty, referenced: true });
        self.map.insert(id.0, victim_idx);
        Ok(evicted)
    }

    /// Drops a page from the pool without write-back (used by `free`).
    pub fn discard(&mut self, id: PageId) {
        if let Some(slot_idx) = self.map.remove(&id.0) {
            self.slots[slot_idx] = None;
            self.free.push(slot_idx);
        }
    }

    /// Writes every dirty resident page through `write_back` and marks them
    /// clean. Pages stay resident.
    pub fn flush(&mut self, mut write_back: impl FnMut(PageId, &[u8]) -> Result<()>) -> Result<()> {
        for slot in self.slots.iter_mut().flatten() {
            if slot.dirty {
                write_back(slot.id, &slot.data)?;
                slot.dirty = false;
            }
        }
        Ok(())
    }
}

/// CLOCK victim selection. Free-standing (rather than a method) so the
/// borrows of `slots`/`hand`/`free` stay disjoint from `map`'s inside
/// [`BufferPool::insert`].
fn find_victim(
    slots: &mut [Option<Slot>],
    hand: &mut usize,
    free: &mut Vec<usize>,
    capacity: usize,
) -> usize {
    if let Some(idx) = free.pop() {
        return idx;
    }
    loop {
        let idx = *hand;
        *hand += 1;
        if *hand == capacity {
            *hand = 0;
        }
        match &mut slots[idx] {
            Some(slot) if slot.referenced => slot.referenced = false,
            _ => return idx,
        }
    }
}

/// Snapshot of one shard's counters (see [`ShardedPool::shard_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Logical reads served from this shard's resident frames.
    pub hits: u64,
    /// Logical reads that had to fetch from the backend.
    pub misses: u64,
    /// Resident frames evicted to make room (dirty or clean).
    pub evictions: u64,
}

struct Shard {
    pool: Mutex<BufferPool>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// Multiplicative (Fibonacci) hash constant: ⌊2⁶⁴/φ⌋, odd, so sequential
/// page ids spray across shards instead of clustering.
const FIB_HASH: u64 = 0x9E37_79B9_7F4A_7C15;

/// A buffer pool split over independent CLOCK shards (see module docs).
pub struct ShardedPool {
    shards: Box<[Shard]>,
    /// `shard count - 1`; the shard index masks the mixed hash.
    mask: usize,
    capacity: usize,
}

impl ShardedPool {
    /// Creates a pool of `pool_pages` frames over `shards` CLOCK rings.
    /// `shards` must be a power of two and at most `pool_pages`; use
    /// [`ShardedPool::resolve_shards`] to turn a free-form request into a
    /// valid count. Frame budget is split evenly (remainder to the first
    /// shards), so the total is exactly `pool_pages`.
    pub fn new(pool_pages: usize, shards: usize) -> Self {
        assert!(pool_pages > 0, "buffer pool capacity must be nonzero");
        assert!(shards.is_power_of_two(), "shard count must be a power of two");
        assert!(shards <= pool_pages, "cannot have more shards than pool pages");
        let base = pool_pages / shards;
        let extra = pool_pages % shards;
        let shards: Box<[Shard]> = (0..shards)
            .map(|i| Shard {
                pool: Mutex::new(BufferPool::new(base + usize::from(i < extra))),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                evictions: AtomicU64::new(0),
            })
            .collect();
        ShardedPool { mask: shards.len() - 1, shards, capacity: pool_pages }
    }

    /// Turns a requested shard count into a valid one: rounds up to a power
    /// of two and clamps to `pool_pages`. `0` means auto — a few shards per
    /// hardware thread (capped at 64) so readers rarely collide.
    pub fn resolve_shards(requested: usize, pool_pages: usize) -> usize {
        let mut shards = match requested {
            0 => {
                let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
                (4 * cores).next_power_of_two().min(64)
            }
            n => n.next_power_of_two(),
        };
        while shards > pool_pages.max(1) {
            shards /= 2;
        }
        shards.max(1)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total frame capacity across all shards.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The shard index page `id` maps to (stable for the pool's lifetime).
    pub fn shard_of(&self, id: PageId) -> usize {
        ((id.0.wrapping_mul(FIB_HASH) >> 33) as usize) & self.mask
    }

    /// Number of pages currently resident across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.pool.lock().len()).sum()
    }

    /// True when no pages are resident.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.pool.lock().is_empty())
    }

    /// True if `id` is resident. Does not touch reference bits or counters.
    pub fn is_resident(&self, id: PageId) -> bool {
        self.shards[self.shard_of(id)].pool.lock().contains(id)
    }

    /// Reads `id` through the pool: a hit clones the resident `Arc` (zero
    /// payload copies); a miss runs `fetch` and installs the result,
    /// writing back a dirty victim via `write_back` if one is evicted.
    ///
    /// The shard lock is held across `fetch`, so a miss serializes only
    /// against accesses to the *same shard* — this is what keeps a racing
    /// write to the same page linearized, exactly as the old global lock
    /// did, without serializing the other shards.
    pub fn read_through(
        &self,
        id: PageId,
        fetch: impl FnOnce() -> Result<Page>,
        write_back: impl FnMut(PageId, &[u8]) -> Result<()>,
    ) -> Result<Page> {
        let shard = &self.shards[self.shard_of(id)];
        let mut pool = shard.pool.lock();
        if let Some(page) = pool.get(id) {
            shard.hits.fetch_add(1, Ordering::Relaxed);
            pc_obs::record_io(pc_obs::IoEvent::CacheHit);
            return Ok(page);
        }
        shard.misses.fetch_add(1, Ordering::Relaxed);
        let page = fetch()?;
        if pool.insert(id, page.clone(), false, write_back)? {
            shard.evictions.fetch_add(1, Ordering::Relaxed);
            pc_obs::record_io(pc_obs::IoEvent::PoolEvict);
        }
        Ok(page)
    }

    /// Installs `data` as the dirty contents of `id`, deferring the backend
    /// write until eviction or [`ShardedPool::flush`].
    pub fn write(
        &self,
        id: PageId,
        data: Page,
        write_back: impl FnMut(PageId, &[u8]) -> Result<()>,
    ) -> Result<()> {
        let shard = &self.shards[self.shard_of(id)];
        if shard.pool.lock().insert(id, data, true, write_back)? {
            shard.evictions.fetch_add(1, Ordering::Relaxed);
            pc_obs::record_io(pc_obs::IoEvent::PoolEvict);
        }
        Ok(())
    }

    /// Drops a page from its shard without write-back (used by `free`).
    pub fn discard(&self, id: PageId) {
        self.shards[self.shard_of(id)].pool.lock().discard(id);
    }

    /// Writes every dirty resident page through `write_back` and marks them
    /// clean, one shard at a time in shard order. Pages stay resident.
    pub fn flush(&self, mut write_back: impl FnMut(PageId, &[u8]) -> Result<()>) -> Result<()> {
        for shard in self.shards.iter() {
            shard.pool.lock().flush(&mut write_back)?;
        }
        Ok(())
    }

    /// Total pool hits across shards.
    pub fn hits(&self) -> u64 {
        self.shards.iter().map(|s| s.hits.load(Ordering::Relaxed)).sum()
    }

    /// Total evictions across shards.
    pub fn evictions(&self) -> u64 {
        self.shards.iter().map(|s| s.evictions.load(Ordering::Relaxed)).sum()
    }

    /// Per-shard counter snapshot, index-aligned with [`ShardedPool::shard_of`].
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|s| ShardStats {
                hits: s.hits.load(Ordering::Relaxed),
                misses: s.misses.load(Ordering::Relaxed),
                evictions: s.evictions.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Zeroes all per-shard counters (resident pages are untouched).
    pub fn reset_stats(&self) {
        for s in self.shards.iter() {
            s.hits.store(0, Ordering::Relaxed);
            s.misses.store(0, Ordering::Relaxed);
            s.evictions.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pg(fill: u8, len: usize) -> Page {
        Page::from(vec![fill; len])
    }

    #[test]
    fn hit_after_insert() {
        let mut pool = BufferPool::new(2);
        pool.insert(PageId(1), pg(7, 4), false, |_, _| Ok(())).unwrap();
        assert_eq!(&pool.get(PageId(1)).unwrap()[..], &[7, 7, 7, 7]);
        assert!(pool.get(PageId(2)).is_none());
    }

    #[test]
    fn hits_clone_the_same_buffer() {
        let mut pool = BufferPool::new(2);
        pool.insert(PageId(1), pg(7, 4), false, |_, _| Ok(())).unwrap();
        let a = pool.get(PageId(1)).unwrap();
        let b = pool.get(PageId(1)).unwrap();
        assert!(a.ptr_eq(&b), "a pool hit must not copy page bytes");
    }

    #[test]
    fn eviction_writes_back_dirty_victims_only() {
        let mut pool = BufferPool::new(2);
        let mut written: Vec<u64> = Vec::new();
        assert!(!pool.insert(PageId(1), pg(1, 4), true, |_, _| Ok(())).unwrap());
        assert!(!pool.insert(PageId(2), pg(2, 4), false, |_, _| Ok(())).unwrap());
        // Insert a third page: one of the two must be evicted. Touch neither
        // so the clock can pick either; record what gets written back.
        assert!(pool
            .insert(PageId(3), pg(3, 4), false, |id, _| {
                written.push(id.0);
                Ok(())
            })
            .unwrap());
        // Page 2 was clean: if it was the victim nothing is written.
        // Page 1 was dirty: if it was the victim it must be written.
        assert_eq!(pool.len(), 2);
        if pool.get(PageId(1)).is_none() {
            assert_eq!(written, vec![1]);
        } else {
            assert!(written.is_empty());
        }
    }

    #[test]
    fn dirty_insert_then_flush_cleans() {
        let mut pool = BufferPool::new(2);
        pool.insert(PageId(9), pg(0, 4), false, |_, _| Ok(())).unwrap();
        pool.insert(PageId(9), pg(5, 4), true, |_, _| Ok(())).unwrap();
        let mut flushed = Vec::new();
        pool.flush(|id, data| {
            flushed.push((id.0, data.to_vec()));
            Ok(())
        })
        .unwrap();
        assert_eq!(flushed, vec![(9, vec![5, 5, 5, 5])]);
        // second flush: nothing dirty
        let mut flushed2 = Vec::new();
        pool.flush(|id, _| {
            flushed2.push(id.0);
            Ok(())
        })
        .unwrap();
        assert!(flushed2.is_empty());
    }

    #[test]
    fn discard_removes_without_writeback_and_recycles_the_slot() {
        let mut pool = BufferPool::new(2);
        pool.insert(PageId(4), pg(1, 4), true, |_, _| Ok(())).unwrap();
        pool.insert(PageId(5), pg(2, 4), true, |_, _| Ok(())).unwrap();
        pool.discard(PageId(4));
        assert!(pool.get(PageId(4)).is_none());
        let mut flushed = 0;
        pool.flush(|_, _| {
            flushed += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(flushed, 1, "only page 5 is still resident+dirty");
        // The freed slot is reused: inserting a new page evicts nothing.
        assert!(!pool.insert(PageId(6), pg(3, 4), false, |_, _| Ok(())).unwrap());
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn clock_gives_second_chance_to_referenced_pages() {
        let mut pool = BufferPool::new(3);
        for id in 1..=3u64 {
            pool.insert(PageId(id), pg(id as u8, 4), false, |_, _| Ok(())).unwrap();
        }
        // First eviction sweep clears every reference bit and evicts one
        // page (FIFO from the hand when all are referenced).
        pool.insert(PageId(4), pg(4, 4), false, |_, _| Ok(())).unwrap();
        // Find a survivor among the original pages, reference it, and force
        // another eviction: the referenced survivor must be spared while an
        // unreferenced page is chosen.
        let hot = (1..=3u64).find(|&id| pool.get(PageId(id)).is_some()).unwrap();
        pool.insert(PageId(5), pg(5, 4), false, |_, _| Ok(())).unwrap();
        assert!(
            pool.get(PageId(hot)).is_some(),
            "referenced page {hot} should get a second chance"
        );
    }

    #[test]
    fn failed_write_back_leaves_the_pool_intact() {
        let mut pool = BufferPool::new(1);
        pool.insert(PageId(1), pg(1, 4), true, |_, _| Ok(())).unwrap();
        // Evicting the dirty page fails at the backend: the insert must
        // error out with page 1 still resident, still dirty, and page 2
        // nowhere in the pool — no data loss, no dangling mapping.
        let err = pool.insert(PageId(2), pg(2, 4), false, |_, _| {
            Err(crate::StoreError::Io(std::io::Error::other("disk on fire")))
        });
        assert!(err.is_err());
        assert_eq!(pool.len(), 1);
        assert_eq!(&pool.get(PageId(1)).unwrap()[..], &[1, 1, 1, 1]);
        assert!(pool.get(PageId(2)).is_none());
        let mut flushed = Vec::new();
        pool.flush(|id, _| {
            flushed.push(id.0);
            Ok(())
        })
        .unwrap();
        assert_eq!(flushed, vec![1], "the dirty victim kept its dirty bit");
        // Once the backend recovers, the same insert goes through.
        assert!(pool.insert(PageId(2), pg(2, 4), false, |_, _| Ok(())).unwrap());
        assert_eq!(&pool.get(PageId(2)).unwrap()[..], &[2, 2, 2, 2]);
    }

    #[test]
    fn dangling_mapping_heals_instead_of_panicking() {
        // Regression for the two `expect("mapped slot must be occupied")`
        // unwinds: force the broken invariant directly (map entry pointing
        // at an empty slot) and check both access paths degrade cleanly.
        let mut pool = BufferPool::new(2);
        pool.insert(PageId(7), pg(7, 4), false, |_, _| Ok(())).unwrap();
        let idx = pool.map[&7];
        pool.slots[idx] = None; // simulate the torn state
        assert!(pool.get(PageId(7)).is_none(), "degrades to a miss");
        assert!(!pool.map.contains_key(&7), "dangling entry dropped");
        // Break it again for the insert path (undoing the first heal's
        // slot reclaim so the torn state is exactly "mapped but empty").
        pool.free.retain(|&s| s != idx);
        pool.slots[idx] = None;
        pool.map.insert(7, idx);
        pool.insert(PageId(7), pg(8, 4), false, |_, _| Ok(())).unwrap();
        assert_eq!(&pool.get(PageId(7)).unwrap()[..], &[8, 8, 8, 8]);
        // The pool is fully functional afterwards.
        pool.insert(PageId(9), pg(9, 4), false, |_, _| Ok(())).unwrap();
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn reinsert_same_page_does_not_duplicate() {
        let mut pool = BufferPool::new(4);
        pool.insert(PageId(1), pg(1, 4), false, |_, _| Ok(())).unwrap();
        pool.insert(PageId(1), pg(2, 4), true, |_, _| Ok(())).unwrap();
        assert_eq!(pool.len(), 1);
        assert_eq!(&pool.get(PageId(1)).unwrap()[..], &[2, 2, 2, 2]);
    }

    #[test]
    fn resolve_shards_is_a_clamped_power_of_two() {
        assert_eq!(ShardedPool::resolve_shards(1, 1024), 1);
        assert_eq!(ShardedPool::resolve_shards(3, 1024), 4);
        assert_eq!(ShardedPool::resolve_shards(16, 1024), 16);
        // Clamped: never more shards than frames.
        assert_eq!(ShardedPool::resolve_shards(64, 8), 8);
        assert_eq!(ShardedPool::resolve_shards(64, 3), 2);
        assert_eq!(ShardedPool::resolve_shards(64, 1), 1);
        // Auto mode picks something valid.
        let auto = ShardedPool::resolve_shards(0, 256);
        assert!(auto.is_power_of_two() && auto <= 256);
        assert_eq!(ShardedPool::resolve_shards(0, 2), 2);
    }

    #[test]
    fn sharded_capacity_splits_exactly() {
        // 10 frames over 4 shards: 3+3+2+2.
        let pool = ShardedPool::new(10, 4);
        assert_eq!(pool.capacity(), 10);
        assert_eq!(pool.shard_count(), 4);
        let caps: usize = pool.shards.iter().map(|s| s.pool.lock().capacity()).sum();
        assert_eq!(caps, 10);
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        let pool = ShardedPool::new(64, 8);
        for id in 0..1000u64 {
            let s = pool.shard_of(PageId(id));
            assert!(s < 8);
            assert_eq!(s, pool.shard_of(PageId(id)), "shard map must be deterministic");
        }
        // The Fibonacci hash must actually spread sequential ids.
        let mut seen = [false; 8];
        for id in 0..64u64 {
            seen[pool.shard_of(PageId(id))] = true;
        }
        assert!(seen.iter().all(|&s| s), "sequential ids should touch every shard");
    }

    #[test]
    fn single_shard_pool_maps_everything_to_shard_zero() {
        let pool = ShardedPool::new(4, 1);
        for id in [0u64, 1, 17, u64::MAX - 1] {
            assert_eq!(pool.shard_of(PageId(id)), 0);
        }
    }

    #[test]
    fn read_through_counts_hits_misses_evictions() {
        let pool = ShardedPool::new(2, 1);
        let fetch = || Ok(Page::from(vec![9u8; 4]));
        for id in [1u64, 2, 3] {
            pool.read_through(PageId(id), fetch, |_, _| Ok(())).unwrap();
        }
        // Third fill evicted one of the first two.
        let resident = [1u64, 2].iter().filter(|&&id| pool.is_resident(PageId(id))).count();
        assert_eq!(resident, 1);
        // Hit on the survivor.
        let hot = if pool.is_resident(PageId(1)) { 1 } else { 2 };
        pool.read_through(PageId(hot), || unreachable!("resident page must not fetch"), |_, _| {
            Ok(())
        })
        .unwrap();
        let s = &pool.shard_stats()[0];
        assert_eq!((s.hits, s.misses, s.evictions), (1, 3, 1));
        pool.reset_stats();
        assert_eq!(pool.shard_stats()[0], ShardStats::default());
    }
}
