//! Partial persistence: epochs, copy-on-write page mapping, and pinned
//! snapshots — so readers never block on writers.
//!
//! The paper's Thm 5.1 buffering (PR 5's serve batcher) hides update cost
//! behind batching, but every dynamic target still takes one lock per
//! batch: readers stall behind writers. Brodal/Rysgaard/Svenning
//! ("Buffered Partially-Persistent External-Memory Search Trees",
//! PAPERS.md) show the optimal external-memory answer is to combine that
//! buffering with *partial persistence*: updates produce a new immutable
//! version, queries pin one version and proceed untouched. This module is
//! that layer for the page store.
//!
//! ## Model
//!
//! A [`VersionedStore`] wraps an `Arc<PageStore>` and maintains a sequence
//! of **epochs**. Each epoch is an immutable logical→physical page map
//! (plus opaque caller metadata, e.g. the serve layer's target
//! descriptors). Structures keep using plain [`PageId`]s; those ids are
//! *logical* names, and the epoch map records the exceptions where a
//! page's current bytes live somewhere other than its own slot (identity
//! is implied for unmapped ids, so the map stays proportional to pages
//! rewritten since versioning began, not to the structure size).
//!
//! * **Apply sessions** ([`VersionedStore::begin_apply`]): a single writer
//!   thread opens a session; while it is active, every
//!   [`PageStore::write`] to a frozen page is transparently redirected
//!   copy-on-write to a freshly allocated physical page, every
//!   [`PageStore::free`] of a frozen page is deferred (retired, not
//!   returned to the allocator), and reads resolve through the pending
//!   remap. [`ApplyGuard::install`] publishes the batch as the next epoch;
//!   dropping the guard instead aborts and rolls back (fresh pages are
//!   freed, the current epoch never changed).
//! * **Snapshots** ([`VersionedStore::snapshot`] /
//!   [`VersionedStore::snapshot_at`]): pin an epoch. A pinned snapshot's
//!   [`Snapshot::enter`] guard makes the calling thread's reads resolve
//!   through that epoch's map — with **no exclusive lock anywhere on the
//!   path** (the thread-local map handle is pre-pinned; the store's
//!   allocation table and `MemBackend` take shared reads only), which is
//!   what the `snapshot_semantics` suite pins with
//!   `pc_sync::exclusive_acquisitions`.
//! * **GC**: pages superseded at epoch `N` are *retired*, tagged `N`, and
//!   reclaimed only once every retained epoch has seq ≥ `N` — retention is
//!   bounded by [`VersionConfig::retain`], but a pinned epoch is never
//!   trimmed, so GC can never reclaim a page a live snapshot can reach.
//!
//! ## Name leases
//!
//! Logical ids and physical slots share the base allocator's namespace.
//! When logical page `L`'s bytes move to slot `P`, slot `L` must not be
//! recycled while the *name* `L` is still live — a later `alloc()`
//! handing `L` to an unrelated structure would collide with the mapping.
//! So a remapped page's original slot is kept allocated as a **name
//! lease** and is only retired when the structure frees `L` itself. The
//! cost is one idle slot per live remapped page; the benefit is that the
//! allocator can never hand out a live logical name.
//!
//! ## Durability
//!
//! On a durable store, [`ApplyGuard::install`] frames the caller's commit
//! metadata with the new epoch's seq, full map, and pending retirement
//! queue ([`encode_version_meta`]), and group-commits it — so crash
//! recovery's `last_commit_meta` *is* the epoch. [`VersionedStore::open`]
//! decodes it, resumes from exactly the last committed epoch, and frees
//! the now-orphaned retirement queue (history is memory-only; only the
//! current epoch survives a crash). A kill mid-install loses only the
//! uncommitted CoW pages, which recovery discards — the previous epoch
//! remains the visible version, bit-identical.

use std::any::Any;
use std::cell::RefCell;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

use pc_sync::{Mutex, RwLock};

use crate::error::{Result, StoreError};
use crate::store::{PageId, PageStore};

// ---------------------------------------------------------------------------
// Thread-local session state and the store hooks
// ---------------------------------------------------------------------------

struct ApplyCtx {
    store: usize,
    map: Arc<HashMap<u64, u64>>,
    /// Pending remap: `Some(p)` = logical id now lives at `p`;
    /// `None` = drop any inherited mapping (identity / dead name).
    delta: HashMap<u64, Option<u64>>,
    /// Physical pages allocated inside this session. Never visible to any
    /// epoch, so they are written in place and really freed.
    fresh: HashSet<u64>,
    /// Physical slots superseded by this session, to retire at install.
    retired: Vec<u64>,
}

enum Ctx {
    Snapshot { store: usize, map: Arc<HashMap<u64, u64>> },
    Apply(ApplyCtx),
}

thread_local! {
    static ACTIVE: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

fn resolve(map: &HashMap<u64, u64>, delta: &HashMap<u64, Option<u64>>, id: u64) -> u64 {
    match delta.get(&id) {
        Some(Some(p)) => *p,
        Some(None) => id,
        None => map.get(&id).copied().unwrap_or(id),
    }
}

/// Read-path hook: logical→physical translation for the calling thread's
/// pinned snapshot or apply session (identity otherwise).
pub(crate) fn translate(store: usize, id: PageId) -> PageId {
    ACTIVE.with(|c| match &*c.borrow() {
        Some(Ctx::Snapshot { store: s, map }) if *s == store => {
            PageId(map.get(&id.0).copied().unwrap_or(id.0))
        }
        Some(Ctx::Apply(a)) if a.store == store => PageId(resolve(&a.map, &a.delta, id.0)),
        _ => PageId(id.0),
    })
}

pub(crate) enum WriteRoute {
    /// Write this physical page in place.
    Direct(PageId),
    /// The target is frozen: allocate a fresh page, then [`note_cow`].
    Cow,
}

/// Write-path hook: decides whether a logical write goes in place (no
/// session, or the page is already a fresh copy) or needs copy-on-write.
pub(crate) fn write_route(store: usize, id: PageId) -> WriteRoute {
    ACTIVE.with(|c| match &*c.borrow() {
        Some(Ctx::Apply(a)) if a.store == store => {
            let phys = resolve(&a.map, &a.delta, id.0);
            if a.fresh.contains(&phys) {
                WriteRoute::Direct(PageId(phys))
            } else {
                WriteRoute::Cow
            }
        }
        _ => WriteRoute::Direct(id),
    })
}

/// Records a copy-on-write: logical `id` now lives at freshly allocated
/// `fresh`; the superseded physical page is retired (unless it is the
/// logical id's own slot, which stays allocated as a name lease).
pub(crate) fn note_cow(store: usize, id: PageId, fresh: PageId) {
    ACTIVE.with(|c| {
        let mut b = c.borrow_mut();
        let Some(Ctx::Apply(a)) = &mut *b else { return };
        if a.store != store {
            return;
        }
        let old = resolve(&a.map, &a.delta, id.0);
        if old != id.0 {
            a.retired.push(old);
        }
        a.delta.insert(id.0, Some(fresh.0));
    });
}

pub(crate) enum FreeRoute {
    /// Really free this physical page.
    Direct(PageId),
    /// Frozen content: retired for GC, nothing freed now.
    Deferred,
}

/// Free-path hook. Fresh pages are really freed; frozen content is
/// deferred to epoch GC. Either way the logical name's mapping is dropped
/// from the next epoch, and a remapped name's leased slot is retired.
pub(crate) fn free_route(store: usize, id: PageId) -> FreeRoute {
    ACTIVE.with(|c| {
        let mut b = c.borrow_mut();
        let Some(Ctx::Apply(a)) = &mut *b else { return FreeRoute::Direct(id) };
        if a.store != store {
            return FreeRoute::Direct(id);
        }
        let phys = resolve(&a.map, &a.delta, id.0);
        if a.fresh.remove(&phys) {
            if phys != id.0 {
                // The fresh copy dies for real, but the name's own slot
                // still holds frozen bytes older epochs may reach.
                a.retired.push(id.0);
            }
            a.delta.insert(id.0, None);
            FreeRoute::Direct(PageId(phys))
        } else {
            a.retired.push(phys);
            if phys != id.0 {
                a.retired.push(id.0);
            }
            a.delta.insert(id.0, None);
            FreeRoute::Deferred
        }
    })
}

/// Alloc-path hook: inside a session every allocation is a fresh page; a
/// recycled slot also shadows any stale inherited mapping for its id.
pub(crate) fn note_alloc(store: usize, id: PageId) {
    ACTIVE.with(|c| {
        let mut b = c.borrow_mut();
        let Some(Ctx::Apply(a)) = &mut *b else { return };
        if a.store != store {
            return;
        }
        a.fresh.insert(id.0);
        if a.map.contains_key(&id.0) || a.delta.contains_key(&id.0) {
            a.delta.insert(id.0, None);
        }
    });
}

fn install_ctx(ctx: Ctx) {
    ACTIVE.with(|c| {
        let mut b = c.borrow_mut();
        assert!(
            b.is_none(),
            "a version context (snapshot or apply session) is already active on this thread"
        );
        *b = Some(ctx);
    });
}

fn take_apply(store: usize) -> ApplyCtx {
    ACTIVE.with(|c| {
        let mut b = c.borrow_mut();
        match b.take() {
            Some(Ctx::Apply(a)) if a.store == store => a,
            other => {
                *b = other;
                panic!("no apply session active for this store on this thread");
            }
        }
    })
}

fn clear_snapshot(store: usize) {
    ACTIVE.with(|c| {
        let mut b = c.borrow_mut();
        match b.take() {
            Some(Ctx::Snapshot { store: s, .. }) if s == store => {}
            other => *b = other,
        }
    });
}

// ---------------------------------------------------------------------------
// Epochs, snapshots, the versioned store
// ---------------------------------------------------------------------------

struct Epoch {
    seq: u64,
    map: Arc<HashMap<u64, u64>>,
    user_meta: Vec<u8>,
    pins: AtomicU64,
    /// Per-epoch cache of derived read-only artifacts (the serve layer
    /// parks one opened frozen view per target here, keyed by target
    /// index). Hits take a shared read lock only.
    cache: RwLock<HashMap<u64, Arc<dyn Any + Send + Sync>>>,
}

/// A pinned, immutable version of the store. Reads made under
/// [`Snapshot::enter`] resolve through this epoch's page map and are
/// bit-identical for the snapshot's whole lifetime, no matter how many
/// later epochs install concurrently. Dropping the snapshot releases the
/// pin (making the epoch eligible for retention trimming and GC).
pub struct Snapshot {
    base: Arc<PageStore>,
    epoch: Arc<Epoch>,
}

impl Snapshot {
    /// The pinned epoch's sequence number.
    pub fn seq(&self) -> u64 {
        self.epoch.seq
    }

    /// The opaque caller metadata installed with this epoch (the serve
    /// layer's batch seq + target descriptors).
    pub fn user_meta(&self) -> &[u8] {
        &self.epoch.user_meta
    }

    /// Makes the calling thread's reads of the underlying store resolve
    /// through this snapshot's page map until the guard drops. Panics if
    /// the thread already has a snapshot or apply session active.
    pub fn enter(&self) -> SnapshotGuard<'_> {
        let store = store_addr(&self.base);
        install_ctx(Ctx::Snapshot { store, map: self.epoch.map.clone() });
        SnapshotGuard { store, _snap: self }
    }

    /// Cached derived artifact for `key` (shared-read lookup).
    pub fn cached(&self, key: u64) -> Option<Arc<dyn Any + Send + Sync>> {
        self.epoch.cache.read().get(&key).cloned()
    }

    /// Inserts a derived artifact for `key`; first insert wins and is
    /// returned (so racing builders converge on one artifact).
    pub fn cache_put(
        &self,
        key: u64,
        value: Arc<dyn Any + Send + Sync>,
    ) -> Arc<dyn Any + Send + Sync> {
        let mut c = self.epoch.cache.write();
        c.entry(key).or_insert(value).clone()
    }
}

impl Clone for Snapshot {
    fn clone(&self) -> Self {
        self.epoch.pins.fetch_add(1, Relaxed);
        Snapshot { base: self.base.clone(), epoch: self.epoch.clone() }
    }
}

impl Drop for Snapshot {
    fn drop(&mut self) {
        self.epoch.pins.fetch_sub(1, Relaxed);
    }
}

/// Active thread-local read translation for a [`Snapshot`]; see
/// [`Snapshot::enter`].
pub struct SnapshotGuard<'a> {
    store: usize,
    _snap: &'a Snapshot,
}

impl Drop for SnapshotGuard<'_> {
    fn drop(&mut self) {
        clear_snapshot(self.store);
    }
}

/// Configuration for a [`VersionedStore`].
#[derive(Debug, Clone, Copy)]
pub struct VersionConfig {
    /// Upper bound on *unpinned* retained epochs (the `as_of` time-travel
    /// window). Pinned epochs are always retained regardless. Minimum 1
    /// (the current epoch is always retained).
    pub retain: usize,
}

impl Default for VersionConfig {
    fn default() -> Self {
        VersionConfig { retain: 8 }
    }
}

struct VersionState {
    /// Retained epochs, oldest front, current back. Never empty.
    epochs: VecDeque<Arc<Epoch>>,
    /// Retired physical slots awaiting GC: `(installing epoch seq, slots)`,
    /// in seq order. A group is reclaimable once every retained epoch has
    /// seq ≥ its tag.
    retired: VecDeque<(u64, Vec<u64>)>,
}

/// Point-in-time observability snapshot of a [`VersionedStore`]; the
/// `pc_version_*` exposition families render from this.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VersionMetrics {
    /// Current (newest) epoch seq.
    pub current_seq: u64,
    /// Oldest retained epoch seq (the `as_of` floor).
    pub oldest_seq: u64,
    /// Retained epoch count.
    pub retained: u64,
    /// Epochs installed over this store's lifetime.
    pub installed: u64,
    /// Superseded pages reclaimed by GC over this store's lifetime.
    pub reclaimed_pages: u64,
    /// Snapshots currently pinning an epoch.
    pub pinned: u64,
    /// Age of the oldest pinned epoch in epochs behind current (0 when
    /// nothing older than current is pinned).
    pub oldest_pin_age: u64,
}

/// The epoch manager: partial persistence over one shared [`PageStore`].
/// See the module docs for the model.
pub struct VersionedStore {
    base: Arc<PageStore>,
    state: Mutex<VersionState>,
    retain: usize,
    installed: AtomicU64,
    reclaimed: AtomicU64,
}

fn store_addr(store: &Arc<PageStore>) -> usize {
    Arc::as_ptr(store) as usize
}

impl VersionedStore {
    /// Fresh versioned view over `base` at epoch 0 (empty map), carrying
    /// `initial_user_meta` so epoch-0 snapshots can resolve frozen views.
    pub fn new(base: Arc<PageStore>, cfg: VersionConfig, initial_user_meta: &[u8]) -> Self {
        Self::with_epoch0(base, cfg, 0, HashMap::new(), initial_user_meta.to_vec(), Vec::new())
    }

    /// Reopens a versioned view from a recovered store: `recovered_meta`
    /// is the `RecoveryReport::last_commit_meta` payload. A version frame
    /// restores the exact committed epoch (seq, map, metadata) and frees
    /// its orphaned retirement queue — older epochs do not survive a
    /// crash, so every pending retiree is immediately reclaimable. A bare
    /// (legacy) payload or `None` starts at epoch 0 with that payload as
    /// the user metadata.
    pub fn open(base: Arc<PageStore>, recovered_meta: Option<&[u8]>, cfg: VersionConfig) -> Self {
        match recovered_meta.and_then(decode_version_meta) {
            Some(m) => {
                let orphans: Vec<u64> = m.retired.into_iter().flat_map(|(_, ids)| ids).collect();
                let vs = Self::with_epoch0(base, cfg, m.seq, m.map, m.user, Vec::new());
                let mut freed = 0u64;
                for p in orphans {
                    // The frees are re-logged and ride the next commit; a
                    // crash before it discards them, and the next open
                    // frees the same (still-pending) queue again.
                    if vs.base.free(PageId(p)).is_ok() {
                        freed += 1;
                    }
                }
                vs.note_reclaimed(freed);
                vs
            }
            None => {
                let user = recovered_meta.unwrap_or_default().to_vec();
                Self::with_epoch0(base, cfg, 0, HashMap::new(), user, Vec::new())
            }
        }
    }

    fn with_epoch0(
        base: Arc<PageStore>,
        cfg: VersionConfig,
        seq: u64,
        map: HashMap<u64, u64>,
        user_meta: Vec<u8>,
        retired: Vec<(u64, Vec<u64>)>,
    ) -> Self {
        let epoch = Arc::new(Epoch {
            seq,
            map: Arc::new(map),
            user_meta,
            pins: AtomicU64::new(0),
            cache: RwLock::new(HashMap::new()),
        });
        VersionedStore {
            base,
            state: Mutex::new(VersionState {
                epochs: VecDeque::from([epoch]),
                retired: VecDeque::from(retired),
            }),
            retain: cfg.retain.max(1),
            installed: AtomicU64::new(0),
            reclaimed: AtomicU64::new(0),
        }
    }

    /// The wrapped page store.
    pub fn base(&self) -> &Arc<PageStore> {
        &self.base
    }

    /// Current (newest) epoch seq.
    pub fn current_seq(&self) -> u64 {
        self.state.lock().epochs.back().expect("epochs never empty").seq
    }

    /// Inclusive `(oldest, current)` retained seq range — the window
    /// `as_of` can address.
    pub fn retained_range(&self) -> (u64, u64) {
        let st = self.state.lock();
        (st.epochs.front().unwrap().seq, st.epochs.back().unwrap().seq)
    }

    /// Pins the current epoch.
    pub fn snapshot(&self) -> Snapshot {
        let st = self.state.lock();
        let epoch = st.epochs.back().unwrap().clone();
        epoch.pins.fetch_add(1, Relaxed);
        Snapshot { base: self.base.clone(), epoch }
    }

    /// Pins the retained epoch with exactly seq `seq`, or reports the
    /// retained range in the error.
    pub fn snapshot_at(&self, seq: u64) -> Result<Snapshot> {
        let st = self.state.lock();
        match st.epochs.iter().find(|e| e.seq == seq) {
            Some(e) => {
                e.pins.fetch_add(1, Relaxed);
                Ok(Snapshot { base: self.base.clone(), epoch: e.clone() })
            }
            None => Err(StoreError::VersionNotRetained {
                requested: seq,
                oldest: st.epochs.front().unwrap().seq,
                current: st.epochs.back().unwrap().seq,
            }),
        }
    }

    /// Opens a copy-on-write apply session on the calling thread. Until
    /// [`ApplyGuard::install`], every write to a frozen page through the
    /// base store is redirected to a fresh page and every free of frozen
    /// content is deferred — concurrent snapshot readers (other threads)
    /// observe nothing. One writer at a time: this is the serve batcher's
    /// single-threaded apply stage, and the session is thread-local.
    pub fn begin_apply(&self) -> ApplyGuard<'_> {
        let map = self.state.lock().epochs.back().unwrap().map.clone();
        install_ctx(Ctx::Apply(ApplyCtx {
            store: store_addr(&self.base),
            map,
            delta: HashMap::new(),
            fresh: HashSet::new(),
            retired: Vec::new(),
        }));
        ApplyGuard { vs: self, armed: true }
    }

    /// Trims the retention window and reclaims every newly unreachable
    /// retired page. Runs automatically at install; call it directly after
    /// dropping long-held snapshots. Returns pages freed.
    pub fn collect(&self) -> Result<u64> {
        let to_free = {
            let mut st = self.state.lock();
            trim(&mut st, self.retain)
        };
        let freed = self.free_all(&to_free)?;
        Ok(freed)
    }

    /// Observability snapshot.
    pub fn metrics(&self) -> VersionMetrics {
        let st = self.state.lock();
        let current = st.epochs.back().unwrap().seq;
        let mut pinned = 0u64;
        let mut oldest_pinned: Option<u64> = None;
        for e in &st.epochs {
            let p = e.pins.load(Relaxed);
            if p > 0 {
                pinned += p;
                if oldest_pinned.is_none() {
                    oldest_pinned = Some(e.seq);
                }
            }
        }
        VersionMetrics {
            current_seq: current,
            oldest_seq: st.epochs.front().unwrap().seq,
            retained: st.epochs.len() as u64,
            installed: self.installed.load(Relaxed),
            reclaimed_pages: self.reclaimed.load(Relaxed),
            pinned,
            oldest_pin_age: oldest_pinned.map_or(0, |s| current - s),
        }
    }

    // The `pc_version_*` exposition renders from `metrics()` snapshots
    // (per store), not the global `pc_obs` registry — registering these
    // there as well would duplicate the families in a server's scrape.
    fn note_reclaimed(&self, n: u64) {
        if n > 0 {
            self.reclaimed.fetch_add(n, Relaxed);
        }
    }

    fn free_all(&self, pages: &[u64]) -> Result<u64> {
        let mut freed = 0u64;
        for &p in pages {
            self.base.free(PageId(p))?;
            freed += 1;
        }
        self.note_reclaimed(freed);
        Ok(freed)
    }
}

fn trim(st: &mut VersionState, retain: usize) -> Vec<u64> {
    while st.epochs.len() > retain && st.epochs.front().unwrap().pins.load(Relaxed) == 0 {
        st.epochs.pop_front();
    }
    let floor = st.epochs.front().unwrap().seq;
    let mut out = Vec::new();
    while st.retired.front().is_some_and(|(tag, _)| *tag <= floor) {
        out.extend(st.retired.pop_front().unwrap().1);
    }
    out
}

/// An open apply session; see [`VersionedStore::begin_apply`]. Must be
/// installed or dropped on the thread that opened it.
pub struct ApplyGuard<'a> {
    vs: &'a VersionedStore,
    armed: bool,
}

impl ApplyGuard<'_> {
    /// Publishes the session as the next epoch (`current seq + 1`).
    pub fn install(self, user_meta: &[u8]) -> Result<u64> {
        let seq = self.vs.current_seq() + 1;
        self.install_as(seq, user_meta)
    }

    /// Publishes the session as epoch `seq` (must exceed the current seq;
    /// the serve batcher passes its batch sequence so `as_of` and Ack
    /// batch numbers coincide), runs GC, and — on a durable base — group-
    /// commits the epoch (version-framed `user_meta`) so it survives
    /// crashes as the visible version.
    pub fn install_as(mut self, seq: u64, user_meta: &[u8]) -> Result<u64> {
        self.armed = false;
        let vs = self.vs;
        let ctx = take_apply(store_addr(&vs.base));
        let (to_free, meta_bytes) = {
            let mut st = vs.state.lock();
            let parent = st.epochs.back().unwrap();
            assert!(seq > parent.seq, "epoch seqs must be strictly increasing");
            let mut map = (*parent.map).clone();
            for (l, d) in ctx.delta {
                match d {
                    Some(p) => {
                        map.insert(l, p);
                    }
                    None => {
                        map.remove(&l);
                    }
                }
            }
            let map = Arc::new(map);
            st.epochs.push_back(Arc::new(Epoch {
                seq,
                map: map.clone(),
                user_meta: user_meta.to_vec(),
                pins: AtomicU64::new(0),
                cache: RwLock::new(HashMap::new()),
            }));
            if !ctx.retired.is_empty() {
                st.retired.push_back((seq, ctx.retired));
            }
            let to_free = trim(&mut st, vs.retain);
            let meta_bytes = vs.base.is_durable().then(|| {
                encode_version_meta(&VersionMeta {
                    seq,
                    map: map.as_ref().clone(),
                    user: user_meta.to_vec(),
                    retired: st.retired.iter().cloned().collect(),
                })
            });
            (to_free, meta_bytes)
        };
        vs.installed.fetch_add(1, Relaxed);
        // Free before committing so the Free records and the epoch commit
        // land in one durable group, matching the persisted pending queue.
        vs.free_all(&to_free)?;
        if let Some(meta) = meta_bytes {
            vs.base.commit_with(&meta)?;
        }
        Ok(seq)
    }
}

impl Drop for ApplyGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        // Abort: the epoch never changed, so rollback is just returning
        // the session's fresh pages to the allocator.
        let ctx = take_apply(store_addr(&self.vs.base));
        for p in ctx.fresh {
            let _ = self.vs.base.free(PageId(p));
        }
    }
}

// ---------------------------------------------------------------------------
// Version metadata framing (rides WAL commit metadata)
// ---------------------------------------------------------------------------

/// Magic prefix of a version-framed commit metadata payload.
pub const VERSION_META_MAGIC: &[u8; 4] = b"PCV1";

/// Decoded version frame: one committed epoch plus its pending GC queue.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VersionMeta {
    /// Epoch sequence number.
    pub seq: u64,
    /// Full logical→physical page map of the epoch.
    pub map: HashMap<u64, u64>,
    /// The caller's inner metadata (the serve layer's batch frame).
    pub user: Vec<u8>,
    /// Retired-but-unreclaimed slots: `(installing seq, slots)`.
    pub retired: Vec<(u64, Vec<u64>)>,
}

/// Encodes a version frame. Map entries are sorted so the encoding is
/// deterministic (golden tests depend on it).
pub fn encode_version_meta(m: &VersionMeta) -> Vec<u8> {
    let mut out = Vec::with_capacity(32 + m.user.len() + m.map.len() * 16);
    out.extend_from_slice(VERSION_META_MAGIC);
    out.extend_from_slice(&m.seq.to_le_bytes());
    out.extend_from_slice(&(m.user.len() as u32).to_le_bytes());
    out.extend_from_slice(&m.user);
    let mut entries: Vec<(u64, u64)> = m.map.iter().map(|(&k, &v)| (k, v)).collect();
    entries.sort_unstable();
    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for (k, v) in entries {
        out.extend_from_slice(&k.to_le_bytes());
        out.extend_from_slice(&v.to_le_bytes());
    }
    out.extend_from_slice(&(m.retired.len() as u32).to_le_bytes());
    for (tag, ids) in &m.retired {
        out.extend_from_slice(&tag.to_le_bytes());
        out.extend_from_slice(&(ids.len() as u32).to_le_bytes());
        for id in ids {
            out.extend_from_slice(&id.to_le_bytes());
        }
    }
    out
}

/// Decodes a version frame; `None` for anything that is not one (legacy
/// bare metadata passes through untouched at the call sites).
pub fn decode_version_meta(bytes: &[u8]) -> Option<VersionMeta> {
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Option<&[u8]> {
        let s = bytes.get(*pos..*pos + n)?;
        *pos += n;
        Some(s)
    };
    if take(&mut pos, 4)? != VERSION_META_MAGIC {
        return None;
    }
    let seq = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
    let user_len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
    let user = take(&mut pos, user_len)?.to_vec();
    let map_len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
    let mut map = HashMap::with_capacity(map_len);
    for _ in 0..map_len {
        let k = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
        let v = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
        map.insert(k, v);
    }
    let groups = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
    let mut retired = Vec::with_capacity(groups);
    for _ in 0..groups {
        let tag = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
        let n = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
        let mut ids = Vec::with_capacity(n);
        for _ in 0..n {
            ids.push(u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap()));
        }
        retired.push((tag, ids));
    }
    if pos != bytes.len() {
        return None;
    }
    Some(VersionMeta { seq, map, user, retired })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> Arc<PageStore> {
        Arc::new(PageStore::in_memory(64))
    }

    #[test]
    fn cow_preserves_pinned_snapshot_reads() {
        let base = store();
        let vs = VersionedStore::new(base.clone(), VersionConfig::default(), b"meta0");
        let id = base.alloc().unwrap();
        base.write(id, b"v0").unwrap();

        let snap = vs.snapshot();
        assert_eq!(snap.seq(), 0);
        assert_eq!(snap.user_meta(), b"meta0");

        // Two concurrent-style installs rewrite the page twice.
        for (i, payload) in [b"v1", b"v2"].iter().enumerate() {
            let session = vs.begin_apply();
            base.write(id, *payload).unwrap();
            let seq = session.install(format!("meta{}", i + 1).as_bytes()).unwrap();
            assert_eq!(seq, i as u64 + 1);
        }

        // Pinned snapshot still reads the original bytes.
        {
            let _g = snap.enter();
            assert_eq!(&base.read(id).unwrap()[..2], b"v0");
        }
        // The current epoch reads the newest.
        let cur = vs.snapshot();
        {
            let _g = cur.enter();
            assert_eq!(&base.read(id).unwrap()[..2], b"v2");
        }
        // An untranslated read (no snapshot) sees the identity slot, which
        // still holds the frozen v0 bytes (slot is the name lease).
        assert_eq!(&base.read(id).unwrap()[..2], b"v0");
    }

    #[test]
    fn as_of_addresses_each_retained_epoch() {
        let base = store();
        let vs = VersionedStore::new(base.clone(), VersionConfig { retain: 16 }, &[]);
        let id = base.alloc().unwrap();
        base.write(id, &[0]).unwrap();
        for i in 1..=5u8 {
            let s = vs.begin_apply();
            base.write(id, &[i]).unwrap();
            s.install(&[i]).unwrap();
        }
        assert_eq!(vs.retained_range(), (0, 5));
        for i in 0..=5u8 {
            let snap = vs.snapshot_at(i as u64).unwrap();
            let _g = snap.enter();
            assert_eq!(base.read(id).unwrap()[0], i);
        }
        match vs.snapshot_at(99) {
            Err(StoreError::VersionNotRetained { requested, oldest, current }) => {
                assert_eq!((requested, oldest, current), (99, 0, 5));
            }
            Err(other) => panic!("expected VersionNotRetained, got {other:?}"),
            Ok(s) => panic!("expected VersionNotRetained, got epoch {}", s.seq()),
        }
    }

    #[test]
    fn gc_reclaims_only_unpinned_epochs() {
        let base = store();
        let vs = VersionedStore::new(base.clone(), VersionConfig { retain: 1 }, &[]);
        let id = base.alloc().unwrap();
        base.write(id, b"a").unwrap();
        let pages0 = base.live_pages();

        let pin = vs.snapshot();
        for i in 0..4u8 {
            let s = vs.begin_apply();
            base.write(id, &[i]).unwrap();
            s.install(&[]).unwrap();
        }
        // Epoch 0 is pinned, so nothing it can reach was reclaimed: every
        // CoW copy is still allocated.
        assert_eq!(base.live_pages(), pages0 + 4);
        assert_eq!(vs.metrics().pinned, 1);
        assert_eq!(vs.metrics().oldest_pin_age, 4);

        drop(pin);
        let freed = vs.collect().unwrap();
        assert_eq!(freed, 3, "all superseded copies except the live one");
        assert_eq!(base.live_pages(), pages0 + 1, "live copy + leased name slot");
        assert_eq!(vs.metrics().reclaimed_pages, 3);
        assert_eq!(vs.metrics().retained, 1);
    }

    #[test]
    fn freed_logical_names_release_their_lease() {
        let base = store();
        let vs = VersionedStore::new(base.clone(), VersionConfig { retain: 1 }, &[]);
        let id = base.alloc().unwrap();
        base.write(id, b"x").unwrap();

        // Remap the page, then free the logical name in a later session.
        let s = vs.begin_apply();
        base.write(id, b"y").unwrap();
        s.install(&[]).unwrap();
        let s = vs.begin_apply();
        base.free(id).unwrap();
        s.install(&[]).unwrap();
        let _ = vs.collect().unwrap();
        assert_eq!(base.live_pages(), 0, "copy and leased slot both reclaimed");
    }

    #[test]
    fn fresh_pages_allocated_and_freed_in_session_roundtrip() {
        let base = store();
        let vs = VersionedStore::new(base.clone(), VersionConfig::default(), &[]);
        let s = vs.begin_apply();
        let a = base.alloc().unwrap();
        base.write(a, b"tmp").unwrap();
        base.free(a).unwrap();
        let b = base.alloc().unwrap();
        base.write(b, b"keep").unwrap();
        s.install(&[]).unwrap();
        assert_eq!(base.live_pages(), 1);
        let snap = vs.snapshot();
        let _g = snap.enter();
        assert_eq!(&base.read(b).unwrap()[..4], b"keep");
    }

    #[test]
    fn dropped_session_aborts_and_rolls_back() {
        let base = store();
        let vs = VersionedStore::new(base.clone(), VersionConfig::default(), &[]);
        let id = base.alloc().unwrap();
        base.write(id, b"keep").unwrap();
        let live = base.live_pages();

        {
            let _s = vs.begin_apply();
            base.write(id, b"doomed").unwrap();
            let extra = base.alloc().unwrap();
            base.write(extra, b"also doomed").unwrap();
            // Guard dropped without install: abort.
        }
        assert_eq!(vs.current_seq(), 0, "no epoch installed");
        assert_eq!(base.live_pages(), live, "fresh pages returned");
        assert_eq!(&base.read(id).unwrap()[..4], b"keep");
    }

    #[test]
    fn version_meta_roundtrips_and_rejects_garbage() {
        let m = VersionMeta {
            seq: 42,
            map: HashMap::from([(3, 9), (7, 11)]),
            user: b"inner".to_vec(),
            retired: vec![(41, vec![5]), (42, vec![6, 8])],
        };
        let bytes = encode_version_meta(&m);
        assert_eq!(decode_version_meta(&bytes).unwrap(), m);
        // Deterministic encoding.
        assert_eq!(bytes, encode_version_meta(&m.clone()));
        assert!(decode_version_meta(b"").is_none());
        assert!(decode_version_meta(b"not a frame").is_none());
        assert!(decode_version_meta(&bytes[..bytes.len() - 1]).is_none());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(decode_version_meta(&trailing).is_none());
    }

    #[test]
    fn durable_epoch_survives_reopen_via_commit_meta() {
        let (base, _) = PageStore::in_memory_durable(64);
        let base = Arc::new(base);
        let vs = VersionedStore::new(base.clone(), VersionConfig { retain: 4 }, b"seed");
        let id = base.alloc().unwrap();
        base.write(id, b"v0").unwrap();
        base.sync().unwrap();
        for i in 1..=3u8 {
            let s = vs.begin_apply();
            base.write(id, &[i]).unwrap();
            s.install(&[b'm', i]).unwrap();
        }
        // Simulate recovery hand-off: the last committed metadata is the
        // version frame install() wrote.
        let pending: Vec<(u64, Vec<u64>)> = {
            let st = vs.state.lock();
            st.retired.iter().cloned().collect()
        };
        let meta = {
            let st = vs.state.lock();
            let cur = st.epochs.back().unwrap();
            encode_version_meta(&VersionMeta {
                seq: cur.seq,
                map: cur.map.as_ref().clone(),
                user: cur.user_meta.clone(),
                retired: pending,
            })
        };
        drop(vs);
        let vs2 = VersionedStore::open(base.clone(), Some(&meta), VersionConfig::default());
        assert_eq!(vs2.current_seq(), 3);
        let snap = vs2.snapshot();
        assert_eq!(snap.user_meta(), &[b'm', 3]);
        let _g = snap.enter();
        assert_eq!(base.read(id).unwrap()[0], 3);
    }

    #[test]
    fn open_with_legacy_or_missing_meta_starts_at_epoch_zero() {
        let base = store();
        let vs = VersionedStore::open(base.clone(), Some(b"legacy blob"), VersionConfig::default());
        assert_eq!(vs.current_seq(), 0);
        assert_eq!(vs.snapshot().user_meta(), b"legacy blob");
        let vs = VersionedStore::open(base, None, VersionConfig::default());
        assert_eq!(vs.current_seq(), 0);
        assert_eq!(vs.snapshot().user_meta(), b"");
    }

    #[test]
    fn snapshot_cache_first_insert_wins() {
        let base = store();
        let vs = VersionedStore::new(base, VersionConfig::default(), &[]);
        let snap = vs.snapshot();
        assert!(snap.cached(7).is_none());
        let a = snap.cache_put(7, Arc::new(41u64));
        let b = snap.cache_put(7, Arc::new(99u64));
        assert_eq!(*a.downcast::<u64>().unwrap(), 41);
        assert_eq!(*b.downcast::<u64>().unwrap(), 41, "first insert wins");
        // Another snapshot of the same epoch shares the cache.
        let again = vs.snapshot();
        assert!(again.cached(7).is_some());
    }

    #[test]
    fn snapshot_reads_take_no_exclusive_locks() {
        let base = store();
        let vs = VersionedStore::new(base.clone(), VersionConfig::default(), &[]);
        let id = base.alloc().unwrap();
        base.write(id, b"pin me").unwrap();
        let s = vs.begin_apply();
        base.write(id, b"cowed").unwrap();
        s.install(&[]).unwrap();

        let snap = vs.snapshot_at(0).unwrap();
        let before = pc_sync::exclusive_acquisitions();
        {
            let _g = snap.enter();
            for _ in 0..64 {
                assert_eq!(&base.read(id).unwrap()[..6], b"pin me");
            }
        }
        assert_eq!(
            pc_sync::exclusive_acquisitions(),
            before,
            "translated snapshot reads must be exclusive-lock-free"
        );
    }
}
