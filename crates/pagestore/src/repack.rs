//! Offline cache-oblivious repacking.
//!
//! Static structures in this workspace are written in *build order*:
//! bottom-up for the B-tree, leaf-to-root page fills for the segment /
//! interval / priority search trees. Build order is correct under the
//! paper's transfer-count model (which charges every page access one I/O
//! regardless of where the page lives), but on a real disk it scatters
//! each root-to-leaf path across the file, so cold-cache wall-clock
//! latency pays a long seek/readahead-miss per level.
//!
//! This module implements the classic remedy: rewrite the finished
//! structure into a fresh store in **van Emde Boas recursive order**
//! (Demaine–Iacono–Langerman, "Worst-Case Optimal Tree Layout in External
//! Memory"). A subtree of height `h` is laid out as its top half (height
//! `⌈h/2⌉` — here `⌊h/2⌋` for the top, the complement for the bottoms,
//! either split is optimal to constants) followed by each bottom subtree
//! contiguously. The recursion is *cache-oblivious*: for any block/
//! readahead size `B`, a root-to-leaf walk touches `O(log_B n)` distinct
//! regions, without `B` appearing anywhere in the layout code.
//!
//! The workspace's structures are not plain trees: skeletal nodes own
//! [`crate::layout::BlockList`] chains (cover lists, A/S/X/Y lists, path
//! caches). Those are *attached* to their owning node and placed
//! contiguously right after it, so the "open the node, then stream its
//! list" access pattern of every query is sequential on disk.
//!
//! Mechanically, repacking is a three-step pass shared by all structure
//! crates:
//!
//! 1. **Enumerate** — the structure walks itself once and records its page
//!    graph into a [`PageGraph`] (tree edges + attached chains).
//! 2. **Relocate** — [`PageGraph::veb_order`] produces the target page
//!    order; [`Relocation::alloc_in`] allocates exactly that sequence in
//!    the destination store, yielding an old-id → new-id map. A fresh
//!    [`crate::backend::FileBackend`] store allocates ids `0..n` in order
//!    and places frame `i` at byte offset `i * frame_len`, so allocation
//!    order *is* physical order.
//! 3. **Rewrite** — the structure walks itself again, re-encoding every
//!    page into the destination with all embedded [`PageId`]s (child
//!    pointers, list heads, `next` links) mapped through the
//!    [`Relocation`].
//!
//! Because the pass only *renames* pages — same page count, same contents
//! up to embedded ids, same graph shape — the paper's strict-mode transfer
//! counts are invariant by construction; the property suite pins this.
//!
//! Durable stores must be quiesced first: see [`ensure_quiesced`].

use std::collections::HashMap;

use crate::codec::PageReader;
use crate::error::{Result, StoreError};
use crate::store::{PageId, PageStore, NULL_PAGE};

/// One node of the page graph: a skeletal page, its tree children, and
/// the non-tree pages (list chains, points pages) that queries read right
/// after it.
struct GraphNode {
    page: PageId,
    children: Vec<usize>,
    attached: Vec<PageId>,
}

/// The page graph of a built structure, as recorded by its enumeration
/// walk. Nodes are added top-down (roots first, then children), which the
/// layout pass relies on: a child's index is always greater than its
/// parent's.
#[derive(Default)]
pub struct PageGraph {
    nodes: Vec<GraphNode>,
    roots: Vec<usize>,
    /// Every page already placed somewhere in the graph (node or attached).
    /// Structures with DAG-shaped page graphs (the segment tree packs
    /// several logical nodes per page, so two parents can reference one
    /// page) deduplicate through this: the first discovering parent wins,
    /// and the layout uses that spanning tree.
    seen: HashMap<u64, usize>,
}

impl PageGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct pages recorded (nodes plus attached).
    pub fn page_count(&self) -> usize {
        self.seen.len()
    }

    /// Adds a root node. Returns `None` if `page` is already in the graph
    /// (a later root reached a page some earlier walk placed — the caller
    /// must not walk below it again).
    pub fn add_root(&mut self, page: PageId) -> Option<usize> {
        let idx = self.insert_node(page)?;
        self.roots.push(idx);
        Some(idx)
    }

    /// Adds `page` as a tree child of node `parent`. Returns `None` — and
    /// records nothing — if `page` is already in the graph; the caller
    /// must not recurse into it again.
    pub fn add_child(&mut self, parent: usize, page: PageId) -> Option<usize> {
        let idx = self.insert_node(page)?;
        self.nodes[parent].children.push(idx);
        Some(idx)
    }

    /// Attaches non-tree pages (a list chain, a points page) to node
    /// `owner`; they are laid out contiguously right after the owner's
    /// page. Pages already in the graph are skipped.
    pub fn attach(&mut self, owner: usize, pages: &[PageId]) {
        for &p in pages {
            debug_assert!(!p.is_null(), "attached NULL_PAGE");
            if let std::collections::hash_map::Entry::Vacant(e) = self.seen.entry(p.0) {
                e.insert(owner);
                self.nodes[owner].attached.push(p);
            }
        }
    }

    fn insert_node(&mut self, page: PageId) -> Option<usize> {
        debug_assert!(!page.is_null(), "NULL_PAGE added as graph node");
        let idx = self.nodes.len();
        match self.seen.entry(page.0) {
            std::collections::hash_map::Entry::Occupied(_) => return None,
            std::collections::hash_map::Entry::Vacant(e) => e.insert(idx),
        };
        self.nodes.push(GraphNode { page, children: Vec::new(), attached: Vec::new() });
        Some(idx)
    }

    /// The van Emde Boas page order: for each root in insertion order, the
    /// vEB recursion over its spanning tree, with every node's page
    /// immediately followed by its attached pages.
    pub fn veb_order(&self) -> Vec<PageId> {
        // Subtree heights. Children always carry larger indices than their
        // parent (nodes are inserted top-down), so one reverse sweep
        // suffices.
        let n = self.nodes.len();
        let mut height = vec![1u32; n];
        for i in (0..n).rev() {
            for &c in &self.nodes[i].children {
                height[i] = height[i].max(height[c] + 1);
            }
        }
        let mut node_order = Vec::with_capacity(n);
        for &root in &self.roots {
            let mut frontier = Vec::new();
            self.veb_rec(root, height[root], &height, &mut node_order, &mut frontier);
            debug_assert!(frontier.is_empty(), "full-height recursion leaves no frontier");
        }
        let mut out = Vec::with_capacity(self.seen.len());
        for idx in node_order {
            out.push(self.nodes[idx].page);
            out.extend_from_slice(&self.nodes[idx].attached);
        }
        out
    }

    /// Lays out the height-`h` truncation of the subtree at `i`: the top
    /// `⌊h/2⌋` levels recursively, then each depth-`⌊h/2⌋` boundary
    /// subtree recursively. Nodes exactly `h` levels down are pushed to
    /// `frontier` for the caller.
    fn veb_rec(
        &self,
        i: usize,
        h: u32,
        height: &[u32],
        out: &mut Vec<usize>,
        frontier: &mut Vec<usize>,
    ) {
        let h = h.min(height[i]);
        if h <= 1 {
            out.push(i);
            frontier.extend_from_slice(&self.nodes[i].children);
            return;
        }
        let top = h / 2;
        let mut boundary = Vec::new();
        self.veb_rec(i, top, height, out, &mut boundary);
        for b in boundary {
            self.veb_rec(b, h - top, height, out, frontier);
        }
    }
}

/// The old-id → new-id page map produced by allocating a layout order in
/// the destination store.
pub struct Relocation {
    map: HashMap<u64, u64>,
}

impl Relocation {
    /// Allocates one destination page per entry of `order`, in order, and
    /// records the mapping. On a fresh file-backed store this makes the
    /// physical layout equal `order`; on a store with a free list the
    /// recycled ids come first (physical order is then approximate, but
    /// the structure stays correct — the map is authoritative).
    pub fn alloc_in(order: &[PageId], dst: &PageStore) -> Result<Relocation> {
        let mut map = HashMap::with_capacity(order.len());
        for &old in order {
            let new = dst.alloc()?;
            if map.insert(old.0, new.0).is_some() {
                return Err(StoreError::Corrupt(format!(
                    "page {old:?} appears twice in repack order"
                )));
            }
        }
        Ok(Relocation { map })
    }

    /// Maps an embedded page id. [`NULL_PAGE`] maps to itself; a
    /// non-null id the enumeration pass never recorded is a walk bug and
    /// surfaces as [`StoreError::Corrupt`] rather than a dangling pointer.
    pub fn get(&self, old: PageId) -> Result<PageId> {
        if old.is_null() {
            return Ok(NULL_PAGE);
        }
        match self.map.get(&old.0) {
            Some(&n) => Ok(PageId(n)),
            None => Err(StoreError::Corrupt(format!(
                "page {old:?} has no relocation (missed by enumeration)"
            ))),
        }
    }

    /// Number of relocated pages.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no pages were relocated.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Refuses to operate on a durable store whose no-steal dirty table is
/// non-empty. Dirty pages live only in the WAL + dirty table — a physical
/// pass would read a mix of committed backend bytes and uncommitted
/// overlays, and recovery could not replay the log onto the relocated
/// copy. Callers must `commit_with`/`sync` and then `checkpoint` first.
/// Non-durable stores trivially pass.
pub fn ensure_quiesced(store: &PageStore) -> Result<()> {
    if let Some(ws) = store.wal_stats() {
        if ws.dirty_pages > 0 {
            return Err(StoreError::DirtyStore { dirty_pages: ws.dirty_pages });
        }
    }
    Ok(())
}

/// The page ids of a [`crate::layout::BlockList`] chain starting at
/// `head`, in chain order, walked via the raw `[count: u16][next: u64]`
/// block header (no record decoding — the repack pass is generic over the
/// record type).
pub fn chain_pages(store: &PageStore, head: PageId) -> Result<Vec<PageId>> {
    let mut out = Vec::new();
    let mut cur = head;
    while !cur.is_null() {
        out.push(cur);
        cur = read_chain_next(store, cur)?;
    }
    Ok(out)
}

/// Copies a [`crate::layout::BlockList`] chain from `src` into `dst`,
/// rewriting each block's `next` pointer through `map`. Record bytes are
/// copied verbatim (records never embed page ids themselves — handles to
/// nested lists are rewritten by the owning structure's record re-encode).
/// The caller relocates the embedded handle via
/// [`crate::layout::BlockList::with_head`].
pub fn copy_chain(src: &PageStore, dst: &PageStore, head: PageId, map: &Relocation) -> Result<()> {
    let mut cur = head;
    while !cur.is_null() {
        let page = src.read(cur)?;
        let mut buf = page.to_vec();
        if buf.len() < 10 {
            return Err(StoreError::Corrupt("block page shorter than its header".into()));
        }
        let next = PageId(u64::from_le_bytes(buf[2..10].try_into().unwrap()));
        buf[2..10].copy_from_slice(&map.get(next)?.0.to_le_bytes());
        dst.write(map.get(cur)?, &buf)?;
        cur = next;
    }
    Ok(())
}

/// Copies one page verbatim to its relocated id (for pages that embed no
/// page ids at all, e.g. raw record pages behind a directory).
pub fn copy_raw(src: &PageStore, dst: &PageStore, page: PageId, map: &Relocation) -> Result<()> {
    let data = src.read(page)?;
    dst.write(map.get(page)?, &data)
}

fn read_chain_next(store: &PageStore, page: PageId) -> Result<PageId> {
    let data = store.read(page)?;
    let mut r = PageReader::new(&data);
    let _count = r.get_u16()?;
    Ok(PageId(r.get_u64()?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::BlockList;
    use crate::types::Point;

    /// Builds a perfect binary tree of `levels` levels in the graph, pages
    /// numbered in BFS order starting at 1, and returns the graph.
    fn perfect_tree(levels: u32) -> PageGraph {
        let mut g = PageGraph::new();
        let root = g.add_root(PageId(1)).unwrap();
        let mut level = vec![(root, 1u64)];
        for _ in 1..levels {
            let mut next_level = Vec::new();
            for (idx, page) in level {
                for child_page in [2 * page, 2 * page + 1] {
                    let c = g.add_child(idx, PageId(child_page)).unwrap();
                    next_level.push((c, child_page));
                }
            }
            level = next_level;
        }
        g
    }

    #[test]
    fn veb_order_height_three() {
        // Height 3: top = 1 level, bottoms of height 2.
        let g = perfect_tree(3);
        let order: Vec<u64> = g.veb_order().iter().map(|p| p.0).collect();
        assert_eq!(order, vec![1, 2, 4, 5, 3, 6, 7]);
    }

    #[test]
    fn veb_order_height_four() {
        // Height 4: top 2 levels {1,2,3}, then four height-2 bottoms.
        let g = perfect_tree(4);
        let order: Vec<u64> = g.veb_order().iter().map(|p| p.0).collect();
        assert_eq!(order, vec![1, 2, 3, 4, 8, 9, 5, 10, 11, 6, 12, 13, 7, 14, 15]);
    }

    #[test]
    fn veb_order_is_a_permutation() {
        let g = perfect_tree(5);
        let mut order: Vec<u64> = g.veb_order().iter().map(|p| p.0).collect();
        assert_eq!(order.len(), 31);
        order.sort_unstable();
        assert_eq!(order, (1..=31).collect::<Vec<_>>());
    }

    #[test]
    fn attached_pages_follow_their_owner() {
        let mut g = PageGraph::new();
        let root = g.add_root(PageId(1)).unwrap();
        let left = g.add_child(root, PageId(2)).unwrap();
        let right = g.add_child(root, PageId(3)).unwrap();
        g.attach(root, &[PageId(10), PageId(11)]);
        g.attach(left, &[PageId(20)]);
        g.attach(right, &[PageId(30)]);
        let order: Vec<u64> = g.veb_order().iter().map(|p| p.0).collect();
        // Height 2: top = 1 (root + its attachments), bottoms in order.
        assert_eq!(order, vec![1, 10, 11, 2, 20, 3, 30]);
    }

    #[test]
    fn dag_pages_are_recorded_once() {
        let mut g = PageGraph::new();
        let root = g.add_root(PageId(1)).unwrap();
        let left = g.add_child(root, PageId(2)).unwrap();
        assert!(g.add_child(root, PageId(2)).is_none(), "duplicate child");
        assert!(g.add_root(PageId(1)).is_none(), "duplicate root");
        g.attach(left, &[PageId(5)]);
        g.attach(root, &[PageId(5)]); // shared chain: first owner wins
        assert_eq!(g.page_count(), 3);
        let order: Vec<u64> = g.veb_order().iter().map(|p| p.0).collect();
        assert_eq!(order, vec![1, 2, 5]);
    }

    #[test]
    fn multiple_roots_lay_out_in_insertion_order() {
        let mut g = PageGraph::new();
        let a = g.add_root(PageId(7)).unwrap();
        g.add_child(a, PageId(8)).unwrap();
        let b = g.add_root(PageId(20)).unwrap();
        g.add_child(b, PageId(21)).unwrap();
        let order: Vec<u64> = g.veb_order().iter().map(|p| p.0).collect();
        assert_eq!(order, vec![7, 8, 20, 21]);
    }

    #[test]
    fn relocation_maps_null_to_null_and_errors_on_unknown() {
        let dst = PageStore::in_memory(256);
        let reloc = Relocation::alloc_in(&[PageId(42), PageId(7)], &dst).unwrap();
        assert_eq!(reloc.len(), 2);
        assert!(!reloc.is_empty());
        assert_eq!(reloc.get(NULL_PAGE).unwrap(), NULL_PAGE);
        assert_eq!(reloc.get(PageId(42)).unwrap(), PageId(0));
        assert_eq!(reloc.get(PageId(7)).unwrap(), PageId(1));
        let err = reloc.get(PageId(99)).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(_)), "{err}");
    }

    #[test]
    fn fresh_store_allocates_the_order_sequentially() {
        let dst = PageStore::in_memory(256);
        let order: Vec<PageId> = (0..5).map(|i| PageId(100 + i)).collect();
        let reloc = Relocation::alloc_in(&order, &dst).unwrap();
        for (i, &old) in order.iter().enumerate() {
            assert_eq!(reloc.get(old).unwrap(), PageId(i as u64));
        }
    }

    #[test]
    fn chain_copy_preserves_records_and_order() {
        let src = PageStore::in_memory(256);
        let pts: Vec<Point> =
            (0..35).map(|i| Point::new(i, 1000 - i, i as u64)).collect();
        let list = BlockList::build(&src, &pts).unwrap();
        let pages = chain_pages(&src, list.head()).unwrap();
        assert_eq!(pages.len() as u64, list.page_count(256));
        assert_eq!(pages, list.block_pages(&src).unwrap());

        let dst = PageStore::in_memory(256);
        // Exercise free-list reuse in the destination.
        let scratch: Vec<PageId> = (0..3).map(|_| dst.alloc().unwrap()).collect();
        for id in scratch {
            dst.free(id).unwrap();
        }
        let reloc = Relocation::alloc_in(&pages, &dst).unwrap();
        copy_chain(&src, &dst, list.head(), &reloc).unwrap();
        let moved = list.with_head(reloc.get(list.head()).unwrap());
        assert_eq!(moved.len(), list.len());
        assert_eq!(moved.read_all(&dst).unwrap(), pts);
        assert_eq!(
            moved.block_pages(&dst).unwrap(),
            pages.iter().map(|&p| reloc.get(p).unwrap()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn empty_chain_is_a_no_op() {
        let src = PageStore::in_memory(256);
        let dst = PageStore::in_memory(256);
        assert!(chain_pages(&src, NULL_PAGE).unwrap().is_empty());
        let reloc = Relocation::alloc_in(&[], &dst).unwrap();
        copy_chain(&src, &dst, NULL_PAGE, &reloc).unwrap();
        assert_eq!(dst.live_pages(), 0);
    }

    #[test]
    fn quiesce_check_rejects_dirty_durable_store() {
        let (store, _) = PageStore::in_memory_durable(64);
        ensure_quiesced(&store).unwrap(); // empty dirty table
        let id = store.alloc().unwrap();
        store.write(id, b"x").unwrap();
        let err = ensure_quiesced(&store).unwrap_err();
        assert!(matches!(err, StoreError::DirtyStore { dirty_pages: 1 }), "{err}");
        store.sync().unwrap();
        // Committed but not checkpointed: still only in WAL + dirty table.
        assert!(ensure_quiesced(&store).is_err());
        store.checkpoint().unwrap();
        ensure_quiesced(&store).unwrap();
    }

    #[test]
    fn quiesce_check_passes_plain_stores() {
        let store = PageStore::in_memory(64);
        let id = store.alloc().unwrap();
        store.write(id, b"x").unwrap();
        ensure_quiesced(&store).unwrap();
    }
}
