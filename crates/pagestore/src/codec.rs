//! Bounds-checked little-endian cursors for encoding and decoding page
//! layouts.
//!
//! Every on-page structure in this workspace (B+-tree nodes, block-list
//! headers, cache blocks, …) is serialized through these two cursors so that
//! layout bugs surface as [`StoreError::Corrupt`] rather than silent
//! misreads.

use crate::error::{Result, StoreError};

/// Sequential writer over a mutable byte slice.
///
/// All `put_*` methods advance an internal offset and panic-free fail with
/// [`StoreError::Corrupt`] on overflow, which keeps page-capacity arithmetic
/// honest in the callers.
pub struct PageWriter<'a> {
    buf: &'a mut [u8],
    pos: usize,
}

impl<'a> PageWriter<'a> {
    /// Creates a writer positioned at the start of `buf`.
    pub fn new(buf: &'a mut [u8]) -> Self {
        PageWriter { buf, pos: 0 }
    }

    /// Current write offset in bytes.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes still available.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn chunk(&mut self, len: usize) -> Result<&mut [u8]> {
        if self.remaining() < len {
            return Err(StoreError::Corrupt(format!(
                "write of {len} bytes at offset {} overflows page of {} bytes",
                self.pos,
                self.buf.len()
            )));
        }
        let start = self.pos;
        self.pos += len;
        Ok(&mut self.buf[start..start + len])
    }

    /// Writes a single byte.
    pub fn put_u8(&mut self, v: u8) -> Result<()> {
        self.chunk(1)?[0] = v;
        Ok(())
    }

    /// Writes a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) -> Result<()> {
        self.chunk(2)?.copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Writes a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) -> Result<()> {
        self.chunk(4)?.copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Writes a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) -> Result<()> {
        self.chunk(8)?.copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Writes a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) -> Result<()> {
        self.chunk(8)?.copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Writes raw bytes verbatim.
    pub fn put_bytes(&mut self, v: &[u8]) -> Result<()> {
        self.chunk(v.len())?.copy_from_slice(v);
        Ok(())
    }

    /// Skips `len` bytes, leaving them untouched (useful for reserving a
    /// header slot to be patched later via a fresh writer).
    pub fn skip(&mut self, len: usize) -> Result<()> {
        self.chunk(len)?;
        Ok(())
    }
}

/// Sequential reader over an immutable byte slice; mirror of [`PageWriter`].
pub struct PageReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> PageReader<'a> {
    /// Creates a reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        PageReader { buf, pos: 0 }
    }

    /// Current read offset in bytes.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes still available.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn chunk(&mut self, len: usize) -> Result<&'a [u8]> {
        if self.remaining() < len {
            return Err(StoreError::Corrupt(format!(
                "read of {len} bytes at offset {} overruns page of {} bytes",
                self.pos,
                self.buf.len()
            )));
        }
        let start = self.pos;
        self.pos += len;
        Ok(&self.buf[start..start + len])
    }

    /// Reads a single byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.chunk(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.chunk(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.chunk(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.chunk(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.chunk(8)?.try_into().unwrap()))
    }

    /// Reads `len` raw bytes.
    pub fn get_bytes(&mut self, len: usize) -> Result<&'a [u8]> {
        self.chunk(len)
    }

    /// Skips `len` bytes.
    pub fn skip(&mut self, len: usize) -> Result<()> {
        self.chunk(len)?;
        Ok(())
    }
}

/// FNV-1a 64-bit hash, used for page checksums.
///
/// Not cryptographic — it detects torn writes and stray corruption, which is
/// all the storage layer needs.
pub fn fnv1a64(data: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Integrity classification of a raw frame (payload + trailing 8-byte
/// [`fnv1a64`] checksum), from [`classify_frame`].
///
/// The distinction between [`FrameState::Unwritten`] and
/// [`FrameState::Corrupt`] matters: an all-zero frame is what backends
/// return for never-written slots *by contract*, so it is not evidence of
/// damage — but it is also not evidence of data. Consumers that can get a
/// second opinion (a mirror replica, a WAL) must not let an `Unwritten`
/// answer shadow a `Written` one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameState {
    /// The stored checksum matches the payload: real written data.
    Written,
    /// All-zero payload and zero checksum: the backend's "never written"
    /// state. Reads as a zero page, but carries no information.
    Unwritten,
    /// Non-zero contents whose checksum does not match (torn or rotted),
    /// or a frame too short to carry a checksum at all.
    Corrupt,
}

/// Classifies a raw frame; see [`FrameState`]. Frames shorter than the
/// checksum trailer are [`FrameState::Corrupt`].
///
/// This is the one frame-validity rule in the workspace; the store's
/// checksum verification and [`crate::backend::MirrorBackend`]'s read
/// failover both delegate here so they can never disagree.
pub fn classify_frame(frame: &[u8]) -> FrameState {
    let Some(payload_len) = frame.len().checked_sub(8) else {
        return FrameState::Corrupt;
    };
    let stored = u64::from_le_bytes(frame[payload_len..].try_into().unwrap());
    if stored == 0 && frame[..payload_len].iter().all(|&b| b == 0) {
        return FrameState::Unwritten;
    }
    if stored == fnv1a64(&frame[..payload_len]) {
        FrameState::Written
    } else {
        FrameState::Corrupt
    }
}

/// True if a raw frame is internally consistent — [`FrameState::Written`]
/// or [`FrameState::Unwritten`]. Use [`classify_frame`] when the
/// written/unwritten distinction matters.
pub fn frame_is_valid(frame: &[u8]) -> bool {
    classify_frame(frame) != FrameState::Corrupt
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = [0u8; 64];
        let mut w = PageWriter::new(&mut buf);
        w.put_u8(0xab).unwrap();
        w.put_u16(0xbeef).unwrap();
        w.put_u32(0xdead_beef).unwrap();
        w.put_u64(0x0123_4567_89ab_cdef).unwrap();
        w.put_i64(-42).unwrap();
        w.put_bytes(b"xyz").unwrap();
        assert_eq!(w.position(), 1 + 2 + 4 + 8 + 8 + 3);

        let mut r = PageReader::new(&buf);
        assert_eq!(r.get_u8().unwrap(), 0xab);
        assert_eq!(r.get_u16().unwrap(), 0xbeef);
        assert_eq!(r.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.get_u64().unwrap(), 0x0123_4567_89ab_cdef);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_bytes(3).unwrap(), b"xyz");
    }

    #[test]
    fn writer_overflow_is_an_error() {
        let mut buf = [0u8; 4];
        let mut w = PageWriter::new(&mut buf);
        w.put_u32(1).unwrap();
        assert!(w.put_u8(2).is_err());
    }

    #[test]
    fn reader_overrun_is_an_error() {
        let buf = [0u8; 2];
        let mut r = PageReader::new(&buf);
        assert!(r.get_u32().is_err());
        // failed read must not advance
        assert_eq!(r.position(), 0);
        assert_eq!(r.get_u16().unwrap(), 0);
    }

    #[test]
    fn skip_advances_both_cursors() {
        let mut buf = [0u8; 8];
        let mut w = PageWriter::new(&mut buf);
        w.skip(4).unwrap();
        w.put_u32(7).unwrap();
        let mut r = PageReader::new(&buf);
        r.skip(4).unwrap();
        assert_eq!(r.get_u32().unwrap(), 7);
    }

    #[test]
    fn fnv_is_stable_and_input_sensitive() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
        assert_ne!(fnv1a64(b"ab"), fnv1a64(b"ba"));
    }

    #[test]
    fn frame_validity_rule() {
        // All-zero frame: valid (never-written contract).
        assert!(frame_is_valid(&[0u8; 32]));
        // Checksummed frame: valid, and any payload or checksum flip breaks it.
        let mut frame = vec![7u8; 32];
        let sum = fnv1a64(&frame[..24]);
        frame[24..].copy_from_slice(&sum.to_le_bytes());
        assert!(frame_is_valid(&frame));
        frame[3] ^= 0x01;
        assert!(!frame_is_valid(&frame));
        frame[3] ^= 0x01;
        frame[30] ^= 0x01;
        assert!(!frame_is_valid(&frame));
        // Zero payload with a checksum is still valid (a written zero page).
        let mut zeroed = vec![0u8; 32];
        let sum = fnv1a64(&zeroed[..24]);
        zeroed[24..].copy_from_slice(&sum.to_le_bytes());
        assert!(frame_is_valid(&zeroed));
        // Too short to carry a checksum: invalid.
        assert!(!frame_is_valid(&[0u8; 7]));
    }

    #[test]
    fn classify_frame_distinguishes_unwritten_from_written_and_corrupt() {
        assert_eq!(classify_frame(&[0u8; 32]), FrameState::Unwritten);
        let mut frame = vec![7u8; 32];
        let sum = fnv1a64(&frame[..24]);
        frame[24..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(classify_frame(&frame), FrameState::Written);
        frame[3] ^= 0x01;
        assert_eq!(classify_frame(&frame), FrameState::Corrupt);
        // A *written* zero page (zero payload, real checksum) is Written,
        // not Unwritten: it carries information.
        let mut zeroed = vec![0u8; 32];
        let sum = fnv1a64(&zeroed[..24]);
        zeroed[24..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(classify_frame(&zeroed), FrameState::Written);
        assert_eq!(classify_frame(&[0u8; 7]), FrameState::Corrupt);
        assert_eq!(classify_frame(&[]), FrameState::Corrupt);
    }
}
