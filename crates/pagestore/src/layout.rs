//! Reusable on-page layouts.
//!
//! [`BlockList`] is the single most important structure in the
//! reproduction: every cover-list, A-list, S-list, X-list, Y-list and path
//! cache in the paper is "a list of records blocked `B` to a page". It is a
//! singly-linked chain of pages, each holding a count, a next-page pointer,
//! and up to `capacity` fixed-size records, preserving insertion order.
//!
//! [`RecordPage`] is the simpler flat layout used for tree-node payloads: a
//! count header followed by records, all in one page.

use std::marker::PhantomData;

use crate::codec::{PageReader, PageWriter};
use crate::error::{Result, StoreError};
use crate::store::{PageId, PageStore, NULL_PAGE};
use crate::types::Record;

/// Byte overhead of a block-list page header: `count: u16`, `next: u64`.
const BLOCK_HEADER: usize = 2 + 8;

/// Handle to a blocked, immutable-once-built list of records.
///
/// The handle itself is 16 bytes (head page id + length) and implements
/// [`Record`], so lists can be embedded in parent pages (e.g. a tree node
/// storing handles to its cover list and cache).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockList<R: Record> {
    head: PageId,
    len: u64,
    _marker: PhantomData<fn() -> R>,
}

impl<R: Record> BlockList<R> {
    /// The empty list: no pages, zero records.
    pub fn empty() -> Self {
        BlockList { head: NULL_PAGE, len: 0, _marker: PhantomData }
    }

    /// Records that fit in one page of `page_size` bytes.
    pub fn capacity(page_size: usize) -> usize {
        let cap = (page_size - BLOCK_HEADER) / R::ENCODED_LEN;
        assert!(cap > 0, "page size {page_size} too small for records of {}", R::ENCODED_LEN);
        cap
    }

    /// Builds a list from `records`, writing `ceil(len / capacity)` pages.
    /// Record order is preserved — the paper's lists are always sorted by
    /// the caller before blocking.
    pub fn build(store: &PageStore, records: &[R]) -> Result<Self> {
        if records.is_empty() {
            return Ok(Self::empty());
        }
        let cap = Self::capacity(store.page_size());
        let chunks: Vec<&[R]> = records.chunks(cap).collect();
        let ids: Vec<PageId> = chunks.iter().map(|_| store.alloc()).collect::<Result<_>>()?;
        let mut buf = vec![0u8; store.page_size()];
        for (i, chunk) in chunks.iter().enumerate() {
            let next = ids.get(i + 1).copied().unwrap_or(NULL_PAGE);
            let used = {
                let mut w = PageWriter::new(&mut buf);
                w.put_u16(chunk.len() as u16)?;
                w.put_u64(next.0)?;
                for rec in *chunk {
                    rec.encode(&mut w)?;
                }
                w.position()
            };
            store.write(ids[i], &buf[..used])?;
        }
        Ok(BlockList { head: ids[0], len: records.len() as u64, _marker: PhantomData })
    }

    /// First page of the chain ([`NULL_PAGE`] when empty).
    pub fn head(&self) -> PageId {
        self.head
    }

    /// The same list rooted at a different head page. This is the
    /// relocation primitive used by [`crate::repack`]: after copying the
    /// chain's pages into a new store, the embedded handle is rewritten to
    /// point at the relocated head while the length is unchanged.
    pub fn with_head(&self, head: PageId) -> Self {
        BlockList { head, len: self.len, _marker: PhantomData }
    }

    /// Total number of records.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the list holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of pages the list occupies.
    pub fn page_count(&self, page_size: usize) -> u64 {
        if self.len == 0 {
            0
        } else {
            self.len.div_ceil(Self::capacity(page_size) as u64)
        }
    }

    /// Iterates over the list one *block* at a time; each step costs one
    /// I/O. Stopping early (not exhausting the iterator) reads no further
    /// pages — this is how queries achieve output-sensitive cost.
    pub fn blocks<'s>(&self, store: &'s PageStore) -> BlockIter<'s, R> {
        BlockIter { store, next: self.head, _marker: PhantomData }
    }

    /// Reads the entire list into memory (`page_count` I/Os).
    pub fn read_all(&self, store: &PageStore) -> Result<Vec<R>> {
        let mut out = Vec::with_capacity(self.len as usize);
        for block in self.blocks(store) {
            out.extend(block?);
        }
        Ok(out)
    }

    /// Reads only the first block (one I/O; empty vec for the empty list).
    /// This is the "first block of the X-list / Y-list" primitive of the
    /// two-level scheme (paper §4).
    pub fn read_first_block(&self, store: &PageStore) -> Result<Vec<R>> {
        match self.blocks(store).next() {
            Some(block) => block,
            None => Ok(Vec::new()),
        }
    }

    /// Frees every page of the list. The handle must not be used again.
    pub fn free(&self, store: &PageStore) -> Result<()> {
        let mut cur = self.head;
        while !cur.is_null() {
            let page = store.read(cur)?;
            let mut r = PageReader::new(&page);
            let _count = r.get_u16()?;
            let next = PageId(r.get_u64()?);
            store.free(cur)?;
            cur = next;
        }
        Ok(())
    }
}

impl<R: Record> Record for BlockList<R> {
    const ENCODED_LEN: usize = 16;

    fn encode(&self, w: &mut PageWriter<'_>) -> Result<()> {
        w.put_u64(self.head.0)?;
        w.put_u64(self.len)
    }

    fn decode(r: &mut PageReader<'_>) -> Result<Self> {
        Ok(BlockList { head: PageId(r.get_u64()?), len: r.get_u64()?, _marker: PhantomData })
    }
}

/// Iterator over the blocks of a [`BlockList`]; see
/// [`BlockList::blocks`].
pub struct BlockIter<'s, R: Record> {
    store: &'s PageStore,
    next: PageId,
    _marker: PhantomData<fn() -> R>,
}

impl<R: Record> Iterator for BlockIter<'_, R> {
    type Item = Result<Vec<R>>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.next.is_null() {
            return None;
        }
        Some(self.read_block())
    }
}

impl<R: Record> BlockIter<'_, R> {
    fn read_block(&mut self) -> Result<Vec<R>> {
        let page = self.store.read(self.next)?;
        let mut r = PageReader::new(&page);
        let count = r.get_u16()? as usize;
        let next = PageId(r.get_u64()?);
        let cap = BlockList::<R>::capacity(self.store.page_size());
        if count > cap {
            return Err(StoreError::Corrupt(format!(
                "block claims {count} records but capacity is {cap}"
            )));
        }
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(R::decode(&mut r)?);
        }
        self.next = next;
        Ok(out)
    }
}

impl<R: Record> BlockList<R> {
    /// Reads one block of a list directly by its page id, returning the
    /// records and the next page in the chain. This is the random-access
    /// primitive behind *directory-indexed* lists (used by the 3-sided PST
    /// to jump into the middle of a sorted list in one I/O).
    pub fn read_block(store: &PageStore, page_id: PageId) -> Result<(Vec<R>, PageId)> {
        let page = store.read(page_id)?;
        let mut r = PageReader::new(&page);
        let count = r.get_u16()? as usize;
        let next = PageId(r.get_u64()?);
        let cap = Self::capacity(store.page_size());
        if count > cap {
            return Err(StoreError::Corrupt(format!(
                "block claims {count} records but capacity is {cap}"
            )));
        }
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(R::decode(&mut r)?);
        }
        Ok((out, next))
    }

    /// The page ids of every block in chain order (`page_count` I/Os);
    /// used once at build time to construct directories.
    pub fn block_pages(&self, store: &PageStore) -> Result<Vec<PageId>> {
        let mut out = Vec::new();
        let mut cur = self.head;
        while !cur.is_null() {
            out.push(cur);
            let page = store.read(cur)?;
            let mut r = PageReader::new(&page);
            let _count = r.get_u16()?;
            cur = PageId(r.get_u64()?);
        }
        Ok(out)
    }
}

/// Flat single-page record array with a `u16` count header. Used for
/// fixed-fanout tree nodes whose payload fits one page by construction.
pub struct RecordPage;

impl RecordPage {
    /// Records of type `R` that fit in one page alongside `extra_header`
    /// caller bytes.
    pub fn capacity<R: Record>(page_size: usize, extra_header: usize) -> usize {
        (page_size - 2 - extra_header) / R::ENCODED_LEN
    }

    /// Encodes `records` (with count header) into `w`.
    pub fn encode<R: Record>(w: &mut PageWriter<'_>, records: &[R]) -> Result<()> {
        w.put_u16(records.len() as u16)?;
        for rec in records {
            rec.encode(w)?;
        }
        Ok(())
    }

    /// Decodes a record array previously written by [`RecordPage::encode`].
    pub fn decode<R: Record>(r: &mut PageReader<'_>) -> Result<Vec<R>> {
        let count = r.get_u16()? as usize;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(R::decode(r)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Point;

    fn points(n: usize) -> Vec<Point> {
        (0..n).map(|i| Point::new(i as i64, (i * 7 % 101) as i64, i as u64)).collect()
    }

    #[test]
    fn empty_list_has_no_pages() {
        let store = PageStore::in_memory(256);
        let list = BlockList::<Point>::build(&store, &[]).unwrap();
        assert!(list.is_empty());
        assert_eq!(list.page_count(256), 0);
        assert_eq!(list.read_all(&store).unwrap(), vec![]);
        assert_eq!(list.read_first_block(&store).unwrap(), vec![]);
        assert_eq!(store.stats().total_io(), 0);
    }

    #[test]
    fn build_and_read_all_preserves_order() {
        let store = PageStore::in_memory(256);
        let data = points(100);
        let list = BlockList::build(&store, &data).unwrap();
        assert_eq!(list.len(), 100);
        assert_eq!(list.read_all(&store).unwrap(), data);
    }

    #[test]
    fn capacity_matches_layout_arithmetic() {
        // 256-byte page: (256 - 10) / 24 = 10 points per block.
        assert_eq!(BlockList::<Point>::capacity(256), 10);
        let store = PageStore::in_memory(256);
        let list = BlockList::build(&store, &points(95)).unwrap();
        assert_eq!(list.page_count(256), 10); // ceil(95/10)
        assert_eq!(store.stats().writes, 10);
    }

    #[test]
    fn early_stop_reads_only_needed_blocks() {
        let store = PageStore::in_memory(256); // 10 points/block
        let list = BlockList::build(&store, &points(100)).unwrap();
        store.reset_stats();
        let mut seen = 0;
        for block in list.blocks(&store) {
            seen += block.unwrap().len();
            if seen >= 25 {
                break;
            }
        }
        assert_eq!(store.stats().reads, 3, "25 records span 3 blocks of 10");
    }

    #[test]
    fn first_block_is_one_io() {
        let store = PageStore::in_memory(256);
        let data = points(50);
        let list = BlockList::build(&store, &data).unwrap();
        store.reset_stats();
        let first = list.read_first_block(&store).unwrap();
        assert_eq!(first, data[..10].to_vec());
        assert_eq!(store.stats().reads, 1);
    }

    #[test]
    fn handle_roundtrips_as_record() {
        let store = PageStore::in_memory(256);
        let list = BlockList::build(&store, &points(30)).unwrap();
        let mut buf = vec![0u8; BlockList::<Point>::ENCODED_LEN];
        let mut w = PageWriter::new(&mut buf);
        list.encode(&mut w).unwrap();
        let mut r = PageReader::new(&buf);
        let back = BlockList::<Point>::decode(&mut r).unwrap();
        assert_eq!(back, list);
        assert_eq!(back.read_all(&store).unwrap().len(), 30);
    }

    #[test]
    fn free_releases_every_page() {
        let store = PageStore::in_memory(256);
        let list = BlockList::build(&store, &points(95)).unwrap();
        assert_eq!(store.live_pages(), 10);
        list.free(&store).unwrap();
        assert_eq!(store.live_pages(), 0);
    }

    #[test]
    fn single_partial_block() {
        let store = PageStore::in_memory(256);
        let data = points(3);
        let list = BlockList::build(&store, &data).unwrap();
        assert_eq!(list.page_count(256), 1);
        assert_eq!(list.read_all(&store).unwrap(), data);
    }

    #[test]
    fn record_page_roundtrip() {
        let data = points(7);
        let mut buf = vec![0u8; 256];
        let mut w = PageWriter::new(&mut buf);
        RecordPage::encode(&mut w, &data).unwrap();
        let mut r = PageReader::new(&buf);
        assert_eq!(RecordPage::decode::<Point>(&mut r).unwrap(), data);
    }

    #[test]
    fn record_page_capacity_accounts_for_headers() {
        assert_eq!(RecordPage::capacity::<Point>(256, 0), 10);
        assert_eq!(RecordPage::capacity::<Point>(256, 24), 9);
    }
}
