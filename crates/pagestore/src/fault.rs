//! Deterministic fault injection for storage backends.
//!
//! [`FaultBackend`] decorates any [`Backend`] and injects failures —
//! transient I/O errors, permanent frame loss, torn writes, single-bit rot
//! — according to a seeded [`FaultPlan`]. Every decision is a pure function
//! of `(seed, op kind, page id, per-page access ordinal)`, so a failure
//! scenario reproduces exactly from its seed: same workload + same plan =
//! same faults, regardless of thread timing or wall clock.
//!
//! A [`FaultHandle`] (cloneable, obtained before the backend is boxed into
//! a store) is the control plane: flip injection on/off mid-run, swap
//! plans, arm targeted "fail the Nth access to page P" triggers, and read
//! back [`InjectionStats`] to assert that a test actually exercised faults.
//!
//! ## Fault taxonomy
//!
//! | fault            | op    | surfaces as                               |
//! |------------------|-------|-------------------------------------------|
//! | transient        | r/w   | `Err(Io)` with a retryable kind           |
//! | frame loss       | read  | sticky permanent `Err(Io)`; write heals   |
//! | torn write       | write | silent `Ok`; prefix new + suffix old      |
//! | bit rot at write | write | silent `Ok`; one flipped bit at rest      |
//! | pending rot      | read  | armed via [`FaultHandle::rot_page`]       |
//!
//! Silent faults are exactly the ones the store's checksums must catch;
//! loud faults are the ones its retry/failover layers must absorb.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use pc_rng::mix64;
use pc_sync::Mutex;

use crate::backend::{Backend, ResilienceStats, ScrubReport};
use crate::error::Result;
use crate::store::PageId;

/// Per-operation fault probabilities plus the seed that makes them
/// deterministic. All probabilities are per-access, in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed for every injection decision. Two backends with the same plan
    /// and workload inject identical faults.
    pub seed: u64,
    /// Phase offset in the unit interval (default `0.0`). Two plans with
    /// the same seed but phases `p` apart fire on *disjoint* accesses (for
    /// probabilities below their phase distance) — mirror tests exploit
    /// this to guarantee no frame is ever corrupted on every replica at
    /// once, making "replication masks silent faults" a certainty rather
    /// than a likelihood.
    pub phase: f64,
    /// Probability a read fails with a retryable I/O error.
    pub read_transient_p: f64,
    /// Probability a write fails with a retryable I/O error (nothing is
    /// written).
    pub write_transient_p: f64,
    /// Probability a write silently persists only a prefix of the frame,
    /// keeping the old suffix (the classic torn page).
    pub torn_write_p: f64,
    /// Probability a write silently flips one bit of the persisted frame.
    pub bit_rot_p: f64,
    /// Probability a read discovers the frame is gone for good: the error
    /// is *permanent* and sticky until the page is rewritten.
    pub frame_loss_p: f64,
}

impl FaultPlan {
    /// A plan that injects nothing (targeted triggers still fire).
    pub fn none(seed: u64) -> Self {
        FaultPlan {
            seed,
            phase: 0.0,
            read_transient_p: 0.0,
            write_transient_p: 0.0,
            torn_write_p: 0.0,
            bit_rot_p: 0.0,
            frame_loss_p: 0.0,
        }
    }

    /// Transient faults only, at probability `p` per read and per write —
    /// everything this plan injects is absorbable by bounded retries.
    pub fn transient(seed: u64, p: f64) -> Self {
        FaultPlan { read_transient_p: p, write_transient_p: p, ..FaultPlan::none(seed) }
    }

    /// The chaos-harness default: the ISSUE's transient `p = 1e-3` on reads
    /// and writes plus periodic torn writes and bit rot. No frame loss, so
    /// a 2-way mirror with phased replicas can always recover.
    pub fn chaos(seed: u64) -> Self {
        FaultPlan {
            read_transient_p: 1e-3,
            write_transient_p: 1e-3,
            torn_write_p: 2e-3,
            bit_rot_p: 2e-3,
            ..FaultPlan::none(seed)
        }
    }

    /// This plan with a different phase offset (see [`FaultPlan::phase`]).
    pub fn with_phase(mut self, phase: f64) -> Self {
        self.phase = phase;
        self
    }
}

/// Snapshot of how many faults a [`FaultBackend`] has injected, by kind.
/// Tests assert on these so "the run survived" can be distinguished from
/// "the run was never actually under fault".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectionStats {
    /// Reads failed with a retryable error.
    pub read_transients: u64,
    /// Writes failed with a retryable error.
    pub write_transients: u64,
    /// Writes that silently persisted a torn frame.
    pub torn_writes: u64,
    /// Writes that silently persisted a flipped bit.
    pub bit_rots: u64,
    /// Frames that became permanently lost (until rewritten).
    pub frames_lost: u64,
    /// Reads served with a pending-rot bit flip applied.
    pub rotten_reads: u64,
    /// Targeted Nth-access triggers that fired.
    pub triggers_fired: u64,
}

impl InjectionStats {
    /// Total injected faults across all kinds.
    pub fn total(&self) -> u64 {
        self.read_transients
            + self.write_transients
            + self.torn_writes
            + self.bit_rots
            + self.frames_lost
            + self.rotten_reads
            + self.triggers_fired
    }
}

/// Mutable fault tables: per-page access ordinals (what makes "the Nth
/// access" well-defined even under concurrency), armed triggers, and the
/// sticky lost / pending-rot page sets. One mutex — fault injection is a
/// test facility, not a hot path.
#[derive(Default)]
struct Tables {
    reads: HashMap<u64, u64>,
    writes: HashMap<u64, u64>,
    read_triggers: HashSet<(u64, u64)>,
    write_triggers: HashSet<(u64, u64)>,
    lost: HashSet<u64>,
    rotten: HashSet<u64>,
}

#[derive(Default)]
struct Counters {
    read_transients: AtomicU64,
    write_transients: AtomicU64,
    torn_writes: AtomicU64,
    bit_rots: AtomicU64,
    frames_lost: AtomicU64,
    rotten_reads: AtomicU64,
    triggers_fired: AtomicU64,
}

struct FaultState {
    enabled: AtomicBool,
    plan: Mutex<FaultPlan>,
    tables: Mutex<Tables>,
    counters: Counters,
}

/// Op salts keep read/write/torn/rot/loss decisions for the same
/// `(page, ordinal)` independent of each other.
const SALT_READ: u64 = 0x7265_6164; // "read"
const SALT_WRITE: u64 = 0x7772_6974; // "writ"
const SALT_TORN: u64 = 0x746f_726e; // "torn"
const SALT_ROT: u64 = 0x1077_0b17;
const SALT_LOSS: u64 = 0x10c0_57f0;

/// One uniform draw in `[0, 1)` from the decision inputs.
fn unit(seed: u64, salt: u64, id: u64, ordinal: u64) -> f64 {
    let h = mix64(
        seed.wrapping_add(mix64(salt))
            .wrapping_add(mix64(id).rotate_left(17))
            .wrapping_add(mix64(ordinal).rotate_left(31)),
    );
    // Standard 53-bit mantissa trick: exact doubles, uniform in [0, 1).
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Deterministic Bernoulli trial: fires iff the draw lands inside the
/// plan's `[phase, phase + p)` window (wrapping at 1.0).
fn decide(plan: &FaultPlan, salt: u64, id: u64, ordinal: u64, p: f64) -> bool {
    if p <= 0.0 {
        return false;
    }
    let u = unit(plan.seed, salt, id, ordinal);
    (u - plan.phase).rem_euclid(1.0) < p
}

fn transient_err(what: &str, id: PageId) -> crate::StoreError {
    std::io::Error::new(
        std::io::ErrorKind::Interrupted,
        format!("injected transient {what} fault on page {}", id.0),
    )
    .into()
}

fn lost_err(id: PageId) -> crate::StoreError {
    // `Other` is deliberately outside `StoreError::is_transient`: a lost
    // frame does not come back by retrying the same replica.
    std::io::Error::other(format!("injected permanent frame loss on page {}", id.0)).into()
}

/// Cloneable control plane for a [`FaultBackend`]; see the module docs.
#[derive(Clone)]
pub struct FaultHandle(Arc<FaultState>);

impl FaultHandle {
    /// Enables or disables all injection (triggers included). Access
    /// ordinals keep counting either way, so a disable/enable window
    /// doesn't shift which later accesses fault.
    pub fn set_enabled(&self, on: bool) {
        self.0.enabled.store(on, Ordering::Relaxed);
    }

    /// True when injection is active.
    pub fn enabled(&self) -> bool {
        self.0.enabled.load(Ordering::Relaxed)
    }

    /// Replaces the fault plan (takes effect on the next access).
    pub fn set_plan(&self, plan: FaultPlan) {
        *self.0.plan.lock() = plan;
    }

    /// Current fault plan.
    pub fn plan(&self) -> FaultPlan {
        *self.0.plan.lock()
    }

    /// Arms a one-shot trigger: the `nth` read of `id` (1-based, counted
    /// over the backend's lifetime) fails with a transient error.
    pub fn fail_nth_read(&self, id: PageId, nth: u64) {
        self.0.tables.lock().read_triggers.insert((id.0, nth));
    }

    /// Arms a one-shot trigger: the `nth` write of `id` (1-based) fails
    /// with a transient error before reaching the inner backend.
    pub fn fail_nth_write(&self, id: PageId, nth: u64) {
        self.0.tables.lock().write_triggers.insert((id.0, nth));
    }

    /// Marks `id` permanently lost: reads fail with a non-retryable error
    /// until the page is rewritten (or [`FaultHandle::heal_page`] is called).
    pub fn lose_page(&self, id: PageId) {
        self.0.tables.lock().lost.insert(id.0);
    }

    /// Arms pending rot on `id`: subsequent reads return the stored frame
    /// with one deterministic bit flipped, until the page is rewritten.
    /// This corrupts only *this* backend — through a mirror it models rot
    /// on a single replica, which read-repair and scrub must heal.
    pub fn rot_page(&self, id: PageId) {
        self.0.tables.lock().rotten.insert(id.0);
    }

    /// Clears any lost / pending-rot marks on `id`.
    pub fn heal_page(&self, id: PageId) {
        let mut t = self.0.tables.lock();
        t.lost.remove(&id.0);
        t.rotten.remove(&id.0);
    }

    /// Cumulative injection counts since construction.
    pub fn injected(&self) -> InjectionStats {
        let c = &self.0.counters;
        InjectionStats {
            read_transients: c.read_transients.load(Ordering::Relaxed),
            write_transients: c.write_transients.load(Ordering::Relaxed),
            torn_writes: c.torn_writes.load(Ordering::Relaxed),
            bit_rots: c.bit_rots.load(Ordering::Relaxed),
            frames_lost: c.frames_lost.load(Ordering::Relaxed),
            rotten_reads: c.rotten_reads.load(Ordering::Relaxed),
            triggers_fired: c.triggers_fired.load(Ordering::Relaxed),
        }
    }
}

/// A [`Backend`] decorator injecting deterministic faults; see module docs.
pub struct FaultBackend {
    inner: Box<dyn Backend>,
    state: Arc<FaultState>,
}

impl FaultBackend {
    /// Wraps `inner` with injection governed by `plan` (enabled from the
    /// start; a [`FaultPlan::none`] plan injects nothing until triggers are
    /// armed or the plan is swapped via the handle).
    pub fn new(inner: Box<dyn Backend>, plan: FaultPlan) -> Self {
        FaultBackend {
            inner,
            state: Arc::new(FaultState {
                enabled: AtomicBool::new(true),
                plan: Mutex::new(plan),
                tables: Mutex::new(Tables::default()),
                counters: Counters::default(),
            }),
        }
    }

    /// Control handle; grab one before boxing the backend into a store.
    pub fn handle(&self) -> FaultHandle {
        FaultHandle(Arc::clone(&self.state))
    }

    fn bump(&self, c: &AtomicU64) {
        c.fetch_add(1, Ordering::Relaxed);
        pc_obs::counter(pc_obs::fault_metrics::INJECTED).inc();
    }
}

impl Backend for FaultBackend {
    fn frame_size(&self) -> usize {
        self.inner.frame_size()
    }

    fn read_frame(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        if !self.state.enabled.load(Ordering::Relaxed) {
            // Still count the access so ordinals stay workload-aligned.
            let mut t = self.state.tables.lock();
            *t.reads.entry(id.0).or_insert(0) += 1;
            drop(t);
            return self.inner.read_frame(id, buf);
        }
        let plan = *self.state.plan.lock();
        let (ordinal, triggered, lost, rotten) = {
            let mut t = self.state.tables.lock();
            let n = t.reads.entry(id.0).or_insert(0);
            *n += 1;
            let ordinal = *n;
            let triggered = t.read_triggers.remove(&(id.0, ordinal));
            let lost = t.lost.contains(&id.0)
                || if decide(&plan, SALT_LOSS, id.0, ordinal, plan.frame_loss_p) {
                    t.lost.insert(id.0);
                    self.bump(&self.state.counters.frames_lost);
                    true
                } else {
                    false
                };
            (ordinal, triggered, lost, t.rotten.contains(&id.0))
        };
        if triggered {
            self.bump(&self.state.counters.triggers_fired);
            return Err(transient_err("read", id));
        }
        if lost {
            return Err(lost_err(id));
        }
        if decide(&plan, SALT_READ, id.0, ordinal, plan.read_transient_p) {
            self.bump(&self.state.counters.read_transients);
            return Err(transient_err("read", id));
        }
        self.inner.read_frame(id, buf)?;
        if rotten && !buf.is_empty() {
            let bit = mix64(plan.seed ^ mix64(id.0 ^ SALT_ROT)) as usize % (buf.len() * 8);
            buf[bit / 8] ^= 1 << (bit % 8);
            self.bump(&self.state.counters.rotten_reads);
        }
        Ok(())
    }

    fn write_frame(&self, id: PageId, buf: &[u8]) -> Result<()> {
        if !self.state.enabled.load(Ordering::Relaxed) {
            let mut t = self.state.tables.lock();
            *t.writes.entry(id.0).or_insert(0) += 1;
            drop(t);
            return self.inner.write_frame(id, buf);
        }
        let plan = *self.state.plan.lock();
        let (ordinal, triggered) = {
            let mut t = self.state.tables.lock();
            let n = t.writes.entry(id.0).or_insert(0);
            *n += 1;
            let ordinal = *n;
            (ordinal, t.write_triggers.remove(&(id.0, ordinal)))
        };
        if triggered {
            self.bump(&self.state.counters.triggers_fired);
            return Err(transient_err("write", id));
        }
        if decide(&plan, SALT_WRITE, id.0, ordinal, plan.write_transient_p) {
            self.bump(&self.state.counters.write_transients);
            return Err(transient_err("write", id));
        }
        // From here the write reaches media (possibly mangled), replacing
        // whatever was stored: loss and pending rot are healed.
        {
            let mut t = self.state.tables.lock();
            t.lost.remove(&id.0);
            t.rotten.remove(&id.0);
        }
        if buf.len() >= 2 && decide(&plan, SALT_TORN, id.0, ordinal, plan.torn_write_p) {
            self.bump(&self.state.counters.torn_writes);
            let mut torn = vec![0u8; buf.len()];
            self.inner.read_frame(id, &mut torn)?; // old contents
            let cut = 1 + mix64(plan.seed ^ mix64(id.0 ^ ordinal)) as usize % (buf.len() - 1);
            torn[..cut].copy_from_slice(&buf[..cut]);
            return self.inner.write_frame(id, &torn); // silent success
        }
        if !buf.is_empty() && decide(&plan, SALT_ROT, id.0, ordinal, plan.bit_rot_p) {
            self.bump(&self.state.counters.bit_rots);
            let mut rotted = buf.to_vec();
            let bit = mix64(plan.seed ^ mix64(id.0.rotate_left(7) ^ ordinal)) as usize
                % (buf.len() * 8);
            rotted[bit / 8] ^= 1 << (bit % 8);
            return self.inner.write_frame(id, &rotted); // silent success
        }
        self.inner.write_frame(id, buf)
    }

    fn sync(&self) -> Result<()> {
        self.inner.sync()
    }

    fn frame_count(&self) -> u64 {
        self.inner.frame_count()
    }

    fn resilience_stats(&self) -> ResilienceStats {
        self.inner.resilience_stats()
    }

    fn reset_resilience_stats(&self) {
        self.inner.reset_resilience_stats()
    }

    fn scrub(&self) -> Result<ScrubReport> {
        self.inner.scrub()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;

    fn fresh(plan: FaultPlan) -> (FaultBackend, FaultHandle) {
        let b = FaultBackend::new(Box::new(MemBackend::new(64)), plan);
        let h = b.handle();
        (b, h)
    }

    fn write_ok(b: &FaultBackend, id: u64, fill: u8) {
        b.write_frame(PageId(id), &[fill; 64]).unwrap();
    }

    #[test]
    fn same_seed_injects_identical_faults() {
        let run = |seed: u64| {
            let (b, h) = fresh(FaultPlan::transient(seed, 0.2));
            let mut outcomes = Vec::new();
            let mut buf = [0u8; 64];
            for i in 0..50u64 {
                outcomes.push(b.write_frame(PageId(i % 5), &[1; 64]).is_ok());
                outcomes.push(b.read_frame(PageId(i % 5), &mut buf).is_ok());
            }
            (outcomes, h.injected())
        };
        let (a, sa) = run(42);
        let (b, sb) = run(42);
        assert_eq!(a, b, "same seed must produce the same fault sequence");
        assert_eq!(sa, sb);
        assert!(sa.total() > 0, "p=0.2 over 100 ops must inject something");
        let (c, _) = run(43);
        assert_ne!(a, c, "different seeds should diverge (p=0.2, 100 ops)");
    }

    #[test]
    fn disabled_backend_is_transparent_but_keeps_counting() {
        let (b, h) = fresh(FaultPlan::transient(7, 1.0));
        h.set_enabled(false);
        let mut buf = [0u8; 64];
        for i in 0..20u64 {
            b.write_frame(PageId(i), &[3; 64]).unwrap();
            b.read_frame(PageId(i), &mut buf).unwrap();
            assert_eq!(buf, [3u8; 64]);
        }
        assert_eq!(h.injected().total(), 0);
        // Re-enabling with p=1.0: the very next access faults.
        h.set_enabled(true);
        assert!(b.read_frame(PageId(0), &mut buf).is_err());
    }

    #[test]
    fn nth_access_triggers_fire_exactly_once() {
        let (b, h) = fresh(FaultPlan::none(1));
        write_ok(&b, 9, 5);
        h.fail_nth_read(PageId(9), 2);
        h.fail_nth_write(PageId(9), 3); // one write done already → 3rd is next+1
        let mut buf = [0u8; 64];
        b.read_frame(PageId(9), &mut buf).unwrap(); // 1st read: fine
        let err = b.read_frame(PageId(9), &mut buf).unwrap_err(); // 2nd: trigger
        assert!(err.is_transient());
        b.read_frame(PageId(9), &mut buf).unwrap(); // 3rd: one-shot, fine again
        write_ok(&b, 9, 6); // 2nd write: fine
        assert!(b.write_frame(PageId(9), &[7; 64]).unwrap_err().is_transient());
        write_ok(&b, 9, 7); // 4th write: fine
        assert_eq!(h.injected().triggers_fired, 2);
    }

    #[test]
    fn torn_writes_are_silent_and_compose_old_and_new() {
        let (b, h) = fresh(FaultPlan::none(11));
        b.write_frame(PageId(0), &[0xaa; 64]).unwrap();
        h.set_plan(FaultPlan { torn_write_p: 1.0, ..FaultPlan::none(11) });
        b.write_frame(PageId(0), &[0xbb; 64]).unwrap(); // silent tear
        assert_eq!(h.injected().torn_writes, 1);
        let mut buf = [0u8; 64];
        b.read_frame(PageId(0), &mut buf).unwrap();
        let cut = buf.iter().position(|&x| x == 0xaa).expect("old suffix must survive");
        assert!(cut >= 1, "at least one new byte lands");
        assert!(buf[..cut].iter().all(|&x| x == 0xbb), "new prefix");
        assert!(buf[cut..].iter().all(|&x| x == 0xaa), "old suffix");
    }

    #[test]
    fn bit_rot_flips_exactly_one_bit() {
        let (b, h) = fresh(FaultPlan { bit_rot_p: 1.0, ..FaultPlan::none(13) });
        b.write_frame(PageId(4), &[0u8; 64]).unwrap();
        assert_eq!(h.injected().bit_rots, 1);
        let mut buf = [0u8; 64];
        b.read_frame(PageId(4), &mut buf).unwrap();
        let ones: u32 = buf.iter().map(|b| b.count_ones()).sum();
        assert_eq!(ones, 1, "exactly one bit differs from the written frame");
    }

    #[test]
    fn frame_loss_is_sticky_until_rewritten() {
        let (b, h) = fresh(FaultPlan::none(17));
        write_ok(&b, 2, 9);
        h.lose_page(PageId(2));
        let mut buf = [0u8; 64];
        for _ in 0..3 {
            let err = b.read_frame(PageId(2), &mut buf).unwrap_err();
            assert!(!err.is_transient(), "loss must be permanent: {err}");
        }
        assert_eq!(h.injected().total(), 0, "armed loss is not an injection event");
        write_ok(&b, 2, 10); // rewrite heals
        b.read_frame(PageId(2), &mut buf).unwrap();
        assert_eq!(buf, [10u8; 64]);
    }

    #[test]
    fn pending_rot_corrupts_reads_until_rewrite() {
        let (b, h) = fresh(FaultPlan::none(19));
        write_ok(&b, 3, 0x55);
        h.rot_page(PageId(3));
        let mut buf = [0u8; 64];
        b.read_frame(PageId(3), &mut buf).unwrap();
        assert_ne!(buf, [0x55u8; 64], "rotten read must differ");
        let diff: u32 = buf.iter().map(|x| (x ^ 0x55).count_ones()).sum();
        assert_eq!(diff, 1, "by exactly one bit");
        // Deterministic: the same bit every time.
        let mut again = [0u8; 64];
        b.read_frame(PageId(3), &mut again).unwrap();
        assert_eq!(buf, again);
        assert_eq!(h.injected().rotten_reads, 2);
        write_ok(&b, 3, 0x66);
        b.read_frame(PageId(3), &mut buf).unwrap();
        assert_eq!(buf, [0x66u8; 64]);
    }

    #[test]
    fn phased_plans_never_fire_on_the_same_access() {
        // Same seed, phases 0.0 and 0.5: for every (page, ordinal) at most
        // one of the two plans injects — the mirror-replica guarantee.
        let pa = FaultPlan { torn_write_p: 0.3, bit_rot_p: 0.3, ..FaultPlan::none(23) };
        let pb = pa.with_phase(0.5);
        for id in 0..64u64 {
            for ordinal in 1..=64u64 {
                for salt in [SALT_TORN, SALT_ROT] {
                    let fa = decide(&pa, salt, id, ordinal, 0.3);
                    let fb = decide(&pb, salt, id, ordinal, 0.3);
                    assert!(!(fa && fb), "phased plans overlapped at ({id}, {ordinal})");
                }
            }
        }
    }

    #[test]
    fn unit_draw_is_uniformish() {
        let mut below = 0u32;
        for i in 0..10_000u64 {
            if unit(3, SALT_READ, i % 97, i / 97) < 0.25 {
                below += 1;
            }
        }
        assert!((2000..3000).contains(&below), "p=0.25 over 10k draws: got {below}");
    }
}
