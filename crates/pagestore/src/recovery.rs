//! Crash recovery: replaying a scanned WAL onto a backend.
//!
//! Recovery is redo-only. The scan ([`crate::wal::scan`]) already dropped
//! any torn tail; this module replays the surviving records *up to the
//! last commit* — records after it are intact but unacknowledged, so they
//! are discarded (counted in the report), never applied. Applying them
//! would resurrect half of a structural update (an insert touches many
//! pages) and hand back a corrupt tree; stopping at the last commit lands
//! the store exactly on the most recent acknowledged consistency point.
//!
//! Replay writes full checksummed frames straight to the backend (the
//! same layout [`crate::PageStore`] writes), reconstructs the allocation
//! table from the last checkpoint snapshot plus the replayed
//! alloc/free records, and reports what it did in a [`RecoveryReport`].

use crate::backend::Backend;
use crate::codec::fnv1a64;
use crate::error::{Result, StoreError};
use crate::store::CHECKSUM_LEN;
use crate::wal::{AllocSnapshot, ScanOutcome, WalRecord};

/// What recovery found and did while reopening a durable store.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Page images rewritten into the data backend.
    pub replayed_writes: u64,
    /// Allocation records replayed into the allocation table.
    pub replayed_allocs: u64,
    /// Free records replayed into the allocation table.
    pub replayed_frees: u64,
    /// Commit records inside the replayed range (= durable batches
    /// recovered).
    pub commits: u64,
    /// True when the log ended in a torn or corrupt tail that was dropped.
    pub torn_tail: bool,
    /// Intact records after the last commit, discarded as unacknowledged
    /// (plus any records the torn tail cut off are simply absent).
    pub discarded_records: u64,
    /// Metadata payload of the last replayed commit — the caller's batch
    /// marker, telling the layer above exactly which acknowledged batch
    /// the store recovered to. `None` when the log held no commit.
    pub last_commit_meta: Option<Vec<u8>>,
    /// True when the *data file* (not the log) ended mid-frame and the
    /// dangling tail was truncated before replay. Filled in by
    /// [`crate::PageStore::file_durable`]; always false for replay over
    /// in-memory media.
    pub data_torn_tail: bool,
}

impl RecoveryReport {
    /// Total records replayed (writes + allocs + frees + commits).
    pub fn replayed_records(&self) -> u64 {
        self.replayed_writes + self.replayed_allocs + self.replayed_frees + self.commits
    }

    /// True when recovery had nothing to do: no replay, no torn tail, no
    /// discarded records — the store was closed cleanly.
    pub fn clean(&self) -> bool {
        self.replayed_records() == 0
            && self.discarded_records == 0
            && !self.torn_tail
            && !self.data_torn_tail
    }
}

/// Applies an alloc record to a snapshot: the id leaves the free list (its
/// relative order otherwise preserved — recycling pops from the back, and
/// replay re-applies operations in their original order) or extends the
/// never-allocated frontier.
fn apply_alloc(snap: &mut AllocSnapshot, id: u64) {
    if let Some(pos) = snap.free_list.iter().rposition(|&f| f == id) {
        snap.free_list.remove(pos);
    }
    if id >= snap.next_id {
        snap.next_id = id + 1;
    }
}

/// Replays `outcome` onto `backend`, stopping at the last commit record.
///
/// Returns the report plus the reconstructed allocation snapshot. The
/// caller owns durability sequencing: it must `sync` the backend and then
/// install a fresh checkpoint so the replayed records are never needed
/// again. `backend` must have frame size `page_size + 8`.
pub fn replay(
    backend: &dyn Backend,
    page_size: usize,
    outcome: &ScanOutcome,
) -> Result<(RecoveryReport, AllocSnapshot)> {
    debug_assert_eq!(backend.frame_size(), page_size + CHECKSUM_LEN);
    let mut report = RecoveryReport { torn_tail: outcome.torn_bytes > 0, ..Default::default() };

    // The replayable range: after the last checkpoint (its records are
    // already in the data file), up to and including the last commit.
    let ckpt = outcome
        .records
        .iter()
        .rposition(|r| matches!(r, WalRecord::Checkpoint { .. }));
    let mut snap = match ckpt {
        Some(i) => match &outcome.records[i] {
            WalRecord::Checkpoint { alloc, meta, .. } => {
                // The checkpoint re-embeds the commit metadata that was
                // current when it was installed; without it, a crash after
                // a checkpoint (with no later commit) would forget which
                // acknowledged batch the store sits on. A later commit in
                // the replay range overrides this.
                if !meta.is_empty() {
                    report.last_commit_meta = Some(meta.clone());
                }
                alloc.clone()
            }
            _ => unreachable!(),
        },
        None => AllocSnapshot::default(),
    };
    let start = ckpt.map(|i| i + 1).unwrap_or(0);
    let last_commit = outcome.records[start..]
        .iter()
        .rposition(|r| matches!(r, WalRecord::Commit { .. }))
        .map(|i| start + i);

    let end = match last_commit {
        Some(i) => i + 1,
        // No commit since the checkpoint: nothing is acknowledged, so
        // nothing is replayed and everything pending is discarded.
        None => start,
    };
    report.discarded_records = (outcome.records.len() - end) as u64;

    let mut frame = vec![0u8; page_size + CHECKSUM_LEN];
    for rec in &outcome.records[start..end] {
        match rec {
            WalRecord::PageWrite { page, data, .. } => {
                if data.len() > page_size {
                    return Err(StoreError::Corrupt(format!(
                        "WAL page image of {} bytes exceeds page size {page_size}",
                        data.len()
                    )));
                }
                frame.fill(0);
                frame[..data.len()].copy_from_slice(data);
                let checksum = fnv1a64(&frame[..page_size]);
                frame[page_size..].copy_from_slice(&checksum.to_le_bytes());
                backend.write_frame(*page, &frame)?;
                report.replayed_writes += 1;
            }
            WalRecord::Alloc { page, .. } => {
                apply_alloc(&mut snap, page.0);
                report.replayed_allocs += 1;
            }
            WalRecord::Free { page, .. } => {
                snap.free_list.push(page.0);
                report.replayed_frees += 1;
            }
            WalRecord::Commit { meta, .. } => {
                report.commits += 1;
                report.last_commit_meta = Some(meta.clone());
            }
            // A checkpoint inside the replay range cannot happen (the
            // range starts after the last one), but tolerate it: it is a
            // full snapshot, so adopting it is always correct.
            WalRecord::Checkpoint { alloc, .. } => {
                snap = alloc.clone();
            }
        }
    }
    Ok((report, snap))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;
    use crate::store::PageId;
    use crate::wal::{encode_header, scan};

    fn scan_of(records: &[WalRecord], page_size: usize) -> ScanOutcome {
        let mut bytes = encode_header(page_size);
        for r in records {
            r.encode_into(&mut bytes);
        }
        scan(&bytes, page_size).unwrap()
    }

    fn read_payload(backend: &dyn Backend, page: PageId, page_size: usize) -> Vec<u8> {
        let mut frame = vec![0u8; page_size + CHECKSUM_LEN];
        backend.read_frame(page, &mut frame).unwrap();
        let stored = u64::from_le_bytes(frame[page_size..].try_into().unwrap());
        assert_eq!(stored, fnv1a64(&frame[..page_size]), "replayed frame must be checksummed");
        frame.truncate(page_size);
        frame
    }

    #[test]
    fn replay_stops_at_the_last_commit() {
        let backend = MemBackend::new(64 + CHECKSUM_LEN);
        let recs = vec![
            WalRecord::Alloc { lsn: 1, page: PageId(0) },
            WalRecord::PageWrite { lsn: 2, page: PageId(0), data: b"acked".to_vec() },
            WalRecord::Commit { lsn: 3, meta: vec![1] },
            WalRecord::PageWrite { lsn: 4, page: PageId(0), data: b"UNACKED".to_vec() },
            WalRecord::Alloc { lsn: 5, page: PageId(1) },
        ];
        let (report, snap) = replay(&backend, 64, &scan_of(&recs, 64)).unwrap();
        assert_eq!(report.replayed_writes, 1);
        assert_eq!(report.replayed_allocs, 1);
        assert_eq!(report.commits, 1);
        assert_eq!(report.discarded_records, 2, "records past the commit are dropped");
        assert_eq!(report.last_commit_meta.as_deref(), Some(&[1u8][..]));
        assert!(!report.torn_tail);
        assert!(!report.clean());
        assert_eq!(snap, AllocSnapshot { next_id: 1, free_list: vec![] });
        assert_eq!(&read_payload(&backend, PageId(0), 64)[..5], b"acked");
    }

    #[test]
    fn replay_starts_after_the_last_checkpoint() {
        let backend = MemBackend::new(64 + CHECKSUM_LEN);
        let recs = vec![
            // Pre-checkpoint history must NOT be replayed (it is already
            // in the data file; rewriting page 7 here would be wrong if
            // the post-checkpoint state differs).
            WalRecord::PageWrite { lsn: 1, page: PageId(7), data: b"stale".to_vec() },
            WalRecord::Commit { lsn: 2, meta: vec![] },
            WalRecord::Checkpoint {
                lsn: 3,
                alloc: AllocSnapshot { next_id: 3, free_list: vec![2] },
                meta: b"ckpt-era".to_vec(),
            },
            WalRecord::Alloc { lsn: 4, page: PageId(2) },
            WalRecord::PageWrite { lsn: 5, page: PageId(2), data: b"fresh".to_vec() },
            WalRecord::Commit { lsn: 6, meta: vec![9] },
        ];
        let (report, snap) = replay(&backend, 64, &scan_of(&recs, 64)).unwrap();
        assert_eq!(report.replayed_writes, 1, "only the post-checkpoint write");
        assert_eq!(report.commits, 1, "only the post-checkpoint commit");
        assert_eq!(
            report.last_commit_meta.as_deref(),
            Some(&[9u8][..]),
            "a commit after the checkpoint overrides the checkpoint's re-embedded metadata"
        );
        assert_eq!(snap, AllocSnapshot { next_id: 3, free_list: vec![] });
        // Page 7 untouched: still reads as never-written zeroes.
        let mut frame = vec![0u8; 64 + CHECKSUM_LEN];
        backend.read_frame(PageId(7), &mut frame).unwrap();
        assert!(frame.iter().all(|&b| b == 0));
        assert_eq!(&read_payload(&backend, PageId(2), 64)[..5], b"fresh");
    }

    #[test]
    fn no_commit_means_nothing_replays() {
        let backend = MemBackend::new(64 + CHECKSUM_LEN);
        let recs = vec![
            WalRecord::Alloc { lsn: 1, page: PageId(0) },
            WalRecord::PageWrite { lsn: 2, page: PageId(0), data: b"pending".to_vec() },
        ];
        let (report, snap) = replay(&backend, 64, &scan_of(&recs, 64)).unwrap();
        assert_eq!(report.replayed_records(), 0);
        assert_eq!(report.discarded_records, 2);
        assert_eq!(report.last_commit_meta, None);
        assert_eq!(snap, AllocSnapshot::default());
        let mut frame = vec![0u8; 64 + CHECKSUM_LEN];
        backend.read_frame(PageId(0), &mut frame).unwrap();
        assert!(frame.iter().all(|&b| b == 0), "unacked write never reaches the backend");
    }

    #[test]
    fn alloc_and_free_replay_preserves_recycling_order() {
        let backend = MemBackend::new(64 + CHECKSUM_LEN);
        // Start from a checkpoint with free list [5, 3] (3 recycles first:
        // alloc pops from the back).
        let recs = vec![
            WalRecord::Checkpoint {
                lsn: 1,
                alloc: AllocSnapshot { next_id: 6, free_list: vec![5, 3] },
                meta: vec![],
            },
            WalRecord::Alloc { lsn: 2, page: PageId(3) },
            WalRecord::Free { lsn: 3, page: PageId(0) },
            WalRecord::Alloc { lsn: 4, page: PageId(6) },
            WalRecord::Commit { lsn: 5, meta: vec![] },
        ];
        let (report, snap) = replay(&backend, 64, &scan_of(&recs, 64)).unwrap();
        assert_eq!(report.replayed_allocs, 2);
        assert_eq!(report.replayed_frees, 1);
        assert_eq!(snap, AllocSnapshot { next_id: 7, free_list: vec![5, 0] });
    }

    #[test]
    fn clean_log_reports_clean() {
        let backend = MemBackend::new(64 + CHECKSUM_LEN);
        // Exactly what a checkpointed, cleanly-closed store leaves behind.
        let recs = vec![WalRecord::Checkpoint {
            lsn: 1,
            alloc: AllocSnapshot { next_id: 2, free_list: vec![] },
            meta: b"sticky".to_vec(),
        }];
        let (report, snap) = replay(&backend, 64, &scan_of(&recs, 64)).unwrap();
        assert!(report.clean(), "{report:?}");
        assert_eq!(
            report.last_commit_meta.as_deref(),
            Some(&b"sticky"[..]),
            "a clean checkpoint-only log still restores the commit metadata"
        );
        assert_eq!(snap.next_id, 2);
        // An empty log is clean too.
        let (report, snap) = replay(&backend, 64, &ScanOutcome::default()).unwrap();
        assert!(report.clean());
        assert_eq!(snap, AllocSnapshot::default());
    }

    #[test]
    fn oversized_page_image_is_corrupt() {
        let backend = MemBackend::new(64 + CHECKSUM_LEN);
        let recs = vec![
            WalRecord::PageWrite { lsn: 1, page: PageId(0), data: vec![1u8; 65] },
            WalRecord::Commit { lsn: 2, meta: vec![] },
        ];
        let err = replay(&backend, 64, &scan_of(&recs, 64)).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(_)), "got {err}");
    }
}
