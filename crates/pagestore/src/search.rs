//! Tuned intra-page search.
//!
//! Every structure in the workspace locates a record inside a decoded page
//! with a predicate search over a small sorted slice (separator keys,
//! leaf entries, y-ordered points). `std`'s `partition_point` is a plain
//! binary search: one hard-to-predict branch per probe, and for the
//! page-sized slices used here (tens to a few hundred elements) the branch
//! mispredictions dominate once the page is already in memory.
//!
//! [`partition_point`] keeps the same contract but restructures the loop
//! the way "Cache-Friendly Search Trees" (and the classic branch-free
//! lower-bound idiom) suggest:
//!
//! * the probe result feeds the new base through arithmetic
//!   (`base += usize::from(pred) * half`), which compiles to a conditional
//!   move instead of a branch — every iteration does the same work, so the
//!   branch predictor has nothing to miss on;
//! * the search range shrinks by `len -= half` in *both* outcomes, so the
//!   trip count depends only on the slice length, never the data;
//! * below [`LINEAR_CUTOFF`] elements the loop hands over to a forward
//!   linear scan, which beats halving on tiny ranges (the common case for
//!   skeletal slots and short separator arrays) because the scan is a
//!   single predictable loop the hardware prefetcher already has covered.
//!
//! The helper is purely an in-memory optimization: callers issue exactly
//! the same page reads as before, so strict-mode transfer counts are
//! untouched.

/// Range length below which a forward linear scan replaces halving.
///
/// Benchmark-tuned coarsely: any value in 4..=16 is within noise on the
/// slices this workspace produces; 8 keeps the worst-case scan at one
/// cache line of `i64`s.
pub const LINEAR_CUTOFF: usize = 8;

/// Branch-free equivalent of [`slice::partition_point`].
///
/// Requires the same precondition: `pred` is monotone over `xs` (a — possibly
/// empty — prefix satisfies it, the rest does not). Returns the length of
/// that prefix, i.e. the index of the first element for which `pred` is
/// false, or `xs.len()` when all satisfy it.
#[inline]
pub fn partition_point<T>(xs: &[T], mut pred: impl FnMut(&T) -> bool) -> usize {
    let mut base = 0usize;
    let mut len = xs.len();
    // Invariants: every element before `base` satisfies `pred`, and the
    // boundary lies in `base..=base + len`. Probing `base + half - 1` and
    // shrinking by `half` in both outcomes preserves both: on success the
    // boundary is >= base + half; on failure it is <= base + half - 1,
    // and the kept slack `len - half = ceil(len/2) >= half - 1` covers it.
    while len > LINEAR_CUTOFF {
        let half = len / 2;
        let advance = usize::from(pred(&xs[base + half - 1]));
        base += advance * half;
        len -= half;
    }
    let end = base + len;
    while base < end && pred(&xs[base]) {
        base += 1;
    }
    base
}

/// Binary search for `key` in a sorted slice, keyed by `f`, built on
/// [`partition_point`]. Same contract as `slice::binary_search_by_key` for
/// slices with **distinct** keys: `Ok(i)` when `f(&xs[i]) == *key`, else
/// `Err(i)` with the insertion index.
#[inline]
pub fn binary_search_by_key<T, K: Ord>(
    xs: &[T],
    key: &K,
    mut f: impl FnMut(&T) -> K,
) -> Result<usize, usize> {
    let i = partition_point(xs, |x| f(x) < *key);
    if i < xs.len() && f(&xs[i]) == *key {
        Ok(i)
    } else {
        Err(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_slice() {
        let xs: [i64; 0] = [];
        assert_eq!(partition_point(&xs, |&x| x < 5), 0);
        assert_eq!(binary_search_by_key(&xs, &5, |&x| x), Err(0));
    }

    #[test]
    fn single_element() {
        assert_eq!(partition_point(&[3i64], |&x| x < 5), 1);
        assert_eq!(partition_point(&[7i64], |&x| x < 5), 0);
        assert_eq!(binary_search_by_key(&[3i64], &3, |&x| x), Ok(0));
        assert_eq!(binary_search_by_key(&[3i64], &2, |&x| x), Err(0));
        assert_eq!(binary_search_by_key(&[3i64], &4, |&x| x), Err(1));
    }

    #[test]
    fn all_equal_keys() {
        let xs = [9i64; 33];
        assert_eq!(partition_point(&xs, |&x| x < 9), 0);
        assert_eq!(partition_point(&xs, |&x| x <= 9), 33);
        assert_eq!(partition_point(&xs, |&x| x < 100), 33);
    }

    #[test]
    fn duplicates_find_first_boundary() {
        let xs = [1i64, 1, 2, 2, 2, 3, 3, 5, 5, 5, 5, 8];
        for key in 0..10 {
            assert_eq!(
                partition_point(&xs, |&x| x < key),
                xs.partition_point(|&x| x < key),
                "key {key}"
            );
            assert_eq!(
                partition_point(&xs, |&x| x <= key),
                xs.partition_point(|&x| x <= key),
                "key {key}"
            );
        }
    }

    #[test]
    fn crossover_boundary_lengths() {
        // Every length around the linear-scan cutoff, every boundary
        // position: the cmov loop and the tail scan must hand off exactly.
        for len in 0..=(4 * LINEAR_CUTOFF) {
            let xs: Vec<usize> = (0..len).collect();
            for boundary in 0..=len {
                assert_eq!(
                    partition_point(&xs, |&x| x < boundary),
                    boundary,
                    "len {len} boundary {boundary}"
                );
            }
        }
    }

    #[test]
    fn agrees_with_std_on_fuzzed_inputs() {
        let mut rng = pc_rng::Rng::seed_from_u64(0x5ea_2c4);
        for _ in 0..2000 {
            let len = rng.gen_range(0usize..200);
            let mut xs: Vec<i64> = (0..len).map(|_| rng.gen_range(-20i64..20)).collect();
            xs.sort_unstable();
            let key = rng.gen_range(-25i64..25);
            assert_eq!(
                partition_point(&xs, |&x| x < key),
                xs.partition_point(|&x| x < key),
                "lt: xs={xs:?} key={key}"
            );
            assert_eq!(
                partition_point(&xs, |&x| x <= key),
                xs.partition_point(|&x| x <= key),
                "le: xs={xs:?} key={key}"
            );
        }
    }

    #[test]
    fn binary_search_matches_std_on_distinct_keys() {
        let mut rng = pc_rng::Rng::seed_from_u64(0x0b5e_a3c1);
        for _ in 0..500 {
            let len = rng.gen_range(0usize..100);
            let mut xs: Vec<i64> = (0..len as i64).map(|i| i * 3).collect();
            xs.dedup();
            let key = rng.gen_range(-5i64..(len as i64 * 3 + 5));
            assert_eq!(
                binary_search_by_key(&xs, &key, |&x| x),
                xs.binary_search(&key),
                "xs={xs:?} key={key}"
            );
        }
    }
}
