//! Geometric record types shared by every index structure in the workspace.
//!
//! They live in the storage crate (the common dependency) so the segment
//! tree, interval tree, and priority search tree crates agree on encodings;
//! the umbrella `path-caching` crate re-exports them as public API.

use crate::codec::{PageReader, PageWriter};
use crate::error::Result;

/// A fixed-size record that can be stored in blocked lists and pages.
pub trait Record: Sized + Clone {
    /// Encoded size in bytes; every instance encodes to exactly this many.
    const ENCODED_LEN: usize;

    /// Serializes into `w`.
    fn encode(&self, w: &mut PageWriter<'_>) -> Result<()>;

    /// Deserializes from `r`.
    fn decode(r: &mut PageReader<'_>) -> Result<Self>;
}

/// A point in the plane with an opaque payload (typically a tuple id).
///
/// Coordinates are `i64`; ties are broken by `id` so inputs can always be
/// treated as having distinct coordinates (the paper's usual general-
/// position assumption, realized by lexicographic comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Point {
    /// x coordinate.
    pub x: i64,
    /// y coordinate.
    pub y: i64,
    /// Caller-defined payload, e.g. a record id.
    pub id: u64,
}

impl Point {
    /// Convenience constructor.
    pub fn new(x: i64, y: i64, id: u64) -> Self {
        Point { x, y, id }
    }

    /// Total order by (x, y, id) — the x-order used for tree division.
    pub fn cmp_xy(&self, other: &Point) -> std::cmp::Ordering {
        (self.x, self.y, self.id).cmp(&(other.x, other.y, other.id))
    }

    /// Total order by (y, x, id) — the y-order used for heap layering.
    pub fn cmp_yx(&self, other: &Point) -> std::cmp::Ordering {
        (self.y, self.x, self.id).cmp(&(other.y, other.x, other.id))
    }
}

impl Record for Point {
    const ENCODED_LEN: usize = 24;

    fn encode(&self, w: &mut PageWriter<'_>) -> Result<()> {
        w.put_i64(self.x)?;
        w.put_i64(self.y)?;
        w.put_u64(self.id)
    }

    fn decode(r: &mut PageReader<'_>) -> Result<Self> {
        Ok(Point { x: r.get_i64()?, y: r.get_i64()?, id: r.get_u64()? })
    }
}

/// A closed interval `[lo, hi]` on the line with an opaque payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interval {
    /// Left endpoint (inclusive).
    pub lo: i64,
    /// Right endpoint (inclusive).
    pub hi: i64,
    /// Caller-defined payload, e.g. a record id.
    pub id: u64,
}

impl Interval {
    /// Creates an interval; panics if `lo > hi`.
    pub fn new(lo: i64, hi: i64, id: u64) -> Self {
        assert!(lo <= hi, "interval endpoints out of order: [{lo}, {hi}]");
        Interval { lo, hi, id }
    }

    /// True if the interval contains the query point `q`.
    pub fn contains(&self, q: i64) -> bool {
        self.lo <= q && q <= self.hi
    }

    /// The [KRV] reduction: interval `[lo, hi]` as the point `(lo, hi)`.
    /// A stabbing query at `q` becomes the 2-sided query `x ≤ q ∧ y ≥ q`
    /// (a diagonal-corner query, since the corner `(q, q)` lies on the
    /// diagonal).
    pub fn to_point(&self) -> Point {
        Point { x: self.lo, y: self.hi, id: self.id }
    }
}

impl Record for Interval {
    const ENCODED_LEN: usize = 24;

    fn encode(&self, w: &mut PageWriter<'_>) -> Result<()> {
        w.put_i64(self.lo)?;
        w.put_i64(self.hi)?;
        w.put_u64(self.id)
    }

    fn decode(r: &mut PageReader<'_>) -> Result<Self> {
        Ok(Interval { lo: r.get_i64()?, hi: r.get_i64()?, id: r.get_u64()? })
    }
}

/// A bare `u64`, used where lists store page ids or record ids.
impl Record for u64 {
    const ENCODED_LEN: usize = 8;

    fn encode(&self, w: &mut PageWriter<'_>) -> Result<()> {
        w.put_u64(*self)
    }

    fn decode(r: &mut PageReader<'_>) -> Result<Self> {
        r.get_u64()
    }
}

/// A bare `i64` key record.
impl Record for i64 {
    const ENCODED_LEN: usize = 8;

    fn encode(&self, w: &mut PageWriter<'_>) -> Result<()> {
        w.put_i64(*self)
    }

    fn decode(r: &mut PageReader<'_>) -> Result<Self> {
        r.get_i64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<R: Record + PartialEq + std::fmt::Debug>(rec: R) {
        let mut buf = vec![0u8; R::ENCODED_LEN];
        let mut w = PageWriter::new(&mut buf);
        rec.encode(&mut w).unwrap();
        assert_eq!(w.position(), R::ENCODED_LEN, "encode must fill ENCODED_LEN exactly");
        let mut r = PageReader::new(&buf);
        assert_eq!(R::decode(&mut r).unwrap(), rec);
    }

    #[test]
    fn record_roundtrips() {
        roundtrip(Point::new(-5, 9, 42));
        roundtrip(Interval::new(-10, 10, 7));
        roundtrip(123_456_789u64);
        roundtrip(-987_654_321i64);
    }

    #[test]
    fn point_orders_break_ties_deterministically() {
        let a = Point::new(1, 2, 0);
        let b = Point::new(1, 2, 1);
        assert_eq!(a.cmp_xy(&b), std::cmp::Ordering::Less);
        assert_eq!(a.cmp_yx(&b), std::cmp::Ordering::Less);
        let c = Point::new(0, 9, 5);
        assert_eq!(c.cmp_xy(&a), std::cmp::Ordering::Less);
        assert_eq!(a.cmp_yx(&c), std::cmp::Ordering::Less);
    }

    #[test]
    fn interval_contains_is_closed() {
        let iv = Interval::new(3, 8, 0);
        assert!(iv.contains(3));
        assert!(iv.contains(8));
        assert!(iv.contains(5));
        assert!(!iv.contains(2));
        assert!(!iv.contains(9));
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn inverted_interval_panics() {
        let _ = Interval::new(5, 4, 0);
    }

    #[test]
    fn krv_reduction_maps_stabbing_to_corner() {
        // interval [2, 9] stabs q=5  <=>  point (2, 9) satisfies x<=5<=y
        let iv = Interval::new(2, 9, 1);
        let p = iv.to_point();
        let q = 5i64;
        assert_eq!(iv.contains(q), p.x <= q && p.y >= q);
        let q = 1i64;
        assert_eq!(iv.contains(q), p.x <= q && p.y >= q);
    }
}
