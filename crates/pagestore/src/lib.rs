//! # pc-pagestore — paged secondary-storage engine
//!
//! This crate is the external-memory substrate for the path-caching
//! reproduction. It models a disk as an array of fixed-size *pages* and
//! charges one I/O per page transferred, exactly matching the cost model of
//! Ramaswamy & Subramanian (PODS 1994): "each secondary memory access
//! transmits one page or `B` units of data, and we count this as one I/O."
//!
//! ## Components
//!
//! * [`PageStore`] — allocation, checksummed page frames, I/O statistics,
//!   and an optional buffer pool. With the pool disabled (the default) the
//!   store implements the *strict* I/O model used by every experiment: each
//!   logical page read/write is one backend transfer. The pool is a
//!   [`ShardedPool`]: per-shard CLOCK rings behind independent locks, with
//!   zero-copy `Arc` hand-out on hits (see DESIGN.md §"Buffer manager").
//! * [`backend`] — where the bytes live: [`backend::MemBackend`] (RAM) or
//!   [`backend::FileBackend`] (a real file, positional I/O).
//! * [`fault`] / [`mirror`] — the failure-handling half: deterministic
//!   seeded fault injection ([`FaultBackend`]) and N-way replication with
//!   checksum-verified read failover and a scrub/repair pass
//!   ([`MirrorBackend`]). The store layers bounded retries and a
//!   quarantine set on top (see DESIGN.md §9 "Fault model & recovery").
//! * [`codec`] — bounds-checked little-endian cursors for page layouts.
//! * [`layout`] — reusable on-page structures, most importantly
//!   [`layout::BlockList`], the blocked linked list that implements every
//!   cover-list, cache, A/S/X/Y list in the paper.
//! * [`types`] — the geometric records ([`types::Point`],
//!   [`types::Interval`]) shared by all index crates.
//!
//! ## Example
//!
//! ```
//! use pc_pagestore::PageStore;
//!
//! let store = PageStore::in_memory(4096);
//! let id = store.alloc().unwrap();
//! store.write(id, b"hello page").unwrap();
//! let page = store.read(id).unwrap();
//! assert_eq!(&page[..10], b"hello page");
//! assert_eq!(store.stats().reads, 1);
//! ```

pub mod backend;
pub mod codec;
pub mod crash;
pub mod error;
pub mod fault;
pub mod layout;
pub mod mirror;
pub mod page;
pub mod pool;
pub mod recovery;
pub mod repack;
pub mod search;
pub mod stats;
pub mod store;
pub mod types;
pub mod version;
pub mod wal;

pub use backend::{ResilienceStats, ScrubReport};
pub use crash::{CrashBackend, CrashController, CrashLog, CrashPlan};
pub use error::{Result, StoreError};
pub use fault::{FaultBackend, FaultHandle, FaultPlan, InjectionStats};
pub use mirror::MirrorBackend;
pub use page::Page;
pub use pool::{BufferPool, ShardStats, ShardedPool};
pub use recovery::RecoveryReport;
pub use repack::{ensure_quiesced, PageGraph, Relocation};
pub use stats::IoStats;
pub use store::{
    PageId, PageStore, RetryPolicy, StoreConfig, StoreObserver, WalConfig, NULL_PAGE,
};
pub use types::{Interval, Point, Record};
pub use version::{
    decode_version_meta, encode_version_meta, ApplyGuard, Snapshot, SnapshotGuard, VersionConfig,
    VersionMeta, VersionMetrics, VersionedStore,
};
pub use wal::{AllocSnapshot, FileLog, LogMedium, MemLog, Wal, WalStats};
