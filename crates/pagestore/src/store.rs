//! The page store: allocation, checksums, I/O accounting, optional buffer
//! pool.
//!
//! Concurrency model: statistics are atomic counters, the allocation table
//! sits behind a read-write lock (shared on the hot read path), and the
//! backend itself is internally synchronized — so concurrent readers of a
//! static structure scale across threads (experiment E15). The optional
//! buffer pool is sharded ([`crate::pool::ShardedPool`]): an access locks
//! only the shard its page hashes to, so pooled readers of distinct pages
//! scale too, and a pool hit hands back the resident `Arc` without copying
//! payload bytes.

use std::collections::{BTreeMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pc_obs::IoEvent;
use pc_sync::{Mutex, RwLock};

use crate::backend::{Backend, FileBackend, MemBackend, ScrubReport};
use crate::codec::fnv1a64;
use crate::error::{Result, StoreError};
use crate::page::Page;
use crate::pool::ShardedPool;
use crate::recovery::RecoveryReport;
use crate::stats::IoStats;
use crate::wal::{AllocSnapshot, FileLog, LogMedium, MemLog, Wal, WalStats};

/// Identifier of a page within one [`PageStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

/// Sentinel id used by on-page layouts for "no page" (e.g. end of a block
/// list). Never returned by [`PageStore::alloc`].
pub const NULL_PAGE: PageId = PageId(u64::MAX);

impl PageId {
    /// True if this id is the [`NULL_PAGE`] sentinel.
    pub fn is_null(self) -> bool {
        self == NULL_PAGE
    }
}

/// Bounded-retry policy for transient backend faults (see
/// [`StoreError::is_transient`]). Permanent errors are never retried.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts per logical backend op, the first included; `1`
    /// disables retrying. Each extra attempt counts one `retries` in
    /// [`IoStats`] — *not* an extra read/write, so strict-mode transfer
    /// accounting is untouched by the retry layer.
    pub max_attempts: u32,
    /// Called before each re-attempt with the attempt number (1-based).
    /// `None` retries immediately — the right choice for simulated
    /// backends, and what keeps fault runs deterministic. A plain `fn`
    /// pointer (not a closure) so the config stays `Copy`/comparable.
    pub backoff: Option<fn(u32)>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 3, backoff: None }
    }
}

impl RetryPolicy {
    /// Policy that never retries (the pre-fault-layer behavior).
    pub fn none() -> Self {
        RetryPolicy { max_attempts: 1, backoff: None }
    }
}

/// Construction-time configuration for a [`PageStore`].
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Usable page payload size in bytes. The paper's block parameter `B`
    /// for a structure storing records of `r` bytes is `page_size / r`.
    pub page_size: usize,
    /// Buffer-pool capacity in pages; `0` disables the pool and yields the
    /// strict I/O model (every logical access is one transfer).
    pub pool_pages: usize,
    /// Number of buffer-pool shards; `0` picks a hardware-sized power of
    /// two automatically, `1` is the classic single-lock pool. Ignored in
    /// strict mode. Free-form values are rounded up to a power of two and
    /// clamped to `pool_pages` (see [`ShardedPool::resolve_shards`]).
    pub pool_shards: usize,
    /// Transient-fault retry policy for backend reads and writes.
    pub retry: RetryPolicy,
}

impl StoreConfig {
    /// Strict-model configuration with the given page size.
    pub fn strict(page_size: usize) -> Self {
        StoreConfig { page_size, pool_pages: 0, pool_shards: 0, retry: RetryPolicy::default() }
    }

    /// Pooled configuration with auto-sized sharding.
    pub fn pooled(page_size: usize, pool_pages: usize) -> Self {
        StoreConfig { page_size, pool_pages, pool_shards: 0, retry: RetryPolicy::default() }
    }

    /// This configuration with a different retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }
}

/// Length of the fnv1a64 checksum trailer appended to every stored frame
/// (so a backend frame is `page_size + CHECKSUM_LEN` bytes).
pub const CHECKSUM_LEN: usize = 8;

/// Configuration for a durable (WAL-backed) store.
#[derive(Debug, Clone, Copy)]
pub struct WalConfig {
    /// Log size (in bytes) at which a successful commit triggers an
    /// automatic checkpoint, bounding both log growth and replay work at
    /// the next open. Checkpoints only ever run at commit boundaries, so
    /// the data file never sees an inconsistent state.
    pub checkpoint_bytes: u64,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig { checkpoint_bytes: 1 << 20 }
    }
}

/// The durable half of a [`PageStore`]: the write-ahead log plus the
/// no-steal dirty-page table.
///
/// Durability discipline (see `wal` module docs): every mutation is logged
/// *before* it becomes visible; page images live only in `dirty` (and the
/// log) until a checkpoint flushes them to the data backend at a commit
/// boundary. The data file therefore only ever holds committed, consistent
/// states — redo-only recovery, no undo.
struct WalState {
    wal: Wal,
    /// Committed-or-pending page images not yet checkpointed into the data
    /// backend, keyed by page id. Reads check here first.
    dirty: Mutex<BTreeMap<u64, Page>>,
    /// Serializes mutations (write/alloc/free) against commit/checkpoint,
    /// so a checkpoint's log reset can never drop a record appended after
    /// its data-file flush. Always taken before the allocation lock.
    op_lock: Mutex<()>,
    checkpoint_bytes: u64,
    /// Most recent **non-empty** commit metadata. Commit metadata is
    /// *sticky*: an empty-meta commit (`sync`) re-stamps this payload
    /// instead of clobbering it, and checkpoints re-embed it in their
    /// checkpoint record — so recovery always reports the latest tagged
    /// consistency point (the versioning layer's epoch map lives here;
    /// losing it to a `sync` or a checkpoint would roll reads back).
    last_meta: Mutex<Vec<u8>>,
}

/// Store-global counters. Pool hits and evictions live in per-shard
/// atomics inside [`ShardedPool`] and are folded in by
/// [`PageStore::stats`], so the hot hit path touches only shard-local
/// state.
#[derive(Default)]
struct AtomicStats {
    reads: AtomicU64,
    writes: AtomicU64,
    allocs: AtomicU64,
    frees: AtomicU64,
    retries: AtomicU64,
    quarantined: AtomicU64,
}

impl AtomicStats {
    fn snapshot(&self) -> IoStats {
        IoStats {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            allocs: self.allocs.load(Ordering::Relaxed),
            frees: self.frees.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            ..IoStats::default()
        }
    }

    fn reset(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
        self.allocs.store(0, Ordering::Relaxed);
        self.frees.store(0, Ordering::Relaxed);
        self.retries.store(0, Ordering::Relaxed);
        self.quarantined.store(0, Ordering::Relaxed);
    }
}

#[derive(Default)]
struct AllocState {
    allocated: Vec<bool>,
    free_list: Vec<u64>,
    next_id: u64,
}

/// A simulated (or file-backed) disk of fixed-size pages.
///
/// All methods take `&self`; index structures expose `&self` query APIs and
/// the experiment harness drives stores from multiple threads.
pub struct PageStore {
    page_size: usize,
    backend: Box<dyn Backend>,
    stats: AtomicStats,
    alloc: RwLock<AllocState>,
    pool: Option<ShardedPool>,
    retry: RetryPolicy,
    /// Pages that exhausted their transient-retry budget. Reads and writes
    /// refuse them with [`StoreError::Quarantined`] until a scrub or an
    /// explicit clear, so a flaky page degrades to clean errors instead of
    /// burning its retry budget on every access.
    quarantine: Mutex<HashSet<u64>>,
    /// Mirror of `quarantine.len()`, so the (overwhelmingly common) empty
    /// case is a lock-free relaxed load on the hot read/write path.
    quarantine_len: AtomicU64,
    /// `Some` for durable stores: write-ahead log + dirty table. `None`
    /// keeps the classic volatile store with bit-identical I/O accounting.
    wal: Option<WalState>,
    /// Event hook for distributions the cumulative counters cannot carry
    /// (e.g. per-commit group sizes). `None` until registered.
    observer: RwLock<Option<Arc<dyn StoreObserver>>>,
}

/// Observer of store events whose *distribution* matters, not just the
/// count ([`IoStats`]/[`WalStats`] carry the cumulative totals). Called
/// synchronously on the operating thread, so implementations must be cheap
/// — record into an atomic histogram and return. Registered with
/// [`PageStore::set_observer`].
pub trait StoreObserver: Send + Sync {
    /// A group commit made `records` WAL records durable with one fsync
    /// (`records >= 1`; empty commits do not fire).
    fn on_group_commit(&self, records: u64);
}

impl PageStore {
    /// Identity of this store for the thread-local version-session hooks
    /// (see [`crate::version`]): sessions tag themselves with the store
    /// address so a session on one store never translates another's ids.
    fn addr(&self) -> usize {
        self as *const PageStore as usize
    }

    /// Creates a store over an arbitrary backend.
    ///
    /// The backend's frame size must equal `config.page_size + 8` (payload
    /// plus checksum trailer).
    pub fn new(config: StoreConfig, backend: Box<dyn Backend>) -> Self {
        assert!(config.page_size >= 32, "page size must be at least 32 bytes");
        assert_eq!(
            backend.frame_size(),
            config.page_size + CHECKSUM_LEN,
            "backend frame size must be page_size + 8"
        );
        PageStore {
            page_size: config.page_size,
            backend,
            stats: AtomicStats::default(),
            alloc: RwLock::new(AllocState::default()),
            pool: (config.pool_pages > 0).then(|| {
                let shards = ShardedPool::resolve_shards(config.pool_shards, config.pool_pages);
                ShardedPool::new(config.pool_pages, shards)
            }),
            retry: config.retry,
            quarantine: Mutex::new(HashSet::new()),
            quarantine_len: AtomicU64::new(0),
            wal: None,
            observer: RwLock::new(None),
        }
    }

    /// Opens a **durable** store: a write-ahead log over `log` protects
    /// every acked mutation against crashes of the process or the machine
    /// (see the `wal` module docs for the protocol). Runs recovery first —
    /// scanning the log, truncating any torn tail, replaying to the last
    /// commit — and returns the [`RecoveryReport`] alongside the store.
    ///
    /// Durable stores are strict (`pool_pages` must be 0): the dirty-page
    /// table is the only write buffer, so WAL-before-data can hold by
    /// construction. Durability is opt-in per store and never changes the
    /// volatile store's I/O accounting.
    pub fn new_durable(
        config: StoreConfig,
        backend: Box<dyn Backend>,
        log: Box<dyn LogMedium>,
        wal_config: WalConfig,
    ) -> Result<(Self, RecoveryReport)> {
        assert!(config.page_size >= 32, "page size must be at least 32 bytes");
        assert_eq!(
            backend.frame_size(),
            config.page_size + CHECKSUM_LEN,
            "backend frame size must be page_size + 8"
        );
        assert_eq!(
            config.pool_pages, 0,
            "durable stores are strict: the WAL dirty table is the only write buffer"
        );
        let (wal, outcome) = Wal::open(log, config.page_size)?;
        if outcome.torn_bytes > 0 {
            pc_obs::counter(pc_obs::wal_metrics::TORN_TAILS).inc();
        }
        let (report, snap) = crate::recovery::replay(backend.as_ref(), config.page_size, &outcome)?;
        // Make the replayed state durable, then retire the old log: after
        // install_checkpoint the replayed records are never needed again.
        // The recovered commit metadata rides into the fresh generation so
        // another crash before the next commit still reports it.
        backend.sync()?;
        let recovered_meta = report.last_commit_meta.clone().unwrap_or_default();
        wal.install_checkpoint(&snap, &recovered_meta)?;
        wal.note_replayed(report.replayed_records());
        let mut allocated = vec![true; snap.next_id as usize];
        for &f in &snap.free_list {
            if let Some(slot) = allocated.get_mut(f as usize) {
                *slot = false;
            }
        }
        let store = PageStore {
            page_size: config.page_size,
            backend,
            stats: AtomicStats::default(),
            alloc: RwLock::new(AllocState {
                allocated,
                free_list: snap.free_list,
                next_id: snap.next_id,
            }),
            pool: None,
            retry: config.retry,
            quarantine: Mutex::new(HashSet::new()),
            quarantine_len: AtomicU64::new(0),
            wal: Some(WalState {
                wal,
                dirty: Mutex::new(BTreeMap::new()),
                op_lock: Mutex::new(()),
                checkpoint_bytes: wal_config.checkpoint_bytes,
                last_meta: Mutex::new(recovered_meta),
            }),
            observer: RwLock::new(None),
        };
        Ok((store, report))
    }

    /// Strict-model in-memory store: the standard configuration for all
    /// experiments.
    pub fn in_memory(page_size: usize) -> Self {
        let backend = MemBackend::new(page_size + CHECKSUM_LEN);
        PageStore::new(StoreConfig::strict(page_size), Box::new(backend))
    }

    /// In-memory store with a buffer pool of `pool_pages` pages and
    /// auto-sized sharding.
    pub fn in_memory_pooled(page_size: usize, pool_pages: usize) -> Self {
        let backend = MemBackend::new(page_size + CHECKSUM_LEN);
        PageStore::new(StoreConfig::pooled(page_size, pool_pages), Box::new(backend))
    }

    /// In-memory pooled store with an explicit shard count (`1` reproduces
    /// the classic single-mutex pool; used by the scaling benchmarks).
    pub fn in_memory_pooled_sharded(page_size: usize, pool_pages: usize, shards: usize) -> Self {
        let backend = MemBackend::new(page_size + CHECKSUM_LEN);
        PageStore::new(
            StoreConfig { page_size, pool_pages, pool_shards: shards, retry: RetryPolicy::default() },
            Box::new(backend),
        )
    }

    /// File-backed strict-model store at `path`.
    pub fn file(path: &Path, page_size: usize) -> Result<Self> {
        let backend = FileBackend::open(path, page_size + CHECKSUM_LEN)?;
        Ok(PageStore::new(StoreConfig::strict(page_size), Box::new(backend)))
    }

    /// Durable in-memory store (a [`MemLog`] WAL over a
    /// [`MemBackend`]) — the configuration crash tests reopen from a
    /// [`crate::CrashBackend`]/[`crate::CrashLog`] survivor's state.
    pub fn in_memory_durable(page_size: usize) -> (Self, RecoveryReport) {
        PageStore::new_durable(
            StoreConfig::strict(page_size),
            Box::new(MemBackend::new(page_size + CHECKSUM_LEN)),
            Box::new(MemLog::new()),
            WalConfig::default(),
        )
        .expect("an empty in-memory durable store cannot fail to open")
    }

    /// Durable file-backed store: data at `path`, WAL at `path` + `.wal`.
    ///
    /// A data file ending mid-frame (torn by a crash) is truncated back to
    /// the last complete frame before recovery, and reported via
    /// [`RecoveryReport::data_torn_tail`] — the WAL restores anything the
    /// truncation dropped, because checkpointed frames were synced before
    /// their log records were retired.
    pub fn file_durable(
        path: &Path,
        page_size: usize,
        wal_config: WalConfig,
    ) -> Result<(Self, RecoveryReport)> {
        let (backend, data_torn_tail) =
            FileBackend::open_recovering(path, page_size + CHECKSUM_LEN)?;
        let mut wal_path = path.as_os_str().to_os_string();
        wal_path.push(".wal");
        let log = FileLog::open(&PathBuf::from(wal_path))?;
        let (store, mut report) = PageStore::new_durable(
            StoreConfig::strict(page_size),
            Box::new(backend),
            Box::new(log),
            wal_config,
        )?;
        report.data_torn_tail = data_torn_tail;
        Ok((store, report))
    }

    /// Usable page payload size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Allocates a fresh (or recycled) page. The page reads as all-zero
    /// until first written; recycled pages are zeroed on reuse (one write
    /// I/O), so no stale contents ever leak across a free/alloc cycle.
    /// Durable stores log the allocation (and the recycled page's zeroing)
    /// so recovery reconstructs the allocation table exactly.
    pub fn alloc(&self) -> Result<PageId> {
        let _op = self.wal.as_ref().map(|ws| ws.op_lock.lock());
        let (id, recycled) = {
            let mut a = self.alloc.write();
            let (id, recycled) = match a.free_list.pop() {
                Some(id) => (id, true),
                None => {
                    let id = a.next_id;
                    a.next_id += 1;
                    (id, false)
                }
            };
            let idx = id as usize;
            if idx >= a.allocated.len() {
                a.allocated.resize(idx + 1, false);
            }
            a.allocated[idx] = true;
            (id, recycled)
        };
        if let Some(ws) = &self.wal {
            ws.wal.append_alloc(PageId(id))?;
            if recycled {
                // Zero the recycled page through the WAL: the old owner's
                // bytes must not leak, and replay must re-zero it too.
                ws.wal.append_write(PageId(id), &[])?;
                ws.dirty.lock().insert(id, Page::from(vec![0u8; self.page_size]));
            }
        } else if recycled {
            self.backend_write(PageId(id), &[])?;
        }
        self.stats.allocs.fetch_add(1, Ordering::Relaxed);
        pc_obs::record_io(IoEvent::Alloc);
        crate::version::note_alloc(self.addr(), PageId(id));
        Ok(PageId(id))
    }

    /// Releases a page for reuse. Its contents become undefined.
    ///
    /// Inside a version apply session (see [`crate::version`]) a free of
    /// *frozen* content is deferred: the page is retired for epoch GC and
    /// nothing is returned to the allocator yet, so pinned snapshots keep
    /// reading it.
    pub fn free(&self, id: PageId) -> Result<()> {
        let id = match crate::version::free_route(self.addr(), id) {
            crate::version::FreeRoute::Direct(phys) => phys,
            crate::version::FreeRoute::Deferred => return Ok(()),
        };
        let _op = self.wal.as_ref().map(|ws| ws.op_lock.lock());
        {
            let mut a = self.alloc.write();
            if id.is_null() || !a.allocated.get(id.0 as usize).copied().unwrap_or(false) {
                return Err(StoreError::PageNotAllocated(id));
            }
            a.allocated[id.0 as usize] = false;
            a.free_list.push(id.0);
        }
        if let Some(ws) = &self.wal {
            ws.wal.append_free(id)?;
            // A pending image for a freed page will never be read again;
            // dropping it keeps the checkpoint flush from resurrecting it.
            ws.dirty.lock().remove(&id.0);
        }
        if let Some(pool) = &self.pool {
            pool.discard(id);
        }
        // A freed id leaves quarantine: recycling hands out a fresh zeroed
        // page, so the old frame's bad luck must not follow the new owner.
        if self.quarantine_len.load(Ordering::Relaxed) > 0 {
            let mut q = self.quarantine.lock();
            if q.remove(&id.0) {
                self.quarantine_len.store(q.len() as u64, Ordering::Relaxed);
            }
        }
        self.stats.frees.fetch_add(1, Ordering::Relaxed);
        pc_obs::record_io(IoEvent::Free);
        Ok(())
    }

    fn check_allocated(&self, id: PageId) -> Result<()> {
        let a = self.alloc.read();
        if id.is_null() || !a.allocated.get(id.0 as usize).copied().unwrap_or(false) {
            return Err(StoreError::PageNotAllocated(id));
        }
        Ok(())
    }

    fn check_quarantine(&self, id: PageId) -> Result<()> {
        if self.quarantine_len.load(Ordering::Relaxed) > 0 && self.quarantine.lock().contains(&id.0)
        {
            return Err(StoreError::Quarantined(id));
        }
        Ok(())
    }

    fn quarantine_page(&self, id: PageId) {
        let mut q = self.quarantine.lock();
        if q.insert(id.0) {
            self.quarantine_len.store(q.len() as u64, Ordering::Relaxed);
            self.stats.quarantined.fetch_add(1, Ordering::Relaxed);
            pc_obs::counter(pc_obs::fault_metrics::QUARANTINED).inc();
        }
    }

    /// Runs a backend op under the store's [`RetryPolicy`]: transient
    /// errors are re-attempted up to the budget (each re-attempt counts one
    /// `retries`, never an extra read/write); exhausting the budget
    /// quarantines the page and reports [`StoreError::Quarantined`].
    /// Permanent errors pass straight through.
    fn with_retry<T>(&self, id: PageId, mut op: impl FnMut() -> Result<T>) -> Result<T> {
        let max_attempts = self.retry.max_attempts.max(1);
        let mut attempt = 1u32;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                // With retries disabled there is no budget to exhaust:
                // transient errors pass through unchanged (the pre-retry-
                // layer behavior) and nothing is quarantined.
                Err(e) if e.is_transient() && max_attempts > 1 => {
                    if attempt >= max_attempts {
                        self.quarantine_page(id);
                        return Err(StoreError::Quarantined(id));
                    }
                    attempt += 1;
                    self.stats.retries.fetch_add(1, Ordering::Relaxed);
                    pc_obs::counter(pc_obs::fault_metrics::RETRIES).inc();
                    if let Some(backoff) = self.retry.backoff {
                        backoff(attempt - 1);
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Reads page `id`, returning its full `page_size`-byte payload.
    ///
    /// Costs one backend read in strict mode; with a pool, resident pages
    /// cost nothing, are counted as `cache_hits`, and are returned by
    /// cloning the resident `Arc` — a hit copies zero payload bytes. The
    /// returned [`Page`] is an immutable snapshot: a later write to the
    /// same page replaces the pool's handle without touching it.
    pub fn read(&self, id: PageId) -> Result<Page> {
        // Snapshot / apply-session translation (identity outside one): all
        // allocation, quarantine, dirty-table and pool state below is keyed
        // by the *physical* id.
        let id = crate::version::translate(self.addr(), id);
        self.check_allocated(id)?;
        self.check_quarantine(id)?;
        if let Some(ws) = &self.wal {
            // The dirty table holds the newest image of every page not yet
            // checkpointed; the data backend is allowed to be stale for
            // those pages (no-steal), so the table must be checked first.
            if let Some(page) = ws.dirty.lock().get(&id.0) {
                ws.wal.note_dirty_hit();
                return Ok(page.clone());
            }
            return self.backend_read(id);
        }
        if let Some(pool) = &self.pool {
            return pool.read_through(
                id,
                || self.backend_read(id),
                |vid, vdata| self.backend_write(vid, vdata),
            );
        }
        self.backend_read(id)
    }

    /// Writes page `id`. `data` may be shorter than the page size; the
    /// remainder is zero-filled.
    ///
    /// Costs one backend write in strict mode; with a pool, the write is
    /// absorbed and deferred until eviction or [`PageStore::sync`].
    pub fn write(&self, id: PageId, data: &[u8]) -> Result<()> {
        if data.len() > self.page_size {
            return Err(StoreError::PayloadTooLarge {
                payload: data.len(),
                page_size: self.page_size,
            });
        }
        // Inside a version apply session, a write to a frozen page is
        // redirected copy-on-write to a freshly allocated physical page;
        // the logical id keeps naming the page, the session records the
        // remap, and the superseded page is retired for epoch GC.
        let id = match crate::version::write_route(self.addr(), id) {
            crate::version::WriteRoute::Direct(phys) => phys,
            crate::version::WriteRoute::Cow => {
                let fresh = self.alloc()?;
                crate::version::note_cow(self.addr(), id, fresh);
                fresh
            }
        };
        self.check_allocated(id)?;
        self.check_quarantine(id)?;
        if let Some(ws) = &self.wal {
            // WAL-before-visibility: the full page image is logged before
            // the dirty table (and thus any reader) can see it. The data
            // backend is only written at checkpoints.
            let _op = ws.op_lock.lock();
            ws.wal.append_write(id, data)?;
            let mut padded = vec![0u8; self.page_size];
            padded[..data.len()].copy_from_slice(data);
            ws.dirty.lock().insert(id.0, Page::from(padded));
            return Ok(());
        }
        if let Some(pool) = &self.pool {
            let mut padded = vec![0u8; self.page_size];
            padded[..data.len()].copy_from_slice(data);
            return pool.write(id, Page::from(padded), |vid, vdata| {
                self.backend_write(vid, vdata)
            });
        }
        self.backend_write(id, data)
    }

    fn backend_read(&self, id: PageId) -> Result<Page> {
        // One logical read regardless of retries: the counters stay exact
        // under the paper's transfer accounting, with re-attempts surfaced
        // separately as `retries`.
        self.stats.reads.fetch_add(1, Ordering::Relaxed);
        // Observer hook for pc-obs (a no-op unless the `obs` feature is on):
        // purely observational, so `IoStats` and transfer behavior stay
        // bit-identical either way.
        pc_obs::record_io(IoEvent::Read);
        let mut frame = vec![0u8; self.page_size + CHECKSUM_LEN];
        self.with_retry(id, || self.backend.read_frame(id, &mut frame))?;
        // Checksum failures are permanent (re-reading the same bytes cannot
        // help; a mirror already exhausted its replicas below this point),
        // so verification sits outside the retry loop.
        verify_frame(&frame, self.page_size, id)?;
        frame.truncate(self.page_size);
        Ok(Page::from(frame))
    }

    fn backend_write(&self, id: PageId, data: &[u8]) -> Result<()> {
        self.stats.writes.fetch_add(1, Ordering::Relaxed);
        pc_obs::record_io(IoEvent::Write);
        let mut frame = vec![0u8; self.page_size + CHECKSUM_LEN];
        frame[..data.len()].copy_from_slice(data);
        let checksum = fnv1a64(&frame[..self.page_size]);
        frame[self.page_size..].copy_from_slice(&checksum.to_le_bytes());
        self.with_retry(id, || self.backend.write_frame(id, &frame))
    }

    /// Flushes all buffered dirty pages (shard by shard, in shard order)
    /// and syncs the backend.
    ///
    /// On a durable store this is a group commit with empty metadata: when
    /// `sync` returns, every mutation so far survives a crash. Use
    /// [`PageStore::commit_with`] to tag the commit instead.
    pub fn sync(&self) -> Result<()> {
        if self.wal.is_some() {
            return self.commit_with(&[]).map(|_| ());
        }
        if let Some(pool) = &self.pool {
            pool.flush(|vid, vdata| self.backend_write(vid, vdata))?;
        }
        self.backend.sync()
    }

    /// Group commit on a durable store: appends a commit record carrying
    /// the caller's opaque `meta` (e.g. a batch sequence number — recovery
    /// hands back the last one it restored) and issues **one** fsync for
    /// all records since the previous commit. Returns the group size; `0`
    /// means nothing was pending and no fsync was issued. After a
    /// successful commit, every mutation in the group is crash-durable —
    /// this is the "Ack means durable" point for the serve layer.
    ///
    /// Commits mark consistency points, so a commit whose log has outgrown
    /// [`WalConfig::checkpoint_bytes`] also installs a checkpoint. On a
    /// volatile store this is a no-op returning 0.
    pub fn commit_with(&self, meta: &[u8]) -> Result<u64> {
        let Some(ws) = &self.wal else { return Ok(0) };
        let _op = ws.op_lock.lock();
        let group = Self::sticky_commit(ws, meta)?;
        if ws.wal.log_bytes() >= ws.checkpoint_bytes {
            self.checkpoint_locked(ws)?;
        }
        if group > 0 {
            if let Some(obs) = self.observer.read().as_ref() {
                obs.on_group_commit(group);
            }
        }
        Ok(group)
    }

    /// Registers the store's event observer (replacing any previous one).
    pub fn set_observer(&self, observer: Arc<dyn StoreObserver>) {
        *self.observer.write() = Some(observer);
    }

    /// Forces a checkpoint on a durable store: commits anything pending,
    /// flushes the dirty table into the data backend, syncs it, and
    /// atomically resets the log to a single allocation snapshot — after
    /// which reopening replays nothing. A no-op on a volatile store.
    pub fn checkpoint(&self) -> Result<()> {
        let Some(ws) = &self.wal else { return Ok(()) };
        let _op = ws.op_lock.lock();
        // A checkpoint must sit at a consistency point: anything pending
        // gets committed first so the flushed data file never contains an
        // unacknowledged half-update.
        Self::sticky_commit(ws, &[])?;
        self.checkpoint_locked(ws)
    }

    /// Commit with sticky metadata (caller holds `op_lock`): an empty
    /// `meta` re-stamps the last non-empty payload rather than erasing it;
    /// a non-empty one becomes the new sticky payload once durable.
    fn sticky_commit(ws: &WalState, meta: &[u8]) -> Result<u64> {
        let mut last = ws.last_meta.lock();
        let effective = if meta.is_empty() { &last[..] } else { meta };
        let group = ws.wal.commit(effective)?;
        if !meta.is_empty() {
            *last = meta.to_vec();
        }
        Ok(group)
    }

    /// True when this store has a write-ahead log.
    pub fn is_durable(&self) -> bool {
        self.wal.is_some()
    }

    /// The sticky commit metadata: the payload of the last non-empty
    /// durable commit (recovered across reopen). `None` on a volatile
    /// store or before the first tagged commit.
    pub fn last_commit_meta(&self) -> Option<Vec<u8>> {
        let ws = self.wal.as_ref()?;
        let last = ws.last_meta.lock();
        if last.is_empty() { None } else { Some(last.clone()) }
    }

    /// WAL activity counters, or `None` on a volatile store.
    pub fn wal_stats(&self) -> Option<WalStats> {
        self.wal.as_ref().map(|ws| {
            let mut s = ws.wal.stats();
            s.dirty_pages = ws.dirty.lock().len() as u64;
            s
        })
    }

    /// Checkpoint body; caller holds `op_lock` and has just committed (the
    /// WAL has no uncommitted records).
    fn checkpoint_locked(&self, ws: &WalState) -> Result<()> {
        debug_assert_eq!(ws.wal.uncommitted(), 0, "checkpoint off a commit boundary");
        // Flush the dirty table into the data backend. The table is not
        // drained until the backend sync succeeds: a failed flush must
        // leave every image still readable from the table (and still
        // protected by the old log).
        {
            let dirty = ws.dirty.lock();
            for (&id, page) in dirty.iter() {
                self.backend_write(PageId(id), &page[..])?;
            }
        }
        self.backend.sync()?;
        ws.dirty.lock().clear();
        let snap = {
            let a = self.alloc.read();
            AllocSnapshot { next_id: a.next_id, free_list: a.free_list.clone() }
        };
        ws.wal.install_checkpoint(&snap, &ws.last_meta.lock())
    }

    /// Snapshot of cumulative I/O counters. Per-shard pool counters are
    /// folded in here, so `cache_hits` and `pool_evictions` are exact
    /// totals across shards.
    pub fn stats(&self) -> IoStats {
        let mut s = self.stats.snapshot();
        if let Some(pool) = &self.pool {
            s.cache_hits = pool.hits();
            s.pool_evictions = pool.evictions();
        }
        let rs = self.backend.resilience_stats();
        s.failovers = rs.failovers;
        s.repairs = rs.repairs;
        s
    }

    /// Resets all I/O counters — including per-shard pool counters and the
    /// backend's failover/repair counters — to zero (allocation state,
    /// resident pages, and the quarantine set are untouched).
    pub fn reset_stats(&self) {
        self.stats.reset();
        if let Some(pool) = &self.pool {
            pool.reset_stats();
        }
        self.backend.reset_resilience_stats();
    }

    /// Number of buffer-pool shards (`0` in strict mode).
    pub fn pool_shards(&self) -> usize {
        self.pool.as_ref().map_or(0, ShardedPool::shard_count)
    }

    /// The pool shard page `id` maps to, or `None` in strict mode. Exposed
    /// so tests and benchmarks can construct same-shard (adversarial) and
    /// cross-shard workloads.
    pub fn pool_shard_of(&self, id: PageId) -> Option<usize> {
        self.pool.as_ref().map(|p| p.shard_of(id))
    }

    /// Per-shard pool counter snapshot (`None` in strict mode), index-
    /// aligned with [`PageStore::pool_shard_of`].
    pub fn pool_shard_stats(&self) -> Option<Vec<crate::pool::ShardStats>> {
        self.pool.as_ref().map(ShardedPool::shard_stats)
    }

    /// Number of currently allocated pages — the measured *space* in every
    /// experiment, in units of disk blocks.
    pub fn live_pages(&self) -> u64 {
        let a = self.alloc.read();
        a.allocated.iter().filter(|&&x| x).count() as u64
    }

    /// Ids of all currently allocated pages, in id order. Used by repair
    /// walks and by tests that corrupt every live page in turn.
    pub fn allocated_pages(&self) -> Vec<PageId> {
        let a = self.alloc.read();
        a.allocated
            .iter()
            .enumerate()
            .filter_map(|(i, &live)| live.then_some(PageId(i as u64)))
            .collect()
    }

    /// Pages currently held in quarantine, in id order.
    pub fn quarantined_pages(&self) -> Vec<PageId> {
        let q = self.quarantine.lock();
        let mut ids: Vec<PageId> = q.iter().map(|&id| PageId(id)).collect();
        ids.sort_unstable();
        ids
    }

    /// Empties the quarantine set, letting previously fenced pages be
    /// retried. Use after fixing the underlying backend out-of-band;
    /// [`PageStore::scrub`] calls this for you.
    pub fn clear_quarantine(&self) {
        let mut q = self.quarantine.lock();
        q.clear();
        self.quarantine_len.store(0, Ordering::Relaxed);
    }

    /// Repair pass: flushes buffered dirty pages, asks the backend to
    /// verify and repair its stored redundancy (a no-op for plain
    /// backends; replica rewrite for [`crate::backend::MirrorBackend`]),
    /// then clears the quarantine set — repaired pages get a fresh retry
    /// budget.
    pub fn scrub(&self) -> Result<ScrubReport> {
        let _span = pc_obs::span!("store.scrub");
        if let Some(pool) = &self.pool {
            pool.flush(|vid, vdata| self.backend_write(vid, vdata))?;
        }
        let report = self.backend.scrub()?;
        self.clear_quarantine();
        Ok(report)
    }

    /// Fault injection for tests: flips one byte of the stored frame for
    /// page `id`, bypassing the pool, so the next uncached read fails its
    /// checksum. Buffered dirty pages are flushed first — corrupting the
    /// stored frame must not silently drop a pending write — and `id` is
    /// dropped from the pool so the corruption is actually observed.
    /// Testing aid only. The flip is an XOR: injecting the same
    /// `byte_offset` twice restores the frame bit-for-bit.
    pub fn inject_corruption(&self, id: PageId, byte_offset: usize) -> Result<()> {
        self.check_allocated(id)?;
        if let Some(ws) = &self.wal {
            // Push a pending image down into the backend and drop it from
            // the dirty table, so the flipped frame is what reads observe.
            let _op = ws.op_lock.lock();
            let mut dirty = ws.dirty.lock();
            if let Some(page) = dirty.remove(&id.0) {
                self.backend_write(id, &page[..])?;
            }
        }
        if let Some(pool) = &self.pool {
            pool.flush(|vid, vdata| self.backend_write(vid, vdata))?;
            pool.discard(id);
        }
        let mut frame = vec![0u8; self.page_size + CHECKSUM_LEN];
        self.backend.read_frame(id, &mut frame)?;
        frame[byte_offset] ^= 0xff;
        self.backend.write_frame(id, &frame)
    }
}

fn verify_frame(frame: &[u8], page_size: usize, id: PageId) -> Result<()> {
    let stored = u64::from_le_bytes(frame[page_size..page_size + CHECKSUM_LEN].try_into().unwrap());
    if stored == 0 && frame[..page_size].iter().all(|&b| b == 0) {
        // Never-written page: reads as zeroes by contract.
        return Ok(());
    }
    if stored != fnv1a64(&frame[..page_size]) {
        return Err(StoreError::ChecksumMismatch(id));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_write_read_roundtrip_counts_io() {
        let store = PageStore::in_memory(64);
        let id = store.alloc().unwrap();
        store.write(id, b"abc").unwrap();
        let page = store.read(id).unwrap();
        assert_eq!(&page[..3], b"abc");
        assert!(page[3..].iter().all(|&b| b == 0));
        let s = store.stats();
        assert_eq!((s.reads, s.writes, s.allocs), (1, 1, 1));
    }

    #[test]
    fn unallocated_access_is_rejected() {
        let store = PageStore::in_memory(64);
        assert!(matches!(store.read(PageId(0)), Err(StoreError::PageNotAllocated(_))));
        assert!(matches!(store.write(PageId(3), b"x"), Err(StoreError::PageNotAllocated(_))));
        assert!(matches!(store.read(NULL_PAGE), Err(StoreError::PageNotAllocated(_))));
        let id = store.alloc().unwrap();
        store.free(id).unwrap();
        assert!(matches!(store.read(id), Err(StoreError::PageNotAllocated(_))));
        assert!(matches!(store.free(id), Err(StoreError::PageNotAllocated(_))));
    }

    #[test]
    fn freed_pages_are_recycled() {
        let store = PageStore::in_memory(64);
        let a = store.alloc().unwrap();
        let b = store.alloc().unwrap();
        store.free(a).unwrap();
        let c = store.alloc().unwrap();
        assert_eq!(c, a, "free list should recycle");
        assert_ne!(b, c);
        assert_eq!(store.live_pages(), 2);
    }

    #[test]
    fn oversized_payload_is_rejected() {
        let store = PageStore::in_memory(64);
        let id = store.alloc().unwrap();
        let big = vec![1u8; 65];
        assert!(matches!(store.write(id, &big), Err(StoreError::PayloadTooLarge { .. })));
    }

    #[test]
    fn never_written_page_reads_as_zero() {
        let store = PageStore::in_memory(64);
        let id = store.alloc().unwrap();
        let page = store.read(id).unwrap();
        assert!(page.iter().all(|&b| b == 0));
    }

    #[test]
    fn checksum_detects_corruption() {
        let store = PageStore::in_memory(64);
        let id = store.alloc().unwrap();
        store.write(id, b"payload").unwrap();
        store.inject_corruption(id, 2).unwrap();
        assert!(matches!(store.read(id), Err(StoreError::ChecksumMismatch(_))));
    }

    #[test]
    fn strict_mode_counts_every_access() {
        let store = PageStore::in_memory(64);
        let id = store.alloc().unwrap();
        store.write(id, b"x").unwrap();
        for _ in 0..10 {
            store.read(id).unwrap();
        }
        let s = store.stats();
        assert_eq!(s.reads, 10);
        assert_eq!(s.cache_hits, 0);
    }

    #[test]
    fn pooled_mode_absorbs_repeat_reads() {
        let store = PageStore::in_memory_pooled(64, 4);
        let id = store.alloc().unwrap();
        store.write(id, b"x").unwrap();
        for _ in 0..10 {
            store.read(id).unwrap();
        }
        let s = store.stats();
        assert_eq!(s.reads, 0, "write left the page resident");
        assert_eq!(s.cache_hits, 10);
        assert_eq!(s.writes, 0, "write is still buffered");
        store.sync().unwrap();
        assert_eq!(store.stats().writes, 1);
    }

    #[test]
    fn pool_hits_are_zero_copy() {
        let store = PageStore::in_memory_pooled(64, 4);
        let id = store.alloc().unwrap();
        store.write(id, b"zc").unwrap();
        let a = store.read(id).unwrap();
        let b = store.read(id).unwrap();
        assert!(a.ptr_eq(&b), "repeated pooled reads must share one buffer");
        // A write replaces the pool's handle; old snapshots are untouched.
        store.write(id, b"new").unwrap();
        let c = store.read(id).unwrap();
        assert!(!a.ptr_eq(&c), "a write must install a fresh buffer");
        assert_eq!(&a[..2], b"zc");
        assert_eq!(&c[..3], b"new");
    }

    #[test]
    fn pooled_evictions_count_in_stats() {
        let store = PageStore::in_memory_pooled_sharded(64, 2, 1);
        assert_eq!(store.pool_shards(), 1);
        let ids: Vec<PageId> = (0..4).map(|_| store.alloc().unwrap()).collect();
        for (i, &id) in ids.iter().enumerate() {
            store.write(id, &[i as u8]).unwrap();
        }
        let s = store.stats();
        assert_eq!(s.pool_evictions, 2, "4 dirty pages through a 2-frame pool");
        assert_eq!(s.writes, 2, "each dirty eviction is one backend write");
        store.reset_stats();
        assert_eq!(store.stats(), IoStats::default());
    }

    #[test]
    fn strict_mode_has_no_pool_counters() {
        let store = PageStore::in_memory(64);
        let id = store.alloc().unwrap();
        store.write(id, b"x").unwrap();
        store.read(id).unwrap();
        let s = store.stats();
        assert_eq!((s.cache_hits, s.pool_evictions), (0, 0));
        assert_eq!(store.pool_shards(), 0);
        assert!(store.pool_shard_of(id).is_none());
    }

    #[test]
    fn pooled_eviction_writes_back_and_rereads() {
        let store = PageStore::in_memory_pooled(64, 2);
        let ids: Vec<PageId> = (0..4).map(|_| store.alloc().unwrap()).collect();
        for (i, &id) in ids.iter().enumerate() {
            store.write(id, &[i as u8]).unwrap();
        }
        // Pool of 2 cannot hold 4 dirty pages: at least 2 write-backs.
        assert!(store.stats().writes >= 2);
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(store.read(id).unwrap()[0], i as u8);
        }
    }

    #[test]
    fn reset_stats_zeroes_counters_only() {
        let store = PageStore::in_memory(64);
        let id = store.alloc().unwrap();
        store.write(id, b"x").unwrap();
        store.reset_stats();
        assert_eq!(store.stats(), IoStats::default());
        assert_eq!(&store.read(id).unwrap()[..1], b"x");
        assert_eq!(store.stats().reads, 1);
    }

    #[test]
    fn file_backed_store_roundtrips() {
        let dir = std::env::temp_dir().join(format!("pcstore-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.bin");
        {
            let store = PageStore::file(&path, 64).unwrap();
            let id = store.alloc().unwrap();
            store.write(id, b"durable").unwrap();
            store.sync().unwrap();
            assert_eq!(&store.read(id).unwrap()[..7], b"durable");
        }
        std::fs::remove_file(&path).unwrap();
    }

    fn faulty_store(plan: crate::FaultPlan, retry: RetryPolicy) -> (PageStore, crate::FaultHandle) {
        let backend = crate::FaultBackend::new(Box::new(MemBackend::new(64 + CHECKSUM_LEN)), plan);
        let handle = backend.handle();
        let store = PageStore::new(StoreConfig::strict(64).with_retry(retry), Box::new(backend));
        (store, handle)
    }

    #[test]
    fn retry_absorbs_transient_faults_without_extra_transfers() {
        let (store, handle) = faulty_store(crate::FaultPlan::none(1), RetryPolicy::default());
        let id = store.alloc().unwrap();
        store.write(id, b"resilient").unwrap();
        // Both of the first two backend reads fault; attempt 3 succeeds.
        handle.fail_nth_read(id, 1);
        handle.fail_nth_read(id, 2);
        let page = store.read(id).unwrap();
        assert_eq!(&page[..9], b"resilient");
        let s = store.stats();
        assert_eq!(s.reads, 1, "a retried read is still one logical transfer");
        assert_eq!(s.retries, 2, "both armed triggers were absorbed");
        assert_eq!(s.quarantined, 0);
    }

    #[test]
    fn retry_backoff_hook_runs_once_per_reattempt() {
        use std::sync::atomic::AtomicU32;
        static CALLS: AtomicU32 = AtomicU32::new(0);
        fn backoff(attempt: u32) {
            CALLS.fetch_add(attempt, Ordering::Relaxed);
        }
        let (store, handle) = faulty_store(
            crate::FaultPlan::none(2),
            RetryPolicy { max_attempts: 3, backoff: Some(backoff) },
        );
        let id = store.alloc().unwrap();
        store.write(id, b"x").unwrap();
        handle.fail_nth_read(id, 1);
        handle.fail_nth_read(id, 2);
        store.read(id).unwrap();
        assert_eq!(CALLS.load(Ordering::Relaxed), 1 + 2, "backoff(1) then backoff(2)");
    }

    #[test]
    fn exhausted_retries_quarantine_the_page() {
        let (store, handle) =
            faulty_store(crate::FaultPlan::transient(3, 1.0), RetryPolicy::default());
        handle.set_enabled(false);
        let id = store.alloc().unwrap();
        store.write(id, b"doomed").unwrap();
        let ok = store.alloc().unwrap();
        store.write(ok, b"fine").unwrap();
        handle.set_enabled(true);
        // p = 1.0: every attempt fails; the budget of 3 is spent and the
        // page lands in quarantine.
        assert!(matches!(store.read(id), Err(StoreError::Quarantined(q)) if q == id));
        let s = store.stats();
        assert_eq!(s.reads, 1);
        assert_eq!(s.retries, 2, "attempts 2 and 3");
        assert_eq!(s.quarantined, 1);
        assert_eq!(store.quarantined_pages(), vec![id]);
        // Quarantined access fast-fails without touching the backend again.
        assert!(matches!(store.read(id), Err(StoreError::Quarantined(_))));
        assert!(matches!(store.write(id, b"no"), Err(StoreError::Quarantined(_))));
        assert_eq!(store.stats().reads, 1, "fenced reads are not transfers");
        // Other pages are unaffected by the fence (faults aside).
        handle.set_enabled(false);
        assert_eq!(&store.read(ok).unwrap()[..4], b"fine");
        // Re-quarantining is idempotent in the cumulative counter.
        store.clear_quarantine();
        handle.set_enabled(true);
        assert!(store.read(id).is_err());
        assert_eq!(store.stats().quarantined, 2);
        // Freeing the page clears its quarantine entry.
        store.free(id).unwrap();
        assert!(store.quarantined_pages().is_empty());
    }

    #[test]
    fn scrub_clears_quarantine_and_restores_service() {
        let (store, handle) =
            faulty_store(crate::FaultPlan::none(4), RetryPolicy { max_attempts: 2, backoff: None });
        let id = store.alloc().unwrap();
        store.write(id, b"healme").unwrap();
        handle.fail_nth_read(id, 1);
        handle.fail_nth_read(id, 2);
        assert!(matches!(store.read(id), Err(StoreError::Quarantined(_))));
        let report = store.scrub().unwrap();
        assert_eq!(report, ScrubReport::default(), "plain backend: nothing to scrub");
        assert!(store.quarantined_pages().is_empty());
        assert_eq!(&store.read(id).unwrap()[..6], b"healme");
    }

    #[test]
    fn mirrored_store_masks_single_replica_corruption() {
        let ra = crate::FaultBackend::new(
            Box::new(MemBackend::new(64 + CHECKSUM_LEN)),
            crate::FaultPlan::none(10),
        );
        let rb = crate::FaultBackend::new(
            Box::new(MemBackend::new(64 + CHECKSUM_LEN)),
            crate::FaultPlan::none(11),
        );
        let (ha, hb) = (ra.handle(), rb.handle());
        let mirror = crate::MirrorBackend::new(vec![Box::new(ra), Box::new(rb)]);
        let store = PageStore::new(StoreConfig::strict(64), Box::new(mirror));
        let id = store.alloc().unwrap();
        store.write(id, b"replicated").unwrap();
        ha.rot_page(id);
        let page = store.read(id).unwrap();
        assert_eq!(&page[..10], b"replicated");
        let s = store.stats();
        assert_eq!((s.failovers, s.repairs), (1, 1));
        assert_eq!(s.reads, 1, "failover is not an extra logical transfer");
        // Both replicas rotten on a fresh write: corruption is *detected*.
        store.write(id, b"again").unwrap();
        ha.rot_page(id);
        hb.rot_page(id);
        assert!(matches!(store.read(id), Err(StoreError::ChecksumMismatch(_))));
        store.reset_stats();
        assert_eq!(store.stats(), IoStats::default(), "resilience counters reset too");
    }

    #[test]
    fn allocated_pages_lists_live_ids_in_order() {
        let store = PageStore::in_memory(64);
        let ids: Vec<PageId> = (0..4).map(|_| store.alloc().unwrap()).collect();
        store.free(ids[1]).unwrap();
        assert_eq!(store.allocated_pages(), vec![ids[0], ids[2], ids[3]]);
    }

    #[test]
    fn durable_store_reads_its_own_writes_through_the_dirty_table() {
        let (store, report) = PageStore::in_memory_durable(64);
        assert!(report.clean(), "fresh store: nothing to recover: {report:?}");
        assert!(store.is_durable());
        let id = store.alloc().unwrap();
        store.write(id, b"logged").unwrap();
        // The write went to the WAL + dirty table, not the data backend.
        let s = store.stats();
        assert_eq!(s.writes, 0, "no-steal: data backend untouched before checkpoint");
        assert_eq!(&store.read(id).unwrap()[..6], b"logged");
        assert_eq!(s.reads, 0, "dirty hit is not a transfer");
        let ws = store.wal_stats().unwrap();
        assert_eq!(ws.dirty_pages, 1);
        assert_eq!(ws.dirty_hits, 1);
        assert_eq!(ws.appends, 3, "open-time checkpoint + alloc + page write");
        assert_eq!(ws.commits, 0);
    }

    #[test]
    fn durable_commit_then_checkpoint_flushes_to_the_backend() {
        let (store, _) = PageStore::in_memory_durable(64);
        let ids: Vec<PageId> = (0..3).map(|_| store.alloc().unwrap()).collect();
        for (i, &id) in ids.iter().enumerate() {
            store.write(id, &[i as u8 + 1]).unwrap();
        }
        assert_eq!(store.commit_with(b"batch-7").unwrap(), 6, "3 allocs + 3 writes");
        assert_eq!(store.commit_with(b"empty").unwrap(), 0);
        store.checkpoint().unwrap();
        let ws = store.wal_stats().unwrap();
        assert_eq!(ws.dirty_pages, 0, "checkpoint drains the dirty table");
        // Open + explicit: install_checkpoint ran twice.
        assert_eq!(ws.checkpoints, 2);
        assert_eq!(store.stats().writes, 3, "checkpoint flush is 3 backend transfers");
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(store.read(id).unwrap()[0], i as u8 + 1, "now served by the backend");
        }
        assert_eq!(store.stats().reads, 3);
    }

    #[test]
    fn durable_sync_is_a_group_commit() {
        let (store, _) = PageStore::in_memory_durable(64);
        let id = store.alloc().unwrap();
        store.write(id, b"x").unwrap();
        store.sync().unwrap();
        let ws = store.wal_stats().unwrap();
        assert_eq!(ws.commits, 1);
        assert_eq!(ws.fsyncs, 2, "open-time checkpoint + the commit");
        assert_eq!(ws.max_group, 2, "alloc + write in one group");
    }

    #[test]
    fn durable_recycled_page_reads_zero_not_stale() {
        let (store, _) = PageStore::in_memory_durable(64);
        let a = store.alloc().unwrap();
        store.write(a, b"secret").unwrap();
        store.checkpoint().unwrap(); // old bytes now in the data backend
        store.free(a).unwrap();
        let b = store.alloc().unwrap();
        assert_eq!(b, a, "free list recycles");
        let page = store.read(b).unwrap();
        assert!(page.iter().all(|&x| x == 0), "recycled page must not leak old bytes");
    }

    #[test]
    fn durable_auto_checkpoint_bounds_the_log() {
        let (store, _) = PageStore::new_durable(
            StoreConfig::strict(64),
            Box::new(MemBackend::new(64 + CHECKSUM_LEN)),
            Box::new(MemLog::new()),
            WalConfig { checkpoint_bytes: 256 },
        )
        .unwrap();
        let id = store.alloc().unwrap();
        for i in 0..20u8 {
            store.write(id, &[i; 40]).unwrap();
            store.sync().unwrap();
        }
        let ws = store.wal_stats().unwrap();
        assert!(ws.checkpoints > 1, "commits past the threshold must checkpoint: {ws:?}");
        assert!(ws.log_bytes < 512, "log stays bounded: {ws:?}");
    }

    #[test]
    fn durable_corruption_injection_still_detected() {
        let (store, _) = PageStore::in_memory_durable(64);
        let id = store.alloc().unwrap();
        store.write(id, b"payload").unwrap();
        store.inject_corruption(id, 2).unwrap();
        assert!(matches!(store.read(id), Err(StoreError::ChecksumMismatch(_))));
    }

    #[test]
    fn commit_meta_sticks_across_sync_checkpoint_and_reopen() {
        use crate::crash::{CrashBackend, CrashController, CrashLog, CrashPlan};
        let ctrl = CrashController::new(CrashPlan::count_only(11));
        let backend = Arc::new(CrashBackend::new(64 + CHECKSUM_LEN, ctrl.clone()));
        let log = Arc::new(CrashLog::new(ctrl));
        let (store, _) = PageStore::new_durable(
            StoreConfig::strict(64),
            Box::new(backend.clone()),
            Box::new(log.clone()),
            WalConfig::default(),
        )
        .unwrap();
        let id = store.alloc().unwrap();
        store.write(id, b"v1").unwrap();
        store.commit_with(b"tagged-epoch").unwrap();
        // An empty-meta group commit (sync) must re-stamp, not clobber.
        store.write(id, b"v2").unwrap();
        store.sync().unwrap();
        // A checkpoint resets the log; the metadata rides the checkpoint.
        store.checkpoint().unwrap();
        drop(store);
        let (reopened, report) = PageStore::new_durable(
            StoreConfig::strict(64),
            Box::new(backend.surviving_backend()),
            Box::new(log.surviving_log()),
            WalConfig::default(),
        )
        .unwrap();
        assert_eq!(
            report.last_commit_meta.as_deref(),
            Some(&b"tagged-epoch"[..]),
            "metadata must survive sync + checkpoint + reopen: {report:?}"
        );
        assert_eq!(&reopened.read(id).unwrap()[..2], b"v2");
    }

    #[test]
    fn volatile_store_commit_and_checkpoint_are_noops() {
        let store = PageStore::in_memory(64);
        assert!(!store.is_durable());
        assert_eq!(store.commit_with(b"x").unwrap(), 0);
        store.checkpoint().unwrap();
        assert!(store.wal_stats().is_none());
    }

    #[test]
    fn concurrent_reads_and_stat_counting_are_exact() {
        let store = PageStore::in_memory(64);
        let ids: Vec<PageId> = (0..32)
            .map(|i| {
                let id = store.alloc().unwrap();
                store.write(id, &[i as u8]).unwrap();
                id
            })
            .collect();
        store.reset_stats();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for (i, &id) in ids.iter().enumerate() {
                        assert_eq!(store.read(id).unwrap()[0], i as u8);
                    }
                });
            }
        });
        assert_eq!(store.stats().reads, 8 * 32, "atomic counters must not drop increments");
    }
}
