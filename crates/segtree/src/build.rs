//! Pagination of the in-memory segment tree into skeletal pages (Figure 2)
//! and construction of cover-lists and path caches.
//!
//! ## On-page layout
//!
//! ```text
//! page:   [count: u16][shared_dir: u64][record * count]
//! record: [split: u32]
//!         [left_page: u64][left_slot: u16][right_page: u64][right_slot: u16]
//!         [cover_full: BlockList (16 B)]
//!         [shared_off: u32][shared_len: u32]      // leaf cache / naive cover
//!         [above_off: u32][above_len: u32]        // entry segment cache
//! ```
//!
//! A page may hold several disjoint subtrees (packed to capacity); a node
//! whose parent lives in another page is an *entry node* and carries a
//! *segment cache*: the underfull cover-lists of the path portion inside
//! the parent page. A query reads one segment cache per page crossing and
//! the leaf's in-page cache at the bottom — `O(log_B n)` cache slices
//! whose union is exactly the underfull content of the whole path (the
//! paper's optimization (2): many small caches instead of one long one).
//! Child references are absolute `(page, slot)` pairs; leaves use
//! [`NULL_PAGE`].
//!
//! ## Shared regions: why small lists are packed
//!
//! The paper's space accounting (`O((n/B) log n)` blocks) assumes lists
//! are *densely blocked* — a one-interval cover-list must not burn a whole
//! disk block, or the `Σ ceil(len_i/B)` bound degenerates to one block per
//! allocation node. We therefore pack, per skeletal page, every short list
//! into one contiguous **shared region** (an array of raw pages plus a
//! one-page directory of their ids); records address their slice with
//! `(shared_off, shared_len)`. In the naive variant the region holds the
//! underfull cover-lists; in the cached variant underfull cover-lists are
//! not stored at all (their entries live in the caches) and the region
//! holds the per-leaf in-page caches. Reading a slice costs one directory
//! I/O per page visit plus `ceil(len/B)` block reads — every block full of
//! answers except the boundaries.

use pc_btree::BTree;
use pc_pagestore::codec::PageWriter;
use pc_pagestore::layout::BlockList;
use pc_pagestore::{Interval, PageId, PageStore, Record, Result, NULL_PAGE};

use crate::mem::{MemTree, NONE};

/// Byte size of one node record.
pub const RECORD_LEN: usize = 4 + 10 + 10 + 16 + 4 + 4 + 4 + 4;
/// Byte offset of slot 0 within a page.
pub const PAGE_HEADER: usize = 2 + 8;
/// Interval records per raw shared-region page (no per-page header).
pub fn shared_page_capacity(page_size: usize) -> usize {
    page_size / Interval::ENCODED_LEN
}

/// Reference to a node: `(page, slot)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeRef {
    /// Page holding the record.
    pub page: PageId,
    /// Slot index within the page.
    pub slot: u16,
}

/// A fully decoded node record.
#[derive(Debug, Clone, Copy)]
pub struct NodeRecord {
    /// Route left iff target slab `<= split`.
    pub split: u32,
    /// Left child.
    pub left: NodeRef,
    /// Right child.
    pub right: NodeRef,
    /// This node's cover-list when it holds at least one full block;
    /// empty otherwise.
    pub cover_full: BlockList<Interval>,
    /// Slice of the page's shared region: the underfull cover-list (naive
    /// variant) or the leaf's in-page cache (cached variant).
    pub shared_off: u32,
    /// Length of the shared-region slice.
    pub shared_len: u32,
    /// Entry nodes only: slice holding the underfull cover-lists of the
    /// path segment inside the parent page (cached variant).
    pub above_off: u32,
    /// Length of the segment-cache slice.
    pub above_len: u32,
}

/// Number of records that fit in one skeletal page.
pub fn page_capacity(page_size: usize) -> usize {
    let cap = (page_size - PAGE_HEADER) / RECORD_LEN;
    assert!(cap >= 3, "page size {page_size} too small for a skeletal page");
    cap
}

/// Everything `ext` needs to run queries.
pub struct BuiltTree {
    /// Page holding the binary root (slot 0).
    pub root_page: PageId,
    /// Maps an endpoint value to its index in the sorted endpoint array.
    pub endpoint_tree: BTree<i64, u64>,
    /// Number of input intervals.
    pub n: u64,
}

/// Builds the external tree. With `cached = false` no caches are written
/// (the naive §2 structure); with `cached = true` both above-path and
/// in-page caches are materialized.
pub fn build_external(
    store: &PageStore,
    intervals: &[Interval],
    cached: bool,
) -> Result<BuiltTree> {
    let mem = MemTree::build(intervals);
    let entries: Vec<(i64, u64)> =
        mem.endpoints.iter().enumerate().map(|(i, &e)| (e, i as u64)).collect();
    let endpoint_tree = BTree::bulk_build(store, &entries)?;

    // Assign nodes to pages. The binary tree has Θ(n) nodes, so pages must
    // be packed to capacity: each page pulls as many pending subtree roots
    // as fit (BFS order within each subtree), and a subtree's overflow
    // frontier goes back to the pending queue. Pages therefore hold
    // several disjoint subtrees; every node whose parent lies elsewhere is
    // an entry node.
    let cap = page_capacity(store.page_size());
    let mut node_loc: Vec<(usize, u16)> = vec![(usize::MAX, 0); mem.nodes.len()];
    let mut pages: Vec<Vec<usize>> = Vec::new(); // arena indices per page, slot order
    let mut page_roots = std::collections::VecDeque::new();
    page_roots.push_back(0usize);
    while !page_roots.is_empty() {
        let page_idx = pages.len();
        let mut members = Vec::new();
        'fill: while members.len() < cap {
            let Some(root) = page_roots.pop_front() else { break };
            let mut queue = std::collections::VecDeque::new();
            queue.push_back(root);
            while let Some(ni) = queue.pop_front() {
                if members.len() == cap {
                    page_roots.push_back(ni);
                    page_roots.extend(queue.drain(..));
                    break 'fill;
                }
                node_loc[ni] = (page_idx, members.len() as u16);
                members.push(ni);
                let node = &mem.nodes[ni];
                if node.left != NONE {
                    queue.push_back(node.left);
                    queue.push_back(node.right);
                }
            }
        }
        pages.push(members);
    }

    // Allocate page ids up front so child references can be absolute.
    let page_ids: Vec<PageId> = pages.iter().map(|_| store.alloc()).collect::<Result<_>>()?;

    let cap_b = BlockList::<Interval>::capacity(store.page_size());
    // Full (>= one block) cover-lists get their own blocked list; short
    // ones are packed into the page's shared region (naive variant only —
    // the cached variant serves them from caches and drops the originals).
    let mut cover_full: Vec<BlockList<Interval>> =
        vec![BlockList::empty(); mem.nodes.len()];
    // (off, len) into the owning page's shared region.
    let mut shared_slice: Vec<(u32, u32)> = vec![(0, 0); mem.nodes.len()];
    let mut shared: Vec<Vec<Interval>> = vec![Vec::new(); pages.len()];
    for (ni, node) in mem.nodes.iter().enumerate() {
        if node.cover.len() >= cap_b {
            cover_full[ni] = BlockList::build(store, &node.cover)?;
        } else if !node.cover.is_empty() && !cached {
            let region = &mut shared[node_loc[ni].0];
            shared_slice[ni] = (region.len() as u32, node.cover.len() as u32);
            region.extend(node.cover.iter().copied());
        }
    }

    // Caches: per-leaf in-page slices plus per-entry above slices, all in
    // the owning page's shared region.
    let mut above_slice: Vec<(u32, u32)> = vec![(0, 0); mem.nodes.len()];
    if cached {
        build_caches(&mem, &node_loc, cap_b, &mut above_slice, &mut shared, &mut shared_slice);
    }

    // Write the shared regions and their directories.
    let mut shared_dirs: Vec<PageId> = Vec::with_capacity(pages.len());
    for region in &shared {
        shared_dirs.push(write_shared_region(store, region)?);
    }

    // Serialize pages.
    let mut buf = vec![0u8; store.page_size()];
    for (page_idx, members) in pages.iter().enumerate() {
        let used = {
            let mut w = PageWriter::new(&mut buf);
            w.put_u16(members.len() as u16)?;
            w.put_u64(shared_dirs[page_idx].0)?;
            for &ni in members {
                let node = &mem.nodes[ni];
                w.put_u32(node.split)?;
                for child in [node.left, node.right] {
                    if child == NONE {
                        w.put_u64(NULL_PAGE.0)?;
                        w.put_u16(0)?;
                    } else {
                        let (p, s) = node_loc[child];
                        w.put_u64(page_ids[p].0)?;
                        w.put_u16(s)?;
                    }
                }
                cover_full[ni].encode(&mut w)?;
                w.put_u32(shared_slice[ni].0)?;
                w.put_u32(shared_slice[ni].1)?;
                w.put_u32(above_slice[ni].0)?;
                w.put_u32(above_slice[ni].1)?;
            }
            w.position()
        };
        store.write(page_ids[page_idx], &buf[..used])?;
    }

    Ok(BuiltTree { root_page: page_ids[0], endpoint_tree, n: intervals.len() as u64 })
}

/// Writes `region` as raw full pages plus a directory page
/// (`[count u16][page id u64 *]`); returns the directory id or
/// [`NULL_PAGE`] when empty.
fn write_shared_region(store: &PageStore, region: &[Interval]) -> Result<PageId> {
    if region.is_empty() {
        return Ok(NULL_PAGE);
    }
    let cap = shared_page_capacity(store.page_size());
    let mut ids = Vec::with_capacity(region.len().div_ceil(cap));
    let mut buf = vec![0u8; store.page_size()];
    for chunk in region.chunks(cap) {
        let id = store.alloc()?;
        let used = {
            let mut w = PageWriter::new(&mut buf);
            for iv in chunk {
                iv.encode(&mut w)?;
            }
            w.position()
        };
        store.write(id, &buf[..used])?;
        ids.push(id);
    }
    let dir = store.alloc()?;
    let used = {
        let mut w = PageWriter::new(&mut buf);
        w.put_u16(ids.len() as u16)?;
        for id in &ids {
            w.put_u64(id.0)?;
        }
        w.position()
    };
    store.write(dir, &buf[..used])?;
    Ok(dir)
}

/// Reads the page-id directory of a shared region.
pub fn read_shared_dir(store: &PageStore, dir: PageId) -> Result<Vec<PageId>> {
    use pc_pagestore::codec::PageReader;
    let page = store.read(dir)?;
    let mut r = PageReader::new(&page);
    let count = r.get_u16()? as usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(PageId(r.get_u64()?));
    }
    Ok(out)
}

/// Reads `len` intervals starting at entry `off` of a shared region,
/// returning the intervals and the number of region pages read.
pub fn read_shared_range(
    store: &PageStore,
    dir: &[PageId],
    off: u32,
    len: u32,
) -> Result<(Vec<Interval>, u64)> {
    use pc_pagestore::codec::PageReader;
    if len == 0 {
        return Ok((Vec::new(), 0));
    }
    let cap = shared_page_capacity(store.page_size());
    let first = off as usize / cap;
    let last = (off as usize + len as usize - 1) / cap;
    let mut out = Vec::with_capacity(len as usize);
    for (page_idx, &page_id) in dir.iter().enumerate().take(last + 1).skip(first) {
        let page = store.read(page_id)?;
        let start_entry = if page_idx == first { off as usize % cap } else { 0 };
        let end_entry =
            ((off as usize + len as usize) - page_idx * cap).min(cap);
        let mut r = PageReader::new(&page);
        r.skip(start_entry * Interval::ENCODED_LEN)?;
        for _ in start_entry..end_entry {
            out.push(Interval::decode(&mut r)?);
        }
    }
    Ok((out, (last - first + 1) as u64))
}

/// DFS computing, for every entry node, the underfull cover-list entries
/// strictly above it (its *above-cache*) and, for every binary leaf, the
/// underfull entries along its in-page path. Both are appended to the
/// owning page's shared region.
fn build_caches(
    mem: &MemTree,
    node_loc: &[(usize, u16)],
    cap_b: usize,
    above_slice: &mut [(u32, u32)],
    shared: &mut [Vec<Interval>],
    shared_slice: &mut [(u32, u32)],
) {
    // Iterative DFS; each frame remembers how much of `path` to keep on
    // exit and where the current page's in-page segment starts.
    struct Frame {
        node: usize,
        parent: usize,
        mark: usize,
        inpage_start: usize,
        visited: bool,
    }
    let mut path: Vec<Interval> = Vec::new();
    let mut stack =
        vec![Frame { node: 0, parent: NONE, mark: 0, inpage_start: 0, visited: false }];
    while let Some(frame) = stack.pop() {
        if frame.visited {
            path.truncate(frame.mark);
            continue;
        }
        let node = &mem.nodes[frame.node];
        let (page_idx, _slot) = node_loc[frame.node];
        let mut inpage_start = frame.inpage_start;
        let is_entry = frame.parent != NONE && node_loc[frame.parent].0 != page_idx;
        if is_entry {
            // The parent page's path segment telescopes into this entry's
            // segment cache; deeper segments are handled by deeper entries.
            let segment = &path[inpage_start..];
            if !segment.is_empty() {
                let region = &mut shared[page_idx];
                above_slice[frame.node] = (region.len() as u32, segment.len() as u32);
                region.extend_from_slice(segment);
            }
            inpage_start = path.len();
        }
        let mark = path.len();
        let len = node.cover.len();
        if len > 0 && len < cap_b {
            path.extend(node.cover.iter().copied());
        }
        if node.is_leaf() {
            let entries = &path[inpage_start..];
            if !entries.is_empty() {
                let region = &mut shared[page_idx];
                shared_slice[frame.node] = (region.len() as u32, entries.len() as u32);
                region.extend_from_slice(entries);
            }
            path.truncate(mark);
            continue;
        }
        // Post-visit marker restores `path`, then children.
        stack.push(Frame { node: frame.node, parent: frame.parent, mark, inpage_start, visited: true });
        stack.push(Frame { node: node.right, parent: frame.node, mark: 0, inpage_start, visited: false });
        stack.push(Frame { node: node.left, parent: frame.node, mark: 0, inpage_start, visited: false });
    }
}

/// Decodes the record at `slot` from raw page bytes.
pub fn decode_record(page: &[u8], slot: u16) -> Result<NodeRecord> {
    use pc_pagestore::codec::PageReader;
    let offset = PAGE_HEADER + RECORD_LEN * slot as usize;
    let mut r = PageReader::new(&page[offset..offset + RECORD_LEN]);
    Ok(NodeRecord {
        split: r.get_u32()?,
        left: NodeRef { page: PageId(r.get_u64()?), slot: r.get_u16()? },
        right: NodeRef { page: PageId(r.get_u64()?), slot: r.get_u16()? },
        cover_full: BlockList::decode(&mut r)?,
        shared_off: r.get_u32()?,
        shared_len: r.get_u32()?,
        above_off: r.get_u32()?,
        above_len: r.get_u32()?,
    })
}

/// Decodes a page's shared-region directory id.
pub fn decode_shared_dir_id(page: &[u8]) -> Result<PageId> {
    use pc_pagestore::codec::PageReader;
    let mut r = PageReader::new(page);
    let _count = r.get_u16()?;
    Ok(PageId(r.get_u64()?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_geometry() {
        // 512-byte page: (512 - 26) / 56 = 8 records, height 3 (7 nodes).
        assert_eq!(page_capacity(512), 8);
        // 4096-byte page: 72 records, height 6 (63 nodes).
        assert_eq!(page_capacity(4096), 72);
        assert_eq!(shared_page_capacity(512), 21);
    }

    #[test]
    fn build_produces_reachable_root() {
        let store = PageStore::in_memory(512);
        let intervals: Vec<Interval> =
            (0..50).map(|i| Interval::new(i, i + 5, i as u64)).collect();
        let built = build_external(&store, &intervals, true).unwrap();
        let page = store.read(built.root_page).unwrap();
        let rec = decode_record(&page, 0).unwrap();
        // Root of a 50-interval tree is internal: children exist.
        assert!(!rec.left.page.is_null());
        assert!(!rec.right.page.is_null());
        assert_eq!(built.n, 50);
    }
}
