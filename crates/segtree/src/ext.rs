//! External segment-tree queries: naive vs path-cached.

use pc_btree::BTree;
use pc_pagestore::codec::{PageReader, PageWriter};
use pc_pagestore::layout::BlockList;
use pc_pagestore::{Interval, PageId, PageStore, Record, Result};

use crate::build::{
    build_external, decode_record, decode_shared_dir_id, read_shared_dir, read_shared_range,
    shared_page_capacity, BuiltTree,
};

/// A serializable, copyable reference to a built segment tree.
///
/// Lets other structures embed a whole (cached) segment tree inside one of
/// their own page records — the external interval tree stores one per
/// endpoint run. 36 bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegTreeHandle {
    pub(crate) root_page: PageId,
    pub(crate) ep_root: PageId,
    pub(crate) ep_height: u32,
    pub(crate) ep_len: u64,
    pub(crate) n: u64,
}

impl Record for SegTreeHandle {
    const ENCODED_LEN: usize = 36;

    fn encode(&self, w: &mut PageWriter<'_>) -> Result<()> {
        w.put_u64(self.root_page.0)?;
        w.put_u64(self.ep_root.0)?;
        w.put_u32(self.ep_height)?;
        w.put_u64(self.ep_len)?;
        w.put_u64(self.n)
    }

    fn decode(r: &mut PageReader<'_>) -> Result<Self> {
        Ok(SegTreeHandle {
            root_page: PageId(r.get_u64()?),
            ep_root: PageId(r.get_u64()?),
            ep_height: r.get_u32()?,
            ep_len: r.get_u64()?,
            n: r.get_u64()?,
        })
    }
}

/// Per-query I/O profile, the measured quantity of experiment E2.
///
/// Output I/Os are classified exactly as in §2 of the paper: a block read
/// that returns a full block of result intervals is *useful*; one returning
/// fewer is *wasteful*. Navigation I/Os (skeletal pages, endpoint B-tree)
/// are reported separately as `search_ios`.
#[derive(Debug, Clone, Default)]
pub struct QueryProfile {
    /// The reported intervals (each contains the query point).
    pub results: Vec<Interval>,
    /// Root-to-leaf navigation page reads (`O(log_B n)`).
    pub search_ios: u64,
    /// Output block reads returning a full block.
    pub useful_ios: u64,
    /// Output block reads returning a partial block.
    pub wasteful_ios: u64,
}

impl QueryProfile {
    /// Total page reads for the query.
    pub fn total_ios(&self) -> u64 {
        self.search_ios + self.useful_ios + self.wasteful_ios
    }
}

/// Shared query engine; `CACHED` selects the §2 path-cached read strategy.
struct Engine<'a> {
    store: &'a PageStore,
    tree: &'a BuiltTree,
    cached: bool,
}

impl Engine<'_> {
    /// Maps a query point to its elementary-slab index using the external
    /// endpoint B-tree (`O(log_B n)` I/Os, counted by the caller via store
    /// stats).
    fn slab_of_query(&self, q: i64) -> Result<u32> {
        Ok(match self.tree.endpoint_tree.pred(self.store, &q)? {
            None => 0,
            Some((e, j)) if e == q => 2 * j as u32 + 1,
            Some((_, j)) => 2 * j as u32 + 2,
        })
    }

    /// Reads a whole block list, classifying each block as useful/wasteful.
    fn drain_list(&self, list: &BlockList<Interval>, profile: &mut QueryProfile) -> Result<()> {
        let cap = BlockList::<Interval>::capacity(self.store.page_size());
        let _span = pc_obs::span!(output: "cover_list");
        pc_obs::set_block_capacity(cap as u64);
        for block in list.blocks(self.store) {
            let block = block?;
            if block.len() == cap {
                profile.useful_ios += 1;
            } else {
                profile.wasteful_ios += 1;
            }
            pc_obs::add_items(block.len() as u64);
            profile.results.extend(block);
        }
        Ok(())
    }

    /// Reads a slice of the current page's shared region, lazily loading
    /// the region directory (the directory read lands in `search_ios`).
    fn drain_shared(
        &self,
        page: &[u8],
        dir_cache: &mut Option<Vec<PageId>>,
        off: u32,
        len: u32,
        profile: &mut QueryProfile,
    ) -> Result<()> {
        if len == 0 {
            return Ok(());
        }
        if dir_cache.is_none() {
            // Loaded before the output span opens: the directory read is a
            // navigation I/O, exactly as `search_ios` classifies it.
            let dir_id = decode_shared_dir_id(page)?;
            *dir_cache = Some(read_shared_dir(self.store, dir_id)?);
        }
        let dir = dir_cache.as_ref().expect("just loaded");
        let cap = shared_page_capacity(self.store.page_size()) as u64;
        let _span = pc_obs::span!(output: "shared_scan");
        pc_obs::set_block_capacity(cap);
        let (entries, blocks) = read_shared_range(self.store, dir, off, len)?;
        pc_obs::add_items(entries.len() as u64);
        let useful = u64::from(len) / cap;
        profile.useful_ios += useful;
        profile.wasteful_ios += blocks - useful;
        profile.results.extend(entries);
        Ok(())
    }

    fn stab(&self, q: i64) -> Result<QueryProfile> {
        let _span = pc_obs::span!("segtree_stab");
        let mut profile = QueryProfile::default();
        let before = self.store.stats();
        let target = self.slab_of_query(q)?;

        let mut cur_page = self.tree.root_page;
        let mut cur_slot = 0u16;
        // Slot through which the path entered the current page; its record
        // carries the above-path cache for this page visit.
        let mut entry_slot = 0u16;
        let mut skeletal_depth = 0u64;
        let mut page = {
            let _lvl = pc_obs::span!("level", skeletal_depth);
            self.store.read(cur_page)?
        };
        let mut dir_cache: Option<Vec<PageId>> = None;
        loop {
            let rec = decode_record(&page, cur_slot)?;
            if self.cached && cur_slot == entry_slot && rec.above_len > 0 {
                // Page entry: the previous page's segment cache.
                self.drain_shared(&page, &mut dir_cache, rec.above_off, rec.above_len, &mut profile)?;
            }
            if !rec.cover_full.is_empty() {
                // Full cover-lists are read directly in both variants.
                self.drain_list(&rec.cover_full, &mut profile)?;
            }
            if !self.cached && rec.shared_len > 0 {
                // Naive: the underfull cover-list, packed in the shared
                // region — still a dedicated read per path node.
                self.drain_shared(&page, &mut dir_cache, rec.shared_off, rec.shared_len, &mut profile)?;
            }
            if rec.left.page.is_null() {
                // Binary leaf reached.
                if self.cached {
                    // The bottom page's own segment: the leaf's in-page
                    // cache slice.
                    self.drain_shared(&page, &mut dir_cache, rec.shared_off, rec.shared_len, &mut profile)?;
                }
                break;
            }
            let next = if target <= rec.split { rec.left } else { rec.right };
            if next.page != cur_page {
                cur_page = next.page;
                skeletal_depth += 1;
                let _lvl = pc_obs::span!("level", skeletal_depth);
                page = self.store.read(cur_page)?;
                dir_cache = None;
                entry_slot = next.slot;
            }
            cur_slot = next.slot;
        }

        // Saturating: on a durable store, reads served from the WAL dirty
        // table are not backend transfers, so the output-block counts can
        // exceed the transfer delta. The paper's exact accounting holds in
        // the strict volatile stores the experiments use.
        let total_reads = (self.store.stats() - before).reads;
        profile.search_ios =
            total_reads.saturating_sub(profile.useful_ios + profile.wasteful_ios);
        Ok(profile)
    }
}

macro_rules! segment_tree_variant {
    ($(#[$doc:meta])* $name:ident, $cached:expr) => {
        $(#[$doc])*
        pub struct $name {
            built: BuiltTree,
        }

        impl $name {
            /// Builds the structure over `intervals` in the given store.
            pub fn build(store: &PageStore, intervals: &[Interval]) -> Result<Self> {
                Ok($name { built: build_external(store, intervals, $cached)? })
            }

            /// Number of indexed intervals.
            pub fn len(&self) -> u64 {
                self.built.n
            }

            /// True when the structure indexes no intervals.
            pub fn is_empty(&self) -> bool {
                self.built.n == 0
            }

            /// Stabbing query: all intervals containing `q`.
            pub fn stab(&self, store: &PageStore, q: i64) -> Result<Vec<Interval>> {
                Ok(self.stab_profiled(store, q)?.results)
            }

            /// Stabbing query with a full I/O profile (experiment E2).
            pub fn stab_profiled(&self, store: &PageStore, q: i64) -> Result<QueryProfile> {
                Engine { store, tree: &self.built, cached: $cached }.stab(q)
            }

            /// A compact, serializable reference to this tree, suitable for
            /// embedding in another structure's pages.
            pub fn handle(&self) -> SegTreeHandle {
                SegTreeHandle {
                    root_page: self.built.root_page,
                    ep_root: self.built.endpoint_tree.root_page(),
                    ep_height: self.built.endpoint_tree.height(),
                    ep_len: self.built.endpoint_tree.len(),
                    n: self.built.n,
                }
            }

            /// Reconstructs the tree from a previously obtained handle.
            pub fn from_handle(h: SegTreeHandle) -> Self {
                $name {
                    built: BuiltTree {
                        root_page: h.root_page,
                        endpoint_tree: BTree::from_parts(h.ep_root, h.ep_height, h.ep_len),
                        n: h.n,
                    },
                }
            }

            /// Rewrites this tree into `dst` in van Emde Boas page order
            /// (see [`pc_pagestore::repack`]) and returns the relocated
            /// tree. Both stores must be quiesced.
            pub fn repack(&self, src: &PageStore, dst: &PageStore) -> Result<Self> {
                Ok(Self::from_handle(self.handle().repack(src, dst)?))
            }
        }
    };
}

segment_tree_variant!(
    /// Skeletal-blocked external segment tree **without** path caches
    /// (§2 before the fix): `O(log n + t/B)` query I/Os because every
    /// nonempty cover-list on the path is read, underfull or not.
    NaiveSegmentTree,
    false
);

segment_tree_variant!(
    /// Path-cached external segment tree (Theorem 3.4): `O(log_B n + t/B)`
    /// query I/Os; underfull cover-lists are served from the bottom page's
    /// above-path cache and the leaf's in-page cache.
    CachedSegmentTree,
    true
);

#[cfg(test)]
mod tests {
    use super::*;
    use pc_pagestore::PageStore;

    fn iv(lo: i64, hi: i64, id: u64) -> Interval {
        Interval::new(lo, hi, id)
    }

    fn ids(mut v: Vec<Interval>) -> Vec<u64> {
        let mut ids: Vec<u64> = v.drain(..).map(|i| i.id).collect();
        ids.sort_unstable();
        ids
    }

    fn brute(intervals: &[Interval], q: i64) -> Vec<u64> {
        let mut out: Vec<u64> =
            intervals.iter().filter(|i| i.contains(q)).map(|i| i.id).collect();
        out.sort_unstable();
        out
    }

    fn xorshift(state: &mut u64, bound: i64) -> i64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        (*state % bound as u64) as i64
    }

    fn random_intervals(n: usize, seed: u64) -> Vec<Interval> {
        let mut s = seed;
        (0..n)
            .map(|id| {
                let a = xorshift(&mut s, 10_000);
                iv(a, a + xorshift(&mut s, 500), id as u64)
            })
            .collect()
    }

    #[test]
    fn both_variants_match_brute_force() {
        let store = PageStore::in_memory(512);
        let intervals = random_intervals(400, 0xfeed);
        let naive = NaiveSegmentTree::build(&store, &intervals).unwrap();
        let cached = CachedSegmentTree::build(&store, &intervals).unwrap();
        let mut s = 0x1111u64;
        for _ in 0..100 {
            let q = xorshift(&mut s, 11_000) - 200;
            let want = brute(&intervals, q);
            assert_eq!(ids(naive.stab(&store, q).unwrap()), want, "naive q={q}");
            assert_eq!(ids(cached.stab(&store, q).unwrap()), want, "cached q={q}");
        }
    }

    #[test]
    fn empty_tree_answers_empty() {
        let store = PageStore::in_memory(512);
        let tree = CachedSegmentTree::build(&store, &[]).unwrap();
        assert!(tree.is_empty());
        assert!(tree.stab(&store, 5).unwrap().is_empty());
    }

    #[test]
    fn single_interval() {
        let store = PageStore::in_memory(512);
        let tree = CachedSegmentTree::build(&store, &[iv(10, 20, 7)]).unwrap();
        assert_eq!(ids(tree.stab(&store, 10).unwrap()), vec![7]);
        assert_eq!(ids(tree.stab(&store, 20).unwrap()), vec![7]);
        assert_eq!(ids(tree.stab(&store, 15).unwrap()), vec![7]);
        assert!(tree.stab(&store, 9).unwrap().is_empty());
        assert!(tree.stab(&store, 21).unwrap().is_empty());
    }

    #[test]
    fn cached_has_fewer_wasteful_ios_than_naive() {
        // Many long intervals spread allocations over the whole path: the
        // naive variant pays a wasteful I/O per underfull list.
        let store = PageStore::in_memory(512);
        let intervals = random_intervals(2000, 0xabcd);
        let naive = NaiveSegmentTree::build(&store, &intervals).unwrap();
        let cached = CachedSegmentTree::build(&store, &intervals).unwrap();
        let mut s = 0x2222u64;
        let mut naive_wasteful = 0;
        let mut cached_wasteful = 0;
        let mut queries = 0;
        for _ in 0..50 {
            let q = xorshift(&mut s, 10_000);
            let pn = naive.stab_profiled(&store, q).unwrap();
            let pc = cached.stab_profiled(&store, q).unwrap();
            assert_eq!(ids(pn.results.clone()), ids(pc.results.clone()));
            naive_wasteful += pn.wasteful_ios;
            cached_wasteful += pc.wasteful_ios;
            queries += 1;
        }
        assert!(
            cached_wasteful < naive_wasteful,
            "cached {cached_wasteful} vs naive {naive_wasteful} over {queries} queries"
        );
        // The cached variant reads one small segment cache per page
        // crossing (O(log_B n) of them — §2's optimization (2)) plus
        // partial tails of full lists; with 512-byte pages the path
        // crosses ~5 pages, so ~8 wasteful I/Os per query is the expected
        // ceiling.
        assert!(cached_wasteful <= 8 * queries, "cached_wasteful={cached_wasteful}");
    }

    #[test]
    fn cached_query_io_is_optimal_shape() {
        let store = PageStore::in_memory(512);
        let intervals = random_intervals(5000, 0x5eed);
        let tree = CachedSegmentTree::build(&store, &intervals).unwrap();
        let cap = BlockList::<Interval>::capacity(512) as u64;
        let mut s = 0x3333u64;
        for _ in 0..50 {
            let q = xorshift(&mut s, 10_000);
            let p = tree.stab_profiled(&store, q).unwrap();
            let t = p.results.len() as u64;
            // O(log_B n) navigation (skeletal pages + endpoint B-tree +
            // one shared-region directory per visited page).
            assert!(p.search_ios <= 18, "search {} too high", p.search_ios);
            // Output cost <= 2 t/B + O(log_B n): one partially-filled
            // cache slice per page crossing plus partial list tails.
            assert!(
                p.useful_ios + p.wasteful_ios <= 2 * (t / cap) + 12,
                "output ios {} for t={t}",
                p.useful_ios + p.wasteful_ios
            );
        }
    }

    #[test]
    fn handle_reconstructs_a_working_tree() {
        let store = PageStore::in_memory(512);
        let intervals = random_intervals(300, 0x4242);
        let tree = CachedSegmentTree::build(&store, &intervals).unwrap();
        let handle = tree.handle();
        let restored = CachedSegmentTree::from_handle(handle);
        assert_eq!(restored.len(), tree.len());
        let mut s = 0x777u64;
        for _ in 0..30 {
            let q = xorshift(&mut s, 11_000) - 200;
            assert_eq!(
                ids(restored.stab(&store, q).unwrap()),
                ids(tree.stab(&store, q).unwrap()),
                "q={q}"
            );
        }
        // And the handle round-trips through its Record encoding.
        let mut buf = vec![0u8; SegTreeHandle::ENCODED_LEN];
        let mut w = PageWriter::new(&mut buf);
        handle.encode(&mut w).unwrap();
        let mut r = PageReader::new(&buf);
        assert_eq!(SegTreeHandle::decode(&mut r).unwrap(), handle);
    }

    #[test]
    fn shared_endpoints_roundtrip_externally() {
        let store = PageStore::in_memory(512);
        let intervals =
            vec![iv(5, 5, 0), iv(5, 10, 1), iv(0, 5, 2), iv(10, 10, 3), iv(0, 10, 4)];
        let tree = CachedSegmentTree::build(&store, &intervals).unwrap();
        assert_eq!(ids(tree.stab(&store, 5).unwrap()), vec![0, 1, 2, 4]);
        assert_eq!(ids(tree.stab(&store, 10).unwrap()), vec![1, 3, 4]);
        assert_eq!(ids(tree.stab(&store, 7).unwrap()), vec![1, 4]);
    }
}
