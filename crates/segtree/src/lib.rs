//! # pc-segtree — external segment trees (paper §2, Theorem 3.4)
//!
//! Segment trees answer *stabbing queries*: given `n` intervals, report all
//! `t` intervals containing a query point `q`. Section 2 of the paper uses
//! them to introduce path caching, and this crate implements both sides of
//! that story:
//!
//! * [`NaiveSegmentTree`] — the skeletal blocking of Figure 2 **without**
//!   caches. Navigation is `O(log_B n)`, but the query must read every
//!   nonempty cover-list on the root-to-leaf path, and underfull lists
//!   (fewer than `B` intervals) each cost a *wasteful* I/O: worst-case
//!   `O(log n + t/B)` I/Os (the Figure 3 pathology).
//! * [`CachedSegmentTree`] — the same structure **with** path caches:
//!   underfull cover-lists along each path are coalesced and blocked, so a
//!   query reads `O(1)` caches plus only full lists: `O(log_B n + t/B)`
//!   I/Os (Theorem 3.4).
//!
//! ## The crucial segment-tree property
//!
//! An interval lives in the cover-list of node `x` iff it contains `x`'s
//! entire cover interval. Hence every interval stored on the root-to-leaf
//! path of `q` *contains `q`* — the query's answer is exactly the union of
//! the path's cover-lists, with no filtering. Reading any path list or
//! cache block yields only answers, so each list/cache costs at most one
//! wasteful (partially-filled) I/O, which the accounting in §2 pays for
//! with useful ones.
//!
//! ## Cache construction (our instantiation of Thm 3.4)
//!
//! The extended abstract defers the space-optimized construction to the
//! full version; we implement the following well-defined variant. The
//! binary tree is blocked into skeletal pages of height `h ≈ log₂ B`
//! (Figure 2). For each **bottom page** `P` we store one *above-path
//! cache*: the concatenated underfull cover-lists of all binary nodes from
//! the root to `P`'s subtree root (this path is shared by every leaf in
//! `P`, so there are only `O(n/B)` such caches of `O(log n)` blocks each —
//! optimization (1) of §2). For the residual in-page path we store a
//! per-binary-leaf *in-page cache* of the `< h` underfull in-page lists
//! (optimization (2): the query reads `O(1)` small caches instead of
//! `log n` lists). Space is `O((n/B)·log n)` blocks for cover lists and
//! above-path caches, plus an in-page-cache term that is `O(n/B)` blocks on
//! non-adversarial inputs (worst case `O(n)` when many intervals align
//! exactly with page subtree slabs — see DESIGN.md).
//!
//! ```
//! use pc_pagestore::{Interval, PageStore};
//! use pc_segtree::CachedSegmentTree;
//!
//! let store = PageStore::in_memory(512);
//! let intervals: Vec<Interval> =
//!     (0..100).map(|i| Interval::new(i, i + 10, i as u64)).collect();
//! let tree = CachedSegmentTree::build(&store, &intervals).unwrap();
//! let hits = tree.stab(&store, 55).unwrap();
//! assert_eq!(hits.len(), 11); // intervals [45,55] .. [55,65]
//! ```

mod build;
mod ext;
mod mem;
mod repack;

pub use ext::{CachedSegmentTree, NaiveSegmentTree, QueryProfile, SegTreeHandle};
