//! In-memory segment-tree construction over elementary slabs.
//!
//! The external structures are built by first assembling the classic
//! segment tree in memory (endpoints → elementary slabs → balanced binary
//! tree → cover-list allocation), then paginating it (see `build`).
//!
//! ## Elementary slabs
//!
//! For sorted distinct endpoints `e_0 < … < e_{m-1}` the line decomposes
//! into `2m + 1` slabs, alternating open gaps and closed singletons:
//!
//! ```text
//! index: 0          1         2          3         …   2m
//! slab:  (-∞, e_0)  [e_0,e_0] (e_0,e_1)  [e_1,e_1] …   (e_{m-1}, +∞)
//! ```
//!
//! Closed input intervals decompose exactly into slab ranges, which sidesteps
//! the paper's "no shared endpoints" simplification.

use pc_pagestore::Interval;

/// A node of the in-memory segment tree. Children are indices into the
/// arena (`usize::MAX` for leaves).
#[derive(Debug)]
pub struct MemNode {
    /// Lowest slab index covered by this subtree.
    pub lo: u32,
    /// Highest slab index covered by this subtree (inclusive).
    pub hi: u32,
    /// Highest slab index covered by the left child; route left iff
    /// `target <= split`. Unused for leaves.
    pub split: u32,
    /// Arena index of the left child (`NONE` for leaves).
    pub left: usize,
    /// Arena index of the right child (`NONE` for leaves).
    pub right: usize,
    /// Cover-list: intervals allocated at this node.
    pub cover: Vec<Interval>,
}

/// Sentinel child index for leaves.
pub const NONE: usize = usize::MAX;

impl MemNode {
    /// True if this node has no children.
    pub fn is_leaf(&self) -> bool {
        self.left == NONE
    }
}

/// The in-memory segment tree: an arena of nodes plus the sorted endpoint
/// array defining the slab decomposition.
pub struct MemTree {
    /// Node arena; index 0 is the root.
    pub nodes: Vec<MemNode>,
    /// Sorted, deduplicated endpoint values.
    pub endpoints: Vec<i64>,
}

impl MemTree {
    /// Builds the tree and allocates every interval's cover-lists.
    pub fn build(intervals: &[Interval]) -> MemTree {
        let mut endpoints: Vec<i64> = Vec::with_capacity(intervals.len() * 2);
        for iv in intervals {
            endpoints.push(iv.lo);
            endpoints.push(iv.hi);
        }
        endpoints.sort_unstable();
        endpoints.dedup();

        let slabs = if endpoints.is_empty() { 1 } else { 2 * endpoints.len() as u32 + 1 };
        let mut nodes = Vec::with_capacity(2 * slabs as usize);
        build_subtree(&mut nodes, 0, slabs - 1);
        let mut tree = MemTree { nodes, endpoints };
        for iv in intervals {
            let lo_slab = tree.slab_of_endpoint(iv.lo);
            let hi_slab = tree.slab_of_endpoint(iv.hi);
            tree.allocate(0, lo_slab, hi_slab, *iv);
        }
        tree
    }

    /// Slab index of an endpoint value that is known to be in
    /// `self.endpoints` (singleton slab `2j + 1`).
    fn slab_of_endpoint(&self, v: i64) -> u32 {
        let j = pc_pagestore::search::binary_search_by_key(&self.endpoints, &v, |&e| e)
            .expect("endpoint must exist");
        2 * j as u32 + 1
    }

    /// Slab index containing an arbitrary query point (in-memory oracle
    /// counterpart of the external endpoint-B-tree lookup).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn slab_of_query(&self, q: i64) -> u32 {
        match pc_pagestore::search::binary_search_by_key(&self.endpoints, &q, |&e| e) {
            Ok(j) => 2 * j as u32 + 1,
            // Insertion position j means e_{j-1} < q < e_j: open slab 2j.
            Err(j) => 2 * j as u32,
        }
    }

    /// Standard segment-tree allocation: store `iv` at every maximal node
    /// whose slab range is contained in `[lo, hi]`.
    fn allocate(&mut self, node: usize, lo: u32, hi: u32, iv: Interval) {
        let (nlo, nhi, split, left, right) = {
            let n = &self.nodes[node];
            (n.lo, n.hi, n.split, n.left, n.right)
        };
        debug_assert!(lo <= nhi && hi >= nlo, "allocation must overlap the node");
        if lo <= nlo && nhi <= hi {
            self.nodes[node].cover.push(iv);
            return;
        }
        if left == NONE {
            // A leaf slab is either fully inside or fully outside.
            return;
        }
        if lo <= split {
            self.allocate(left, lo, hi, iv);
        }
        if hi > split {
            self.allocate(right, lo, hi, iv);
        }
    }

    /// Oracle query used by tests: walk the path and union cover-lists.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn stab_oracle(&self, q: i64) -> Vec<Interval> {
        let target = self.slab_of_query(q);
        let mut out = Vec::new();
        let mut cur = 0usize;
        loop {
            let n = &self.nodes[cur];
            out.extend(n.cover.iter().copied());
            if n.is_leaf() {
                return out;
            }
            cur = if target <= n.split { n.left } else { n.right };
        }
    }
}

/// Recursively builds a balanced subtree over slabs `[lo, hi]`, returning
/// its arena index.
fn build_subtree(nodes: &mut Vec<MemNode>, lo: u32, hi: u32) -> usize {
    let idx = nodes.len();
    nodes.push(MemNode { lo, hi, split: lo, left: NONE, right: NONE, cover: Vec::new() });
    if lo < hi {
        let mid = lo + (hi - lo) / 2;
        let left = build_subtree(nodes, lo, mid);
        let right = build_subtree(nodes, mid + 1, hi);
        let n = &mut nodes[idx];
        n.split = mid;
        n.left = left;
        n.right = right;
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: i64, hi: i64, id: u64) -> Interval {
        Interval::new(lo, hi, id)
    }

    /// Brute-force reference.
    fn brute(intervals: &[Interval], q: i64) -> Vec<u64> {
        let mut ids: Vec<u64> =
            intervals.iter().filter(|i| i.contains(q)).map(|i| i.id).collect();
        ids.sort_unstable();
        ids
    }

    fn check(intervals: &[Interval], queries: &[i64]) {
        let tree = MemTree::build(intervals);
        for &q in queries {
            let mut got: Vec<u64> = tree.stab_oracle(q).iter().map(|i| i.id).collect();
            got.sort_unstable();
            let want = brute(intervals, q);
            assert_eq!(got, want, "q={q}");
        }
    }

    #[test]
    fn matches_brute_force_on_small_cases() {
        let intervals = vec![iv(1, 5, 0), iv(3, 8, 1), iv(5, 5, 2), iv(0, 10, 3), iv(7, 9, 4)];
        check(&intervals, &[-1, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11]);
    }

    #[test]
    fn shared_endpoints_are_handled() {
        let intervals = vec![iv(2, 6, 0), iv(6, 9, 1), iv(6, 6, 2), iv(2, 2, 3)];
        check(&intervals, &[1, 2, 3, 5, 6, 7, 9, 10]);
    }

    #[test]
    fn randomized_against_brute_force() {
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut rand = move |bound: i64| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % bound as u64) as i64
        };
        let intervals: Vec<Interval> = (0..300)
            .map(|id| {
                let a = rand(1000);
                let b = a + rand(200);
                iv(a, b, id)
            })
            .collect();
        let queries: Vec<i64> = (0..200).map(|_| rand(1300) - 50).collect();
        check(&intervals, &queries);
    }

    #[test]
    fn allocation_count_is_logarithmic() {
        // Each interval must occupy O(log n) cover-list slots.
        let intervals: Vec<Interval> = (0..1000).map(|i| iv(i, i + 500, i as u64)).collect();
        let tree = MemTree::build(&intervals);
        let total: usize = tree.nodes.iter().map(|n| n.cover.len()).sum();
        let n = intervals.len() as f64;
        let bound = (n * 2.0 * n.log2()).ceil() as usize;
        assert!(total <= bound, "total allocations {total} exceed 2 n log n = {bound}");
    }

    #[test]
    fn empty_input_builds_single_leaf() {
        let tree = MemTree::build(&[]);
        assert_eq!(tree.nodes.len(), 1);
        assert!(tree.stab_oracle(5).is_empty());
    }

    #[test]
    fn slab_of_query_alternates_open_closed() {
        let tree = MemTree::build(&[iv(10, 20, 0)]);
        // endpoints [10, 20]: slabs (-inf,10) [10] (10,20) [20] (20,inf)
        assert_eq!(tree.slab_of_query(5), 0);
        assert_eq!(tree.slab_of_query(10), 1);
        assert_eq!(tree.slab_of_query(15), 2);
        assert_eq!(tree.slab_of_query(20), 3);
        assert_eq!(tree.slab_of_query(25), 4);
    }
}
