//! van Emde Boas repacking of a built external segment tree.
//!
//! See [`pc_pagestore::repack`] for the overall scheme. The segment
//! tree's physical layout has three page families, all reached from a
//! [`SegTreeHandle`]:
//!
//! * the **endpoint B-tree** (queried first by every stab) — delegated to
//!   `pc-btree`'s own collect/rewrite;
//! * the **skeletal pages** — a *DAG*, not a tree: the build packs several
//!   pending subtree roots into each page, so two parent pages can point
//!   into the same child page. The first-discovery spanning tree drives
//!   the vEB recursion; later edges are merely remapped;
//! * per skeletal page, the **attached pages**: the shared-region
//!   directory plus its raw interval pages, and every record's full
//!   cover-list chain — laid out contiguously right after their page.

use std::collections::{HashSet, VecDeque};

use pc_btree::BTree;
use pc_pagestore::codec::{PageReader, PageWriter};
use pc_pagestore::repack::{
    chain_pages, copy_chain, copy_raw, ensure_quiesced, PageGraph, Relocation,
};
use pc_pagestore::{PageId, PageStore, Record, Result};

use crate::build::{decode_record, read_shared_dir};
use crate::ext::SegTreeHandle;

impl SegTreeHandle {
    fn endpoint_tree(&self) -> BTree<i64, u64> {
        BTree::from_parts(self.ep_root, self.ep_height, self.ep_len)
    }

    /// Records every page of this tree (endpoint B-tree, skeletal DAG,
    /// shared regions, cover chains) into `graph`. The endpoint tree goes
    /// first: stab queries traverse it before the skeletal descent.
    pub fn collect_pages(&self, store: &PageStore, graph: &mut PageGraph) -> Result<()> {
        self.endpoint_tree().collect_pages(store, graph)?;
        collect_skeletal(store, self.root_page, graph)
    }

    /// Re-encodes every page into `dst` at its relocated id, mapping all
    /// embedded page ids through `map`. Returns the relocated handle.
    pub fn rewrite_into(
        &self,
        src: &PageStore,
        dst: &PageStore,
        map: &Relocation,
    ) -> Result<SegTreeHandle> {
        let ep = self.endpoint_tree().rewrite_into(src, dst, map)?;
        rewrite_skeletal(src, dst, self.root_page, map)?;
        Ok(SegTreeHandle {
            root_page: map.get(self.root_page)?,
            ep_root: ep.root_page(),
            ep_height: ep.height(),
            ep_len: ep.len(),
            n: self.n,
        })
    }

    /// Rewrites the whole tree into `dst` in van Emde Boas page order and
    /// returns the relocated handle. Both stores must be quiesced.
    pub fn repack(&self, src: &PageStore, dst: &PageStore) -> Result<SegTreeHandle> {
        ensure_quiesced(src)?;
        ensure_quiesced(dst)?;
        let mut graph = PageGraph::new();
        self.collect_pages(src, &mut graph)?;
        let reloc = Relocation::alloc_in(&graph.veb_order(), dst)?;
        self.rewrite_into(src, dst, &reloc)
    }
}

/// Decodes a skeletal page header: `[count: u16][shared_dir: u64]`.
fn skeletal_header(page: &[u8]) -> Result<(usize, PageId)> {
    let mut r = PageReader::new(page);
    let count = r.get_u16()? as usize;
    let dir = PageId(r.get_u64()?);
    Ok((count, dir))
}

fn collect_skeletal(store: &PageStore, root: PageId, graph: &mut PageGraph) -> Result<()> {
    let Some(root_idx) = graph.add_root(root) else {
        return Ok(());
    };
    let mut queue = VecDeque::from([(root, root_idx)]);
    while let Some((pid, idx)) = queue.pop_front() {
        let page = store.read(pid)?;
        let (count, dir) = skeletal_header(&page)?;
        if !dir.is_null() {
            let raw = read_shared_dir(store, dir)?;
            graph.attach(idx, &[dir]);
            graph.attach(idx, &raw);
        }
        for slot in 0..count {
            let rec = decode_record(&page, slot as u16)?;
            if !rec.cover_full.is_empty() {
                graph.attach(idx, &chain_pages(store, rec.cover_full.head())?);
            }
            for child in [rec.left, rec.right] {
                if !child.page.is_null() && child.page != pid {
                    if let Some(child_idx) = graph.add_child(idx, child.page) {
                        queue.push_back((child.page, child_idx));
                    }
                }
            }
        }
    }
    Ok(())
}

fn rewrite_skeletal(
    src: &PageStore,
    dst: &PageStore,
    root: PageId,
    map: &Relocation,
) -> Result<()> {
    let mut visited = HashSet::new();
    let mut stack = vec![root];
    let mut buf = vec![0u8; src.page_size()];
    while let Some(pid) = stack.pop() {
        if !visited.insert(pid.0) {
            continue;
        }
        let page = src.read(pid)?;
        let (count, dir) = skeletal_header(&page)?;
        if !dir.is_null() {
            // Raw region pages hold bare interval arrays (no embedded
            // ids); the directory is rebuilt with relocated ids.
            let raw = read_shared_dir(src, dir)?;
            for &p in &raw {
                copy_raw(src, dst, p, map)?;
            }
            let used = {
                let mut w = PageWriter::new(&mut buf);
                w.put_u16(raw.len() as u16)?;
                for &p in &raw {
                    w.put_u64(map.get(p)?.0)?;
                }
                w.position()
            };
            dst.write(map.get(dir)?, &buf[..used])?;
        }
        let used = {
            let mut w = PageWriter::new(&mut buf);
            w.put_u16(count as u16)?;
            w.put_u64(map.get(dir)?.0)?;
            for slot in 0..count {
                let rec = decode_record(&page, slot as u16)?;
                // Mirror of build_external's record serialization.
                w.put_u32(rec.split)?;
                for child in [rec.left, rec.right] {
                    w.put_u64(map.get(child.page)?.0)?;
                    w.put_u16(child.slot)?;
                }
                rec.cover_full.with_head(map.get(rec.cover_full.head())?).encode(&mut w)?;
                w.put_u32(rec.shared_off)?;
                w.put_u32(rec.shared_len)?;
                w.put_u32(rec.above_off)?;
                w.put_u32(rec.above_len)?;
            }
            w.position()
        };
        for slot in 0..count {
            let rec = decode_record(&page, slot as u16)?;
            if !rec.cover_full.is_empty() {
                copy_chain(src, dst, rec.cover_full.head(), map)?;
            }
            for child in [rec.left, rec.right] {
                if !child.page.is_null() && child.page != pid {
                    stack.push(child.page);
                }
            }
        }
        dst.write(map.get(pid)?, &buf[..used])?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ext::{CachedSegmentTree, NaiveSegmentTree};
    use pc_pagestore::Interval;

    fn xorshift(state: &mut u64, bound: i64) -> i64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        (*state % bound as u64) as i64
    }

    fn random_intervals(n: usize, seed: u64) -> Vec<Interval> {
        let mut s = seed;
        (0..n)
            .map(|id| {
                let a = xorshift(&mut s, 10_000);
                Interval::new(a, a + xorshift(&mut s, 500), id as u64)
            })
            .collect()
    }

    fn ids(mut v: Vec<Interval>) -> Vec<u64> {
        let mut out: Vec<u64> = v.drain(..).map(|i| i.id).collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn repacked_cached_tree_answers_and_profiles_identically() {
        let src = PageStore::in_memory(512);
        let intervals = random_intervals(1500, 0xc0de);
        let tree = CachedSegmentTree::build(&src, &intervals).unwrap();
        let dst = PageStore::in_memory(512);
        let packed = tree.repack(&src, &dst).unwrap();
        assert_eq!(dst.live_pages(), src.live_pages());
        let mut s = 0x9999u64;
        for _ in 0..40 {
            let q = xorshift(&mut s, 11_000) - 200;
            let a = tree.stab_profiled(&src, q).unwrap();
            let b = packed.stab_profiled(&dst, q).unwrap();
            assert_eq!(ids(a.results.clone()), ids(b.results.clone()), "q={q}");
            assert_eq!(a.total_ios(), b.total_ios(), "transfer count q={q}");
            assert_eq!(a.useful_ios, b.useful_ios, "q={q}");
            assert_eq!(a.wasteful_ios, b.wasteful_ios, "q={q}");
        }
    }

    #[test]
    fn repacked_naive_tree_answers_identically() {
        let src = PageStore::in_memory(512);
        let intervals = random_intervals(600, 0xeeee);
        let tree = NaiveSegmentTree::build(&src, &intervals).unwrap();
        let dst = PageStore::in_memory(512);
        let packed = tree.repack(&src, &dst).unwrap();
        let mut s = 0x1212u64;
        for _ in 0..30 {
            let q = xorshift(&mut s, 11_000) - 200;
            assert_eq!(
                ids(packed.stab(&dst, q).unwrap()),
                ids(tree.stab(&src, q).unwrap()),
                "q={q}"
            );
        }
    }

    #[test]
    fn repack_empty_tree() {
        let src = PageStore::in_memory(512);
        let tree = CachedSegmentTree::build(&src, &[]).unwrap();
        let dst = PageStore::in_memory(512);
        let packed = tree.repack(&src, &dst).unwrap();
        assert!(packed.stab(&dst, 5).unwrap().is_empty());
    }
}
