//! # pc-sync — std locks with the `parking_lot` API shape
//!
//! The workspace is hermetic: tier-1 verify must build with the network
//! disabled, so nothing may come from crates.io. This crate replaces
//! `parking_lot` with thin wrappers over [`std::sync`] that keep the same
//! call shape — `lock()` / `read()` / `write()` return guards directly
//! instead of `Result`s — so lock-using code reads identically.
//!
//! Poisoning is deliberately ignored (`parking_lot` has no poisoning): a
//! panic while holding a lock leaves the protected data in whatever state
//! the panicking thread produced, and the next acquirer proceeds. For this
//! workspace that is the right trade: the locks protect in-memory page
//! frames and allocation tables whose invariants are re-checked by
//! checksums and allocation bitmaps above them.

use std::cell::Cell;
use std::fmt;
use std::sync::PoisonError;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

thread_local! {
    static EXCLUSIVE_ACQUISITIONS: Cell<u64> = const { Cell::new(0) };
}

#[inline]
fn note_exclusive() {
    EXCLUSIVE_ACQUISITIONS.with(|c| c.set(c.get().wrapping_add(1)));
}

/// Number of *exclusive* lock acquisitions ([`Mutex::lock`]/`try_lock` and
/// [`RwLock::write`]/`try_write` that succeeded) made by the calling thread
/// since it started. Shared [`RwLock::read`] acquisitions are not counted.
///
/// This is the lock-freedom analogue of the counting allocator in
/// `pc-obs`'s `zero_alloc` test: a test records the value, runs the code
/// under scrutiny, and asserts the delta is zero to *pin* that a path takes
/// no exclusive lock. The counter is thread-local (no cross-thread noise)
/// and always on — a relaxed `Cell` bump costs nothing measurable next to
/// the lock acquisition itself.
#[inline]
pub fn exclusive_acquisitions() -> u64 {
    EXCLUSIVE_ACQUISITIONS.with(Cell::get)
}

/// A mutual-exclusion lock. `lock()` never fails; a poisoned inner lock is
/// recovered transparently.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        note_exclusive();
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => {
                note_exclusive();
                Some(g)
            }
            Err(std::sync::TryLockError::Poisoned(p)) => {
                note_exclusive();
                Some(p.into_inner())
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock. `read()` / `write()` never fail; a poisoned inner
/// lock is recovered transparently.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        note_exclusive();
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => {
                note_exclusive();
                Some(g)
            }
            Err(std::sync::TryLockError::Poisoned(p)) => {
                note_exclusive();
                Some(p.into_inner())
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A condition variable paired with [`Mutex`]. Same poison stance as the
/// locks: waits never fail, a poisoned inner mutex is recovered
/// transparently. Guards are the re-exported std guards, so this wraps
/// [`std::sync::Condvar`] directly.
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Releases `guard` and blocks until notified, then reacquires the lock.
    /// Spurious wakeups are possible — always re-check the predicate.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.0.wait(guard).unwrap_or_else(PoisonError::into_inner)
    }

    /// Like [`Condvar::wait`] with an upper bound on the blocked time.
    /// Returns the reacquired guard and whether the wait timed out.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: std::time::Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        let (g, res) = self.0.wait_timeout(guard, dur).unwrap_or_else(PoisonError::into_inner);
        (g, res.timed_out())
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every blocked waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic_and_try() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        {
            let _held = m.lock();
            assert!(m.try_lock().is_none());
        }
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_share_writers_exclude() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 6);
            assert!(l.try_write().is_none());
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
        {
            let _w = l.write();
            assert!(l.try_read().is_none());
        }
    }

    #[test]
    fn poisoned_locks_recover() {
        let m = std::sync::Arc::new(Mutex::new(7));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        // parking_lot semantics: a panic while holding the lock does not
        // make later acquisitions fail.
        assert_eq!(*m.lock(), 7);

        let l = std::sync::Arc::new(RwLock::new(3));
        let l2 = l.clone();
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison the rwlock");
        })
        .join();
        assert_eq!(*l.read(), 3);
        *l.write() = 4;
        assert_eq!(*l.read(), 4);
    }

    #[test]
    fn condvar_signals_and_times_out() {
        let pair = std::sync::Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut ready = m.lock();
            while !*ready {
                ready = cv.wait(ready);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();

        // Timeout path: nobody notifies, so the wait must report timed-out.
        let (m, cv) = &*pair;
        let (_g, timed_out) = cv.wait_timeout(m.lock(), std::time::Duration::from_millis(10));
        assert!(timed_out);
    }

    #[test]
    fn exclusive_acquisition_counter_tracks_locks() {
        let m = Mutex::new(0u8);
        let l = RwLock::new(0u8);
        let before = exclusive_acquisitions();
        drop(m.lock());
        drop(l.write());
        assert!(m.try_lock().is_some());
        assert!(l.try_write().is_some());
        assert_eq!(exclusive_acquisitions() - before, 4);
        // Shared reads are not exclusive and must not move the counter.
        let before = exclusive_acquisitions();
        drop(l.read());
        assert!(l.try_read().is_some());
        assert_eq!(exclusive_acquisitions(), before);
        // The counter is thread-local: another thread's locks are invisible.
        let before = exclusive_acquisitions();
        std::thread::scope(|s| {
            s.spawn(|| {
                for _ in 0..100 {
                    drop(m.lock());
                }
            });
        });
        assert_eq!(exclusive_acquisitions(), before);
    }

    #[test]
    fn contended_mutex_counts_exactly() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), 8000);
    }
}
