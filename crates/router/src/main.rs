//! # pc-router — the scatter-gather front-end of the shard fabric
//!
//! Connects to replica groups of `pc-shard` nodes, partitions the keyspace
//! at the given split points, and serves the unchanged v2 wire protocol:
//! clients talk to the router exactly as they would to a single node, and
//! the router scatters reads across the shards each query overlaps, merges
//! canonically, routes updates to the owning shard's whole replica group,
//! fails reads over across replicas, and replays missed updates into
//! recovering replicas (see `pc_serve::router`).
//!
//! Topology flags: one `--shard` per replica group (comma-separated
//! replica addresses), and `--splits` with exactly `groups - 1` strictly
//! increasing keys:
//!
//! ```text
//! pc-shard --addr 127.0.0.1:7001 &   pc-shard --addr 127.0.0.1:7002 &
//! pc-shard --addr 127.0.0.1:7003 &   pc-shard --addr 127.0.0.1:7004 &
//! pc-router --addr 127.0.0.1:7000 \
//!     --shard 127.0.0.1:7001,127.0.0.1:7002 \
//!     --shard 127.0.0.1:7003,127.0.0.1:7004 \
//!     --splits 500000
//! ```
//!
//! Prints `pc-router listening on ADDR` once serving. The ADMIN `Shutdown`
//! op drains the router **and** fans shutdown out to every shard replica;
//! `Stats`/`Metrics` expose the per-shard `pc_shard_*` families.

use std::io::Write as _;
use std::net::{SocketAddr, ToSocketAddrs};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use pc_serve::{FrontendConfig, Router, RouterConfig, RouterFrontend};

const USAGE: &str = "usage: pc-router --shard ADDR[,ADDR...] [--shard ...] [--splits K1,K2,...] \
                     [--addr HOST:PORT] [--health-ms N] [--attempts N] [--seed S]";

#[derive(Debug, Clone)]
struct Args {
    addr: String,
    groups: Vec<Vec<SocketAddr>>,
    splits: Vec<i64>,
    health_ms: u64,
    attempts: u32,
    seed: u64,
}

impl Default for Args {
    fn default() -> Args {
        Args {
            addr: "127.0.0.1:0".to_string(),
            groups: Vec::new(),
            splits: Vec::new(),
            health_ms: 50,
            attempts: 4,
            seed: 0x5AFE_C10C,
        }
    }
}

fn resolve(addr: &str) -> Result<SocketAddr, String> {
    addr.to_socket_addrs()
        .map_err(|e| format!("bad address {addr:?}: {e}"))?
        .next()
        .ok_or(format!("address {addr:?} resolves to nothing"))
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = val("--addr")?,
            "--shard" => {
                let group = val("--shard")?
                    .split(',')
                    .map(resolve)
                    .collect::<Result<Vec<_>, _>>()?;
                args.groups.push(group);
            }
            "--splits" => {
                args.splits = val("--splits")?
                    .split(',')
                    .map(|s| s.parse().map_err(|e| format!("bad split {s:?}: {e}")))
                    .collect::<Result<Vec<_>, _>>()?;
            }
            "--health-ms" => {
                args.health_ms =
                    val("--health-ms")?.parse().map_err(|e| format!("bad --health-ms: {e}"))?;
            }
            "--attempts" => {
                args.attempts =
                    val("--attempts")?.parse().map_err(|e| format!("bad --attempts: {e}"))?;
            }
            "--seed" => {
                args.seed = val("--seed")?.parse().map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    if args.groups.is_empty() {
        return Err(format!("at least one --shard group is required\n{USAGE}"));
    }
    if args.splits.len() + 1 != args.groups.len() {
        return Err(format!(
            "{} shard groups need exactly {} split point(s), got {}",
            args.groups.len(),
            args.groups.len() - 1,
            args.splits.len()
        ));
    }
    Ok(args)
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let cfg = RouterConfig {
        health_interval: Duration::from_millis(args.health_ms.max(1)),
        retry: pc_serve::RetryPolicy { attempts: args.attempts, ..Default::default() },
        seed: args.seed,
        ..RouterConfig::default()
    };
    let router = Arc::new(
        Router::connect(&args.groups, args.splits.clone(), cfg)
            .map_err(|e| format!("connect fabric: {e}"))?,
    );
    let frontend = RouterFrontend::spawn(
        Arc::clone(&router),
        FrontendConfig { addr: args.addr.clone(), ..FrontendConfig::default() },
    )
    .map_err(|e| format!("bind {}: {e}", args.addr))?;
    println!("pc-router listening on {}", frontend.addr());
    std::io::stdout().flush().ok();
    while !router.is_shutting_down() {
        std::thread::sleep(Duration::from_millis(50));
    }
    frontend.join();
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
