//! # pc-shard — one replica node of the shard fabric
//!
//! Runs a single `pc-serve` instance exposing the cluster's standard
//! target layout — target 0 = `"dyn"`, a dynamic priority search tree
//! (2-sided queries + inserts/deletes) — so every replica of every shard
//! agrees on wire target ids. The router (`pc-router`) fans queries and
//! updates out to these nodes over the ordinary v2 protocol.
//!
//! Two storage modes:
//!
//! * default: in-memory page store, optionally preloaded with `--points N`
//!   seeded uniform points (every replica of a group must be started with
//!   identical `--points`/`--seed` so the group holds identical data);
//! * `--data PATH`: file-backed store with a write-ahead log. A fresh path
//!   builds the preload; an existing path **recovers**: pages are replayed
//!   to the last committed batch and the structure is reopened from the
//!   descriptor the server embeds in every group commit — acknowledged
//!   updates survive a kill, which is what the node-kill chaos suite
//!   leans on.
//!
//! Prints `pc-shard listening on ADDR` once serving; exits when a client
//! sends the ADMIN `Shutdown` op (the router's fabric drain does).

use std::io::Write as _;
use std::process::ExitCode;
use std::sync::Arc;

use pc_pagestore::{PageStore, Point, WalConfig};
use pc_pst::DynamicPst;
use pc_serve::{
    decode_commit_meta, DynamicPstTarget, Registry, Server, ServerConfig, Service,
};
use pc_workloads::{gen_points, PointDist};

const USAGE: &str = "usage: pc-shard [--addr HOST:PORT] [--page-size N] [--data PATH] \
                     [--points N] [--seed S] [--queue-depth N] [--workers N]";

#[derive(Debug, Clone)]
struct Args {
    addr: String,
    page_size: usize,
    data: Option<String>,
    n_points: usize,
    seed: u64,
    queue_depth: usize,
    workers: usize,
}

impl Default for Args {
    fn default() -> Args {
        Args {
            addr: "127.0.0.1:0".to_string(),
            page_size: 512,
            data: None,
            n_points: 0,
            seed: 0x5AA9_D001,
            queue_depth: 64,
            workers: 0,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = val("--addr")?,
            "--page-size" => {
                args.page_size =
                    val("--page-size")?.parse().map_err(|e| format!("bad --page-size: {e}"))?;
            }
            "--data" => args.data = Some(val("--data")?),
            "--points" => {
                args.n_points =
                    val("--points")?.parse().map_err(|e| format!("bad --points: {e}"))?;
            }
            "--seed" => {
                args.seed = val("--seed")?.parse().map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--queue-depth" => {
                args.queue_depth = val("--queue-depth")?
                    .parse()
                    .map_err(|e| format!("bad --queue-depth: {e}"))?;
            }
            "--workers" => {
                args.workers =
                    val("--workers")?.parse().map_err(|e| format!("bad --workers: {e}"))?;
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    Ok(args)
}

fn preload(args: &Args) -> Vec<Point> {
    gen_points(args.n_points, PointDist::Uniform, args.seed)
        .iter()
        .map(|&(x, y, id)| Point { x, y, id })
        .collect()
}

/// Builds (fresh store) or recovers (existing `--data` file) the node's
/// store and its target registry.
fn open_service(args: &Args) -> Result<Service, String> {
    let (store, recovered_meta) = match &args.data {
        None => (PageStore::in_memory(args.page_size), None),
        Some(path) => {
            let existed = std::path::Path::new(path).exists();
            let (store, report) =
                PageStore::file_durable(std::path::Path::new(path), args.page_size, WalConfig::default())
                    .map_err(|e| format!("open {path}: {e}"))?;
            let meta = if existed { report.last_commit_meta.clone() } else { None };
            eprintln!(
                "pc-shard: {} {path}: {} replayed records, {} commits{}",
                if existed { "recovered" } else { "created" },
                report.replayed_records(),
                report.commits,
                if report.torn_tail { ", torn WAL tail discarded" } else { "" },
            );
            (store, meta)
        }
    };
    let store = Arc::new(store);
    // An existing data file with any committed descriptor reopens the
    // structure exactly as of the last acknowledged batch; everything else
    // builds from the (possibly empty) preload.
    let target = match recovered_meta.as_deref().and_then(decode_commit_meta) {
        Some((_seq, descriptors)) if matches!(descriptors.first(), Some(Some(_))) => {
            let desc = descriptors[0].as_ref().expect("matched Some");
            DynamicPstTarget::open(&store, desc).map_err(|e| format!("reopen structure: {e}"))?
        }
        _ => {
            let pst = DynamicPst::build(&store, &preload(args))
                .map_err(|e| format!("build structure: {e:?}"))?;
            DynamicPstTarget::new(pst)
        }
    };
    let mut registry = Registry::new();
    registry.register("dyn", Box::new(target));
    Ok(Service { store, registry })
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let service = open_service(&args)?;
    let mut cfg = ServerConfig {
        addr: args.addr.clone(),
        queue_depth: args.queue_depth,
        update_queue_depth: args.queue_depth,
        ..ServerConfig::default()
    };
    if args.workers > 0 {
        cfg.workers = args.workers;
    }
    let handle = Server::spawn(service, cfg).map_err(|e| format!("spawn server: {e}"))?;
    println!("pc-shard listening on {}", handle.addr());
    std::io::stdout().flush().ok();
    // Serves until a client sends the ADMIN shutdown op (join() *initiates*
    // drain, so wait for the wire-side flag first), then drains.
    while !handle.is_shutting_down() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    handle.join();
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
