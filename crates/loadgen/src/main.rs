//! # pc-loadgen — load generation for the `pc-serve` query service
//!
//! Drives a server over real sockets with seeded `pc-workloads` traffic and
//! records achieved throughput plus a power-of-two latency histogram (the
//! `pc_obs::hist` buckets), written as machine-readable `BENCH_server.json`.
//!
//! Two ways to point it at a server:
//!
//! * `--addr HOST:PORT` — drive an externally started server (target 0 must
//!   be a dynamic-PST target for the mixed workload's inserts);
//! * default (no `--addr`) — self-spawn an in-process server on an
//!   ephemeral port, run the workload, then shut it down. `--smoke` runs a
//!   downscaled two-phase version of this (steady closed-loop + an
//!   overload-shedding phase against a deliberately undersized queue) and
//!   is what `scripts/verify.sh --serve` gates on.
//!
//! Exit status is nonzero on any transport failure — a peer that vanishes
//! mid-stream (connection reset, stuck socket hitting the read timeout)
//! fails the run instead of hanging it.

use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pc_bench::Json;
use pc_obs::hist::Histogram;
use pc_pagestore::{PageStore, Point};
use pc_pst::{DynamicPst, DynamicThreeSidedPst};
use pc_rng::Rng;
use pc_serve::wire::{Body, ErrorCode, Op};
use pc_serve::{
    Client, DynamicPstTarget, DynamicThreeSidedTarget, FrontendConfig, FrontendHandle, Registry,
    Router, RouterConfig, RouterFrontend, Server, ServerConfig, ServerHandle, Service, ShardMap,
};
use pc_workloads::{
    gen_points, gen_temporal, gen_three_sided_hot, gen_two_sided, PointDist, TemporalOp,
    ThreeSidedQ,
};

const PAGE: usize = 512;
const IO_TIMEOUT: Duration = Duration::from_secs(10);

#[derive(Debug, Clone)]
struct Args {
    smoke: bool,
    /// Cluster mode: self-spawn a shard fabric at shard counts 1/2/4,
    /// drive the router front-end over sockets, and record tail latency
    /// vs shard count plus a hot-shard shedding phase into
    /// `BENCH_cluster.json`.
    router: bool,
    /// Replicas per shard group in `--router` mode.
    replicas: usize,
    /// MVCC mode: measure snapshot-read latency with writers off vs on.
    /// Phase 1 is pure closed-loop 2-sided reads; phase 2 repeats the
    /// identical read traffic while a paced writer replays the
    /// sliding-window temporal insert/expire stream, installing an epoch
    /// per acked batch. Records `BENCH_mvcc.json`; `scripts/verify.sh
    /// --mvcc` gates mixed read p99 within 25% of read-only p99.
    mvcc: bool,
    addr: Option<SocketAddr>,
    conns: usize,
    ops: usize,
    open_loop: bool,
    rate: u64,
    n_points: usize,
    seed: u64,
    out: String,
    /// Trace 1 in N requests (0 = off). Self-spawned servers are configured
    /// directly; an external `--addr` server is retuned over the wire with
    /// the `SetSampling` ADMIN op.
    sample: u64,
    /// Scrape the ADMIN `Stats`/`Metrics`/`SlowLog` surface mid-run and
    /// again at the end of the steady phase, recording both snapshots
    /// (structured pairs + the raw Prometheus text) into the artifact.
    scrape: bool,
}

impl Default for Args {
    fn default() -> Args {
        Args {
            smoke: false,
            router: false,
            replicas: 1,
            mvcc: false,
            addr: None,
            conns: 4,
            ops: 20_000,
            open_loop: false,
            rate: 5_000,
            n_points: 50_000,
            seed: 0x10AD_0001,
            out: "BENCH_server.json".to_string(),
            sample: 0,
            scrape: false,
        }
    }
}

const USAGE: &str = "usage: pc-loadgen [--smoke] [--router] [--mvcc] [--replicas N] \
                     [--addr HOST:PORT] [--conns N] [--ops N] [--mode open|closed] \
                     [--rate OPS_PER_S] [--points N] [--seed S] [--sample N] [--scrape] \
                     [--out PATH]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--smoke" => args.smoke = true,
            "--router" => args.router = true,
            "--mvcc" => args.mvcc = true,
            "--replicas" => {
                args.replicas =
                    val("--replicas")?.parse().map_err(|e| format!("bad --replicas: {e}"))?;
            }
            "--addr" => {
                args.addr =
                    Some(val("--addr")?.parse().map_err(|e| format!("bad --addr: {e}"))?);
            }
            "--conns" => {
                args.conns = val("--conns")?.parse().map_err(|e| format!("bad --conns: {e}"))?;
            }
            "--ops" => {
                args.ops = val("--ops")?.parse().map_err(|e| format!("bad --ops: {e}"))?;
            }
            "--mode" => match val("--mode")?.as_str() {
                "open" => args.open_loop = true,
                "closed" => args.open_loop = false,
                other => return Err(format!("bad --mode {other:?} (want open|closed)")),
            },
            "--rate" => {
                args.rate = val("--rate")?.parse().map_err(|e| format!("bad --rate: {e}"))?;
            }
            "--points" => {
                args.n_points =
                    val("--points")?.parse().map_err(|e| format!("bad --points: {e}"))?;
            }
            "--seed" => {
                args.seed = val("--seed")?.parse().map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--sample" => {
                args.sample = val("--sample")?.parse().map_err(|e| format!("bad --sample: {e}"))?;
            }
            "--scrape" => args.scrape = true,
            "--out" => args.out = val("--out")?,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    args.conns = args.conns.max(1);
    args.rate = args.rate.max(1);
    args.replicas = args.replicas.clamp(1, 4);
    if args.smoke {
        // Keep the verify gate fast on a one-core container.
        args.conns = args.conns.min(2);
        args.ops = args.ops.min(2_000);
        args.n_points = args.n_points.min(5_000);
    }
    if args.router && args.out == "BENCH_server.json" {
        args.out = "BENCH_cluster.json".to_string();
    }
    if args.mvcc && args.out == "BENCH_server.json" {
        args.out = "BENCH_mvcc.json".to_string();
    }
    Ok(args)
}

/// Per-phase aggregate counters, shared across connection threads.
#[derive(Default)]
struct PhaseStats {
    ok: AtomicU64,
    overloaded: AtomicU64,
    deadline_exceeded: AtomicU64,
    other_errors: AtomicU64,
    latency_ns: Histogram,
}

impl PhaseStats {
    fn record(&self, body: &Body, latency: Duration) {
        match body {
            Body::Error { code: ErrorCode::Overloaded, .. } => {
                self.overloaded.fetch_add(1, Ordering::Relaxed);
            }
            Body::Error { code: ErrorCode::DeadlineExceeded, .. } => {
                self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
            }
            Body::Error { .. } => {
                self.other_errors.fetch_add(1, Ordering::Relaxed);
            }
            _ => {
                // Only admitted-and-answered requests enter the latency
                // histogram; shed requests return immediately and would
                // drag the percentiles down.
                self.ok.fetch_add(1, Ordering::Relaxed);
                self.latency_ns.record(latency.as_nanos() as u64);
            }
        }
    }

    fn to_json(&self, name: &str, mode: &str, conns: usize, elapsed: Duration) -> Json {
        let ok = self.ok.load(Ordering::Relaxed);
        let snap = self.latency_ns.snapshot();
        let throughput = ok as f64 / elapsed.as_secs_f64().max(1e-9);
        Json::obj(vec![
            ("name", Json::Str(name.to_string())),
            ("mode", Json::Str(mode.to_string())),
            ("conns", Json::Int(conns as u64)),
            ("ok", Json::Int(ok)),
            ("overloaded", Json::Int(self.overloaded.load(Ordering::Relaxed))),
            ("deadline_exceeded", Json::Int(self.deadline_exceeded.load(Ordering::Relaxed))),
            ("other_errors", Json::Int(self.other_errors.load(Ordering::Relaxed))),
            ("elapsed_s", Json::Num(elapsed.as_secs_f64())),
            ("throughput_ops_s", Json::Num(throughput)),
            (
                "latency_ns",
                Json::obj(vec![
                    ("p50", Json::Int(snap.quantile(0.50))),
                    ("p90", Json::Int(snap.quantile(0.90))),
                    ("p99", Json::Int(snap.quantile(0.99))),
                    ("mean", Json::Num(snap.mean())),
                ]),
            ),
        ])
    }
}

/// One connection's slice of a mixed workload: ~85% 2-sided queries (from
/// the calibrated generator), ~15% inserts, deterministically interleaved
/// from the seed.
struct MixedWorkload {
    queries: Vec<pc_workloads::TwoSidedQ>,
    rng: Rng,
    next_id: u64,
    qi: usize,
}

impl MixedWorkload {
    fn new(points: &[(i64, i64, u64)], ops: usize, seed: u64) -> MixedWorkload {
        MixedWorkload {
            queries: gen_two_sided(points, ops.max(1), 64, seed),
            rng: Rng::seed_from_u64(seed ^ 0x5EED_F00D),
            next_id: 1_000_000 + seed * 1_000_000, // id-space disjoint per conn
            qi: 0,
        }
    }

    fn next_op(&mut self) -> Op {
        if self.rng.gen_bool(0.15) {
            self.next_id += 1;
            let x = self.rng.gen_range(0..=pc_workloads::DOMAIN);
            let y = self.rng.gen_range(0..=pc_workloads::DOMAIN);
            Op::Insert(Point { x, y, id: self.next_id })
        } else {
            let q = self.queries[self.qi % self.queries.len()];
            self.qi += 1;
            Op::TwoSided { x0: q.x0, y0: q.y0 }
        }
    }
}

/// Runs `ops` requests against `addr` over `conns` connections and fills
/// `stats`. Closed-loop sends one request at a time per connection;
/// open-loop paces sends at `rate` ops/s across all connections with a
/// bounded pipeline, which is what pressures the admission queue.
fn run_phase(
    addr: SocketAddr,
    args: &Args,
    open_loop: bool,
    deadline_ms: u32,
    stats: &PhaseStats,
) -> Result<Duration, String> {
    let t0 = Instant::now();
    let per_conn = args.ops.div_ceil(args.conns);
    std::thread::scope(|s| -> Result<(), String> {
        let handles: Vec<_> = (0..args.conns)
            .map(|c| {
                let stats = &*stats;
                let args = args.clone();
                s.spawn(move || -> Result<(), String> {
                    let points =
                        gen_points(args.n_points, PointDist::Uniform, args.seed);
                    let mut wl = MixedWorkload::new(&points, per_conn, args.seed + c as u64);
                    let mut client = Client::connect(addr, IO_TIMEOUT)
                        .map_err(|e| format!("conn {c}: connect: {e}"))?;
                    if open_loop {
                        // Paced sends with a bounded pipeline; latency is
                        // measured send-to-receive per request id.
                        let gap =
                            Duration::from_secs_f64(args.conns as f64 / args.rate as f64);
                        let mut inflight: Vec<(u64, Instant)> = Vec::new();
                        const PIPELINE: usize = 64;
                        for _ in 0..per_conn {
                            let op = wl.next_op();
                            let id = client
                                .send(0, deadline_ms, op)
                                .map_err(|e| format!("conn {c}: send: {e}"))?;
                            inflight.push((id, Instant::now()));
                            while inflight.len() >= PIPELINE {
                                let resp = client
                                    .recv()
                                    .map_err(|e| format!("conn {c}: recv: {e}"))?;
                                if let Some(pos) =
                                    inflight.iter().position(|&(id, _)| id == resp.id)
                                {
                                    let (_, sent) = inflight.swap_remove(pos);
                                    stats.record(&resp.body, sent.elapsed());
                                }
                            }
                            std::thread::sleep(gap);
                        }
                        while !inflight.is_empty() {
                            let resp =
                                client.recv().map_err(|e| format!("conn {c}: drain: {e}"))?;
                            if let Some(pos) =
                                inflight.iter().position(|&(id, _)| id == resp.id)
                            {
                                let (_, sent) = inflight.swap_remove(pos);
                                stats.record(&resp.body, sent.elapsed());
                            }
                        }
                    } else {
                        for _ in 0..per_conn {
                            let op = wl.next_op();
                            let t = Instant::now();
                            let resp = client
                                .call(0, deadline_ms, op)
                                .map_err(|e| format!("conn {c}: call: {e}"))?;
                            stats.record(&resp.body, t.elapsed());
                        }
                    }
                    Ok(())
                })
            })
            .collect();
        for h in handles {
            h.join().map_err(|_| "connection thread panicked".to_string())??;
        }
        Ok(())
    })?;
    Ok(t0.elapsed())
}

/// One scrape of the server's observability plane over the wire: the
/// structured `Stats` pairs, the Prometheus `Metrics` text, and a summary
/// of the slow-query log. Everything lands in the bench artifact, so a
/// run's server-side view (per-target families, WAL/pool counters, §3
/// waste aggregates) rides next to the client-side latency histograms.
fn scrape_admin(addr: SocketAddr) -> Result<Json, String> {
    let mut admin =
        Client::connect(addr, IO_TIMEOUT).map_err(|e| format!("scrape connect: {e}"))?;
    let stats = match admin.stats().map_err(|e| format!("scrape stats: {e}"))?.body {
        Body::Stats(pairs) => pairs,
        other => return Err(format!("scrape stats: unexpected body {other:?}")),
    };
    let text = match admin.metrics().map_err(|e| format!("scrape metrics: {e}"))?.body {
        Body::Metrics(text) => text,
        other => return Err(format!("scrape metrics: unexpected body {other:?}")),
    };
    let slow = match admin.slow_log(8, false).map_err(|e| format!("scrape slow_log: {e}"))?.body {
        Body::SlowLog(entries) => entries,
        other => return Err(format!("scrape slow_log: unexpected body {other:?}")),
    };
    let families = text.lines().filter(|l| l.starts_with("# TYPE ")).count();
    Ok(Json::obj(vec![
        ("stats", Json::Obj(stats.into_iter().map(|(k, v)| (k, Json::Int(v))).collect())),
        ("metrics_families", Json::Int(families as u64)),
        ("metrics_text", Json::Str(text)),
        (
            "slowlog",
            Json::Arr(
                slow.iter()
                    .map(|e| {
                        Json::obj(vec![
                            ("request_id", Json::Int(e.request_id)),
                            ("op", Json::Str(e.op.clone())),
                            ("target", Json::Str(e.target.clone())),
                            ("latency_ns", Json::Int(e.latency_ns)),
                            ("wasteful_ios", Json::Int(e.wasteful_ios)),
                            ("spans", Json::Int(e.spans.len() as u64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]))
}

fn spawn_server(args: &Args, cfg: ServerConfig) -> Result<ServerHandle, String> {
    let store = Arc::new(PageStore::in_memory(PAGE));
    let points: Vec<Point> = gen_points(args.n_points, PointDist::Uniform, args.seed)
        .iter()
        .map(|&(x, y, id)| Point { x, y, id })
        .collect();
    let pst = DynamicPst::build(&store, &points).map_err(|e| format!("build pst: {e:?}"))?;
    let mut registry = Registry::new();
    registry.register("dyn", Box::new(DynamicPstTarget::new(pst)));
    Server::spawn(Service { store, registry }, cfg).map_err(|e| format!("spawn server: {e}"))
}

fn shutdown(handle: ServerHandle) -> Result<(), String> {
    let mut admin =
        Client::connect(handle.addr(), IO_TIMEOUT).map_err(|e| format!("admin connect: {e}"))?;
    admin.shutdown_server().map_err(|e| format!("shutdown: {e}"))?;
    handle.join();
    Ok(())
}

/// An in-process shard fabric: `shard_count` replica groups of
/// `args.replicas` servers each over quantile-partitioned uniform points,
/// fronted by a router on an ephemeral port. Target layout per shard:
/// 0 = dynamic PST (2-sided + updates), 1 = dynamic 3-sided PST.
struct Cluster {
    shards: Vec<ServerHandle>,
    frontend: FrontendHandle,
    splits: Vec<i64>,
}

impl Cluster {
    fn spawn(
        args: &Args,
        shard_count: usize,
        shard_cfg: &ServerConfig,
        router_cfg: RouterConfig,
    ) -> Result<Cluster, String> {
        let raw = gen_points(args.n_points, PointDist::Uniform, args.seed);
        let xs: Vec<i64> = raw.iter().map(|p| p.0).collect();
        let splits = ShardMap::quantile_splits(&xs, shard_count);
        let map = ShardMap::new(splits.clone());
        let points: Vec<Point> =
            raw.iter().map(|&(x, y, id)| Point { x, y, id }).collect();
        let mut shards = Vec::new();
        let mut groups: Vec<Vec<SocketAddr>> = Vec::new();
        for part in map.partition_points(&points) {
            let mut group = Vec::new();
            for _ in 0..args.replicas {
                let store = Arc::new(PageStore::in_memory(PAGE));
                let pst =
                    DynamicPst::build(&store, &part).map_err(|e| format!("build pst: {e:?}"))?;
                let pst3 = DynamicThreeSidedPst::build(&store, &part)
                    .map_err(|e| format!("build pst3: {e:?}"))?;
                let mut registry = Registry::new();
                registry.register("dyn", Box::new(DynamicPstTarget::new(pst)));
                registry.register("dyn3", Box::new(DynamicThreeSidedTarget::new(pst3)));
                let handle = Server::spawn(Service { store, registry }, shard_cfg.clone())
                    .map_err(|e| format!("spawn shard: {e}"))?;
                group.push(handle.addr());
                shards.push(handle);
            }
            groups.push(group);
        }
        let router = Arc::new(
            Router::connect(&groups, splits.clone(), router_cfg)
                .map_err(|e| format!("connect router: {e}"))?,
        );
        let frontend = RouterFrontend::spawn(router, FrontendConfig::default())
            .map_err(|e| format!("spawn frontend: {e}"))?;
        Ok(Cluster { shards, frontend, splits })
    }

    /// Drains through the wire path: the ADMIN shutdown op to the router
    /// fans out to every shard replica, then everything joins.
    fn shutdown(self) -> Result<(), String> {
        let mut admin = Client::connect(self.frontend.addr(), IO_TIMEOUT)
            .map_err(|e| format!("cluster admin connect: {e}"))?;
        admin.shutdown_server().map_err(|e| format!("cluster shutdown: {e}"))?;
        for handle in self.shards {
            handle.join();
        }
        self.frontend.join();
        Ok(())
    }
}

/// Scrapes the router front-end's ADMIN Stats pairs (the per-shard
/// `pc_shard_*` families).
fn scrape_router(addr: SocketAddr) -> Result<Vec<(String, u64)>, String> {
    let mut admin = Client::connect(addr, IO_TIMEOUT).map_err(|e| format!("scrape: {e}"))?;
    match admin.stats().map_err(|e| format!("scrape stats: {e}"))?.body {
        Body::Stats(pairs) => Ok(pairs),
        other => Err(format!("scrape stats: unexpected body {other:?}")),
    }
}

/// Pipelined, unpaced 3-sided queries (target 1) — the hot-shard phase.
fn run_hot_phase(
    addr: SocketAddr,
    conns: usize,
    queries: &[ThreeSidedQ],
    stats: &PhaseStats,
) -> Result<Duration, String> {
    let t0 = Instant::now();
    std::thread::scope(|s| -> Result<(), String> {
        let handles: Vec<_> = (0..conns)
            .map(|c| {
                let stats = &*stats;
                s.spawn(move || -> Result<(), String> {
                    let mut client = Client::connect(addr, IO_TIMEOUT)
                        .map_err(|e| format!("hot conn {c}: connect: {e}"))?;
                    const PIPELINE: usize = 32;
                    let mut inflight: Vec<(u64, Instant)> = Vec::new();
                    let pump = |client: &mut Client,
                                    inflight: &mut Vec<(u64, Instant)>,
                                    low: usize|
                     -> Result<(), String> {
                        while inflight.len() > low {
                            let resp = client
                                .recv()
                                .map_err(|e| format!("hot conn {c}: recv: {e}"))?;
                            if let Some(pos) =
                                inflight.iter().position(|&(id, _)| id == resp.id)
                            {
                                let (_, sent) = inflight.swap_remove(pos);
                                stats.record(&resp.body, sent.elapsed());
                            }
                        }
                        Ok(())
                    };
                    for q in queries.iter().skip(c).step_by(conns) {
                        let op = Op::ThreeSided { x1: q.x1, x2: q.x2, y0: q.y0 };
                        let id = client
                            .send(1, 0, op)
                            .map_err(|e| format!("hot conn {c}: send: {e}"))?;
                        inflight.push((id, Instant::now()));
                        pump(&mut client, &mut inflight, PIPELINE - 1)?;
                    }
                    pump(&mut client, &mut inflight, 0)
                })
            })
            .collect();
        for h in handles {
            h.join().map_err(|_| "hot connection thread panicked".to_string())??;
        }
        Ok(())
    })?;
    Ok(t0.elapsed())
}

/// `--router`: tail latency vs shard count over the scatter-gather path,
/// then a skewed phase that pins load onto one shard until it sheds.
fn run_router_bench(args: &Args) -> Result<(), String> {
    let shard_counts: [usize; 3] = [1, 2, 4];
    let mut phases: Vec<Json> = Vec::new();
    for k in shard_counts {
        let cluster =
            Cluster::spawn(args, k, &ServerConfig::default(), RouterConfig::default())?;
        let stats = PhaseStats::default();
        let elapsed = run_phase(cluster.frontend.addr(), args, args.open_loop, 0, &stats)?;
        cluster.shutdown()?;
        let ok = stats.ok.load(Ordering::Relaxed);
        let snap = stats.latency_ns.snapshot();
        eprintln!(
            "cluster shards={k}×{}: {ok} ok in {:.2}s ({:.0} ops/s), p50={}ns p99={}ns",
            args.replicas,
            elapsed.as_secs_f64(),
            ok as f64 / elapsed.as_secs_f64().max(1e-9),
            snap.quantile(0.50),
            snap.quantile(0.99),
        );
        if ok == 0 {
            return Err(format!("cluster phase with {k} shard(s) completed zero requests"));
        }
        let mode = if args.open_loop { "open" } else { "closed" };
        let mut row = stats.to_json(&format!("shards_{k}"), mode, args.conns, elapsed);
        if let Json::Obj(pairs) = &mut row {
            pairs.push(("shards".to_string(), Json::Int(k as u64)));
            pairs.push(("replicas".to_string(), Json::Int(args.replicas as u64)));
        }
        phases.push(row);
    }

    // Hot-shard phase: 4 shards with deliberately tiny queues and one
    // worker each; 90% of the bounded-x-range queries land in shard 0's
    // keyrange, so it sheds (`Overloaded`) while the others stay healthy.
    // The router propagates the typed error immediately (attempts: 1).
    let shard_cfg = ServerConfig {
        workers: 1,
        queue_depth: 2,
        update_queue_depth: 2,
        ..ServerConfig::default()
    };
    let router_cfg = RouterConfig {
        retry: pc_serve::RetryPolicy { attempts: 1, ..Default::default() },
        ..RouterConfig::default()
    };
    let cluster = Cluster::spawn(args, 4, &shard_cfg, router_cfg)?;
    let raw = gen_points(args.n_points, PointDist::Uniform, args.seed);
    let hot_hi = cluster.splits.first().copied().unwrap_or(pc_workloads::DOMAIN);
    // Output-heavy queries (t ≈ n/8) so the hot shard's service time is
    // serialization-dominated and its depth-2 queue actually backs up.
    let queries = gen_three_sided_hot(
        &raw,
        args.ops.min(4_000),
        (args.n_points / 8).max(256),
        (0, hot_hi - 1),
        0.9,
        args.seed ^ 0x4807,
    );
    // The thin front-end serves each connection sequentially, so shard
    // concurrency == router connections; 8 conns against a depth-2 queue
    // with one worker is what pushes the hot shard into shedding.
    let hot_conns = 8;
    let hot = PhaseStats::default();
    let hot_elapsed = run_hot_phase(cluster.frontend.addr(), hot_conns, &queries, &hot)?;
    let pairs = scrape_router(cluster.frontend.addr())?;
    cluster.shutdown()?;
    let shed = hot.overloaded.load(Ordering::Relaxed);
    eprintln!(
        "hot-shard: {} ok, {shed} overloaded in {:.2}s",
        hot.ok.load(Ordering::Relaxed),
        hot_elapsed.as_secs_f64(),
    );
    let mut hot_row = hot.to_json("hot_shard", "open", hot_conns, hot_elapsed);
    if let Json::Obj(fields) = &mut hot_row {
        fields.push(("shards".to_string(), Json::Int(4)));
        fields.push((
            "per_shard".to_string(),
            Json::Obj(pairs.into_iter().map(|(k, v)| (k, Json::Int(v))).collect()),
        ));
    }
    phases.push(hot_row);

    let doc = Json::obj(vec![
        ("bench", Json::Str("cluster".to_string())),
        ("page_size", Json::Int(PAGE as u64)),
        (
            "hardware_threads",
            Json::Int(std::thread::available_parallelism().map_or(1, |p| p.get()) as u64),
        ),
        ("seed", Json::Int(args.seed)),
        ("n_points", Json::Int(args.n_points as u64)),
        ("ops", Json::Int(args.ops as u64)),
        ("smoke", Json::Int(u64::from(args.smoke))),
        ("replicas", Json::Int(args.replicas as u64)),
        ("shard_counts", Json::Arr(shard_counts.iter().map(|&k| Json::Int(k as u64)).collect())),
        ("phases", Json::Arr(phases)),
    ]);
    std::fs::write(&args.out, format!("{doc}\n"))
        .map_err(|e| format!("write {}: {e}", args.out))?;
    eprintln!("wrote {}", args.out);
    Ok(())
}

/// Closed-loop, query-only traffic: `args.ops` calibrated 2-sided queries
/// split across `args.conns` connections. Both MVCC phases run exactly
/// this, so the only difference between their histograms is the writer.
fn run_read_phase(addr: SocketAddr, args: &Args, stats: &PhaseStats) -> Result<Duration, String> {
    let t0 = Instant::now();
    let per_conn = args.ops.div_ceil(args.conns);
    std::thread::scope(|s| -> Result<(), String> {
        let handles: Vec<_> = (0..args.conns)
            .map(|c| {
                let stats = &*stats;
                let args = args.clone();
                s.spawn(move || -> Result<(), String> {
                    let points = gen_points(args.n_points, PointDist::Uniform, args.seed);
                    let queries =
                        gen_two_sided(&points, per_conn.max(1), 64, args.seed + c as u64);
                    let mut client = Client::connect(addr, IO_TIMEOUT)
                        .map_err(|e| format!("read conn {c}: connect: {e}"))?;
                    for i in 0..per_conn {
                        let q = queries[i % queries.len()];
                        let t = Instant::now();
                        let resp = client
                            .call(0, 0, Op::TwoSided { x0: q.x0, y0: q.y0 })
                            .map_err(|e| format!("read conn {c}: call: {e}"))?;
                        stats.record(&resp.body, t.elapsed());
                    }
                    Ok(())
                })
            })
            .collect();
        for h in handles {
            h.join().map_err(|_| "read connection thread panicked".to_string())??;
        }
        Ok(())
    })?;
    Ok(t0.elapsed())
}

/// `--mvcc`: the readers-never-block measurement. One server, two
/// identical read phases; the second runs under a concurrent paced writer
/// replaying the sliding-window temporal insert/expire stream (an epoch
/// installs per acked batch, so readers continuously cross installs).
/// The writer is *paced*, not saturating: on small hosts an unthrottled
/// writer would contend for the CPU itself and the comparison would
/// measure scheduling, not snapshot isolation.
fn run_mvcc_bench(args: &Args) -> Result<(), String> {
    let handle = spawn_server(args, ServerConfig::default())?;
    let addr = handle.addr();

    let read_only = PhaseStats::default();
    let ro_elapsed = run_read_phase(addr, args, &read_only)?;
    let ro_ok = read_only.ok.load(Ordering::Relaxed);
    let ro_p99 = read_only.latency_ns.snapshot().quantile(0.99);
    eprintln!(
        "read_only: {ro_ok} ok in {:.2}s ({:.0} ops/s), p99={ro_p99}ns",
        ro_elapsed.as_secs_f64(),
        ro_ok as f64 / ro_elapsed.as_secs_f64().max(1e-9),
    );
    if ro_ok == 0 {
        return Err("read-only phase completed zero requests".to_string());
    }

    // Mixed phase: same read traffic, plus the temporal writer.
    let stop = std::sync::atomic::AtomicBool::new(false);
    let writes = AtomicU64::new(0);
    let write_errors = AtomicU64::new(0);
    let write_rate = (args.rate / 10).clamp(200, 2_000);
    let window = (args.n_points / 4).max(64);
    let mixed = PhaseStats::default();
    let mixed_elapsed = std::thread::scope(|s| -> Result<Duration, String> {
        let writer = s.spawn(|| -> Result<(), String> {
            let mut client =
                Client::connect(addr, IO_TIMEOUT).map_err(|e| format!("writer connect: {e}"))?;
            let gap = Duration::from_secs_f64(1.0 / write_rate as f64);
            let steps = (window * 4).max(256);
            let mut pass = 0u64;
            while !stop.load(Ordering::Relaxed) {
                // Fresh id range per pass: the tail of a pass stays live,
                // so replaying the same ids would insert duplicates.
                let ops = gen_temporal(
                    steps,
                    window,
                    PointDist::Uniform,
                    10_000_000 + pass * steps as u64,
                    args.seed ^ pass,
                );
                for op in ops {
                    if stop.load(Ordering::Relaxed) {
                        return Ok(());
                    }
                    let wire = match op {
                        TemporalOp::Insert((x, y, id)) => Op::Insert(Point { x, y, id }),
                        TemporalOp::Expire((x, y, id)) => Op::Delete(Point { x, y, id }),
                    };
                    let resp =
                        client.call(0, 0, wire).map_err(|e| format!("writer call: {e}"))?;
                    match resp.body {
                        Body::Ack { .. } => {
                            writes.fetch_add(1, Ordering::Relaxed);
                        }
                        _ => {
                            write_errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    std::thread::sleep(gap);
                }
                pass += 1;
            }
            Ok(())
        });
        let elapsed = run_read_phase(addr, args, &mixed);
        stop.store(true, Ordering::Relaxed);
        writer.join().map_err(|_| "writer thread panicked".to_string())??;
        elapsed
    })?;
    let mixed_ok = mixed.ok.load(Ordering::Relaxed);
    let mixed_p99 = mixed.latency_ns.snapshot().quantile(0.99);
    let total_writes = writes.load(Ordering::Relaxed);
    eprintln!(
        "mixed_read: {mixed_ok} ok in {:.2}s ({:.0} ops/s), p99={mixed_p99}ns, \
         {total_writes} concurrent writes at ~{write_rate}/s",
        mixed_elapsed.as_secs_f64(),
        mixed_ok as f64 / mixed_elapsed.as_secs_f64().max(1e-9),
    );
    if mixed_ok == 0 {
        return Err("mixed phase completed zero reads".to_string());
    }
    if total_writes == 0 {
        return Err("mixed phase completed zero writes — nothing installed epochs".to_string());
    }

    // The server's own version-GC view: epochs must actually have been
    // installed and the retention window bounded while readers ran.
    let mut admin =
        Client::connect(addr, IO_TIMEOUT).map_err(|e| format!("admin connect: {e}"))?;
    let versions = match admin.versions().map_err(|e| format!("versions: {e}"))?.body {
        Body::Versions { current, oldest, installed, reclaimed_pages, pinned } => Json::obj(vec![
            ("current", Json::Int(current)),
            ("oldest", Json::Int(oldest)),
            ("installed", Json::Int(installed)),
            ("reclaimed_pages", Json::Int(reclaimed_pages)),
            ("pinned", Json::Int(pinned)),
        ]),
        other => return Err(format!("versions: unexpected body {other:?}")),
    };
    shutdown(handle)?;

    let mut mixed_row = mixed.to_json("mixed_read", "closed", args.conns, mixed_elapsed);
    if let Json::Obj(fields) = &mut mixed_row {
        fields.push(("writes".to_string(), Json::Int(total_writes)));
        fields.push((
            "write_errors".to_string(),
            Json::Int(write_errors.load(Ordering::Relaxed)),
        ));
        fields.push(("write_rate_target".to_string(), Json::Int(write_rate)));
    }
    let doc = Json::obj(vec![
        ("bench", Json::Str("mvcc".to_string())),
        ("page_size", Json::Int(PAGE as u64)),
        (
            "hardware_threads",
            Json::Int(std::thread::available_parallelism().map_or(1, |p| p.get()) as u64),
        ),
        ("seed", Json::Int(args.seed)),
        ("n_points", Json::Int(args.n_points as u64)),
        ("ops", Json::Int(args.ops as u64)),
        ("smoke", Json::Int(u64::from(args.smoke))),
        ("temporal_window", Json::Int(window as u64)),
        (
            "phases",
            Json::Arr(vec![
                read_only.to_json("read_only", "closed", args.conns, ro_elapsed),
                mixed_row,
            ]),
        ),
        ("versions", versions),
        ("p99_ratio", Json::Num(mixed_p99 as f64 / ro_p99.max(1) as f64)),
    ]);
    std::fs::write(&args.out, format!("{doc}\n"))
        .map_err(|e| format!("write {}: {e}", args.out))?;
    eprintln!("wrote {}", args.out);
    Ok(())
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    if args.router {
        return run_router_bench(&args);
    }
    if args.mvcc {
        return run_mvcc_bench(&args);
    }
    let mut phases: Vec<Json> = Vec::new();

    // Phase 1: steady state. Either against the external --addr, or a
    // self-spawned server with a production-shaped queue.
    let steady = PhaseStats::default();
    let mode = if args.open_loop { "open" } else { "closed" };
    let handle = match args.addr {
        Some(_) => None,
        None => Some(spawn_server(
            &args,
            ServerConfig { trace_sample: args.sample, ..ServerConfig::default() },
        )?),
    };
    let addr = args.addr.unwrap_or_else(|| handle.as_ref().expect("self-spawned").addr());
    if args.addr.is_some() && args.sample > 0 {
        // Externally started server: retune its sampling over the wire.
        let mut admin =
            Client::connect(addr, IO_TIMEOUT).map_err(|e| format!("admin connect: {e}"))?;
        admin.set_sampling(args.sample).map_err(|e| format!("set_sampling: {e}"))?;
    }
    // The mid-run scrape rides its own thread so it observes the plane
    // *under* live traffic (queue depths, in-flight counters), not after.
    let mid_scrape = args.scrape.then(|| {
        std::thread::spawn(move || -> Result<Json, String> {
            std::thread::sleep(Duration::from_millis(200));
            scrape_admin(addr)
        })
    });
    let steady_elapsed = run_phase(addr, &args, args.open_loop, 0, &steady)?;
    let scrape_mid = match mid_scrape {
        Some(h) => Some(h.join().map_err(|_| "scrape thread panicked".to_string())??),
        None => None,
    };
    let scrape_final = if args.scrape { Some(scrape_admin(addr)?) } else { None };
    if let Some(handle) = handle {
        shutdown(handle)?;
    }
    let ok = steady.ok.load(Ordering::Relaxed);
    let snap = steady.latency_ns.snapshot();
    eprintln!(
        "steady({mode}): {ok} ok in {:.2}s ({:.0} ops/s), p50={}ns p99={}ns",
        steady_elapsed.as_secs_f64(),
        ok as f64 / steady_elapsed.as_secs_f64().max(1e-9),
        snap.quantile(0.50),
        snap.quantile(0.99),
    );
    phases.push(steady.to_json("steady", mode, args.conns, steady_elapsed));
    if ok == 0 {
        return Err("steady phase completed zero requests".to_string());
    }

    // Phase 2 (self-spawned runs only): overload shedding against a
    // deliberately undersized queue — open-loop pipelined traffic must see
    // some Overloaded responses while admitted p99 stays bounded by the
    // tiny queue. Recorded here; asserted in tests/server_e2e.rs.
    if args.addr.is_none() {
        let shed_cfg = ServerConfig {
            workers: 1,
            queue_depth: 2,
            trace_sample: args.sample,
            ..ServerConfig::default()
        };
        let handle = spawn_server(&args, shed_cfg)?;
        let shed = PhaseStats::default();
        let mut shed_args = args.clone();
        shed_args.conns = 2;
        shed_args.rate = u64::MAX / 2; // unpaced: saturate the queue
        shed_args.ops = args.ops.min(2_000);
        let shed_elapsed = run_phase(handle.addr(), &shed_args, true, 0, &shed)?;
        shutdown(handle)?;
        let shed_ok = shed.ok.load(Ordering::Relaxed);
        let shed_dropped = shed.overloaded.load(Ordering::Relaxed);
        eprintln!(
            "shed: {shed_ok} admitted, {shed_dropped} overloaded in {:.2}s (admitted p99={}ns)",
            shed_elapsed.as_secs_f64(),
            shed.latency_ns.snapshot().quantile(0.99),
        );
        phases.push(shed.to_json("shed", "open", shed_args.conns, shed_elapsed));
        if shed_ok == 0 {
            return Err("shed phase admitted zero requests".to_string());
        }
    }

    let mut doc_pairs = vec![
        ("bench", Json::Str("server".to_string())),
        ("page_size", Json::Int(PAGE as u64)),
        (
            "hardware_threads",
            Json::Int(std::thread::available_parallelism().map_or(1, |p| p.get()) as u64),
        ),
        ("seed", Json::Int(args.seed)),
        ("n_points", Json::Int(args.n_points as u64)),
        ("ops", Json::Int(args.ops as u64)),
        ("smoke", Json::Int(u64::from(args.smoke))),
        ("trace_sample_every", Json::Int(args.sample)),
        ("phases", Json::Arr(phases)),
    ];
    if let (Some(mid), Some(fin)) = (scrape_mid, scrape_final) {
        doc_pairs.push(("scrape", Json::obj(vec![("mid", mid), ("final", fin)])));
    }
    let doc = Json::obj(doc_pairs);
    std::fs::write(&args.out, format!("{doc}\n"))
        .map_err(|e| format!("write {}: {e}", args.out))?;
    eprintln!("wrote {}", args.out);
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("pc-loadgen: {msg}");
            ExitCode::FAILURE
        }
    }
}
