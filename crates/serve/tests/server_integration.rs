//! End-to-end tests for the server over real sockets: routing, admission
//! control, deadlines, update batching, graceful drain, and the
//! peer-disappears regressions (idle timeout on the server, read timeout on
//! the client).
//!
//! Timing assertions are deliberately loose (seconds, not milliseconds):
//! the CI container may have a single hardware thread.

use std::io::Write;
use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

use pc_pagestore::{PageStore, Point, WalConfig};
use pc_pst::DynamicPst;
use pc_serve::wire::{Body, ErrorCode, Op};
use pc_serve::{
    Client, ClientError, DynamicPstTarget, QueryTarget, Registry, Server, ServerConfig, Service,
    TargetError,
};

const PAGE: usize = 512;

fn points(n: i64) -> Vec<Point> {
    (0..n).map(|i| Point { x: i, y: (i * 37) % n, id: i as u64 }).collect()
}

/// A service with one dynamic-PST target ("dyn", id 0) over a fresh store.
fn dyn_service(n: i64) -> Service {
    let store = Arc::new(PageStore::in_memory(PAGE));
    let mut registry = Registry::new();
    let pst = DynamicPst::build(&store, &points(n)).unwrap();
    registry.register("dyn", Box::new(DynamicPstTarget::new(pst)));
    Service { store, registry }
}

fn test_config() -> ServerConfig {
    ServerConfig {
        workers: 2,
        idle_timeout: Duration::from_secs(10),
        ..ServerConfig::default()
    }
}

fn connect(handle: &pc_serve::ServerHandle) -> Client {
    Client::connect(handle.addr(), Duration::from_secs(10)).unwrap()
}

#[test]
fn queries_and_admin_ops_over_a_real_socket() {
    let handle = Server::spawn(dyn_service(100), test_config()).unwrap();
    let mut c = connect(&handle);

    assert!(matches!(c.ping().unwrap().body, Body::Pong));

    let resp = c.call(0, 0, Op::TwoSided { x0: 0, y0: 0 }).unwrap();
    match resp.body {
        Body::Points(ps) => assert_eq!(ps.len(), 100),
        other => panic!("unexpected body {other:?}"),
    }

    // Unknown target and unsupported op are typed errors, not hangs.
    let resp = c.call(42, 0, Op::Stab { q: 1 }).unwrap();
    assert!(matches!(resp.body, Body::Error { code: ErrorCode::BadRequest, .. }));
    let resp = c.call(0, 0, Op::Stab { q: 1 }).unwrap();
    assert!(matches!(resp.body, Body::Error { code: ErrorCode::Unsupported, .. }));

    // Stats carries service and io counters.
    match c.stats().unwrap().body {
        Body::Stats(pairs) => {
            let get = |n: &str| pairs.iter().find(|(k, _)| k == n).map(|&(_, v)| v);
            assert!(get("pc_serve_requests_total").unwrap() >= 4);
            assert!(get("io_reads").is_some());
            assert!(get("io_retries").is_some());
        }
        other => panic!("unexpected body {other:?}"),
    }

    // Metrics is the serve exposition (+ pc-obs text in obs builds).
    match c.metrics().unwrap().body {
        Body::Metrics(text) => {
            assert!(text.contains("pc_serve_requests_total"), "{text}");
            assert!(text.contains("pc_serve_query_latency_ns"), "{text}");
        }
        other => panic!("unexpected body {other:?}"),
    }

    handle.join();
}

#[test]
fn updates_are_batched_and_acked() {
    let handle = Server::spawn(dyn_service(0), test_config()).unwrap();
    let mut c = connect(&handle);

    // Pipeline a burst of inserts on one connection so the batcher can
    // coalesce them (closed-loop sends would serialize into batches of 1).
    let n = 40u64;
    for i in 0..n {
        c.send(0, 0, Op::Insert(Point { x: i as i64, y: i as i64, id: i })).unwrap();
    }
    let mut acked = 0;
    let mut max_coalesced = 0;
    for _ in 0..n {
        let resp = c.recv().unwrap();
        match resp.body {
            Body::Ack { coalesced, .. } => {
                acked += 1;
                max_coalesced = max_coalesced.max(coalesced);
            }
            other => panic!("unexpected body {other:?}"),
        }
    }
    assert_eq!(acked, n);

    // All inserts visible to a subsequent query (read-your-writes once acked).
    let resp = c.call(0, 0, Op::TwoSided { x0: 0, y0: 0 }).unwrap();
    match resp.body {
        Body::Points(ps) => assert_eq!(ps.len(), n as usize),
        other => panic!("unexpected body {other:?}"),
    }

    let stats = handle.stats();
    let batches = stats.batches.load(std::sync::atomic::Ordering::Relaxed);
    let batched = stats.batched_updates.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(batched, n);
    assert!(batches <= batched, "batches={batches} batched={batched}");
    // The coalescing stage must have merged at least one pipelined burst.
    assert!(
        max_coalesced > 1 || batches < n,
        "no coalescing observed: batches={batches}, max_coalesced={max_coalesced}"
    );

    // Updates against a read-only target are rejected up front. (Register a
    // second, static service to prove the admission-time check.)
    let resp = c.call(0, 0, Op::Delete(Point { x: 0, y: 0, id: 0 })).unwrap();
    assert!(matches!(resp.body, Body::Ack { .. }));
    handle.join();
}

/// A target whose queries block for a fixed time — the overload fixture.
struct SlowTarget(Duration);

impl QueryTarget for SlowTarget {
    fn kind(&self) -> &'static str {
        "slow"
    }

    fn query(&self, _store: &PageStore, _op: &Op) -> Result<Body, TargetError> {
        std::thread::sleep(self.0);
        Ok(Body::Points(Vec::new()))
    }
}

#[test]
fn overload_sheds_with_overloaded_and_admitted_p99_stays_bounded() {
    // One worker, queue depth 2, 150ms service time. Saturating it with 10
    // concurrent requests must shed some with Overloaded *immediately*
    // while every admitted request completes within the queue-bound
    // latency: (depth + 1) * service + slack.
    let store = Arc::new(PageStore::in_memory(PAGE));
    let mut registry = Registry::new();
    registry.register("slow", Box::new(SlowTarget(Duration::from_millis(150))));
    let service = Service { store, registry };
    let cfg = ServerConfig { workers: 1, queue_depth: 2, ..test_config() };
    let handle = Server::spawn(service, cfg).unwrap();
    let addr = handle.addr();

    let total = 10;
    let results: Vec<(bool, Duration)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..total)
            .map(|_| {
                s.spawn(move || {
                    let mut c = Client::connect(addr, Duration::from_secs(10)).unwrap();
                    let t0 = Instant::now();
                    let resp = c.call(0, 0, Op::TwoSided { x0: 0, y0: 0 }).unwrap();
                    let dt = t0.elapsed();
                    match resp.body {
                        Body::Points(_) => (true, dt),
                        Body::Error { code: ErrorCode::Overloaded, .. } => (false, dt),
                        other => panic!("unexpected body {other:?}"),
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let admitted: Vec<&(bool, Duration)> = results.iter().filter(|(ok, _)| *ok).collect();
    let shed = results.len() - admitted.len();
    // Capacity during the burst is worker + queue = 3; with 10 one-shot
    // clients at least one must be shed and at least one admitted.
    assert!(shed >= 1, "expected shedding, got {results:?}");
    assert!(!admitted.is_empty(), "everything was shed: {results:?}");

    // Overloaded responses are immediate (no queue wait) — generous bound.
    for (ok, dt) in &results {
        if !*ok {
            assert!(*dt < Duration::from_secs(2), "shed response took {dt:?}");
        }
    }
    // Worst-case admitted latency is bounded by the queue depth, not by the
    // offered load: 3 in-system * 150ms plus generous slack.
    for (_, dt) in &admitted {
        assert!(*dt < Duration::from_secs(5), "admitted request took {dt:?}");
    }

    let stats = handle.stats();
    let overloaded = stats.overloaded.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(overloaded, shed as u64);
    handle.join();
}

#[test]
fn expired_deadline_is_answered_deadline_exceeded() {
    let store = Arc::new(PageStore::in_memory(PAGE));
    let mut registry = Registry::new();
    registry.register("slow", Box::new(SlowTarget(Duration::from_millis(200))));
    let service = Service { store, registry };
    let cfg = ServerConfig { workers: 1, queue_depth: 8, ..test_config() };
    let handle = Server::spawn(service, cfg).unwrap();

    let mut c = connect(&handle);
    // First request occupies the single worker; the second's 1ms deadline
    // expires while it waits in the queue.
    c.send(0, 0, Op::TwoSided { x0: 0, y0: 0 }).unwrap();
    c.send(0, 1, Op::TwoSided { x0: 0, y0: 0 }).unwrap();
    let first = c.recv().unwrap();
    let second = c.recv().unwrap();
    assert!(matches!(first.body, Body::Points(_)), "{first:?}");
    assert!(
        matches!(second.body, Body::Error { code: ErrorCode::DeadlineExceeded, .. }),
        "{second:?}"
    );
    assert_eq!(
        handle.stats().deadline_exceeded.load(std::sync::atomic::Ordering::Relaxed),
        1
    );
    handle.join();
}

#[test]
fn graceful_shutdown_drains_admitted_work() {
    let handle = Server::spawn(dyn_service(50), test_config()).unwrap();
    let addr = handle.addr();
    let mut c = connect(&handle);

    // Queue some work, then request shutdown on a second connection.
    for _ in 0..5 {
        c.send(0, 0, Op::TwoSided { x0: 0, y0: 0 }).unwrap();
    }
    let mut admin = Client::connect(addr, Duration::from_secs(10)).unwrap();
    let resp = admin.shutdown_server().unwrap();
    assert!(matches!(resp.body, Body::ShutdownAck));

    // Every admitted query is still answered (drain-then-shutdown)…
    let mut answered = 0;
    for _ in 0..5 {
        match c.recv() {
            Ok(resp) => {
                match resp.body {
                    Body::Points(ps) => assert_eq!(ps.len(), 50),
                    // A request that raced the flag gets the typed
                    // shutdown error, never silence.
                    Body::Error { code: ErrorCode::ShuttingDown, .. } => {}
                    other => panic!("unexpected body {other:?}"),
                }
                answered += 1;
            }
            Err(ClientError::Closed) => break,
            Err(e) => panic!("unexpected error {e}"),
        }
    }
    assert!(answered >= 1);
    handle.join();

    // …and the listener is gone afterwards.
    assert!(Client::connect(addr, Duration::from_millis(500)).is_err());
}

#[test]
fn acked_updates_survive_reopen_after_drain() {
    // Lost-ack regression: every update the server acknowledged before a
    // graceful drain must be readable after closing the store and reopening
    // it from disk. The batcher's group commit makes Ack mean "durable", and
    // join() syncs once more on drain, so reopen recovery must reproduce the
    // exact page images.
    let dir = std::env::temp_dir().join(format!("pc-serve-drain-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("drain.pcstore");
    let _ = std::fs::remove_file(&path);
    let mut wal_path = path.clone().into_os_string();
    wal_path.push(".wal");
    let _ = std::fs::remove_file(&wal_path);

    let (store, report) = PageStore::file_durable(&path, PAGE, WalConfig::default()).unwrap();
    assert!(report.clean(), "fresh store must open clean: {report:?}");
    let store = Arc::new(store);
    let mut registry = Registry::new();
    let pst = DynamicPst::build(&store, &points(50)).unwrap();
    registry.register("dyn", Box::new(DynamicPstTarget::new(pst)));
    let service = Service { store: Arc::clone(&store), registry };
    let handle = Server::spawn(service, test_config()).unwrap();
    let mut c = connect(&handle);

    // Pipeline a burst of inserts and require an Ack for every one.
    let n = 25u64;
    for i in 0..n {
        c.send(0, 0, Op::Insert(Point { x: 1000 + i as i64, y: i as i64, id: 900 + i }))
            .unwrap();
    }
    for _ in 0..n {
        let resp = c.recv().unwrap();
        assert!(matches!(resp.body, Body::Ack { .. }), "every update must be acked: {resp:?}");
    }

    // On a durable store, Acks ride behind at least one group commit.
    match c.stats().unwrap().body {
        Body::Stats(pairs) => {
            let get = |nm: &str| pairs.iter().find(|(k, _)| k == nm).map(|&(_, v)| v).unwrap();
            assert!(get("pc_serve_group_commits_total") >= 1);
            assert_eq!(get("pc_serve_commit_failures_total"), 0);
        }
        other => panic!("unexpected body {other:?}"),
    }

    let resp = c.call(0, 0, Op::TwoSided { x0: 0, y0: 0 }).unwrap();
    match resp.body {
        Body::Points(ps) => assert_eq!(ps.len(), 75),
        other => panic!("unexpected body {other:?}"),
    }

    // Snapshot the full durable state as the server sees it, then drain.
    let pages = store.allocated_pages();
    let images: Vec<(pc_pagestore::PageId, Vec<u8>)> =
        pages.iter().map(|&id| (id, store.read(id).unwrap().to_vec())).collect();
    drop(c);
    handle.join();
    drop(store);

    let (store2, report) = PageStore::file_durable(&path, PAGE, WalConfig::default()).unwrap();
    assert!(!report.data_torn_tail, "clean shutdown must not leave a torn data file");
    assert_eq!(store2.allocated_pages(), pages, "allocation table must survive reopen");
    for (id, img) in &images {
        assert_eq!(
            &store2.read(*id).unwrap()[..],
            &img[..],
            "page {id:?} must be bit-identical after reopen"
        );
    }

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&wal_path);
}

#[test]
fn server_reclaims_silent_connections_idle_timeout() {
    // Peer-death regression, server side: a client that sends half a frame
    // and goes silent must not leak the connection thread.
    let cfg = ServerConfig { idle_timeout: Duration::from_millis(200), ..test_config() };
    let handle = Server::spawn(dyn_service(10), cfg).unwrap();

    let mut raw = std::net::TcpStream::connect(handle.addr()).unwrap();
    raw.write_all(&[7, 0, 0]).unwrap(); // half a length prefix, then silence
    raw.flush().unwrap();

    let t0 = Instant::now();
    loop {
        let closed = handle.stats().conns_idle_closed.load(std::sync::atomic::Ordering::Relaxed);
        if closed == 1 {
            break;
        }
        assert!(t0.elapsed() < Duration::from_secs(5), "idle connection was not reclaimed");
        std::thread::sleep(Duration::from_millis(20));
    }
    // The server actively shut the socket down: our next read sees EOF/reset.
    raw.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
    let mut buf = [0u8; 1];
    match std::io::Read::read(&mut raw, &mut buf) {
        Ok(0) | Err(_) => {}
        Ok(n) => panic!("unexpected {n} bytes from a dead connection"),
    }
    handle.join();
}

#[test]
fn client_times_out_instead_of_hanging_on_a_silent_server() {
    // Peer-death regression, client side: a server that accepts and never
    // responds must surface as a timeout error, not a hang.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let silent = std::thread::spawn(move || {
        let (_conn, _) = listener.accept().unwrap();
        std::thread::sleep(Duration::from_secs(3));
    });

    let mut c = Client::connect(addr, Duration::from_millis(300)).unwrap();
    let t0 = Instant::now();
    let err = c.ping().unwrap_err();
    assert!(t0.elapsed() < Duration::from_secs(2), "client hung for {:?}", t0.elapsed());
    match err {
        ClientError::Io(e) => assert!(
            matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut),
            "unexpected io error kind {:?}",
            e.kind()
        ),
        other => panic!("unexpected error {other}"),
    }
    silent.join().unwrap();
}

#[test]
fn dead_client_mid_stream_does_not_wedge_the_server() {
    let handle = Server::spawn(dyn_service(20), test_config()).unwrap();

    // Connect, fire a query, and vanish without reading the response.
    {
        let mut c = connect(&handle);
        c.send(0, 0, Op::TwoSided { x0: 0, y0: 0 }).unwrap();
        // Client dropped here: socket closes with the response in flight.
    }

    // The server stays healthy for other clients.
    std::thread::sleep(Duration::from_millis(100));
    let mut c2 = connect(&handle);
    assert!(matches!(c2.ping().unwrap().body, Body::Pong));
    let resp = c2.call(0, 0, Op::TwoSided { x0: 0, y0: 0 }).unwrap();
    assert!(matches!(resp.body, Body::Points(_)));
    handle.join();
}
