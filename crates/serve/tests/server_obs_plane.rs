//! Acceptance tests for the request-scoped tracing plane, end to end over
//! real sockets: mixed traffic at two targets, the slow-query log catching
//! an injected naive-PST pathology (the paper's Figure 3 — long search
//! path, tiny output) with a full span tree whose §3 wasteful-transfer
//! count matches the value measured in-process, per-target Prometheus
//! families with exact request counts, and deterministic 1-in-N sampling
//! that thins retained traces without touching the aggregate counters.
//!
//! Everything here runs identically with and without the `obs` cargo
//! feature — that is the tentpole contract (release binaries trace).

use std::sync::Arc;
use std::time::Duration;

use pc_obs::sample::Sampler;
use pc_pagestore::{PageStore, Point};
use pc_pst::{DynamicPst, NaivePst};
use pc_serve::wire::{Body, Op};
use pc_serve::{
    Client, DynamicPstTarget, NaivePstTarget, Registry, Server, ServerConfig, Service,
    FLAG_TRACE, RANKED_BY_LATENCY, RANKED_BY_WASTE,
};

const PAGE: usize = 512;
const N: i64 = 2_000;

fn points(n: i64) -> Vec<Point> {
    (0..n).map(|i| Point { x: i, y: (i * 37) % n, id: i as u64 }).collect()
}

/// One point qualifies, but the naive structure still reads a block per
/// path node — the Figure 3 pathology the slow log must surface.
const PATHOLOGICAL: Op = Op::TwoSided { x0: N - 1, y0: 0 };

/// Target 0 "dyn" (healthy) and target 1 "naive" (the pathology baseline)
/// over one shared store.
fn two_target_service(n: i64) -> Service {
    let store = Arc::new(PageStore::in_memory(PAGE));
    let pts = points(n);
    let mut registry = Registry::new();
    let pst = DynamicPst::build(&store, &pts).unwrap();
    registry.register("dyn", Box::new(DynamicPstTarget::new(pst)));
    let naive = NaivePst::build(&store, &pts).unwrap();
    registry.register("naive", Box::new(NaivePstTarget(naive)));
    Service { store, registry }
}

fn config() -> ServerConfig {
    ServerConfig { workers: 2, idle_timeout: Duration::from_secs(10), ..ServerConfig::default() }
}

fn connect(handle: &pc_serve::ServerHandle) -> Client {
    Client::connect(handle.addr(), Duration::from_secs(10)).unwrap()
}

/// Runs `op` against `target` in-process under a trace capture, mirroring
/// the server's execution (same root span name), and returns the §3
/// accounting the server must reproduce bit-for-bit.
fn measure_in_process(service: &Service, target: u16, op: &Op) -> pc_obs::QueryTrace {
    let capture = pc_obs::begin_trace();
    {
        let _span = pc_obs::span!("serve_query", 0u64);
        service.registry.get(target).unwrap().query(&service.store, op).unwrap();
    }
    capture.finish().expect("in-process query produced a trace")
}

#[test]
fn slow_log_catches_the_pathological_query_with_section3_waste() {
    let service = two_target_service(N);
    // The expected §3 numbers, measured in-process on the very store the
    // server will serve (an in-memory store has no cache state, so the
    // read pattern is a pure function of the structure and the query).
    let expected = measure_in_process(&service, 1, &PATHOLOGICAL);
    assert!(expected.wasteful_ios > 0, "the pathology must waste transfers: {expected:?}");
    assert!(expected.total_io > expected.wasteful_ios, "some reads are search I/O");

    let handle = Server::spawn(service, config()).unwrap();
    let mut c = connect(&handle);

    // Mixed traffic: healthy queries at both targets (untraced — sampling
    // is off), then the pathological query with FLAG_TRACE forcing its
    // capture.
    for i in 0..20 {
        let q = Op::TwoSided { x0: i * 90, y0: (i * 37) % N };
        assert!(!matches!(c.call(0, 0, q.clone()).unwrap().body, Body::Error { .. }));
        assert!(!matches!(c.call(1, 0, q).unwrap().body, Body::Error { .. }));
    }
    let resp = c.call_flags(1, 0, FLAG_TRACE, PATHOLOGICAL).unwrap();
    let pathological_id = resp.id;
    match resp.body {
        Body::Points(ps) => assert_eq!(ps.len(), 1),
        other => panic!("unexpected body {other:?}"),
    }

    // The slow log's top entry is the injected query, ranked under both
    // orderings (it is the only retained trace), with the full span tree.
    let entries = match c.slow_log(8, false).unwrap().body {
        Body::SlowLog(entries) => entries,
        other => panic!("unexpected body {other:?}"),
    };
    assert_eq!(entries.len(), 1, "exactly one trace was captured: {entries:?}");
    let top = &entries[0];
    assert_eq!(top.request_id, pathological_id);
    assert_eq!(top.op, "two_sided");
    assert_eq!(top.target, "naive");
    assert_eq!(top.rankings, RANKED_BY_LATENCY | RANKED_BY_WASTE);
    assert!(top.latency_ns > 0);

    // §3 accounting matches the in-process measurement exactly.
    assert_eq!(top.wasteful_ios, expected.wasteful_ios);
    assert_eq!(top.total_io, expected.total_io);
    assert_eq!(top.search_ios, expected.search_ios);
    assert_eq!(top.items, expected.items);

    // The span tree arrived whole: preorder starts at the server's root
    // span, per-node wasteful counts sum to the entry total, and the
    // output spans carry the block capacity the classification used.
    assert!(top.spans.len() > 2, "expected a real tree, got {:?}", top.spans);
    assert_eq!(top.spans[0].name, "serve_query");
    assert_eq!(top.spans[0].depth, 0);
    assert_eq!(top.spans[1].depth, 1, "children follow their parent in preorder");
    assert_eq!(top.spans.iter().map(|s| s.wasteful).sum::<u64>(), expected.wasteful_ios);
    assert!(top.spans.iter().any(|s| s.output && s.wasteful > 0), "{:?}", top.spans);

    // Draining: `clear` empties the rankings but keeps the offered count.
    match c.slow_log(8, true).unwrap().body {
        Body::SlowLog(entries) => assert_eq!(entries.len(), 1),
        other => panic!("unexpected body {other:?}"),
    }
    match c.slow_log(8, false).unwrap().body {
        Body::SlowLog(entries) => assert!(entries.is_empty()),
        other => panic!("unexpected body {other:?}"),
    }
    match c.stats().unwrap().body {
        Body::Stats(pairs) => {
            let get = |n: &str| pairs.iter().find(|(k, _)| k == n).map(|&(_, v)| v).unwrap();
            assert_eq!(get("pc_serve_slowlog_offered_total"), 1);
            assert_eq!(get("pc_serve_traces_retained_total"), 1);
        }
        other => panic!("unexpected body {other:?}"),
    }
    handle.join();
}

#[test]
fn per_target_families_report_exact_request_counts() {
    let handle = Server::spawn(two_target_service(N), config()).unwrap();
    let mut c = connect(&handle);

    // Exact, distinct request counts per target: 7 queries at dyn (plus 3
    // inserts — updates count as routed requests too), 5 at naive.
    for i in 0..7 {
        c.call(0, 0, Op::TwoSided { x0: i * 100, y0: 0 }).unwrap();
    }
    for i in 0..3u64 {
        let p = Point { x: -(i as i64) - 1, y: 0, id: 1_000_000 + i };
        assert!(matches!(c.insert(0, p).unwrap().body, Body::Ack { .. }));
    }
    for i in 0..5 {
        c.call(1, 0, Op::TwoSided { x0: i * 100, y0: 0 }).unwrap();
    }

    let text = match c.metrics().unwrap().body {
        Body::Metrics(text) => text,
        other => panic!("unexpected body {other:?}"),
    };
    let sample = |line: &str| {
        text.lines()
            .find(|l| l.starts_with(line))
            .unwrap_or_else(|| panic!("missing {line} in:\n{text}"))
            .rsplit(' ')
            .next()
            .unwrap()
            .parse::<u64>()
            .unwrap()
    };
    assert_eq!(sample("pc_target_requests_total{target=\"dyn\"} "), 10);
    assert_eq!(sample("pc_target_requests_total{target=\"naive\"} "), 5);
    assert_eq!(sample("pc_target_queries_ok_total{target=\"dyn\"} "), 7);
    assert_eq!(sample("pc_target_queries_ok_total{target=\"naive\"} "), 5);
    assert_eq!(sample("pc_target_updates_ok_total{target=\"dyn\"} "), 3);
    assert_eq!(sample("pc_target_updates_ok_total{target=\"naive\"} "), 0);
    assert_eq!(sample("pc_target_errors_total{target=\"dyn\"} "), 0);

    // The structured (binary Stats) form carries the same families with
    // the same labelled keys and identical values.
    match c.stats().unwrap().body {
        Body::Stats(pairs) => {
            let get = |n: &str| pairs.iter().find(|(k, _)| k == n).map(|&(_, v)| v).unwrap();
            assert_eq!(get("pc_target_requests_total{target=\"dyn\"}"), 10);
            assert_eq!(get("pc_target_requests_total{target=\"naive\"}"), 5);
            assert_eq!(get("pc_target_updates_ok_total{target=\"dyn\"}"), 3);
            assert!(get("pc_target_latency_ns_count{target=\"dyn\"}") >= 7);
        }
        other => panic!("unexpected body {other:?}"),
    }
    handle.join();
}

/// Runs the same fixed workload against a fresh server configured to trace
/// 1 in `every` requests; returns (request ids seen, retained traces,
/// queries_ok, per-target requests at dyn).
fn run_sampled_workload(every: u64) -> (Vec<u64>, u64, u64, u64) {
    let cfg = ServerConfig { trace_sample: every, ..config() };
    let handle = Server::spawn(two_target_service(200), cfg).unwrap();
    let mut c = connect(&handle);
    let mut ids = Vec::new();
    for i in 0..60 {
        let resp = c.call(0, 0, Op::TwoSided { x0: (i % 20) * 10, y0: 0 }).unwrap();
        assert!(!matches!(resp.body, Body::Error { .. }));
        ids.push(resp.id);
    }
    let (retained, ok, dyn_requests) = match c.stats().unwrap().body {
        Body::Stats(pairs) => {
            let get = |n: &str| pairs.iter().find(|(k, _)| k == n).map(|&(_, v)| v).unwrap();
            (
                get("pc_serve_traces_retained_total"),
                get("pc_serve_queries_ok_total"),
                get("pc_target_requests_total{target=\"dyn\"}"),
            )
        }
        other => panic!("unexpected body {other:?}"),
    };
    handle.join();
    (ids, retained, ok, dyn_requests)
}

#[test]
fn sampling_thins_retained_traces_but_not_aggregate_counters() {
    let every = 4u64;
    let (ids_all, retained_all, ok_all, req_all) = run_sampled_workload(1);
    let (ids_sampled, retained_sampled, ok_sampled, req_sampled) = run_sampled_workload(every);

    // Identical workload (client ids are deterministic per connection).
    assert_eq!(ids_all, ids_sampled);
    assert_eq!(retained_all, 60, "sample=1 traces everything");

    // The sampled set is the deterministic function of (seed, id) the
    // server's sampler computes — reproduce it exactly.
    let sampler = Sampler::new(every, ServerConfig::default().trace_seed);
    let expected: u64 = ids_sampled.iter().filter(|&&id| sampler.should_sample(id)).count() as u64;
    assert_eq!(retained_sampled, expected);
    // ~N× fewer retained traces (loose band: the sampler is hash-based).
    assert!(
        retained_sampled <= retained_all / 2,
        "1-in-{every} sampling retained {retained_sampled}/{retained_all}"
    );

    // Aggregate counters are identical whether or not requests were traced.
    assert_eq!(ok_all, ok_sampled);
    assert_eq!(req_all, req_sampled);
}

#[test]
fn set_sampling_retunes_the_live_server() {
    let handle = Server::spawn(two_target_service(200), config()).unwrap();
    let mut c = connect(&handle);

    // Off by default: nothing retained.
    for _ in 0..10 {
        c.call(0, 0, Op::TwoSided { x0: 0, y0: 0 }).unwrap();
    }
    assert_eq!(handle.stats().traces_retained.load(std::sync::atomic::Ordering::Relaxed), 0);

    // Retune to trace-everything over the wire; the ack echoes the rate.
    match c.set_sampling(1).unwrap().body {
        Body::Stats(pairs) => {
            assert_eq!(pairs, vec![("pc_serve_trace_sample_every".to_string(), 1)]);
        }
        other => panic!("unexpected body {other:?}"),
    }
    assert_eq!(handle.trace_sampling(), 1);
    for _ in 0..10 {
        c.call(0, 0, Op::TwoSided { x0: 0, y0: 0 }).unwrap();
    }
    let retained = handle.stats().traces_retained.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(retained, 10);

    // And back off: the counter freezes.
    c.set_sampling(0).unwrap();
    for _ in 0..10 {
        c.call(0, 0, Op::TwoSided { x0: 0, y0: 0 }).unwrap();
    }
    assert_eq!(
        handle.stats().traces_retained.load(std::sync::atomic::Ordering::Relaxed),
        retained
    );
    handle.join();
}

#[test]
fn traced_update_batches_land_in_the_plane() {
    let cfg = ServerConfig { trace_sample: 1, ..config() };
    let handle = Server::spawn(two_target_service(0), cfg).unwrap();
    let mut c = connect(&handle);

    // Pipeline inserts so the batcher coalesces; every job is sampled, so
    // each applied target-group retains one "update_batch" trace.
    let n = 30u64;
    for i in 0..n {
        c.send(0, 0, Op::Insert(Point { x: i as i64, y: i as i64, id: i })).unwrap();
    }
    for _ in 0..n {
        assert!(matches!(c.recv().unwrap().body, Body::Ack { .. }));
    }

    let entries = match c.slow_log(64, false).unwrap().body {
        Body::SlowLog(entries) => entries,
        other => panic!("unexpected body {other:?}"),
    };
    assert!(!entries.is_empty());
    assert!(entries.iter().all(|e| e.op == "update_batch" && e.target == "dyn"), "{entries:?}");
    assert!(entries.iter().all(|e| e.spans.first().is_some_and(|s| s.name == "serve_update_batch")));

    // S2: the coalesce-size and queue-wait histograms are live via Stats.
    match c.stats().unwrap().body {
        Body::Stats(pairs) => {
            let get = |n: &str| pairs.iter().find(|(k, _)| k == n).map(|&(_, v)| v).unwrap();
            assert!(get("pc_serve_batch_coalesce_count") >= 1);
            assert!(get("pc_serve_queue_wait_p99_ns") > 0);
            let batches = get("pc_serve_update_batches_total");
            assert_eq!(get("pc_serve_traces_retained_total"), batches);
        }
        other => panic!("unexpected body {other:?}"),
    }
    handle.join();
}
