//! S3: the ADMIN metrics path. A minimal Prometheus text-format parser
//! validates the exposition round-trips (every sample belongs to a typed
//! family, histogram buckets are cumulative, `+Inf` equals `_count`), the
//! structured `Stats` pairs agree with the rendered text value-for-value,
//! and per-target families appear and disappear with registration.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use pc_pagestore::{PageStore, Point};
use pc_pst::{DynamicPst, NaivePst};
use pc_serve::wire::{Body, Op};
use pc_serve::{
    Client, DynamicPstTarget, NaivePstTarget, Registry, Server, ServerConfig, Service,
};

const PAGE: usize = 512;

fn points(n: i64) -> Vec<Point> {
    (0..n).map(|i| Point { x: i, y: (i * 37) % n, id: i as u64 }).collect()
}

fn service_with(names: &[&str]) -> Service {
    let store = Arc::new(PageStore::in_memory(PAGE));
    let pts = points(500);
    let mut registry = Registry::new();
    for (i, name) in names.iter().enumerate() {
        if i == 0 {
            let pst = DynamicPst::build(&store, &pts).unwrap();
            registry.register(*name, Box::new(DynamicPstTarget::new(pst)));
        } else {
            let naive = NaivePst::build(&store, &pts).unwrap();
            registry.register(*name, Box::new(NaivePstTarget(naive)));
        }
    }
    Service { store, registry }
}

fn spawn(names: &[&str]) -> pc_serve::ServerHandle {
    let cfg = ServerConfig { workers: 2, ..ServerConfig::default() };
    Server::spawn(service_with(names), cfg).unwrap()
}

fn connect(handle: &pc_serve::ServerHandle) -> Client {
    Client::connect(handle.addr(), Duration::from_secs(10)).unwrap()
}

fn fetch_metrics(c: &mut Client) -> String {
    match c.metrics().unwrap().body {
        Body::Metrics(text) => text,
        other => panic!("unexpected body {other:?}"),
    }
}

fn fetch_stats(c: &mut Client) -> Vec<(String, u64)> {
    match c.stats().unwrap().body {
        Body::Stats(pairs) => pairs,
        other => panic!("unexpected body {other:?}"),
    }
}

/// One parsed exposition: family types plus every sample, keyed by its
/// full name including the label set, exactly as written.
struct Parsed {
    types: BTreeMap<String, String>,
    samples: BTreeMap<String, f64>,
}

/// Parses the Prometheus text format the server emits; panics on any line
/// that is neither a `# TYPE` declaration nor a `name[{labels}] value`
/// sample — that panic *is* the well-formedness assertion.
fn parse_prometheus(text: &str) -> Parsed {
    let mut types = BTreeMap::new();
    let mut samples = BTreeMap::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let family = it.next().expect("family name").to_string();
            let kind = it.next().expect("family kind").to_string();
            assert!(
                matches!(kind.as_str(), "counter" | "gauge" | "histogram"),
                "unknown type {kind:?} in {line:?}"
            );
            assert!(types.insert(family, kind).is_none(), "duplicate TYPE: {line:?}");
            continue;
        }
        if line.starts_with('#') {
            // Plain comments (e.g. the disabled-mode banner) are legal in
            // the text format; only `# TYPE` is load-bearing here.
            continue;
        }
        let (name, value) = line.rsplit_once(' ').unwrap_or_else(|| panic!("bad line {line:?}"));
        let value = if value == "+Inf" {
            f64::INFINITY
        } else {
            value.parse::<f64>().unwrap_or_else(|_| panic!("bad value in {line:?}"))
        };
        assert!(samples.insert(name.to_string(), value).is_none(), "duplicate sample {line:?}");
    }
    Parsed { types, samples }
}

impl Parsed {
    /// The declared family a sample belongs to (strips histogram suffixes
    /// and the label set).
    fn family_of<'a>(&'a self, sample: &'a str) -> Option<&'a str> {
        let base = sample.split('{').next().unwrap();
        for candidate in [base, base.strip_suffix("_bucket").unwrap_or(base)] {
            if self.types.contains_key(candidate) {
                return Some(candidate);
            }
        }
        for suffix in ["_sum", "_count"] {
            if let Some(stripped) = base.strip_suffix(suffix) {
                if self.types.get(stripped).map(String::as_str) == Some("histogram") {
                    return Some(stripped);
                }
            }
        }
        None
    }
}

#[test]
fn exposition_is_well_formed_and_internally_consistent() {
    let handle = spawn(&["dyn", "naive"]);
    let mut c = connect(&handle);
    for i in 0..10 {
        c.call(0, 0, Op::TwoSided { x0: i * 10, y0: 0 }).unwrap();
    }
    c.insert(0, Point { x: -1, y: 0, id: 999_999 }).unwrap();

    let parsed = parse_prometheus(&fetch_metrics(&mut c));
    assert!(!parsed.types.is_empty() && !parsed.samples.is_empty());

    // Every sample belongs to a declared family.
    for name in parsed.samples.keys() {
        assert!(parsed.family_of(name).is_some(), "sample {name:?} has no TYPE declaration");
    }

    // Histogram integrity: buckets are cumulative (non-decreasing in `le`
    // order as emitted) and the +Inf bucket equals `_count`.
    for (family, kind) in &parsed.types {
        if kind != "histogram" {
            continue;
        }
        let buckets: Vec<(&String, f64)> = parsed
            .samples
            .iter()
            .filter(|(n, _)| n.starts_with(&format!("{family}_bucket")))
            .map(|(n, &v)| (n, v))
            .collect();
        // Group by label set minus `le` so per-target histograms check per
        // target. The exposition emits buckets in ascending-le order and
        // BTreeMap resorts them, so recheck via the le value itself.
        let mut by_series: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
        for (name, v) in buckets {
            let labels = name.split_once('{').map(|(_, l)| l).unwrap_or("");
            let le = labels
                .split(&['{', ',', '}'][..])
                .find_map(|kv| kv.strip_prefix("le=\""))
                .map(|s| s.trim_end_matches('"'))
                .unwrap_or_else(|| panic!("bucket without le: {name:?}"));
            let le = if le == "+Inf" { f64::INFINITY } else { le.parse().unwrap() };
            let series = labels
                .split(',')
                .filter(|kv| !kv.starts_with("le="))
                .collect::<Vec<_>>()
                .join(",");
            by_series.entry(series).or_default().push((le, v));
        }
        for (series, mut buckets) in by_series {
            buckets.sort_by(|a, b| a.0.total_cmp(&b.0));
            for w in buckets.windows(2) {
                assert!(
                    w[0].1 <= w[1].1,
                    "{family}{{{series}}}: bucket counts not cumulative: {buckets:?}"
                );
            }
            let (last_le, last) = *buckets.last().unwrap();
            assert_eq!(last_le, f64::INFINITY, "{family}{{{series}}} missing +Inf");
            let count_name = if series.is_empty() {
                format!("{family}_count")
            } else {
                format!("{family}_count{{{series}}}")
            };
            let count = parsed.samples[&count_name];
            assert_eq!(last, count, "{family}{{{series}}}: +Inf bucket != _count");
        }
    }
    handle.join();
}

#[test]
fn structured_stats_match_the_rendered_text() {
    let handle = spawn(&["dyn", "naive"]);
    let mut c = connect(&handle);
    for i in 0..8 {
        c.call(i % 2, 0, Op::TwoSided { x0: 0, y0: (i as i64) * 50 }).unwrap();
    }

    // Both scrapes happen with no traffic in flight, so shared counters
    // cannot move between them.
    let pairs = fetch_stats(&mut c);
    let parsed = parse_prometheus(&fetch_metrics(&mut c));

    // Every structured pair whose key appears verbatim as a text sample
    // must carry the identical value — the binary form *is* the text form.
    let mut compared = 0;
    for (name, value) in &pairs {
        if let Some(&text_value) = parsed.samples.get(name) {
            // The scrapes observe themselves: the Metrics request is one
            // more well-formed request than the Stats snapshot saw.
            let expected = if name == "pc_serve_requests_total" { value + 1 } else { *value };
            assert_eq!(expected as f64, text_value, "{name} disagrees between Stats and Metrics");
            compared += 1;
        }
    }
    // The overlap includes the service counters and the labelled
    // per-target families; make sure the comparison had teeth.
    assert!(compared >= 20, "only {compared} overlapping names");
    assert!(parsed.samples.contains_key("pc_target_requests_total{target=\"dyn\"}"));
    assert!(pairs.iter().any(|(k, _)| k == "pc_target_requests_total{target=\"dyn\"}"));
    handle.join();
}

#[test]
fn per_target_families_follow_registration() {
    // Two targets registered → exactly two labelled samples per family.
    let handle = spawn(&["alpha", "beta"]);
    let mut c = connect(&handle);
    let parsed = parse_prometheus(&fetch_metrics(&mut c));
    let labels_of = |parsed: &Parsed, family: &str| -> Vec<String> {
        parsed
            .samples
            .keys()
            .filter_map(|n| n.strip_prefix(&format!("{family}{{target=\"")))
            .map(|rest| rest.split('"').next().unwrap().to_string())
            .collect()
    };
    assert_eq!(labels_of(&parsed, "pc_target_requests_total"), vec!["alpha", "beta"]);
    assert_eq!(labels_of(&parsed, "pc_target_latency_ns_count"), vec!["alpha", "beta"]);
    handle.join();

    // One target registered → the other family member is gone, and the
    // TYPE line is still present exactly once.
    let handle = spawn(&["solo"]);
    let mut c = connect(&handle);
    let parsed = parse_prometheus(&fetch_metrics(&mut c));
    assert_eq!(labels_of(&parsed, "pc_target_requests_total"), vec!["solo"]);
    assert!(parsed.types.contains_key("pc_target_requests_total"));
    assert!(!parsed.samples.keys().any(|n| n.contains("target=\"alpha\"")));
    handle.join();
}
