//! Property tests for the wire codec (satellite: codec round-trip + total
//! decoding).
//!
//! Three properties, all via the `pc-rng` shrinking harness:
//! 1. encode→decode is the identity for arbitrary requests and responses;
//! 2. every truncation of a valid payload decodes to a clean typed error;
//! 3. arbitrary byte corruption (and fully random payloads) never panic —
//!    the decoder is total.

use pc_pagestore::{Interval, Point};
use pc_rng::check::{check, shrink_vec, Config};
use pc_rng::Rng;
use pc_serve::wire::{
    decode_request, decode_response, encode_request, encode_response, Body, ErrorCode, Op,
    Request, Response, SlowEntry, WireSpan,
};

fn arb_point(rng: &mut Rng) -> Point {
    Point { x: rng.next_u64() as i64, y: rng.next_u64() as i64, id: rng.next_u64() }
}

fn arb_op(rng: &mut Rng) -> Op {
    match rng.gen_range(0..13usize) {
        0 => Op::Range1d { lo: rng.next_u64() as i64, hi: rng.next_u64() as i64 },
        1 => Op::Stab { q: rng.next_u64() as i64 },
        2 => Op::TwoSided { x0: rng.next_u64() as i64, y0: rng.next_u64() as i64 },
        3 => Op::ThreeSided {
            x1: rng.next_u64() as i64,
            x2: rng.next_u64() as i64,
            y0: rng.next_u64() as i64,
        },
        4 => Op::Insert(arb_point(rng)),
        5 => Op::Delete(arb_point(rng)),
        6 => Op::Ping,
        7 => Op::Stats,
        8 => Op::Metrics,
        9 => Op::Shutdown,
        10 => Op::SlowLog { k: rng.next_u64() as u32, clear: rng.gen_bool(0.5) },
        11 => Op::Versions,
        _ => Op::SetSampling { every: rng.next_u64() },
    }
}

fn arb_request(rng: &mut Rng) -> Request {
    Request {
        id: rng.next_u64(),
        target: rng.next_u64() as u16,
        deadline_ms: rng.next_u64() as u32,
        flags: rng.next_u64() as u8,
        as_of: if rng.gen_bool(0.5) { 0 } else { rng.next_u64() },
        op: arb_op(rng),
    }
}

fn arb_string(rng: &mut Rng, max: usize) -> String {
    let n = rng.gen_range(0..max);
    (0..n).map(|_| char::from(rng.gen_range(32u64..127) as u8)).collect()
}

fn arb_span(rng: &mut Rng) -> WireSpan {
    WireSpan {
        depth: rng.next_u64() as u16,
        output: rng.gen_bool(0.5),
        name: arb_string(rng, 24),
        arg: rng.next_u64(),
        reads: rng.next_u64(),
        writes: rng.next_u64(),
        cache_hits: rng.next_u64(),
        self_reads: rng.next_u64(),
        items: rng.next_u64(),
        block_capacity: rng.next_u64(),
        wasteful: rng.next_u64(),
    }
}

fn arb_slow_entry(rng: &mut Rng) -> SlowEntry {
    let nspans = rng.gen_range(0..6usize);
    SlowEntry {
        request_id: rng.next_u64(),
        op: arb_string(rng, 16),
        target: arb_string(rng, 24),
        rankings: rng.next_u64() as u8,
        latency_ns: rng.next_u64(),
        total_io: rng.next_u64(),
        search_ios: rng.next_u64(),
        wasteful_ios: rng.next_u64(),
        items: rng.next_u64(),
        spans: (0..nspans).map(|_| arb_span(rng)).collect(),
    }
}

fn arb_body(rng: &mut Rng) -> Body {
    match rng.gen_range(0..11usize) {
        0 => {
            let n = rng.gen_range(0..50usize);
            Body::Points((0..n).map(|_| arb_point(rng)).collect())
        }
        1 => {
            let n = rng.gen_range(0..50usize);
            Body::Intervals(
                (0..n)
                    .map(|_| Interval {
                        lo: rng.next_u64() as i64,
                        hi: rng.next_u64() as i64,
                        id: rng.next_u64(),
                    })
                    .collect(),
            )
        }
        2 => {
            let n = rng.gen_range(0..50usize);
            Body::Keys((0..n).map(|_| (rng.next_u64() as i64, rng.next_u64())).collect())
        }
        3 => Body::Ack { batch: rng.next_u64(), coalesced: rng.next_u64() as u32 },
        4 => Body::Pong,
        5 => {
            let n = rng.gen_range(0..8usize);
            Body::Stats((0..n).map(|_| (arb_string(rng, 40), rng.next_u64())).collect())
        }
        6 => Body::Metrics(arb_string(rng, 200)),
        7 => Body::ShutdownAck,
        8 => {
            let n = rng.gen_range(0..4usize);
            Body::SlowLog((0..n).map(|_| arb_slow_entry(rng)).collect())
        }
        9 => Body::Versions {
            current: rng.next_u64(),
            oldest: rng.next_u64(),
            installed: rng.next_u64(),
            reclaimed_pages: rng.next_u64(),
            pinned: rng.next_u64(),
        },
        _ => {
            let code = ErrorCode::ALL[rng.gen_range(0..ErrorCode::ALL.len())];
            Body::Error { code, message: arb_string(rng, 60) }
        }
    }
}

fn arb_response(rng: &mut Rng) -> Response {
    Response { id: rng.next_u64(), body: arb_body(rng) }
}

#[test]
fn request_encode_decode_round_trips() {
    check(
        &Config::with_cases(300),
        arb_request,
        pc_rng::check::no_shrink,
        |req| {
            let payload = encode_request(req);
            match decode_request(&payload) {
                Ok(got) if got == *req => Ok(()),
                Ok(got) => Err(format!("round trip changed the request: {got:?}")),
                Err(e) => Err(format!("round trip failed to decode: {e}")),
            }
        },
    );
}

#[test]
fn response_encode_decode_round_trips() {
    check(
        &Config::with_cases(300),
        arb_response,
        pc_rng::check::no_shrink,
        |resp| {
            let payload = encode_response(resp);
            match decode_response(&payload) {
                Ok(got) if got == *resp => Ok(()),
                Ok(got) => Err(format!("round trip changed the response: {got:?}")),
                Err(e) => Err(format!("round trip failed to decode: {e}")),
            }
        },
    );
}

#[test]
fn every_truncation_of_a_request_is_a_clean_error() {
    check(
        &Config::with_cases(120),
        arb_request,
        pc_rng::check::no_shrink,
        |req| {
            let payload = encode_request(req);
            for cut in 0..payload.len() {
                // A strict prefix can never decode as the full request (the
                // header alone pins 27 bytes; shorter bodies under-run their
                // op's fields) — it must produce a typed error, not a panic
                // and not a bogus success.
                if decode_request(&payload[..cut]).is_ok() {
                    return Err(format!("truncation to {cut} bytes decoded successfully"));
                }
            }
            Ok(())
        },
    );
}

#[test]
fn corrupted_payloads_never_panic() {
    // (payload, corruption sites) pairs; the property exercises the decoder
    // on every mutated variant. Shrinking drops corruption sites.
    let gen = |rng: &mut Rng| {
        let payload = if rng.gen_bool(0.5) {
            encode_request(&arb_request(rng))
        } else {
            encode_response(&arb_response(rng))
        };
        let flips: Vec<(usize, u8)> = (0..rng.gen_range(1..8usize))
            .map(|_| (rng.next_u64() as usize, rng.next_u64() as u8))
            .collect();
        (payload, flips)
    };
    check(
        &Config::with_cases(300),
        gen,
        |case: &(Vec<u8>, Vec<(usize, u8)>)| {
            shrink_vec(&case.1, |_| Vec::new())
                .into_iter()
                .map(|flips| (case.0.clone(), flips))
                .collect()
        },
        |(payload, flips)| {
            let mut mutated = payload.clone();
            if mutated.is_empty() {
                return Ok(());
            }
            for &(pos, val) in flips {
                let idx = pos % mutated.len();
                mutated[idx] ^= val;
            }
            // Totality: both decoders must return, never panic. (Both are
            // exercised because a corrupted request byte-string is just an
            // arbitrary byte-string to the response decoder and vice versa.)
            let _ = decode_request(&mutated);
            let _ = decode_response(&mutated);
            Ok(())
        },
    );
}

#[test]
fn fully_random_bytes_never_panic_and_rarely_decode() {
    check(
        &Config::with_cases(400),
        |rng: &mut Rng| {
            let n = rng.gen_range(0..200usize);
            let mut buf = vec![0u8; n];
            rng.fill_bytes(&mut buf);
            buf
        },
        |v: &Vec<u8>| shrink_vec(v, |_| Vec::new()),
        |bytes| {
            let _ = decode_request(bytes);
            let _ = decode_response(bytes);
            Ok(())
        },
    );
}

#[test]
fn response_frame_shares_bytes_zero_copy() {
    // The zero-copy satellite: a response frame is one Page; cloning it for
    // retry/fan-out must share the allocation, not copy the result set.
    let big = Response {
        id: 1,
        body: Body::Points((0..10_000).map(|i| Point { x: i, y: -i, id: i as u64 }).collect()),
    };
    let frame = pc_serve::wire::response_frame(&big);
    let clone = frame.clone();
    assert!(frame.ptr_eq(&clone), "cloned frame must share the same Arc allocation");
    assert_eq!(frame.len(), 4 + encode_response(&big).len());
}
