//! The server: acceptor, per-connection readers, a worker pool behind the
//! admission-controlled query queue, and a dedicated update-batching stage.
//!
//! Thread model (all plain `std::thread`, sized by [`ServerConfig`]):
//!
//! * **acceptor** — nonblocking accept loop; stops on shutdown.
//! * **connection readers** (one per connection) — poll the socket with a
//!   short read-timeout tick so they can notice shutdown and enforce the
//!   idle timeout; decode frames; answer admin ops inline (they must stay
//!   responsive under load); route queries/updates through
//!   [`crate::queue::Bounded::try_push`] — a full queue is answered
//!   `Overloaded` *immediately*, which is the entire admission-control
//!   policy.
//! * **workers** — pop query jobs, enforce the per-request deadline, run
//!   [`crate::target::QueryTarget::query`], write the response.
//! * **batcher** — pops one update, then drains whatever else is already
//!   queued (up to `batch_max`), groups by target, and applies each group
//!   with a single [`crate::target::QueryTarget::apply_updates`] call — the
//!   service-layer version of the paper's §5 buffered-update idea: the
//!   structure pays its lock and root-path traffic once per batch.
//!
//! Graceful drain-then-shutdown: the ADMIN `Shutdown` op (or
//! [`ServerHandle::shutdown`]) flips one flag and closes both queues. New
//! requests get `ShuttingDown`; already-admitted jobs drain and their
//! responses are written before the threads exit. Response frames are
//! shared [`Page`]s, written under a per-connection mutex with a write
//! timeout, so a stalled peer can never hang a worker.

use std::io::{self, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pc_obs::sample::Sampler;
use pc_obs::serve_metrics as names;
use pc_obs::slowlog::{SlowLog, SlowQuery};
use pc_obs::QueryTrace;
use pc_pagestore::{
    decode_version_meta, IoStats, Page, PageStore, Snapshot, VersionConfig, VersionedStore,
};
use pc_sync::Mutex;

use crate::obsplane::{
    install_commit_observer, render_store_metrics, render_version_metrics, store_stat_pairs,
    version_stat_pairs, GroupCommitObserver, TargetStatsSet,
};
use crate::queue::{Bounded, PushError};
use crate::stats::ServeStats;
use crate::target::{FrozenView, QueryTarget, Registry, TargetError, UpdateOp};
use crate::wire::{
    decode_request, flatten_spans, response_frame, Body, ErrorCode, FrameProgress, FrameReader,
    Op, Request, Response, SlowEntry, FLAG_TRACE, MAX_FRAME, RANKED_BY_LATENCY, RANKED_BY_WASTE,
};

/// Everything a server instance serves: one shared page store and the
/// registry of structures living in it.
pub struct Service {
    /// The shared store (all workers read through its sharded pool).
    pub store: Arc<PageStore>,
    /// The structures, addressed by wire target id.
    pub registry: Registry,
}

/// Server tuning knobs. `Default` is sized for tests and small machines.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Query worker threads (thread-per-core by default, minimum 1).
    pub workers: usize,
    /// Query queue capacity — the admission-control bound.
    pub queue_depth: usize,
    /// Update queue capacity.
    pub update_queue_depth: usize,
    /// Max updates coalesced into one batch.
    pub batch_max: usize,
    /// Close a connection after this long without a complete frame.
    pub idle_timeout: Duration,
    /// Socket write timeout (a stalled peer fails the write instead of
    /// hanging a worker).
    pub write_timeout: Duration,
    /// Read-timeout tick for the polling reader loops.
    pub poll_tick: Duration,
    /// Frame-size cap (see [`MAX_FRAME`]).
    pub max_frame: usize,
    /// Trace 1 in N requests (0 = off, 1 = everything). Runtime-retunable
    /// over the wire via the `SetSampling` ADMIN op; works in every build
    /// (the span layer is always compiled).
    pub trace_sample: u64,
    /// Seed for the deterministic sampler: the sampled set is a pure
    /// function of `(seed, request id)`, independent of worker scheduling.
    pub trace_seed: u64,
    /// Slow-query-log retention per ranking (latency / wasteful I/O).
    pub slowlog_k: usize,
    /// How many unpinned epochs stay addressable by `as_of` (the
    /// time-travel window; see [`VersionConfig::retain`]). Pinned epochs
    /// are always retained regardless.
    pub version_retain: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            queue_depth: 64,
            update_queue_depth: 64,
            batch_max: 32,
            idle_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(5),
            poll_tick: Duration::from_millis(20),
            max_frame: MAX_FRAME,
            trace_sample: 0,
            trace_seed: 0x7061_7468_6361_6368, // "pathcach"
            slowlog_k: 16,
            version_retain: 8,
        }
    }
}

/// One accepted connection's write half. Workers, the batcher, and the
/// reader all send through this; the mutex serializes whole frames.
struct Conn {
    stream: TcpStream,
    wlock: Mutex<()>,
}

impl Conn {
    /// Writes one pre-encoded frame. On failure the socket is shut down so
    /// the reader exits promptly instead of serving a half-dead peer.
    fn send(&self, frame: &Page) -> io::Result<()> {
        let _g = self.wlock.lock();
        let mut w = &self.stream;
        w.write_all(frame.as_slice()).inspect_err(|_| {
            let _ = self.stream.shutdown(Shutdown::Both);
        })
    }
}

/// A queued unit of work.
struct Job {
    req: Request,
    conn: Arc<Conn>,
    enqueued: Instant,
    deadline: Option<Instant>,
    /// Decided at admission (deterministic sampler or `FLAG_TRACE`): the
    /// executing stage opens a request-scoped trace capture for this job.
    sampled: bool,
    /// The epoch this query reads, pinned at admission on the reader
    /// thread: the latest epoch for `as_of == 0`, the addressed historical
    /// epoch otherwise. `None` for updates and for targets whose state the
    /// versioning layer does not cover (they query live structures).
    snapshot: Option<Snapshot>,
}

struct Shared {
    store: Arc<PageStore>,
    versions: Arc<VersionedStore>,
    registry: Registry,
    cfg: ServerConfig,
    stats: ServeStats,
    queries: Bounded<Job>,
    updates: Bounded<Job>,
    shutdown: AtomicBool,
    batch_seq: AtomicU64,
    sampler: Sampler,
    slowlog: SlowLog,
    target_stats: TargetStatsSet,
    commit_obs: Arc<GroupCommitObserver>,
    /// Write halves of live connections, so [`ServerHandle::kill`] can cut
    /// every socket at once. Weak: the reader/worker `Arc`s own them.
    conn_socks: Mutex<Vec<Weak<Conn>>>,
}

impl Shared {
    fn begin_shutdown(&self) {
        if !self.shutdown.swap(true, Relaxed) {
            self.queries.close();
            self.updates.close();
        }
    }

    fn respond(&self, conn: &Conn, resp: &Response) {
        // A failed write means the peer is gone; the job is complete either
        // way and the reader notices the shutdown socket on its next poll.
        let _ = conn.send(&response_frame(resp));
    }

    /// Folds a finished request-scoped trace into the observability plane:
    /// the retained-trace counter, the owning target's §3 aggregates, and
    /// the slow-query log.
    fn retain_trace(&self, request_id: u64, op: &'static str, target_id: u16, trace: QueryTrace) {
        self.stats.traces_retained.fetch_add(1, Relaxed);
        if let Some(ts) = self.target_stats.get(target_id) {
            ts.absorb_trace(&trace);
        }
        let target = self.target_stats.name(target_id).unwrap_or("?").to_string();
        self.slowlog.offer(SlowQuery { request_id, op, target, trace });
    }

    /// Renders the slow-query log for the wire: top `k` per ranking,
    /// merged by identity so a query ranked both ways appears once with
    /// both membership bits set.
    fn slow_entries(&self, k: usize) -> Vec<SlowEntry> {
        fn entry(q: &SlowQuery, rankings: u8) -> SlowEntry {
            SlowEntry {
                request_id: q.request_id,
                op: q.op.to_string(),
                target: q.target.clone(),
                rankings,
                latency_ns: q.trace.latency_ns,
                total_io: q.trace.total_io,
                search_ios: q.trace.search_ios,
                wasteful_ios: q.trace.wasteful_ios,
                items: q.trace.items,
                spans: flatten_spans(&q.trace.root),
            }
        }
        let by_latency = self.slowlog.top_by_latency(k);
        let by_waste = self.slowlog.top_by_waste(k);
        let mut seen = Vec::with_capacity(by_latency.len() + by_waste.len());
        let mut out = Vec::with_capacity(seen.capacity());
        for q in by_latency {
            out.push(entry(&q, RANKED_BY_LATENCY));
            seen.push(q);
        }
        for q in by_waste {
            match seen.iter().position(|s| Arc::ptr_eq(s, &q)) {
                Some(i) => out[i].rankings |= RANKED_BY_WASTE,
                None => {
                    out.push(entry(&q, RANKED_BY_WASTE));
                    seen.push(q);
                }
            }
        }
        out
    }
}

/// Encodes the batcher's commit metadata: the batch sequence number plus
/// one optional reopen descriptor per registered target (registry order).
/// This is what a durable store's `last_commit_meta` carries after
/// recovery, so a restarting node can reopen its dynamic structures in
/// exactly the acknowledged state — see [`decode_commit_meta`].
pub fn encode_commit_meta(seq: u64, descriptors: &[Option<Vec<u8>>]) -> Vec<u8> {
    let mut out = Vec::with_capacity(10 + descriptors.iter().map(|d| 5 + d.as_ref().map_or(0, Vec::len)).sum::<usize>());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&(descriptors.len() as u16).to_le_bytes());
    for d in descriptors {
        match d {
            None => out.push(0),
            Some(bytes) => {
                out.push(1);
                out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                out.extend_from_slice(bytes);
            }
        }
    }
    out
}

/// Decodes [`encode_commit_meta`] output; total (returns `None` on any
/// malformed input). A bare 8-byte sequence — the pre-descriptor format —
/// decodes as a commit with no descriptors. On a versioned server every
/// durable commit is version-framed (the epoch map wraps the batch meta);
/// a frame is transparently unwrapped so recovery callers see the inner
/// batch payload either way.
pub fn decode_commit_meta(meta: &[u8]) -> Option<(u64, Vec<Option<Vec<u8>>>)> {
    if let Some(vm) = decode_version_meta(meta) {
        return decode_commit_meta(&vm.user);
    }
    if meta.len() < 8 {
        return None;
    }
    let seq = u64::from_le_bytes(meta[0..8].try_into().ok()?);
    if meta.len() == 8 {
        return Some((seq, Vec::new()));
    }
    let count = u16::from_le_bytes(meta.get(8..10)?.try_into().ok()?) as usize;
    let mut at = 10usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        match *meta.get(at)? {
            0 => {
                at += 1;
                out.push(None);
            }
            1 => {
                let len = u32::from_le_bytes(meta.get(at + 1..at + 5)?.try_into().ok()?) as usize;
                let bytes = meta.get(at + 5..at + 5 + len)?;
                at += 5 + len;
                out.push(Some(bytes.to_vec()));
            }
            _ => return None,
        }
    }
    (at == meta.len()).then_some((seq, out))
}

fn target_error_response(stats: &ServeStats, id: u64, err: TargetError) -> Response {
    match err {
        TargetError::Unsupported { .. } => {
            stats.bad_requests.fetch_add(1, Relaxed);
            Response::error(id, ErrorCode::Unsupported, err.to_string())
        }
        TargetError::Storage(e) => {
            stats.storage_errors.fetch_add(1, Relaxed);
            Response::error(id, ErrorCode::Storage, e.to_string())
        }
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queries.pop() {
        shared.stats.queue_wait_ns.record(job.enqueued.elapsed().as_nanos() as u64);
        let resp = if job.deadline.is_some_and(|d| Instant::now() > d) {
            shared.stats.deadline_exceeded.fetch_add(1, Relaxed);
            Response::error(job.req.id, ErrorCode::DeadlineExceeded, "deadline passed in queue")
        } else {
            execute_query(shared, &job)
        };
        shared.stats.query_latency_ns.record(job.enqueued.elapsed().as_nanos() as u64);
        shared.respond(&job.conn, &resp);
    }
}

/// Runs one admitted query, optionally under a request-scoped trace
/// capture, and folds the outcome into the per-target families.
fn execute_query(shared: &Shared, job: &Job) -> Response {
    // The capture gate is opened *before* the root span so the whole span
    // tree lands in it; unsampled requests skip the gate and their spans
    // cost one thread-local load each in default builds.
    let capture = job.sampled.then(pc_obs::begin_trace);
    let started = Instant::now();
    let resp = {
        let _span = pc_obs::span!("serve_query", job.req.id);
        match shared.registry.get(job.req.target) {
            None => {
                shared.stats.bad_requests.fetch_add(1, Relaxed);
                Response::error(
                    job.req.id,
                    ErrorCode::BadRequest,
                    format!("unknown target {}", job.req.target),
                )
            }
            Some(target) => {
                let result = match &job.snapshot {
                    // Versioned read: answer from the pinned epoch's frozen
                    // view — lock-free and bit-identical no matter how many
                    // epochs install while this query runs.
                    Some(snap) => query_at_snapshot(shared, target, job.req.target, snap, &job.req.op),
                    // Unversioned path (static targets, the dynamic
                    // 3-sided PST, updates): byte-for-byte the pre-MVCC
                    // behavior.
                    None => target.query(&shared.store, &job.req.op),
                };
                match result {
                    Ok(body) => {
                        shared.stats.queries_ok.fetch_add(1, Relaxed);
                        Response { id: job.req.id, body }
                    }
                    Err(e) => target_error_response(&shared.stats, job.req.id, e),
                }
            }
        }
    };
    if let Some(ts) = shared.target_stats.get(job.req.target) {
        ts.latency_ns.record(started.elapsed().as_nanos() as u64);
        match resp.body {
            Body::Error { .. } => ts.errors.fetch_add(1, Relaxed),
            _ => ts.queries_ok.fetch_add(1, Relaxed),
        };
    }
    if let Some(capture) = capture {
        if let Some(trace) = capture.finish() {
            shared.retain_trace(job.req.id, job.req.op.name(), job.req.target, trace);
        }
    }
    resp
}

/// The reopen descriptor for `tid` as committed with the snapshot's epoch.
fn snapshot_descriptor(snap: &Snapshot, tid: u16) -> Result<Vec<u8>, TargetError> {
    decode_commit_meta(snap.user_meta())
        .and_then(|(_, descs)| descs.into_iter().nth(tid as usize).flatten())
        .ok_or(TargetError::Unsupported { op: "as_of", target: "epoch without a descriptor" })
}

/// Serves one read against the epoch pinned in `snap`, through a frozen
/// per-epoch view of the target.
///
/// The view is built once per `(epoch, target)` — from the descriptor the
/// batcher committed with that epoch, with the build's own page reads
/// resolving through the epoch map — then parked in the epoch's artifact
/// cache, so steady-state queries take only the thread-local snapshot
/// guard and a shared-read cache probe: zero exclusive locks on the query
/// path (pinned by the snapshot-semantics suite).
fn query_at_snapshot(
    shared: &Shared,
    target: &dyn QueryTarget,
    tid: u16,
    snap: &Snapshot,
    op: &Op,
) -> Result<Body, TargetError> {
    let view: Arc<FrozenView> = match snap.cached(tid as u64) {
        Some(v) => v.downcast().expect("epoch cache holds one FrozenView per target id"),
        None => {
            let desc = snapshot_descriptor(snap, tid)?;
            let boxed = {
                let _g = snap.enter();
                target.open_frozen(&shared.store, &desc)?
            };
            snap.cache_put(tid as u64, Arc::new(FrozenView(boxed)))
                .downcast()
                .expect("epoch cache holds one FrozenView per target id")
        }
    };
    let _g = snap.enter();
    view.query(&shared.store, op)
}

/// Applies one per-target group of coalesced updates with a single
/// `apply_updates` call (one lock hold, one root-path traversal), folding
/// per-job results into `outcomes`.
fn apply_group(
    shared: &Shared,
    tid: u16,
    jobs: Vec<Job>,
    outcomes: &mut Vec<(Job, std::result::Result<u32, TargetError>)>,
) {
    let ops: Vec<UpdateOp> = jobs
        .iter()
        .filter_map(|j| match &j.req.op {
            Op::Insert(p) => Some(UpdateOp::Insert(*p)),
            Op::Delete(p) => Some(UpdateOp::Delete(*p)),
            _ => None, // admission only routes updates here
        })
        .collect();
    let coalesced = ops.len() as u32;
    // One trace per target group when any member was sampled; the
    // capture is attributed to the first sampled job's request id
    // (the batch is one shared execution — §5 buffering means
    // there is no per-update I/O to split).
    let traced_id = jobs.iter().find(|j| j.sampled).map(|j| j.req.id);
    let capture = traced_id.map(|_| pc_obs::begin_trace());
    let started = Instant::now();
    let results = {
        let _span = pc_obs::span!("serve_update_batch", coalesced);
        match shared.registry.get(tid) {
            Some(target) => target.apply_updates(&shared.store, &ops),
            None => ops
                .iter()
                .map(|_| Err(TargetError::Unsupported { op: "update", target: "missing" }))
                .collect(),
        }
    };
    let apply_ns = started.elapsed().as_nanos() as u64;
    if let (Some(capture), Some(rid)) = (capture, traced_id) {
        if let Some(trace) = capture.finish() {
            shared.retain_trace(rid, "update_batch", tid, trace);
        }
    }
    shared.stats.batches.fetch_add(1, Relaxed);
    shared.stats.batched_updates.fetch_add(coalesced as u64, Relaxed);
    if let Some(ts) = shared.target_stats.get(tid) {
        ts.batches.fetch_add(1, Relaxed);
        ts.batched_updates.fetch_add(coalesced as u64, Relaxed);
        ts.latency_ns.record(apply_ns);
    }
    for (job, res) in jobs.into_iter().zip(results) {
        outcomes.push((job, res.map(|()| coalesced)));
    }
}

fn batcher_loop(shared: &Shared) {
    while let Some(first) = shared.updates.pop() {
        // Coalesce: take whatever else is already queued, up to batch_max.
        let mut batch = vec![first];
        while batch.len() < shared.cfg.batch_max {
            match shared.updates.try_pop() {
                Some(job) => batch.push(job),
                None => break,
            }
        }
        let seq = shared.batch_seq.fetch_add(1, Relaxed) + 1;
        shared.stats.batch_coalesce.record(batch.len() as u64);
        for job in &batch {
            shared.stats.queue_wait_ns.record(job.enqueued.elapsed().as_nanos() as u64);
        }

        // Expire deadlines now — an expired update must not be applied.
        let mut live = Vec::with_capacity(batch.len());
        for job in batch {
            if job.deadline.is_some_and(|d| Instant::now() > d) {
                shared.stats.deadline_exceeded.fetch_add(1, Relaxed);
                shared.stats.update_latency_ns.record(job.enqueued.elapsed().as_nanos() as u64);
                shared.respond(
                    &job.conn,
                    &Response::error(
                        job.req.id,
                        ErrorCode::DeadlineExceeded,
                        "deadline passed in queue",
                    ),
                );
            } else {
                live.push(job);
            }
        }

        // Group by target, preserving per-target arrival order, then apply
        // each group with one apply_updates call (single lock hold).
        let mut groups: Vec<(u16, Vec<Job>)> = Vec::new();
        for job in live {
            match groups.iter_mut().find(|(t, _)| *t == job.req.target) {
                Some((_, jobs)) => jobs.push(job),
                None => groups.push((job.req.target, vec![job])),
            }
        }
        let mut outcomes: Vec<(Job, std::result::Result<u32, TargetError>)> = Vec::new();
        if !groups.is_empty() {
            // Targets without a reopen descriptor (the dynamic 3-sided
            // PST) cannot be frozen per epoch, so their queries read live
            // pages under their own lock. Their updates apply *outside*
            // the CoW session — direct writes — so their pages never enter
            // an epoch map where an un-guarded read would miss them.
            let (versioned, direct): (Vec<_>, Vec<_>) = groups.into_iter().partition(|(tid, _)| {
                shared.registry.get(*tid).is_some_and(|t| t.versioned_updates())
            });
            for (tid, jobs) in direct {
                apply_group(shared, tid, jobs, &mut outcomes);
            }

            // Copy-on-write apply session for versioned targets: every
            // write to a frozen page is redirected to a fresh one, so
            // concurrent snapshot readers observe nothing until install.
            let session = shared.versions.begin_apply();
            for (tid, jobs) in versioned {
                apply_group(shared, tid, jobs, &mut outcomes);
            }

            // Install the batch as the next epoch — for EVERY batch, even
            // one with no versioned updates. On a durable store the
            // install is also the group commit (the lost-ack rule: no Ack
            // leaves before its batch is in the synced WAL), and it keeps
            // the durability invariant that every commit's metadata is
            // version-framed — recovery would silently drop the epoch map
            // if a plain commit ever landed on top of it. The framed
            // payload carries each target's reopen descriptor, so both
            // recovery and historical `as_of` reads resolve structure
            // handles matching exactly this acknowledged state.
            let descriptors: Vec<Option<Vec<u8>>> = (0..shared.registry.len() as u16)
                .map(|tid| shared.registry.get(tid).and_then(|t| t.descriptor()))
                .collect();
            match session.install_as(seq, &encode_commit_meta(seq, &descriptors)) {
                Ok(_) => {
                    if shared.store.is_durable() {
                        shared.stats.group_commits.fetch_add(1, Relaxed);
                    }
                }
                Err(e) => {
                    // Nothing in this batch is durable: acking any of it
                    // would be a lie. Fail every applied update.
                    shared.stats.commit_failures.fetch_add(1, Relaxed);
                    let msg = format!("group commit failed: {e}");
                    for (_, res) in outcomes.iter_mut() {
                        if res.is_ok() {
                            *res = Err(TargetError::Storage(
                                pc_pagestore::StoreError::Corrupt(msg.clone()),
                            ));
                        }
                    }
                }
            }
        }

        for (job, res) in outcomes {
            let ts = shared.target_stats.get(job.req.target);
            let resp = match res {
                Ok(coalesced) => {
                    shared.stats.updates_ok.fetch_add(1, Relaxed);
                    if let Some(ts) = ts {
                        ts.updates_ok.fetch_add(1, Relaxed);
                    }
                    Response { id: job.req.id, body: Body::Ack { batch: seq, coalesced } }
                }
                Err(e) => {
                    if let Some(ts) = ts {
                        ts.errors.fetch_add(1, Relaxed);
                    }
                    target_error_response(&shared.stats, job.req.id, e)
                }
            };
            shared.stats.update_latency_ns.record(job.enqueued.elapsed().as_nanos() as u64);
            shared.respond(&job.conn, &resp);
        }
    }
}

/// Handles one decoded request on the reader thread. Returns `false` when
/// the connection should stop reading (shutdown was requested).
fn handle_request(shared: &Shared, conn: &Arc<Conn>, req: Request) -> bool {
    shared.stats.requests.fetch_add(1, Relaxed);
    let now = Instant::now();

    // Admin ops are served inline so they stay responsive under overload.
    match &req.op {
        Op::Ping => {
            shared.respond(conn, &Response { id: req.id, body: Body::Pong });
            return true;
        }
        Op::Stats => {
            let mut pairs = shared.stats.stat_pairs(&shared.store.stats());
            pairs.push((names::QUERY_QUEUE_DEPTH.into(), shared.queries.len() as u64));
            pairs.push((names::UPDATE_QUEUE_DEPTH.into(), shared.updates.len() as u64));
            pairs.push((names::TRACE_SAMPLE_EVERY.into(), shared.sampler.every()));
            pairs.push((names::SLOWLOG_OFFERED.into(), shared.slowlog.offered()));
            pairs.extend(shared.target_stats.stat_pairs());
            pairs.extend(store_stat_pairs(&shared.store, &shared.commit_obs));
            pairs.extend(version_stat_pairs(&shared.versions.metrics()));
            shared.respond(conn, &Response { id: req.id, body: Body::Stats(pairs) });
            return true;
        }
        Op::Metrics => {
            let mut text = shared.stats.render_text();
            for (gauge, v) in [
                (names::QUERY_QUEUE_DEPTH, shared.queries.len() as u64),
                (names::UPDATE_QUEUE_DEPTH, shared.updates.len() as u64),
                (names::TRACE_SAMPLE_EVERY, shared.sampler.every()),
            ] {
                text.push_str(&format!("# TYPE {gauge} gauge\n{gauge} {v}\n"));
            }
            let offered = shared.slowlog.offered();
            text.push_str(&format!(
                "# TYPE {n} counter\n{n} {offered}\n",
                n = names::SLOWLOG_OFFERED
            ));
            text.push_str(&shared.target_stats.render_text());
            text.push_str(&render_store_metrics(&shared.store, &shared.commit_obs));
            text.push_str(&render_version_metrics(&shared.versions.metrics()));
            text.push_str(&pc_obs::render_text());
            shared.respond(conn, &Response { id: req.id, body: Body::Metrics(text) });
            return true;
        }
        Op::SlowLog { k, clear } => {
            let entries = shared.slow_entries(*k as usize);
            shared.respond(conn, &Response { id: req.id, body: Body::SlowLog(entries) });
            if *clear {
                shared.slowlog.clear();
            }
            return true;
        }
        Op::SetSampling { every } => {
            shared.sampler.set_every(*every);
            let pairs = vec![(names::TRACE_SAMPLE_EVERY.to_string(), *every)];
            shared.respond(conn, &Response { id: req.id, body: Body::Stats(pairs) });
            return true;
        }
        Op::Versions => {
            let m = shared.versions.metrics();
            shared.respond(
                conn,
                &Response {
                    id: req.id,
                    body: Body::Versions {
                        current: m.current_seq,
                        oldest: m.oldest_seq,
                        installed: m.installed,
                        reclaimed_pages: m.reclaimed_pages,
                        pinned: m.pinned,
                    },
                },
            );
            return true;
        }
        Op::Shutdown => {
            shared.respond(conn, &Response { id: req.id, body: Body::ShutdownAck });
            shared.begin_shutdown();
            return false;
        }
        _ => {}
    }

    if shared.shutdown.load(Relaxed) {
        shared.stats.shed_shutdown.fetch_add(1, Relaxed);
        shared.respond(conn, &Response::error(req.id, ErrorCode::ShuttingDown, "draining"));
        return false;
    }

    // Route validation happens at admission so a bad request never occupies
    // a queue slot.
    let Some(target) = shared.registry.get(req.target) else {
        shared.stats.bad_requests.fetch_add(1, Relaxed);
        shared.respond(
            conn,
            &Response::error(req.id, ErrorCode::BadRequest, format!("unknown target {}", req.target)),
        );
        return true;
    };
    let is_update = req.op.is_update();
    if is_update && !target.supports_updates() {
        shared.stats.bad_requests.fetch_add(1, Relaxed);
        shared.respond(
            conn,
            &Response::error(
                req.id,
                ErrorCode::Unsupported,
                format!("target {} ({}) is read-only", req.target, target.kind()),
            ),
        );
        return true;
    }

    if let Some(ts) = shared.target_stats.get(req.target) {
        ts.requests.fetch_add(1, Relaxed);
    }

    // Snapshot-at-admission: a query against a versioned target pins its
    // epoch here, on the reader thread, before it touches a queue — the
    // answer is then bit-identical to the admitted state no matter how
    // many batches install while the job waits or runs. This pin is the
    // only versioning-state lock on the whole read path; the worker
    // executes lock-free against the pinned epoch.
    let snapshot = if is_update {
        if req.as_of != 0 {
            shared.stats.bad_requests.fetch_add(1, Relaxed);
            shared.respond(
                conn,
                &Response::error(
                    req.id,
                    ErrorCode::BadRequest,
                    "updates must address the current epoch (as_of must be 0)",
                ),
            );
            return true;
        }
        None
    } else if target.versioned_updates() {
        if req.as_of == 0 {
            Some(shared.versions.snapshot())
        } else {
            match shared.versions.snapshot_at(req.as_of) {
                Ok(s) => Some(s),
                Err(e) => {
                    // Outside the retained window (or never installed):
                    // the typed error carries the addressable range.
                    shared.stats.bad_requests.fetch_add(1, Relaxed);
                    shared.respond(
                        conn,
                        &Response::error(req.id, ErrorCode::BadRequest, e.to_string()),
                    );
                    return true;
                }
            }
        }
    } else if req.as_of != 0 {
        shared.stats.bad_requests.fetch_add(1, Relaxed);
        shared.respond(
            conn,
            &Response::error(
                req.id,
                ErrorCode::Unsupported,
                format!(
                    "target {} ({}) has no version history (as_of must be 0)",
                    req.target,
                    target.kind()
                ),
            ),
        );
        return true;
    } else {
        None
    };

    let deadline = (req.deadline_ms > 0).then(|| now + Duration::from_millis(req.deadline_ms as u64));
    let id = req.id;
    // Sampling is decided once, at admission, from the request id alone —
    // `FLAG_TRACE` forces it per request; otherwise the deterministic
    // sampler makes the sampled set reproducible across runs.
    let sampled = req.flags & FLAG_TRACE != 0 || shared.sampler.should_sample(req.id);
    let job = Job { req, conn: Arc::clone(conn), enqueued: now, deadline, sampled, snapshot };
    let queue = if is_update { &shared.updates } else { &shared.queries };
    match queue.try_push(job) {
        Ok(()) => {
            shared.stats.admitted.fetch_add(1, Relaxed);
            true
        }
        Err(PushError::Full(_)) => {
            shared.stats.overloaded.fetch_add(1, Relaxed);
            shared.respond(conn, &Response::error(id, ErrorCode::Overloaded, "queue full"));
            true
        }
        Err(PushError::Closed(_)) => {
            shared.stats.shed_shutdown.fetch_add(1, Relaxed);
            shared.respond(conn, &Response::error(id, ErrorCode::ShuttingDown, "draining"));
            false
        }
    }
}

fn conn_loop(shared: &Shared, conn: Arc<Conn>) {
    let mut reader = FrameReader::new(shared.cfg.max_frame);
    let mut last_activity = Instant::now();
    let mut seen_bytes = 0u64;
    loop {
        if shared.shutdown.load(Relaxed) {
            // Stop reading; admitted jobs still hold the Conn and write
            // their responses before the socket finally closes.
            return;
        }
        match reader.poll(&mut (&conn.stream)) {
            Ok(FrameProgress::Frame(payload)) => {
                last_activity = Instant::now();
                match decode_request(&payload) {
                    Ok(req) => {
                        if !handle_request(shared, &conn, req) {
                            return;
                        }
                    }
                    Err(e) => {
                        // The framing survives a bad payload, but a peer
                        // sending garbage gets one typed error and a close.
                        shared.stats.bad_requests.fetch_add(1, Relaxed);
                        shared.respond(&conn, &Response::error(0, ErrorCode::BadRequest, e.to_string()));
                        return;
                    }
                }
            }
            Ok(FrameProgress::Pending) => {
                if reader.bytes_read() != seen_bytes {
                    seen_bytes = reader.bytes_read();
                    last_activity = Instant::now();
                } else if last_activity.elapsed() >= shared.cfg.idle_timeout {
                    // Peer went silent (possibly mid-frame): reclaim the
                    // connection instead of leaking it.
                    shared.stats.conns_idle_closed.fetch_add(1, Relaxed);
                    let _ = conn.stream.shutdown(Shutdown::Both);
                    return;
                }
            }
            Ok(FrameProgress::Eof) | Err(_) => return,
        }
    }
}

fn acceptor_loop(shared: &Arc<Shared>, listener: TcpListener, conns: &Mutex<Vec<JoinHandle<()>>>) {
    while !shared.shutdown.load(Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.stats.conns_accepted.fetch_add(1, Relaxed);
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(Some(shared.cfg.poll_tick));
                let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));
                let conn = Arc::new(Conn { stream, wlock: Mutex::new(()) });
                {
                    let mut socks = shared.conn_socks.lock();
                    socks.retain(|w| w.strong_count() > 0);
                    socks.push(Arc::downgrade(&conn));
                }
                let shared = Arc::clone(shared);
                let handle = std::thread::spawn(move || conn_loop(&shared, conn));
                let mut g = conns.lock();
                // Opportunistically reap finished readers so the vec stays
                // bounded on long-lived servers.
                g.retain(|h| !h.is_finished());
                g.push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(shared.cfg.poll_tick.min(Duration::from_millis(10)));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Spawns servers. The unit struct exists so the entry point reads as
/// `Server::spawn(service, config)`.
pub struct Server;

impl Server {
    /// Binds `config.addr`, spawns the thread pool, and returns a handle.
    pub fn spawn(service: Service, config: ServerConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        let target_names: Vec<String> = service
            .registry
            .describe()
            .into_iter()
            .map(|(_, name, _, _)| name.to_string())
            .collect();
        let commit_obs = install_commit_observer(&service.store);
        // The epoch manager. On a recovered durable store the last commit
        // metadata restores the exact committed epoch (seq + page map +
        // descriptors); a fresh store starts at epoch 0, whose user
        // metadata already carries the registered descriptors so epoch-0
        // snapshots can resolve frozen views.
        let vcfg = VersionConfig { retain: config.version_retain };
        let versions = match service.store.last_commit_meta() {
            Some(meta) => {
                Arc::new(VersionedStore::open(Arc::clone(&service.store), Some(&meta), vcfg))
            }
            None => {
                let descriptors: Vec<Option<Vec<u8>>> = (0..service.registry.len() as u16)
                    .map(|tid| service.registry.get(tid).and_then(|t| t.descriptor()))
                    .collect();
                Arc::new(VersionedStore::new(
                    Arc::clone(&service.store),
                    vcfg,
                    &encode_commit_meta(0, &descriptors),
                ))
            }
        };
        let shared = Arc::new(Shared {
            registry: service.registry,
            queries: Bounded::new(config.queue_depth),
            updates: Bounded::new(config.update_queue_depth),
            stats: ServeStats::default(),
            shutdown: AtomicBool::new(false),
            // Batch seqs are epoch seqs; `install_as` requires them to be
            // strictly increasing, so a recovered server resumes from the
            // recovered epoch rather than restarting at 0.
            batch_seq: AtomicU64::new(versions.current_seq()),
            versions,
            sampler: Sampler::new(config.trace_sample, config.trace_seed),
            slowlog: SlowLog::new(config.slowlog_k),
            target_stats: TargetStatsSet::new(target_names),
            commit_obs,
            conn_socks: Mutex::new(Vec::new()),
            store: service.store,
            cfg: config,
        });
        let conn_threads = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conn_threads);
            std::thread::spawn(move || acceptor_loop(&shared, listener, &conns))
        };
        let worker_handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let batcher = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || batcher_loop(&shared))
        };
        Ok(ServerHandle {
            addr,
            shared,
            acceptor: Some(acceptor),
            workers: worker_handles,
            batcher: Some(batcher),
            conn_threads,
        })
    }
}

/// Owner handle for a running server. Dropping it shuts the server down
/// and joins every thread.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    batcher: Option<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live service counters.
    pub fn stats(&self) -> &ServeStats {
        &self.shared.stats
    }

    /// Snapshot of the shared store's I/O counters.
    pub fn io_stats(&self) -> IoStats {
        self.shared.store.stats()
    }

    /// The page store all served structures live in (chaos tests use this
    /// to inject faults into a running server).
    pub fn store(&self) -> &Arc<PageStore> {
        &self.shared.store
    }

    /// The epoch manager (tests pin snapshots and read version metrics
    /// directly; remote clients use `as_of` and the ADMIN `Versions` op).
    pub fn versions(&self) -> &Arc<VersionedStore> {
        &self.shared.versions
    }

    /// Per-target metric families (tests and embedding binaries read them
    /// directly; remote scrapers use the ADMIN `Stats`/`Metrics` ops).
    pub fn target_stats(&self) -> &TargetStatsSet {
        &self.shared.target_stats
    }

    /// The slow-query log (in-process view; `SlowLog` ADMIN op remotely).
    pub fn slow_log(&self) -> &SlowLog {
        &self.shared.slowlog
    }

    /// Current trace-sampling rate (1 in N; 0 = off).
    pub fn trace_sampling(&self) -> u64 {
        self.shared.sampler.every()
    }

    /// Retunes the trace-sampling rate live, same as the ADMIN op.
    pub fn set_trace_sampling(&self, every: u64) {
        self.shared.sampler.set_every(every);
    }

    /// The group-commit size distribution observed on the shared store.
    pub fn commit_observer(&self) -> &GroupCommitObserver {
        &self.shared.commit_obs
    }

    /// True once shutdown has been requested (locally or over the wire).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Relaxed)
    }

    /// Requests drain-then-shutdown without blocking.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Kills the node abruptly: every client socket is cut **now**, before
    /// any queued response can leave, and no drain happens on the wire.
    /// From a peer's view this is a process kill — in-flight calls fail
    /// with a connection error, un-acked updates are in limbo. The chaos
    /// harness uses this to kill one replica of a shard group mid-workload;
    /// joining the handle afterwards still reclaims the threads. Acked
    /// updates survive by construction: on a durable store the ack was
    /// sent only after its group commit.
    pub fn kill(&self) {
        self.shared.begin_shutdown();
        for weak in self.shared.conn_socks.lock().iter() {
            if let Some(conn) = weak.upgrade() {
                let _ = conn.stream.shutdown(Shutdown::Both);
            }
        }
    }

    /// Shuts down and joins every thread; admitted work is answered first.
    pub fn join(mut self) {
        self.join_inner();
    }

    fn join_inner(&mut self) {
        self.shared.begin_shutdown();
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(b) = self.batcher.take() {
            let _ = b.join();
            // Drain-time sync: the batcher has applied its last batch, so
            // flush whatever the store still buffers (the pool's dirty
            // pages on a pooled store, pending WAL records on a durable
            // one). Without this, a clean drain-then-shutdown could drop
            // acked updates that were still sitting in the buffer pool —
            // the shutdown flavor of the lost-ack bug.
            let _ = self.shared.store.sync();
        }
        loop {
            let Some(h) = self.conn_threads.lock().pop() else { break };
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.join_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::{decode_commit_meta, encode_commit_meta};

    #[test]
    fn commit_meta_round_trips_and_rejects_garbage() {
        let descs = vec![None, Some(vec![1u8, 2, 3]), Some(Vec::new()), None];
        let meta = encode_commit_meta(42, &descs);
        assert_eq!(decode_commit_meta(&meta), Some((42, descs)));

        // The pre-descriptor format (bare sequence) still decodes.
        assert_eq!(decode_commit_meta(&7u64.to_le_bytes()), Some((7, Vec::new())));

        // Truncations and trailing garbage are clean rejections.
        assert_eq!(decode_commit_meta(&[]), None);
        assert_eq!(decode_commit_meta(&[1, 2, 3]), None);
        let meta = encode_commit_meta(1, &[Some(vec![9u8; 8])]);
        for cut in 9..meta.len() {
            assert_eq!(decode_commit_meta(&meta[..cut]), None, "cut at {cut}");
        }
        let mut padded = meta.clone();
        padded.push(0);
        assert_eq!(decode_commit_meta(&padded), None);
    }
}
