//! The server: acceptor, per-connection readers, a worker pool behind the
//! admission-controlled query queue, and a dedicated update-batching stage.
//!
//! Thread model (all plain `std::thread`, sized by [`ServerConfig`]):
//!
//! * **acceptor** — nonblocking accept loop; stops on shutdown.
//! * **connection readers** (one per connection) — poll the socket with a
//!   short read-timeout tick so they can notice shutdown and enforce the
//!   idle timeout; decode frames; answer admin ops inline (they must stay
//!   responsive under load); route queries/updates through
//!   [`crate::queue::Bounded::try_push`] — a full queue is answered
//!   `Overloaded` *immediately*, which is the entire admission-control
//!   policy.
//! * **workers** — pop query jobs, enforce the per-request deadline, run
//!   [`crate::target::QueryTarget::query`], write the response.
//! * **batcher** — pops one update, then drains whatever else is already
//!   queued (up to `batch_max`), groups by target, and applies each group
//!   with a single [`crate::target::QueryTarget::apply_updates`] call — the
//!   service-layer version of the paper's §5 buffered-update idea: the
//!   structure pays its lock and root-path traffic once per batch.
//!
//! Graceful drain-then-shutdown: the ADMIN `Shutdown` op (or
//! [`ServerHandle::shutdown`]) flips one flag and closes both queues. New
//! requests get `ShuttingDown`; already-admitted jobs drain and their
//! responses are written before the threads exit. Response frames are
//! shared [`Page`]s, written under a per-connection mutex with a write
//! timeout, so a stalled peer can never hang a worker.

use std::io::{self, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pc_pagestore::{IoStats, Page, PageStore};
use pc_sync::Mutex;

use crate::queue::{Bounded, PushError};
use crate::stats::ServeStats;
use crate::target::{Registry, TargetError, UpdateOp};
use crate::wire::{
    decode_request, response_frame, Body, ErrorCode, FrameProgress, FrameReader, Op, Request,
    Response, MAX_FRAME,
};

/// Everything a server instance serves: one shared page store and the
/// registry of structures living in it.
pub struct Service {
    /// The shared store (all workers read through its sharded pool).
    pub store: Arc<PageStore>,
    /// The structures, addressed by wire target id.
    pub registry: Registry,
}

/// Server tuning knobs. `Default` is sized for tests and small machines.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Query worker threads (thread-per-core by default, minimum 1).
    pub workers: usize,
    /// Query queue capacity — the admission-control bound.
    pub queue_depth: usize,
    /// Update queue capacity.
    pub update_queue_depth: usize,
    /// Max updates coalesced into one batch.
    pub batch_max: usize,
    /// Close a connection after this long without a complete frame.
    pub idle_timeout: Duration,
    /// Socket write timeout (a stalled peer fails the write instead of
    /// hanging a worker).
    pub write_timeout: Duration,
    /// Read-timeout tick for the polling reader loops.
    pub poll_tick: Duration,
    /// Frame-size cap (see [`MAX_FRAME`]).
    pub max_frame: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            queue_depth: 64,
            update_queue_depth: 64,
            batch_max: 32,
            idle_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(5),
            poll_tick: Duration::from_millis(20),
            max_frame: MAX_FRAME,
        }
    }
}

/// One accepted connection's write half. Workers, the batcher, and the
/// reader all send through this; the mutex serializes whole frames.
struct Conn {
    stream: TcpStream,
    wlock: Mutex<()>,
}

impl Conn {
    /// Writes one pre-encoded frame. On failure the socket is shut down so
    /// the reader exits promptly instead of serving a half-dead peer.
    fn send(&self, frame: &Page) -> io::Result<()> {
        let _g = self.wlock.lock();
        let mut w = &self.stream;
        w.write_all(frame.as_slice()).inspect_err(|_| {
            let _ = self.stream.shutdown(Shutdown::Both);
        })
    }
}

/// A queued unit of work.
struct Job {
    req: Request,
    conn: Arc<Conn>,
    enqueued: Instant,
    deadline: Option<Instant>,
}

struct Shared {
    store: Arc<PageStore>,
    registry: Registry,
    cfg: ServerConfig,
    stats: ServeStats,
    queries: Bounded<Job>,
    updates: Bounded<Job>,
    shutdown: AtomicBool,
    batch_seq: AtomicU64,
}

impl Shared {
    fn begin_shutdown(&self) {
        if !self.shutdown.swap(true, Relaxed) {
            self.queries.close();
            self.updates.close();
        }
    }

    fn respond(&self, conn: &Conn, resp: &Response) {
        // A failed write means the peer is gone; the job is complete either
        // way and the reader notices the shutdown socket on its next poll.
        let _ = conn.send(&response_frame(resp));
    }
}

fn target_error_response(stats: &ServeStats, id: u64, err: TargetError) -> Response {
    match err {
        TargetError::Unsupported { .. } => {
            stats.bad_requests.fetch_add(1, Relaxed);
            Response::error(id, ErrorCode::Unsupported, err.to_string())
        }
        TargetError::Storage(e) => {
            stats.storage_errors.fetch_add(1, Relaxed);
            Response::error(id, ErrorCode::Storage, e.to_string())
        }
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queries.pop() {
        let resp = if job.deadline.is_some_and(|d| Instant::now() > d) {
            shared.stats.deadline_exceeded.fetch_add(1, Relaxed);
            Response::error(job.req.id, ErrorCode::DeadlineExceeded, "deadline passed in queue")
        } else {
            let _span = pc_obs::span!("serve_query");
            match shared.registry.get(job.req.target) {
                None => {
                    shared.stats.bad_requests.fetch_add(1, Relaxed);
                    Response::error(
                        job.req.id,
                        ErrorCode::BadRequest,
                        format!("unknown target {}", job.req.target),
                    )
                }
                Some(target) => match target.query(&shared.store, &job.req.op) {
                    Ok(body) => {
                        shared.stats.queries_ok.fetch_add(1, Relaxed);
                        Response { id: job.req.id, body }
                    }
                    Err(e) => target_error_response(&shared.stats, job.req.id, e),
                },
            }
        };
        shared.stats.query_latency_ns.record(job.enqueued.elapsed().as_nanos() as u64);
        shared.respond(&job.conn, &resp);
    }
}

fn batcher_loop(shared: &Shared) {
    while let Some(first) = shared.updates.pop() {
        // Coalesce: take whatever else is already queued, up to batch_max.
        let mut batch = vec![first];
        while batch.len() < shared.cfg.batch_max {
            match shared.updates.try_pop() {
                Some(job) => batch.push(job),
                None => break,
            }
        }
        let seq = shared.batch_seq.fetch_add(1, Relaxed) + 1;

        // Expire deadlines now — an expired update must not be applied.
        let mut live = Vec::with_capacity(batch.len());
        for job in batch {
            if job.deadline.is_some_and(|d| Instant::now() > d) {
                shared.stats.deadline_exceeded.fetch_add(1, Relaxed);
                shared.stats.update_latency_ns.record(job.enqueued.elapsed().as_nanos() as u64);
                shared.respond(
                    &job.conn,
                    &Response::error(
                        job.req.id,
                        ErrorCode::DeadlineExceeded,
                        "deadline passed in queue",
                    ),
                );
            } else {
                live.push(job);
            }
        }

        // Group by target, preserving per-target arrival order, then apply
        // each group with one apply_updates call (single lock hold).
        let mut groups: Vec<(u16, Vec<Job>)> = Vec::new();
        for job in live {
            match groups.iter_mut().find(|(t, _)| *t == job.req.target) {
                Some((_, jobs)) => jobs.push(job),
                None => groups.push((job.req.target, vec![job])),
            }
        }
        let mut outcomes: Vec<(Job, std::result::Result<u32, TargetError>, )> = Vec::new();
        let mut applied_any = false;
        for (tid, jobs) in groups {
            let ops: Vec<UpdateOp> = jobs
                .iter()
                .filter_map(|j| match &j.req.op {
                    Op::Insert(p) => Some(UpdateOp::Insert(*p)),
                    Op::Delete(p) => Some(UpdateOp::Delete(*p)),
                    _ => None, // admission only routes updates here
                })
                .collect();
            let coalesced = ops.len() as u32;
            let results = {
                let _span = pc_obs::span!("serve_update_batch", coalesced);
                match shared.registry.get(tid) {
                    Some(target) => target.apply_updates(&shared.store, &ops),
                    None => ops
                        .iter()
                        .map(|_| {
                            Err(TargetError::Unsupported { op: "update", target: "missing" })
                        })
                        .collect(),
                }
            };
            shared.stats.batches.fetch_add(1, Relaxed);
            shared.stats.batched_updates.fetch_add(coalesced as u64, Relaxed);
            for (job, res) in jobs.into_iter().zip(results) {
                applied_any |= res.is_ok();
                outcomes.push((job, res.map(|()| coalesced)));
            }
        }

        // Group commit before any Ack leaves the server: on a durable
        // store an acknowledged update must already be in the synced WAL,
        // otherwise a crash (or a plain shutdown) after the Ack silently
        // loses it — the lost-ack bug. One commit covers the whole batch,
        // so the WAL fsync cost amortizes across every coalesced update.
        if applied_any && shared.store.is_durable() {
            match shared.store.commit_with(&seq.to_le_bytes()) {
                Ok(_) => {
                    shared.stats.group_commits.fetch_add(1, Relaxed);
                }
                Err(e) => {
                    // Nothing in this batch is durable: acking any of it
                    // would be a lie. Fail every applied update.
                    shared.stats.commit_failures.fetch_add(1, Relaxed);
                    let msg = format!("group commit failed: {e}");
                    for (_, res) in outcomes.iter_mut() {
                        if res.is_ok() {
                            *res = Err(TargetError::Storage(
                                pc_pagestore::StoreError::Corrupt(msg.clone()),
                            ));
                        }
                    }
                }
            }
        }

        for (job, res) in outcomes {
            let resp = match res {
                Ok(coalesced) => {
                    shared.stats.updates_ok.fetch_add(1, Relaxed);
                    Response { id: job.req.id, body: Body::Ack { batch: seq, coalesced } }
                }
                Err(e) => target_error_response(&shared.stats, job.req.id, e),
            };
            shared.stats.update_latency_ns.record(job.enqueued.elapsed().as_nanos() as u64);
            shared.respond(&job.conn, &resp);
        }
    }
}

/// Handles one decoded request on the reader thread. Returns `false` when
/// the connection should stop reading (shutdown was requested).
fn handle_request(shared: &Shared, conn: &Arc<Conn>, req: Request) -> bool {
    shared.stats.requests.fetch_add(1, Relaxed);
    let now = Instant::now();

    // Admin ops are served inline so they stay responsive under overload.
    match &req.op {
        Op::Ping => {
            shared.respond(conn, &Response { id: req.id, body: Body::Pong });
            return true;
        }
        Op::Stats => {
            let pairs = shared.stats.stat_pairs(&shared.store.stats());
            shared.respond(conn, &Response { id: req.id, body: Body::Stats(pairs) });
            return true;
        }
        Op::Metrics => {
            let mut text = shared.stats.render_text();
            text.push_str(&pc_obs::render_text());
            shared.respond(conn, &Response { id: req.id, body: Body::Metrics(text) });
            return true;
        }
        Op::Shutdown => {
            shared.respond(conn, &Response { id: req.id, body: Body::ShutdownAck });
            shared.begin_shutdown();
            return false;
        }
        _ => {}
    }

    if shared.shutdown.load(Relaxed) {
        shared.stats.shed_shutdown.fetch_add(1, Relaxed);
        shared.respond(conn, &Response::error(req.id, ErrorCode::ShuttingDown, "draining"));
        return false;
    }

    // Route validation happens at admission so a bad request never occupies
    // a queue slot.
    let Some(target) = shared.registry.get(req.target) else {
        shared.stats.bad_requests.fetch_add(1, Relaxed);
        shared.respond(
            conn,
            &Response::error(req.id, ErrorCode::BadRequest, format!("unknown target {}", req.target)),
        );
        return true;
    };
    let is_update = req.op.is_update();
    if is_update && !target.supports_updates() {
        shared.stats.bad_requests.fetch_add(1, Relaxed);
        shared.respond(
            conn,
            &Response::error(
                req.id,
                ErrorCode::Unsupported,
                format!("target {} ({}) is read-only", req.target, target.kind()),
            ),
        );
        return true;
    }

    let deadline = (req.deadline_ms > 0).then(|| now + Duration::from_millis(req.deadline_ms as u64));
    let id = req.id;
    let job = Job { req, conn: Arc::clone(conn), enqueued: now, deadline };
    let queue = if is_update { &shared.updates } else { &shared.queries };
    match queue.try_push(job) {
        Ok(()) => {
            shared.stats.admitted.fetch_add(1, Relaxed);
            true
        }
        Err(PushError::Full(_)) => {
            shared.stats.overloaded.fetch_add(1, Relaxed);
            shared.respond(conn, &Response::error(id, ErrorCode::Overloaded, "queue full"));
            true
        }
        Err(PushError::Closed(_)) => {
            shared.stats.shed_shutdown.fetch_add(1, Relaxed);
            shared.respond(conn, &Response::error(id, ErrorCode::ShuttingDown, "draining"));
            false
        }
    }
}

fn conn_loop(shared: &Shared, conn: Arc<Conn>) {
    let mut reader = FrameReader::new(shared.cfg.max_frame);
    let mut last_activity = Instant::now();
    let mut seen_bytes = 0u64;
    loop {
        if shared.shutdown.load(Relaxed) {
            // Stop reading; admitted jobs still hold the Conn and write
            // their responses before the socket finally closes.
            return;
        }
        match reader.poll(&mut (&conn.stream)) {
            Ok(FrameProgress::Frame(payload)) => {
                last_activity = Instant::now();
                match decode_request(&payload) {
                    Ok(req) => {
                        if !handle_request(shared, &conn, req) {
                            return;
                        }
                    }
                    Err(e) => {
                        // The framing survives a bad payload, but a peer
                        // sending garbage gets one typed error and a close.
                        shared.stats.bad_requests.fetch_add(1, Relaxed);
                        shared.respond(&conn, &Response::error(0, ErrorCode::BadRequest, e.to_string()));
                        return;
                    }
                }
            }
            Ok(FrameProgress::Pending) => {
                if reader.bytes_read() != seen_bytes {
                    seen_bytes = reader.bytes_read();
                    last_activity = Instant::now();
                } else if last_activity.elapsed() >= shared.cfg.idle_timeout {
                    // Peer went silent (possibly mid-frame): reclaim the
                    // connection instead of leaking it.
                    shared.stats.conns_idle_closed.fetch_add(1, Relaxed);
                    let _ = conn.stream.shutdown(Shutdown::Both);
                    return;
                }
            }
            Ok(FrameProgress::Eof) | Err(_) => return,
        }
    }
}

fn acceptor_loop(shared: &Arc<Shared>, listener: TcpListener, conns: &Mutex<Vec<JoinHandle<()>>>) {
    while !shared.shutdown.load(Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.stats.conns_accepted.fetch_add(1, Relaxed);
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(Some(shared.cfg.poll_tick));
                let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));
                let conn = Arc::new(Conn { stream, wlock: Mutex::new(()) });
                let shared = Arc::clone(shared);
                let handle = std::thread::spawn(move || conn_loop(&shared, conn));
                let mut g = conns.lock();
                // Opportunistically reap finished readers so the vec stays
                // bounded on long-lived servers.
                g.retain(|h| !h.is_finished());
                g.push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(shared.cfg.poll_tick.min(Duration::from_millis(10)));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Spawns servers. The unit struct exists so the entry point reads as
/// `Server::spawn(service, config)`.
pub struct Server;

impl Server {
    /// Binds `config.addr`, spawns the thread pool, and returns a handle.
    pub fn spawn(service: Service, config: ServerConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            store: service.store,
            registry: service.registry,
            queries: Bounded::new(config.queue_depth),
            updates: Bounded::new(config.update_queue_depth),
            cfg: config,
            stats: ServeStats::default(),
            shutdown: AtomicBool::new(false),
            batch_seq: AtomicU64::new(0),
        });
        let conn_threads = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conn_threads);
            std::thread::spawn(move || acceptor_loop(&shared, listener, &conns))
        };
        let worker_handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let batcher = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || batcher_loop(&shared))
        };
        Ok(ServerHandle {
            addr,
            shared,
            acceptor: Some(acceptor),
            workers: worker_handles,
            batcher: Some(batcher),
            conn_threads,
        })
    }
}

/// Owner handle for a running server. Dropping it shuts the server down
/// and joins every thread.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    batcher: Option<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live service counters.
    pub fn stats(&self) -> &ServeStats {
        &self.shared.stats
    }

    /// Snapshot of the shared store's I/O counters.
    pub fn io_stats(&self) -> IoStats {
        self.shared.store.stats()
    }

    /// The page store all served structures live in (chaos tests use this
    /// to inject faults into a running server).
    pub fn store(&self) -> &Arc<PageStore> {
        &self.shared.store
    }

    /// True once shutdown has been requested (locally or over the wire).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Relaxed)
    }

    /// Requests drain-then-shutdown without blocking.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Shuts down and joins every thread; admitted work is answered first.
    pub fn join(mut self) {
        self.join_inner();
    }

    fn join_inner(&mut self) {
        self.shared.begin_shutdown();
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(b) = self.batcher.take() {
            let _ = b.join();
            // Drain-time sync: the batcher has applied its last batch, so
            // flush whatever the store still buffers (the pool's dirty
            // pages on a pooled store, pending WAL records on a durable
            // one). Without this, a clean drain-then-shutdown could drop
            // acked updates that were still sitting in the buffer pool —
            // the shutdown flavor of the lost-ack bug.
            let _ = self.shared.store.sync();
        }
        loop {
            let Some(h) = self.conn_threads.lock().pop() else { break };
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.join_inner();
    }
}
