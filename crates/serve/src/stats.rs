//! Always-on service counters and latency histograms.
//!
//! [`ServeStats`] uses plain relaxed atomics plus the always-compiled
//! `pc_obs::hist::Histogram`, so the ADMIN `Stats`/`Metrics` ops report
//! real numbers in every build — the `obs` cargo feature only adds the
//! span/flight-recorder layers on top. Names come from
//! [`pc_obs::serve_metrics`] so the exposition, the load generator, and the
//! tests can never drift apart.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use pc_obs::hist::Histogram;
use pc_obs::serve_metrics as names;
use pc_pagestore::IoStats;

/// Cumulative service-layer counters (monotonic, relaxed).
#[derive(Default)]
pub struct ServeStats {
    /// Connections accepted.
    pub conns_accepted: AtomicU64,
    /// Connections closed by the idle/read timeout.
    pub conns_idle_closed: AtomicU64,
    /// Well-formed requests received.
    pub requests: AtomicU64,
    /// Requests admitted to a work queue.
    pub admitted: AtomicU64,
    /// Requests shed with `Overloaded`.
    pub overloaded: AtomicU64,
    /// Requests rejected with `ShuttingDown`.
    pub shed_shutdown: AtomicU64,
    /// Requests answered `DeadlineExceeded`.
    pub deadline_exceeded: AtomicU64,
    /// Malformed / unroutable requests.
    pub bad_requests: AtomicU64,
    /// Requests that hit a typed storage error.
    pub storage_errors: AtomicU64,
    /// Queries answered successfully.
    pub queries_ok: AtomicU64,
    /// Updates acknowledged successfully.
    pub updates_ok: AtomicU64,
    /// Update batches applied.
    pub batches: AtomicU64,
    /// Updates carried inside those batches.
    pub batched_updates: AtomicU64,
    /// Group commits driven against a durable store (one per batch with at
    /// least one applied update; Acks are sent only after the commit).
    pub group_commits: AtomicU64,
    /// Batches whose group commit failed (their updates were answered with
    /// storage errors, never acked).
    pub commit_failures: AtomicU64,
    /// Queue-to-response latency for queries, nanoseconds.
    pub query_latency_ns: Histogram,
    /// Queue-to-ack latency for updates, nanoseconds.
    pub update_latency_ns: Histogram,
    /// Admission-to-dequeue wait, nanoseconds (queries and updates both):
    /// the pure queueing component of latency, so overload shows up here
    /// before it shows up in the end-to-end histograms.
    pub queue_wait_ns: Histogram,
    /// Updates coalesced per batcher wake (≥ 1); the distribution behind
    /// the `batches`/`batched_updates` averages.
    pub batch_coalesce: Histogram,
    /// Sampled request traces retained (into the slow log / aggregates).
    pub traces_retained: AtomicU64,
}

impl ServeStats {
    /// `(name, value)` pairs for the ADMIN `Stats` op: every service
    /// counter, derived latency quantiles, and the shared store's
    /// [`IoStats`] (including the resilience counters) under an `io_`
    /// prefix.
    pub fn stat_pairs(&self, io: &IoStats) -> Vec<(String, u64)> {
        let q = self.query_latency_ns.snapshot();
        let u = self.update_latency_ns.snapshot();
        let mut out: Vec<(String, u64)> = vec![
            (names::CONNS_ACCEPTED.into(), self.conns_accepted.load(Relaxed)),
            (names::CONNS_IDLE_CLOSED.into(), self.conns_idle_closed.load(Relaxed)),
            (names::REQUESTS.into(), self.requests.load(Relaxed)),
            (names::ADMITTED.into(), self.admitted.load(Relaxed)),
            (names::OVERLOADED.into(), self.overloaded.load(Relaxed)),
            (names::SHED_SHUTDOWN.into(), self.shed_shutdown.load(Relaxed)),
            (names::DEADLINE_EXCEEDED.into(), self.deadline_exceeded.load(Relaxed)),
            (names::BAD_REQUESTS.into(), self.bad_requests.load(Relaxed)),
            (names::STORAGE_ERRORS.into(), self.storage_errors.load(Relaxed)),
            (names::QUERIES_OK.into(), self.queries_ok.load(Relaxed)),
            (names::UPDATES_OK.into(), self.updates_ok.load(Relaxed)),
            (names::BATCHES.into(), self.batches.load(Relaxed)),
            (names::BATCHED_UPDATES.into(), self.batched_updates.load(Relaxed)),
            (names::GROUP_COMMITS.into(), self.group_commits.load(Relaxed)),
            (names::COMMIT_FAILURES.into(), self.commit_failures.load(Relaxed)),
            (names::TRACES_RETAINED.into(), self.traces_retained.load(Relaxed)),
            ("pc_serve_query_p50_ns".into(), q.quantile(0.50)),
            ("pc_serve_query_p99_ns".into(), q.quantile(0.99)),
            ("pc_serve_update_p50_ns".into(), u.quantile(0.50)),
            ("pc_serve_update_p99_ns".into(), u.quantile(0.99)),
            ("pc_serve_queue_wait_p50_ns".into(), self.queue_wait_ns.snapshot().quantile(0.50)),
            ("pc_serve_queue_wait_p99_ns".into(), self.queue_wait_ns.snapshot().quantile(0.99)),
            ("pc_serve_batch_coalesce_p50".into(), self.batch_coalesce.snapshot().quantile(0.50)),
            ("pc_serve_batch_coalesce_count".into(), self.batch_coalesce.snapshot().count),
        ];
        out.extend([
            ("io_reads".to_string(), io.reads),
            ("io_writes".to_string(), io.writes),
            ("io_cache_hits".to_string(), io.cache_hits),
            ("io_allocs".to_string(), io.allocs),
            ("io_frees".to_string(), io.frees),
            ("io_pool_evictions".to_string(), io.pool_evictions),
            ("io_retries".to_string(), io.retries),
            ("io_failovers".to_string(), io.failovers),
            ("io_repairs".to_string(), io.repairs),
            ("io_quarantined".to_string(), io.quarantined),
        ]);
        out
    }

    /// Prometheus-style exposition of the service metrics. The ADMIN
    /// `Metrics` op concatenates this with `pc_obs::render_text()` so one
    /// scrape carries both layers.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let counters = [
            (names::CONNS_ACCEPTED, self.conns_accepted.load(Relaxed)),
            (names::CONNS_IDLE_CLOSED, self.conns_idle_closed.load(Relaxed)),
            (names::REQUESTS, self.requests.load(Relaxed)),
            (names::ADMITTED, self.admitted.load(Relaxed)),
            (names::OVERLOADED, self.overloaded.load(Relaxed)),
            (names::SHED_SHUTDOWN, self.shed_shutdown.load(Relaxed)),
            (names::DEADLINE_EXCEEDED, self.deadline_exceeded.load(Relaxed)),
            (names::BAD_REQUESTS, self.bad_requests.load(Relaxed)),
            (names::STORAGE_ERRORS, self.storage_errors.load(Relaxed)),
            (names::QUERIES_OK, self.queries_ok.load(Relaxed)),
            (names::UPDATES_OK, self.updates_ok.load(Relaxed)),
            (names::BATCHES, self.batches.load(Relaxed)),
            (names::BATCHED_UPDATES, self.batched_updates.load(Relaxed)),
            (names::GROUP_COMMITS, self.group_commits.load(Relaxed)),
            (names::COMMIT_FAILURES, self.commit_failures.load(Relaxed)),
            (names::TRACES_RETAINED, self.traces_retained.load(Relaxed)),
        ];
        for (name, v) in counters {
            out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
        }
        for (name, h) in [
            (names::QUERY_LATENCY, &self.query_latency_ns),
            (names::UPDATE_LATENCY, &self.update_latency_ns),
            (names::QUEUE_WAIT, &self.queue_wait_ns),
            (names::BATCH_COALESCE, &self.batch_coalesce),
        ] {
            let s = h.snapshot();
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let mut cumulative = 0u64;
            for &(le, c) in &s.buckets {
                cumulative += c;
                out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
            }
            out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", s.count));
            out.push_str(&format!("{name}_sum {}\n{name}_count {}\n", s.sum, s.count));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stat_pairs_carry_service_and_io_counters() {
        let s = ServeStats::default();
        s.requests.fetch_add(5, Relaxed);
        s.overloaded.fetch_add(2, Relaxed);
        s.query_latency_ns.record(1000);
        let io = IoStats { reads: 7, retries: 3, quarantined: 1, ..IoStats::default() };
        let pairs = s.stat_pairs(&io);
        let get = |n: &str| pairs.iter().find(|(k, _)| k == n).map(|&(_, v)| v).unwrap();
        assert_eq!(get(names::REQUESTS), 5);
        assert_eq!(get(names::OVERLOADED), 2);
        assert_eq!(get("io_reads"), 7);
        assert_eq!(get("io_retries"), 3);
        assert_eq!(get("io_quarantined"), 1);
        assert_eq!(get("pc_serve_query_p50_ns"), 1023);
    }

    #[test]
    fn render_text_is_prometheus_shaped() {
        let s = ServeStats::default();
        s.admitted.fetch_add(4, Relaxed);
        s.query_latency_ns.record(3);
        s.query_latency_ns.record(100);
        let text = s.render_text();
        assert!(text.contains("# TYPE pc_serve_admitted_total counter"), "{text}");
        assert!(text.contains("pc_serve_admitted_total 4"), "{text}");
        assert!(text.contains("# TYPE pc_serve_query_latency_ns histogram"), "{text}");
        assert!(text.contains("pc_serve_query_latency_ns_bucket{le=\"3\"} 1"), "{text}");
        assert!(text.contains("pc_serve_query_latency_ns_bucket{le=\"+Inf\"} 2"), "{text}");
        assert!(text.contains("pc_serve_query_latency_ns_count 2"), "{text}");
    }
}
