//! Wire protocol v3: length-prefixed binary frames.
//!
//! Every message is one frame: a little-endian `u32` payload length followed
//! by the payload. Request payloads open with a fixed header — magic
//! ([`MAGIC`]), version ([`VERSION`]), opcode, request id, target id,
//! relative deadline, per-request flags, snapshot selector — then an
//! opcode-specific body; response payloads are an opcode byte, the echoed
//! request id, and a typed body. All integers are little-endian; no padding
//! anywhere.
//!
//! ```text
//! frame    := len:u32 payload[len]                  (len <= MAX_FRAME)
//! request  := magic:u16 version:u8 op:u8 id:u64 target:u16 deadline_ms:u32 flags:u8 as_of:u64 body
//! response := kind:u8 id:u64 body
//! ```
//!
//! v2 added the `flags` byte — [`FLAG_TRACE`] forces a request-scoped
//! trace regardless of the server's sampling rate — plus the
//! `SlowLog`/`SetSampling` ADMIN ops and the [`Body::SlowLog`] response
//! carrying flattened span trees ([`SlowEntry`]/[`WireSpan`]).
//!
//! v3 (this revision) added the `as_of` header word — 0 requests the
//! latest snapshot, any other value addresses the installed epoch with
//! that sequence number (time travel; an epoch outside the server's
//! retained window is a `BadRequest`) — plus the `Versions` ADMIN op and
//! the [`Body::Versions`] response describing the retained epoch window.
//! Client and server ship from one workspace, so older frames are rejected
//! with a typed `BadVersion` rather than down-negotiated.
//!
//! Decoding is total: any byte string — truncated, corrupted, or
//! adversarial — produces either a value or a typed [`DecodeError`], never a
//! panic and never an allocation larger than the frame that carried it
//! (element counts are validated against the bytes actually present before
//! any `Vec` is sized). That property is pinned by the `wire_proptest` suite.
//!
//! Responses encode into a single exact-size buffer that includes the length
//! prefix and is handed out as a [`Page`] (`Arc<[u8]>`): queueing, retrying,
//! or multi-writer fan-out clones a refcount, not the result bytes, so a
//! large `Points` result is materialized exactly once on its way to the
//! socket.

use std::fmt;
use std::io::{self, Read, Write};

use pc_pagestore::{Interval, Page, Point};

/// First two payload bytes of every request ("PC", little-endian).
pub const MAGIC: u16 = 0x4350;
/// Protocol version accepted by this build.
pub const VERSION: u8 = 3;
/// Hard cap on a frame payload; a larger announced length is rejected
/// before any allocation (protects against corrupt/hostile prefixes).
pub const MAX_FRAME: usize = 1 << 24;
/// Conventional `target` value for admin ops (the field is ignored there).
pub const ADMIN_TARGET: u16 = 0;

/// Request flag: force a request-scoped trace for this request, bypassing
/// the server's sampling rate (the trace lands in the slow-query log like
/// any sampled trace). Unknown flag bits are preserved and ignored.
pub const FLAG_TRACE: u8 = 1;

// Request opcodes. Query/update ops are < 16; admin ops are >= 16.
const OP_RANGE1D: u8 = 1;
const OP_STAB: u8 = 2;
const OP_TWO_SIDED: u8 = 3;
const OP_THREE_SIDED: u8 = 4;
const OP_INSERT: u8 = 5;
const OP_DELETE: u8 = 6;
const OP_PING: u8 = 16;
const OP_STATS: u8 = 17;
const OP_METRICS: u8 = 18;
const OP_SHUTDOWN: u8 = 19;
const OP_SLOW_LOG: u8 = 20;
const OP_SET_SAMPLING: u8 = 21;
const OP_VERSIONS: u8 = 22;

// Response kinds.
const RESP_POINTS: u8 = 1;
const RESP_INTERVALS: u8 = 2;
const RESP_KEYS: u8 = 3;
const RESP_ACK: u8 = 4;
const RESP_PONG: u8 = 5;
const RESP_STATS: u8 = 6;
const RESP_METRICS: u8 = 7;
const RESP_SHUTDOWN_ACK: u8 = 8;
const RESP_ERROR: u8 = 9;
const RESP_SLOW_LOG: u8 = 10;
const RESP_VERSIONS: u8 = 11;

/// Minimum encoded size of a [`SlowEntry`] (empty strings, no spans), used
/// as the per-element floor for count validation.
const SLOW_ENTRY_MIN: usize = 8 + 2 + 2 + 1 + 5 * 8 + 4;
/// Minimum encoded size of a [`WireSpan`] (empty name).
const WIRE_SPAN_MIN: usize = 2 + 1 + 2 + 8 * 8;

/// A typed operation carried by a [`Request`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// 1-d key range `[lo, hi]` against a B-tree target.
    Range1d {
        /// Inclusive lower key.
        lo: i64,
        /// Inclusive upper key.
        hi: i64,
    },
    /// Stabbing query at `q` against an interval target.
    Stab {
        /// Stabbing point.
        q: i64,
    },
    /// 2-sided PST query (left bound `x0`, bottom bound `y0`; same
    /// semantics as `pc_pst::TwoSided`).
    TwoSided {
        /// Left boundary (inclusive).
        x0: i64,
        /// Bottom boundary (inclusive).
        y0: i64,
    },
    /// 3-sided PST query (`x1 ≤ x ≤ x2`, bottom bound `y0`; same semantics
    /// as `pc_pst::ThreeSided`).
    ThreeSided {
        /// Left boundary (inclusive).
        x1: i64,
        /// Right boundary (inclusive).
        x2: i64,
        /// Bottom boundary (inclusive).
        y0: i64,
    },
    /// Insert a point into a dynamic target.
    Insert(Point),
    /// Delete a point from a dynamic target.
    Delete(Point),
    /// Liveness probe (admin).
    Ping,
    /// Server + store counters as `(name, value)` pairs (admin).
    Stats,
    /// Prometheus-style metrics text (admin).
    Metrics,
    /// Graceful drain-then-shutdown (admin).
    Shutdown,
    /// Read (and optionally drain) the slow-query log (admin).
    SlowLog {
        /// Max entries wanted per ranking.
        k: u32,
        /// Also empty the log after reading (the drain half of the op).
        clear: bool,
    },
    /// Retune the live trace-sampling rate: trace 1 in `every` requests
    /// (0 = off, 1 = everything). Admin.
    SetSampling {
        /// The new rate.
        every: u64,
    },
    /// Describe the server's retained snapshot window (admin): the current
    /// and oldest addressable epoch, install/reclaim counters, and how many
    /// snapshots are pinned right now.
    Versions,
}

impl Op {
    /// True for admin ops (ping/stats/metrics/shutdown); these bypass the
    /// work queues so they stay responsive under load.
    pub fn is_admin(&self) -> bool {
        matches!(
            self,
            Op::Ping
                | Op::Stats
                | Op::Metrics
                | Op::Shutdown
                | Op::SlowLog { .. }
                | Op::SetSampling { .. }
                | Op::Versions
        )
    }

    /// True for mutating ops, which route through the batching stage.
    pub fn is_update(&self) -> bool {
        matches!(self, Op::Insert(_) | Op::Delete(_))
    }

    /// Stable lowercase name for logs and error messages.
    pub fn name(&self) -> &'static str {
        match self {
            Op::Range1d { .. } => "range1d",
            Op::Stab { .. } => "stab",
            Op::TwoSided { .. } => "two_sided",
            Op::ThreeSided { .. } => "three_sided",
            Op::Insert(_) => "insert",
            Op::Delete(_) => "delete",
            Op::Ping => "ping",
            Op::Stats => "stats",
            Op::Metrics => "metrics",
            Op::Shutdown => "shutdown",
            Op::SlowLog { .. } => "slow_log",
            Op::SetSampling { .. } => "set_sampling",
            Op::Versions => "versions",
        }
    }

    fn opcode(&self) -> u8 {
        match self {
            Op::Range1d { .. } => OP_RANGE1D,
            Op::Stab { .. } => OP_STAB,
            Op::TwoSided { .. } => OP_TWO_SIDED,
            Op::ThreeSided { .. } => OP_THREE_SIDED,
            Op::Insert(_) => OP_INSERT,
            Op::Delete(_) => OP_DELETE,
            Op::Ping => OP_PING,
            Op::Stats => OP_STATS,
            Op::Metrics => OP_METRICS,
            Op::Shutdown => OP_SHUTDOWN,
            Op::SlowLog { .. } => OP_SLOW_LOG,
            Op::SetSampling { .. } => OP_SET_SAMPLING,
            Op::Versions => OP_VERSIONS,
        }
    }
}

/// One client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Caller-chosen id, echoed verbatim in the response.
    pub id: u64,
    /// Registry index of the structure to query ([`ADMIN_TARGET`] for admin).
    pub target: u16,
    /// Relative deadline in milliseconds from server receipt; 0 = none.
    pub deadline_ms: u32,
    /// Per-request flag bits (see [`FLAG_TRACE`]); unknown bits are
    /// carried through untouched.
    pub flags: u8,
    /// Snapshot selector: 0 pins the latest installed epoch at admission;
    /// any other value addresses that installed epoch (time travel). An
    /// epoch outside the retained window is answered `BadRequest`; updates
    /// and admin ops must carry 0.
    pub as_of: u64,
    /// The operation.
    pub op: Op,
}

/// Typed error codes carried in [`Body::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// A bounded work queue was full; the request was shed immediately.
    Overloaded,
    /// The request's deadline passed before it was executed.
    DeadlineExceeded,
    /// Malformed request, unknown target, or an op the target cannot serve
    /// was addressed at it with malformed intent (see also [`ErrorCode::Unsupported`]).
    BadRequest,
    /// The storage layer returned a typed error (checksum, quarantine, I/O).
    Storage,
    /// The server is draining; no new work is admitted.
    ShuttingDown,
    /// The target exists but does not implement this op.
    Unsupported,
}

impl ErrorCode {
    /// All codes, for enumeration in tests and generators.
    pub const ALL: [ErrorCode; 6] = [
        ErrorCode::Overloaded,
        ErrorCode::DeadlineExceeded,
        ErrorCode::BadRequest,
        ErrorCode::Storage,
        ErrorCode::ShuttingDown,
        ErrorCode::Unsupported,
    ];

    /// True for load-dependent conditions a caller may reasonably retry
    /// (elsewhere, or later, with backoff): the answer depends on *when*
    /// and *where* the request ran, not on the request itself. The router
    /// fails reads over to another replica on these; `BadRequest` /
    /// `Unsupported` / `Storage` would fail identically everywhere and are
    /// surfaced immediately.
    pub fn is_transient(self) -> bool {
        matches!(
            self,
            ErrorCode::Overloaded | ErrorCode::DeadlineExceeded | ErrorCode::ShuttingDown
        )
    }

    fn to_u8(self) -> u8 {
        match self {
            ErrorCode::Overloaded => 1,
            ErrorCode::DeadlineExceeded => 2,
            ErrorCode::BadRequest => 3,
            ErrorCode::Storage => 4,
            ErrorCode::ShuttingDown => 5,
            ErrorCode::Unsupported => 6,
        }
    }

    fn from_u8(v: u8) -> Result<ErrorCode, DecodeError> {
        Ok(match v {
            1 => ErrorCode::Overloaded,
            2 => ErrorCode::DeadlineExceeded,
            3 => ErrorCode::BadRequest,
            4 => ErrorCode::Storage,
            5 => ErrorCode::ShuttingDown,
            6 => ErrorCode::Unsupported,
            other => return Err(DecodeError::UnknownErrorCode(other)),
        })
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::DeadlineExceeded => "deadline_exceeded",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::Storage => "storage",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Unsupported => "unsupported",
        };
        f.write_str(s)
    }
}

/// One span of a slow-query trace, flattened preorder for the wire (the
/// tree shape is recoverable from `depth`). Field semantics match
/// `pc_obs::SpanNode`; `wasteful` is precomputed server-side so a scraper
/// needs no knowledge of the §3 formula.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireSpan {
    /// Preorder depth (root = 0).
    pub depth: u16,
    /// True for an output-producing span (its excess reads are wasteful).
    pub output: bool,
    /// Static span name (`"level"`, `"path_cache_probe"`, ...).
    pub name: String,
    /// Numeric span argument (tree depth, request id, ...; 0 if unused).
    pub arg: u64,
    /// Subtree backend reads.
    pub reads: u64,
    /// Subtree backend writes.
    pub writes: u64,
    /// Subtree buffer-pool hits.
    pub cache_hits: u64,
    /// Reads attributed to this span itself.
    pub self_reads: u64,
    /// Output items this span reported.
    pub items: u64,
    /// Effective output block capacity `B`.
    pub block_capacity: u64,
    /// §3 wasteful transfers charged to this span alone.
    pub wasteful: u64,
}

/// Ranking-membership bit: the entry is in the top-K by latency.
pub const RANKED_BY_LATENCY: u8 = 1;
/// Ranking-membership bit: the entry is in the top-K by wasteful I/O.
pub const RANKED_BY_WASTE: u8 = 2;

/// One slow-query-log entry as carried by [`Body::SlowLog`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowEntry {
    /// Wire id of the offending request.
    pub request_id: u64,
    /// Op kind name (`"two_sided"`, `"update_batch"`, ...).
    pub op: String,
    /// Name the target was registered under (the tenant namespace).
    pub target: String,
    /// Which rankings retained it ([`RANKED_BY_LATENCY`] | [`RANKED_BY_WASTE`]).
    pub rankings: u8,
    /// Wall-clock execution time of the traced root span, nanoseconds.
    pub latency_ns: u64,
    /// Total transfers in the trace.
    pub total_io: u64,
    /// Search (navigation) reads in the trace.
    pub search_ios: u64,
    /// §3 wasteful transfers in the trace.
    pub wasteful_ios: u64,
    /// Output items the trace reported.
    pub items: u64,
    /// The span tree, flattened preorder.
    pub spans: Vec<WireSpan>,
}

impl SlowEntry {
    /// Indented multi-line rendering of the flattened span tree, in the
    /// same shape as `pc_obs::SpanNode::render`.
    pub fn render(&self) -> String {
        let mut s = format!(
            "{} target={} req={}: io={} (search={}, wasteful={}) items={} latency_ns={}\n",
            self.op,
            self.target,
            self.request_id,
            self.total_io,
            self.search_ios,
            self.wasteful_ios,
            self.items,
            self.latency_ns
        );
        for sp in &self.spans {
            for _ in 0..sp.depth {
                s.push_str("  ");
            }
            s.push_str(&sp.name);
            if sp.arg != 0 {
                s.push_str(&format!("({})", sp.arg));
            }
            s.push_str(&format!(
                " [{}] r={} w={} hit={} self_reads={}",
                if sp.output { "out" } else { "nav" },
                sp.reads,
                sp.writes,
                sp.cache_hits,
                sp.self_reads
            ));
            if sp.output {
                s.push_str(&format!(
                    " items={} B={} wasteful={}",
                    sp.items, sp.block_capacity, sp.wasteful
                ));
            }
            s.push('\n');
        }
        s
    }
}

/// Flattens a finished trace into preorder [`WireSpan`]s.
pub fn flatten_spans(root: &pc_obs::SpanNode) -> Vec<WireSpan> {
    fn walk(node: &pc_obs::SpanNode, depth: u16, out: &mut Vec<WireSpan>) {
        out.push(WireSpan {
            depth,
            output: matches!(node.kind, pc_obs::SpanKind::Output),
            name: node.name.to_string(),
            arg: node.arg,
            reads: node.io.reads,
            writes: node.io.writes,
            cache_hits: node.io.cache_hits,
            self_reads: node.self_reads,
            items: node.items,
            block_capacity: node.block_capacity,
            wasteful: node.wasteful(),
        });
        for c in &node.children {
            walk(c, depth.saturating_add(1), out);
        }
    }
    let mut out = Vec::new();
    walk(root, 0, &mut out);
    out
}

/// Typed response body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Body {
    /// Result of a 2-/3-sided query.
    Points(Vec<Point>),
    /// Result of a stabbing query.
    Intervals(Vec<Interval>),
    /// Result of a 1-d range query: `(key, value)` pairs.
    Keys(Vec<(i64, u64)>),
    /// An update was applied.
    Ack {
        /// Sequence number of the batch that carried this update.
        batch: u64,
        /// Number of updates coalesced into that batch (≥ 1).
        coalesced: u32,
    },
    /// Reply to [`Op::Ping`].
    Pong,
    /// Reply to [`Op::Stats`]: `(name, value)` counter pairs.
    Stats(Vec<(String, u64)>),
    /// Reply to [`Op::Metrics`]: Prometheus-style text.
    Metrics(String),
    /// Reply to [`Op::Shutdown`]; the server drains and exits after this.
    ShutdownAck,
    /// Reply to [`Op::SlowLog`]: retained slow queries with full span trees.
    SlowLog(Vec<SlowEntry>),
    /// Reply to [`Op::Versions`]: the retained snapshot window.
    Versions {
        /// Newest installed epoch (what `as_of = 0` resolves to).
        current: u64,
        /// Oldest epoch still addressable via `as_of`.
        oldest: u64,
        /// Epochs installed over the server's lifetime.
        installed: u64,
        /// Copy-on-write pages reclaimed by epoch GC so far.
        reclaimed_pages: u64,
        /// Snapshots pinned by in-flight or held readers right now.
        pinned: u64,
    },
    /// Typed failure.
    Error {
        /// Machine-readable code.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// One server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Echo of [`Request::id`].
    pub id: u64,
    /// The payload.
    pub body: Body,
}

impl Response {
    /// Convenience constructor for an error response.
    pub fn error(id: u64, code: ErrorCode, message: impl Into<String>) -> Response {
        Response { id, body: Body::Error { code, message: message.into() } }
    }
}

/// Why a payload failed to decode. Every variant is a clean rejection of
/// malformed input — the decoders never panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The payload ended before a field was complete.
    Truncated {
        /// Bytes the next field needed.
        need: usize,
        /// Bytes remaining.
        have: usize,
    },
    /// The request did not start with [`MAGIC`].
    BadMagic(u16),
    /// Unsupported protocol version.
    BadVersion(u8),
    /// Unknown request opcode.
    UnknownOpcode(u8),
    /// Unknown response kind byte.
    UnknownResponseKind(u8),
    /// Unknown [`ErrorCode`] wire value.
    UnknownErrorCode(u8),
    /// The payload was longer than its fields account for.
    TrailingBytes(usize),
    /// An announced element count does not fit in the bytes present.
    CountTooLarge {
        /// Announced element count.
        count: u64,
        /// Bytes remaining for those elements.
        have: usize,
    },
    /// A text field was not valid UTF-8.
    BadUtf8,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { need, have } => {
                write!(f, "truncated payload: need {need} more bytes, have {have}")
            }
            DecodeError::BadMagic(m) => write!(f, "bad magic {m:#06x}"),
            DecodeError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            DecodeError::UnknownOpcode(o) => write!(f, "unknown request opcode {o}"),
            DecodeError::UnknownResponseKind(k) => write!(f, "unknown response kind {k}"),
            DecodeError::UnknownErrorCode(c) => write!(f, "unknown error code {c}"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after payload"),
            DecodeError::CountTooLarge { count, have } => {
                write!(f, "element count {count} exceeds the {have} bytes present")
            }
            DecodeError::BadUtf8 => write!(f, "text field is not valid UTF-8"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Bounds-checked little-endian read cursor over a payload.
struct Cur<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(b: &'a [u8]) -> Cur<'a> {
        Cur { b, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.b.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated { need: n, have: self.remaining() });
        }
        let s = &self.b[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, DecodeError> {
        Ok(self.u64()? as i64)
    }

    /// Validates an element count against the bytes actually remaining
    /// before any collection is sized from it.
    fn count(&mut self, elem_size: usize) -> Result<usize, DecodeError> {
        let n = self.u32()? as u64;
        let have = self.remaining();
        if n.checked_mul(elem_size as u64).is_none_or(|bytes| bytes > have as u64) {
            return Err(DecodeError::CountTooLarge { count: n, have });
        }
        Ok(n as usize)
    }

    fn text(&mut self, len: usize) -> Result<String, DecodeError> {
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadUtf8)
    }

    fn finish(self) -> Result<(), DecodeError> {
        if self.remaining() != 0 {
            return Err(DecodeError::TrailingBytes(self.remaining()));
        }
        Ok(())
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_point(out: &mut Vec<u8>, p: &Point) {
    put_i64(out, p.x);
    put_i64(out, p.y);
    put_u64(out, p.id);
}

fn take_point(c: &mut Cur<'_>) -> Result<Point, DecodeError> {
    Ok(Point { x: c.i64()?, y: c.i64()?, id: c.u64()? })
}

/// Encodes a request payload (no length prefix).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    put_u16(&mut out, MAGIC);
    out.push(VERSION);
    out.push(req.op.opcode());
    put_u64(&mut out, req.id);
    put_u16(&mut out, req.target);
    put_u32(&mut out, req.deadline_ms);
    out.push(req.flags);
    put_u64(&mut out, req.as_of);
    match &req.op {
        Op::Range1d { lo, hi } => {
            put_i64(&mut out, *lo);
            put_i64(&mut out, *hi);
        }
        Op::Stab { q } => put_i64(&mut out, *q),
        Op::TwoSided { x0, y0 } => {
            put_i64(&mut out, *x0);
            put_i64(&mut out, *y0);
        }
        Op::ThreeSided { x1, x2, y0 } => {
            put_i64(&mut out, *x1);
            put_i64(&mut out, *x2);
            put_i64(&mut out, *y0);
        }
        Op::Insert(p) | Op::Delete(p) => put_point(&mut out, p),
        Op::Ping | Op::Stats | Op::Metrics | Op::Shutdown => {}
        Op::SlowLog { k, clear } => {
            put_u32(&mut out, *k);
            out.push(u8::from(*clear));
        }
        Op::SetSampling { every } => put_u64(&mut out, *every),
        Op::Versions => {}
    }
    out
}

/// Encodes a full request frame (length prefix + payload).
pub fn request_frame(req: &Request) -> Vec<u8> {
    let payload = encode_request(req);
    let mut out = Vec::with_capacity(4 + payload.len());
    put_u32(&mut out, payload.len() as u32);
    out.extend_from_slice(&payload);
    out
}

/// Decodes a request payload.
pub fn decode_request(payload: &[u8]) -> Result<Request, DecodeError> {
    let mut c = Cur::new(payload);
    let magic = c.u16()?;
    if magic != MAGIC {
        return Err(DecodeError::BadMagic(magic));
    }
    let version = c.u8()?;
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let opcode = c.u8()?;
    let id = c.u64()?;
    let target = c.u16()?;
    let deadline_ms = c.u32()?;
    let flags = c.u8()?;
    let as_of = c.u64()?;
    let op = match opcode {
        OP_RANGE1D => Op::Range1d { lo: c.i64()?, hi: c.i64()? },
        OP_STAB => Op::Stab { q: c.i64()? },
        OP_TWO_SIDED => Op::TwoSided { x0: c.i64()?, y0: c.i64()? },
        OP_THREE_SIDED => Op::ThreeSided { x1: c.i64()?, x2: c.i64()?, y0: c.i64()? },
        OP_INSERT => Op::Insert(take_point(&mut c)?),
        OP_DELETE => Op::Delete(take_point(&mut c)?),
        OP_PING => Op::Ping,
        OP_STATS => Op::Stats,
        OP_METRICS => Op::Metrics,
        OP_SHUTDOWN => Op::Shutdown,
        OP_SLOW_LOG => Op::SlowLog { k: c.u32()?, clear: c.u8()? != 0 },
        OP_SET_SAMPLING => Op::SetSampling { every: c.u64()? },
        OP_VERSIONS => Op::Versions,
        other => return Err(DecodeError::UnknownOpcode(other)),
    };
    c.finish()?;
    Ok(Request { id, target, deadline_ms, flags, as_of, op })
}

/// Encodes a response payload (no length prefix).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    let kind = match &resp.body {
        Body::Points(_) => RESP_POINTS,
        Body::Intervals(_) => RESP_INTERVALS,
        Body::Keys(_) => RESP_KEYS,
        Body::Ack { .. } => RESP_ACK,
        Body::Pong => RESP_PONG,
        Body::Stats(_) => RESP_STATS,
        Body::Metrics(_) => RESP_METRICS,
        Body::ShutdownAck => RESP_SHUTDOWN_ACK,
        Body::SlowLog(_) => RESP_SLOW_LOG,
        Body::Versions { .. } => RESP_VERSIONS,
        Body::Error { .. } => RESP_ERROR,
    };
    out.push(kind);
    put_u64(&mut out, resp.id);
    match &resp.body {
        Body::Points(ps) => {
            put_u32(&mut out, ps.len() as u32);
            out.reserve(ps.len() * 24);
            for p in ps {
                put_point(&mut out, p);
            }
        }
        Body::Intervals(ivs) => {
            put_u32(&mut out, ivs.len() as u32);
            out.reserve(ivs.len() * 24);
            for iv in ivs {
                put_i64(&mut out, iv.lo);
                put_i64(&mut out, iv.hi);
                put_u64(&mut out, iv.id);
            }
        }
        Body::Keys(kvs) => {
            put_u32(&mut out, kvs.len() as u32);
            out.reserve(kvs.len() * 16);
            for &(k, v) in kvs {
                put_i64(&mut out, k);
                put_u64(&mut out, v);
            }
        }
        Body::Ack { batch, coalesced } => {
            put_u64(&mut out, *batch);
            put_u32(&mut out, *coalesced);
        }
        Body::Pong | Body::ShutdownAck => {}
        Body::Stats(pairs) => {
            put_u32(&mut out, pairs.len() as u32);
            for (name, v) in pairs {
                put_u16(&mut out, name.len() as u16);
                out.extend_from_slice(name.as_bytes());
                put_u64(&mut out, *v);
            }
        }
        Body::Metrics(text) => {
            put_u32(&mut out, text.len() as u32);
            out.extend_from_slice(text.as_bytes());
        }
        Body::SlowLog(entries) => {
            put_u32(&mut out, entries.len() as u32);
            for e in entries {
                put_u64(&mut out, e.request_id);
                put_u16(&mut out, e.op.len() as u16);
                out.extend_from_slice(e.op.as_bytes());
                put_u16(&mut out, e.target.len() as u16);
                out.extend_from_slice(e.target.as_bytes());
                out.push(e.rankings);
                put_u64(&mut out, e.latency_ns);
                put_u64(&mut out, e.total_io);
                put_u64(&mut out, e.search_ios);
                put_u64(&mut out, e.wasteful_ios);
                put_u64(&mut out, e.items);
                put_u32(&mut out, e.spans.len() as u32);
                for sp in &e.spans {
                    put_u16(&mut out, sp.depth);
                    out.push(u8::from(sp.output));
                    put_u16(&mut out, sp.name.len() as u16);
                    out.extend_from_slice(sp.name.as_bytes());
                    put_u64(&mut out, sp.arg);
                    put_u64(&mut out, sp.reads);
                    put_u64(&mut out, sp.writes);
                    put_u64(&mut out, sp.cache_hits);
                    put_u64(&mut out, sp.self_reads);
                    put_u64(&mut out, sp.items);
                    put_u64(&mut out, sp.block_capacity);
                    put_u64(&mut out, sp.wasteful);
                }
            }
        }
        Body::Versions { current, oldest, installed, reclaimed_pages, pinned } => {
            put_u64(&mut out, *current);
            put_u64(&mut out, *oldest);
            put_u64(&mut out, *installed);
            put_u64(&mut out, *reclaimed_pages);
            put_u64(&mut out, *pinned);
        }
        Body::Error { code, message } => {
            out.push(code.to_u8());
            put_u32(&mut out, message.len() as u32);
            out.extend_from_slice(message.as_bytes());
        }
    }
    out
}

/// Encodes a full response frame (length prefix + payload) as a [`Page`].
/// One exact-size allocation; cloning the returned `Page` shares the bytes.
pub fn response_frame(resp: &Response) -> Page {
    let payload = encode_response(resp);
    let mut out = Vec::with_capacity(4 + payload.len());
    put_u32(&mut out, payload.len() as u32);
    out.extend_from_slice(&payload);
    Page::from(out)
}

/// Decodes a response payload.
pub fn decode_response(payload: &[u8]) -> Result<Response, DecodeError> {
    let mut c = Cur::new(payload);
    let kind = c.u8()?;
    let id = c.u64()?;
    let body = match kind {
        RESP_POINTS => {
            let n = c.count(24)?;
            let mut ps = Vec::with_capacity(n);
            for _ in 0..n {
                ps.push(take_point(&mut c)?);
            }
            Body::Points(ps)
        }
        RESP_INTERVALS => {
            let n = c.count(24)?;
            let mut ivs = Vec::with_capacity(n);
            for _ in 0..n {
                ivs.push(Interval { lo: c.i64()?, hi: c.i64()?, id: c.u64()? });
            }
            Body::Intervals(ivs)
        }
        RESP_KEYS => {
            let n = c.count(16)?;
            let mut kvs = Vec::with_capacity(n);
            for _ in 0..n {
                kvs.push((c.i64()?, c.u64()?));
            }
            Body::Keys(kvs)
        }
        RESP_ACK => Body::Ack { batch: c.u64()?, coalesced: c.u32()? },
        RESP_PONG => Body::Pong,
        RESP_STATS => {
            // Names are variable-length; 10 bytes (len + value) is the
            // per-element floor used for the count sanity check.
            let n = c.count(10)?;
            let mut pairs = Vec::with_capacity(n);
            for _ in 0..n {
                let len = c.u16()? as usize;
                let name = c.text(len)?;
                pairs.push((name, c.u64()?));
            }
            Body::Stats(pairs)
        }
        RESP_METRICS => {
            let len = c.count(1)?;
            Body::Metrics(c.text(len)?)
        }
        RESP_SHUTDOWN_ACK => Body::ShutdownAck,
        RESP_SLOW_LOG => {
            let n = c.count(SLOW_ENTRY_MIN)?;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let request_id = c.u64()?;
                let op_len = c.u16()? as usize;
                let op = c.text(op_len)?;
                let target_len = c.u16()? as usize;
                let target = c.text(target_len)?;
                let rankings = c.u8()?;
                let latency_ns = c.u64()?;
                let total_io = c.u64()?;
                let search_ios = c.u64()?;
                let wasteful_ios = c.u64()?;
                let items = c.u64()?;
                let nspans = c.count(WIRE_SPAN_MIN)?;
                let mut spans = Vec::with_capacity(nspans);
                for _ in 0..nspans {
                    let depth = c.u16()?;
                    let output = c.u8()? != 0;
                    let name_len = c.u16()? as usize;
                    let name = c.text(name_len)?;
                    spans.push(WireSpan {
                        depth,
                        output,
                        name,
                        arg: c.u64()?,
                        reads: c.u64()?,
                        writes: c.u64()?,
                        cache_hits: c.u64()?,
                        self_reads: c.u64()?,
                        items: c.u64()?,
                        block_capacity: c.u64()?,
                        wasteful: c.u64()?,
                    });
                }
                entries.push(SlowEntry {
                    request_id,
                    op,
                    target,
                    rankings,
                    latency_ns,
                    total_io,
                    search_ios,
                    wasteful_ios,
                    items,
                    spans,
                });
            }
            Body::SlowLog(entries)
        }
        RESP_VERSIONS => Body::Versions {
            current: c.u64()?,
            oldest: c.u64()?,
            installed: c.u64()?,
            reclaimed_pages: c.u64()?,
            pinned: c.u64()?,
        },
        RESP_ERROR => {
            let code = ErrorCode::from_u8(c.u8()?)?;
            let len = c.count(1)?;
            Body::Error { code, message: c.text(len)? }
        }
        other => return Err(DecodeError::UnknownResponseKind(other)),
    };
    c.finish()?;
    Ok(Response { id, body })
}

/// Reads one length-prefixed frame from a blocking reader. Returns
/// `Ok(None)` on a clean EOF at a frame boundary; a connection that dies
/// mid-frame surfaces as `UnexpectedEof`, and a read timeout surfaces as
/// the platform's `WouldBlock`/`TimedOut` error — callers treat both as a
/// dead peer and bail out rather than hang.
pub fn read_frame(r: &mut impl Read, max: usize) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut len_buf[got..]) {
            Ok(0) => {
                if got == 0 {
                    return Ok(None);
                }
                return Err(io::ErrorKind::UnexpectedEof.into());
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > max {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap {max}"),
        ));
    }
    let mut payload = vec![0u8; len];
    let mut filled = 0;
    while filled < len {
        match r.read(&mut payload[filled..]) {
            Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(Some(payload))
}

/// Progress report from [`FrameReader::poll`].
#[derive(Debug)]
pub enum FrameProgress {
    /// A complete frame payload.
    Frame(Vec<u8>),
    /// Clean EOF at a frame boundary — the peer closed the connection.
    Eof,
    /// The read timed out with no complete frame; partial bytes are
    /// retained. The caller decides whether the connection is idle-dead.
    Pending,
}

/// Incremental frame reader for the server's polling read loop. The
/// connection thread reads with a short `set_read_timeout` tick so it can
/// check shutdown and idle-timeout state between reads; partial header or
/// payload bytes survive across `Pending` returns.
#[derive(Debug)]
pub struct FrameReader {
    max: usize,
    header: [u8; 4],
    header_got: usize,
    payload: Option<Vec<u8>>,
    payload_got: usize,
    total_read: u64,
}

impl FrameReader {
    /// A reader enforcing the given frame-size cap.
    pub fn new(max: usize) -> FrameReader {
        FrameReader { max, header: [0; 4], header_got: 0, payload: None, payload_got: 0, total_read: 0 }
    }

    /// Cumulative bytes consumed; callers diff this across `Pending`
    /// returns to distinguish a slow peer from a silent one.
    pub fn bytes_read(&self) -> u64 {
        self.total_read
    }

    /// Drives the reader one step. `Err` means the connection is broken
    /// (mid-frame EOF, oversized frame, or a real I/O error).
    pub fn poll(&mut self, r: &mut impl Read) -> io::Result<FrameProgress> {
        loop {
            if self.payload.is_none() {
                // Reading the 4-byte length prefix.
                match r.read(&mut self.header[self.header_got..]) {
                    Ok(0) => {
                        if self.header_got == 0 {
                            return Ok(FrameProgress::Eof);
                        }
                        return Err(io::ErrorKind::UnexpectedEof.into());
                    }
                    Ok(n) => {
                        self.header_got += n;
                        self.total_read += n as u64;
                        if self.header_got == 4 {
                            let len = u32::from_le_bytes(self.header) as usize;
                            if len > self.max {
                                return Err(io::Error::new(
                                    io::ErrorKind::InvalidData,
                                    format!("frame length {len} exceeds cap {}", self.max),
                                ));
                            }
                            self.payload = Some(vec![0u8; len]);
                            self.payload_got = 0;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e)
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::TimedOut =>
                    {
                        return Ok(FrameProgress::Pending);
                    }
                    Err(e) => return Err(e),
                }
            } else {
                let buf = self.payload.as_mut().unwrap();
                if self.payload_got == buf.len() {
                    let frame = self.payload.take().unwrap();
                    self.header_got = 0;
                    return Ok(FrameProgress::Frame(frame));
                }
                match r.read(&mut buf[self.payload_got..]) {
                    Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
                    Ok(n) => {
                        self.payload_got += n;
                        self.total_read += n as u64;
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e)
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::TimedOut =>
                    {
                        return Ok(FrameProgress::Pending);
                    }
                    Err(e) => return Err(e),
                }
            }
        }
    }
}

/// Writes a pre-encoded frame (prefix already included, e.g. from
/// [`response_frame`]) to a blocking writer.
pub fn write_frame(w: &mut impl Write, frame: &[u8]) -> io::Result<()> {
    w.write_all(frame)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt_req(req: Request) {
        let payload = encode_request(&req);
        assert_eq!(decode_request(&payload).unwrap(), req);
    }

    fn rt_resp(resp: Response) {
        let payload = encode_response(&resp);
        assert_eq!(decode_response(&payload).unwrap(), resp);
    }

    #[test]
    fn request_round_trips() {
        rt_req(Request { id: 7, target: 3, deadline_ms: 250, flags: 0, as_of: 0, op: Op::Range1d { lo: -5, hi: 99 } });
        rt_req(Request { id: 0, target: 0, deadline_ms: 0, flags: FLAG_TRACE, as_of: 0, op: Op::Stab { q: i64::MIN } });
        rt_req(Request { id: u64::MAX, target: u16::MAX, deadline_ms: u32::MAX, flags: 0xFF, as_of: 0, op: Op::TwoSided { x0: 1, y0: 2 } });
        rt_req(Request { id: 1, target: 1, deadline_ms: 1, flags: 0, as_of: 0, op: Op::ThreeSided { x1: -1, x2: 1, y0: 0 } });
        rt_req(Request { id: 2, target: 5, deadline_ms: 0, flags: 0, as_of: 0, op: Op::Insert(Point { x: 1, y: 2, id: 3 }) });
        rt_req(Request { id: 3, target: 5, deadline_ms: 0, flags: 0, as_of: 0, op: Op::Delete(Point { x: -1, y: -2, id: 9 }) });
        for op in [Op::Ping, Op::Stats, Op::Metrics, Op::Shutdown, Op::Versions] {
            rt_req(Request { id: 4, target: ADMIN_TARGET, deadline_ms: 0, flags: 0, as_of: 0, op });
        }
        rt_req(Request {
            id: 5,
            target: ADMIN_TARGET,
            deadline_ms: 0,
            flags: 0,
            as_of: 0,
            op: Op::SlowLog { k: 16, clear: true },
        });
        rt_req(Request {
            id: 6,
            target: ADMIN_TARGET,
            deadline_ms: 0,
            flags: 0,
            as_of: 0,
            op: Op::SetSampling { every: u64::MAX },
        });
        // Nonzero snapshot selectors survive the trip on every op shape.
        rt_req(Request { id: 8, target: 2, deadline_ms: 50, flags: 0, as_of: 7, op: Op::Stab { q: 0 } });
        rt_req(Request {
            id: 9,
            target: 1,
            deadline_ms: 0,
            flags: FLAG_TRACE,
            as_of: u64::MAX,
            op: Op::Range1d { lo: 0, hi: 1 },
        });
    }

    #[test]
    fn response_round_trips() {
        rt_resp(Response { id: 1, body: Body::Points(vec![Point { x: 1, y: 2, id: 3 }]) });
        rt_resp(Response { id: 2, body: Body::Points(Vec::new()) });
        rt_resp(Response { id: 3, body: Body::Intervals(vec![Interval { lo: -2, hi: 2, id: 8 }]) });
        rt_resp(Response { id: 4, body: Body::Keys(vec![(i64::MIN, 0), (i64::MAX, u64::MAX)]) });
        rt_resp(Response { id: 5, body: Body::Ack { batch: 42, coalesced: 17 } });
        rt_resp(Response { id: 6, body: Body::Pong });
        rt_resp(Response { id: 7, body: Body::Stats(vec![("reads".into(), 10), ("".into(), 0)]) });
        rt_resp(Response { id: 8, body: Body::Metrics("# TYPE x counter\nx 1\n".into()) });
        rt_resp(Response { id: 9, body: Body::ShutdownAck });
        for code in ErrorCode::ALL {
            rt_resp(Response::error(10, code, format!("{code} detail")));
        }
        rt_resp(Response { id: 11, body: Body::SlowLog(Vec::new()) });
        rt_resp(Response {
            id: 13,
            body: Body::Versions {
                current: 42,
                oldest: 11,
                installed: 43,
                reclaimed_pages: 999,
                pinned: 3,
            },
        });
        rt_resp(Response {
            id: 14,
            body: Body::Versions {
                current: 0,
                oldest: 0,
                installed: u64::MAX,
                reclaimed_pages: 0,
                pinned: u64::MAX,
            },
        });
        rt_resp(Response {
            id: 12,
            body: Body::SlowLog(vec![SlowEntry {
                request_id: 99,
                op: "two_sided".into(),
                target: "pst/main".into(),
                rankings: RANKED_BY_LATENCY | RANKED_BY_WASTE,
                latency_ns: 1_234_567,
                total_io: 40,
                search_ios: 12,
                wasteful_ios: 28,
                items: 3,
                spans: vec![
                    WireSpan {
                        depth: 0,
                        output: true,
                        name: "serve_query".into(),
                        arg: 99,
                        reads: 40,
                        writes: 0,
                        cache_hits: 5,
                        self_reads: 2,
                        items: 3,
                        block_capacity: 64,
                        wasteful: 2,
                    },
                    WireSpan {
                        depth: 1,
                        output: false,
                        name: "level".into(),
                        arg: 4,
                        reads: 38,
                        writes: 0,
                        cache_hits: 5,
                        self_reads: 38,
                        items: 0,
                        block_capacity: 0,
                        wasteful: 0,
                    },
                ],
            }]),
        });
    }

    #[test]
    fn slow_log_decode_validates_span_and_entry_counts() {
        // An entry count with nothing behind it must be rejected cheaply.
        let mut p = vec![RESP_SLOW_LOG];
        p.extend_from_slice(&3u64.to_le_bytes());
        p.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode_response(&p), Err(DecodeError::CountTooLarge { .. })));

        // A valid single entry whose span count lies about the bytes present.
        let resp = Response {
            id: 1,
            body: Body::SlowLog(vec![SlowEntry {
                request_id: 1,
                op: "stab".into(),
                target: "t".into(),
                rankings: RANKED_BY_LATENCY,
                latency_ns: 5,
                total_io: 1,
                search_ios: 1,
                wasteful_ios: 0,
                items: 0,
                spans: Vec::new(),
            }]),
        };
        let mut p = encode_response(&resp);
        let n = p.len();
        p[n - 4..].copy_from_slice(&u32::MAX.to_le_bytes()); // span count field
        assert!(matches!(decode_response(&p), Err(DecodeError::CountTooLarge { .. })));
    }

    #[test]
    fn flatten_preserves_preorder_and_section3_waste() {
        use pc_obs::{IoDelta, SpanKind, SpanNode};
        let root = SpanNode {
            name: "q",
            arg: 7,
            kind: SpanKind::Output,
            io: IoDelta { reads: 10, writes: 1, cache_hits: 2, ..IoDelta::default() },
            self_reads: 6,
            items: 8,
            block_capacity: 4,
            children: vec![SpanNode {
                name: "level",
                arg: 1,
                kind: SpanKind::Nav,
                io: IoDelta { reads: 4, writes: 0, cache_hits: 1, ..IoDelta::default() },
                self_reads: 4,
                items: 0,
                block_capacity: 0,
                children: vec![SpanNode {
                    name: "leaf",
                    arg: 0,
                    kind: SpanKind::Output,
                    io: IoDelta { reads: 3, writes: 0, cache_hits: 0, ..IoDelta::default() },
                    self_reads: 3,
                    items: 8,
                    block_capacity: 4,
                    children: Vec::new(),
                }],
            }],
        };
        let flat = flatten_spans(&root);
        assert_eq!(flat.len(), 3);
        assert_eq!(
            flat.iter().map(|s| (s.depth, s.name.as_str())).collect::<Vec<_>>(),
            [(0, "q"), (1, "level"), (2, "leaf")]
        );
        // §3: wasteful = self_reads - items/B on Output spans.
        assert_eq!(flat[0].wasteful, root.wasteful());
        assert_eq!(flat[0].wasteful, 6 - 8 / 4);
        assert_eq!(flat[1].wasteful, 0, "nav spans are never wasteful");
        assert_eq!(flat[2].wasteful, 3 - 8 / 4);
        assert!(flat[0].output && !flat[1].output);
    }

    #[test]
    fn decode_rejects_malformed_headers() {
        assert!(matches!(decode_request(&[]), Err(DecodeError::Truncated { .. })));
        let mut p = encode_request(&Request { id: 1, target: 0, deadline_ms: 0, flags: 0, as_of: 0, op: Op::Ping });
        p[0] ^= 0xFF;
        assert!(matches!(decode_request(&p), Err(DecodeError::BadMagic(_))));
        let mut p = encode_request(&Request { id: 1, target: 0, deadline_ms: 0, flags: 0, as_of: 0, op: Op::Ping });
        p[2] = 9;
        assert!(matches!(decode_request(&p), Err(DecodeError::BadVersion(9))));
        let mut p = encode_request(&Request { id: 1, target: 0, deadline_ms: 0, flags: 0, as_of: 0, op: Op::Ping });
        p[3] = 200;
        assert!(matches!(decode_request(&p), Err(DecodeError::UnknownOpcode(200))));
        let mut p = encode_request(&Request { id: 1, target: 0, deadline_ms: 0, flags: 0, as_of: 0, op: Op::Ping });
        p.push(0);
        assert!(matches!(decode_request(&p), Err(DecodeError::TrailingBytes(1))));
    }

    #[test]
    fn decode_validates_counts_before_allocating() {
        // A Points response claiming u32::MAX elements with no bytes behind
        // it must be rejected without trying to reserve 96 GiB.
        let mut p = vec![RESP_POINTS];
        p.extend_from_slice(&7u64.to_le_bytes());
        p.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode_response(&p), Err(DecodeError::CountTooLarge { .. })));
    }

    #[test]
    fn decode_rejects_bad_utf8() {
        let resp = Response { id: 1, body: Body::Metrics("ok".into()) };
        let mut p = encode_response(&resp);
        let n = p.len();
        p[n - 1] = 0xFF;
        p[n - 2] = 0xFE;
        assert!(matches!(decode_response(&p), Err(DecodeError::BadUtf8)));
    }

    #[test]
    fn frames_round_trip_through_io() {
        let req = Request { id: 11, target: 2, deadline_ms: 30, flags: 0, as_of: 0, op: Op::Stab { q: 5 } };
        let frame = request_frame(&req);
        let mut cursor = io::Cursor::new(frame);
        let payload = read_frame(&mut cursor, MAX_FRAME).unwrap().unwrap();
        assert_eq!(decode_request(&payload).unwrap(), req);
        // Clean EOF at the boundary.
        assert!(read_frame(&mut cursor, MAX_FRAME).unwrap().is_none());

        let resp = Response { id: 11, body: Body::Intervals(vec![Interval { lo: 1, hi: 9, id: 4 }]) };
        let page = response_frame(&resp);
        let mut cursor = io::Cursor::new(page.as_slice().to_vec());
        let payload = read_frame(&mut cursor, MAX_FRAME).unwrap().unwrap();
        assert_eq!(decode_response(&payload).unwrap(), resp);
    }

    #[test]
    fn read_frame_rejects_oversized_and_truncated() {
        let mut huge = Vec::new();
        huge.extend_from_slice(&(MAX_FRAME as u32 + 1).to_le_bytes());
        let err = read_frame(&mut io::Cursor::new(huge), MAX_FRAME).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        let req = Request { id: 1, target: 0, deadline_ms: 0, flags: 0, as_of: 0, op: Op::Ping };
        let mut frame = request_frame(&req);
        frame.truncate(frame.len() - 1);
        let err = read_frame(&mut io::Cursor::new(frame), MAX_FRAME).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn frame_reader_accumulates_across_partial_reads() {
        // Feed the frame one byte at a time through a reader that returns
        // WouldBlock between bytes, as a timed-out socket would.
        struct Trickle {
            data: Vec<u8>,
            pos: usize,
            ready: bool,
        }
        impl Read for Trickle {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.pos == self.data.len() {
                    return Ok(0);
                }
                if !self.ready {
                    self.ready = true;
                    return Err(io::ErrorKind::WouldBlock.into());
                }
                self.ready = false;
                buf[0] = self.data[self.pos];
                self.pos += 1;
                Ok(1)
            }
        }
        let req = Request { id: 9, target: 1, deadline_ms: 0, flags: 0, as_of: 0, op: Op::Range1d { lo: 0, hi: 10 } };
        let mut t = Trickle { data: request_frame(&req), pos: 0, ready: false };
        let mut fr = FrameReader::new(MAX_FRAME);
        let mut pendings = 0;
        loop {
            match fr.poll(&mut t).unwrap() {
                FrameProgress::Frame(p) => {
                    assert_eq!(decode_request(&p).unwrap(), req);
                    break;
                }
                FrameProgress::Pending => pendings += 1,
                FrameProgress::Eof => panic!("premature EOF"),
            }
        }
        assert!(pendings > 0);
        assert_eq!(fr.bytes_read(), t.data.len() as u64);
        assert!(matches!(fr.poll(&mut t).unwrap(), FrameProgress::Eof));
    }
}
